//! Reproduces the paper's Heartbleed walk-through (Figures 2–3).
//!
//! The paper motivates DTaint with the observation that at binary level
//! the `n2s` macro disappears into `tls1_process_heartbeat`, and the
//! `memcpy` length must be traced back through the connection structure
//! to a `BIO_read` in `ssl3_read_n` — something "the state-of-the-art
//! static taint analysis cannot detect at the binary code level".
//!
//! This example synthesizes that exact shape with the program DSL,
//! compiles it to the `arm32e` dialect, and shows DTaint connecting the
//! `memcpy` length to the network read across three functions and a
//! structure field.
//!
//! ```sh
//! cargo run --example heartbleed
//! ```

use dtaint_core::Dtaint;
use dtaint_fwbin::Arch;
use dtaint_fwgen::codegen::compile;
use dtaint_fwgen::profiles::add_heartbleed;
use dtaint_fwgen::spec::{Callee, FnSpec, ProgramSpec, Stmt, Val};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut spec = ProgramSpec::new("openssl");
    add_heartbleed(&mut spec);

    // The record-loop entry driving the handshake.
    let mut main_fn = FnSpec::new("main", 0);
    main_fn.push(Stmt::Call {
        callee: Callee::Func("ssl3_read_bytes".into()),
        args: vec![Val::GlobalAddr("g_ssl".into())],
        ret: None,
    });
    main_fn.push(Stmt::Return(None));
    spec.func(main_fn);

    let binary = compile(&spec, Arch::Arm32e)?;
    println!(
        "synthesized openssl-shaped binary: {} functions, {} bytes",
        binary.functions().len(),
        binary.total_size()
    );
    for f in binary.functions() {
        println!("  {:#x}  {}", f.addr, f.name);
    }

    let report = Dtaint::new().analyze(&binary, "openssl")?;
    println!();
    let mut found = false;
    for f in report.vulnerable_paths() {
        println!("{f}");
        if f.sink == "memcpy" && f.sources.iter().any(|s| s.name == "BIO_read") {
            found = true;
            println!(
                "  ↳ the heartbeat length ({}) derives from network data read by BIO_read",
                f.tainted_expr
            );
        }
    }
    assert!(found, "heartbleed flow must be detected");
    println!();
    println!("Heartbleed-shaped flow detected: BIO_read → s->rbuf → n2s → memcpy length");
    Ok(())
}
