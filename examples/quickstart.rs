//! Quickstart: assemble a tiny vulnerable firmware binary and scan it.
//!
//! Builds the classic router-CGI bug shape — an environment variable
//! flowing into `system()` unchecked (CVE-2015-2051 style) next to a
//! properly guarded twin — and runs the full DTaint pipeline.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use dtaint_core::Dtaint;
use dtaint_fwbin::arm::{ArmIns, Cond};
use dtaint_fwbin::asm::Assembler;
use dtaint_fwbin::link::BinaryBuilder;
use dtaint_fwbin::{Arch, Reg};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A vulnerable handler: system(getenv("SOAPAction")).
    let mut vulnerable = Assembler::new(Arch::Arm32e);
    vulnerable.load_addr(Reg(0), "soap_action");
    vulnerable.call("getenv");
    vulnerable.call("system");
    vulnerable.ret();

    // A guarded handler: rejects values starting with ';'.
    let mut guarded = Assembler::new(Arch::Arm32e);
    guarded.load_addr(Reg(0), "soap_action");
    guarded.call("getenv");
    guarded.arm(ArmIns::MovR { rd: Reg(4), rm: Reg(0) });
    guarded.arm(ArmIns::Ldrb { rt: Reg(5), rn: Reg(4), off: 0 });
    guarded.arm(ArmIns::CmpI { rn: Reg(5), imm: b';' as i16 });
    guarded.arm_b(Cond::Eq, "reject");
    guarded.arm(ArmIns::MovR { rd: Reg(0), rm: Reg(4) });
    guarded.call("system");
    guarded.label("reject");
    guarded.ret();

    let mut builder = BinaryBuilder::new(Arch::Arm32e);
    builder.add_function("soap_handler", vulnerable);
    builder.add_function("soap_handler_fixed", guarded);
    builder.add_import("getenv");
    builder.add_import("system");
    builder.add_cstring("soap_action", "SOAPAction");
    let binary = builder.link()?;

    println!(
        "assembled cgibin: {} bytes, {} functions",
        binary.total_size(),
        binary.functions().len()
    );

    let report = Dtaint::new().analyze(&binary, "cgibin")?;
    println!(
        "analysis: {} functions, {} blocks, {} sinks, {:.2?} total",
        report.functions,
        report.blocks,
        report.sinks_count,
        report.timings.total()
    );
    println!();
    for finding in &report.findings {
        println!("{finding}");
    }
    println!();
    println!(
        "verdict: {} vulnerable path(s), {} distinct vulnerability(ies)",
        report.vulnerable_paths().len(),
        report.vulnerabilities()
    );
    assert_eq!(report.vulnerabilities(), 1, "the unguarded handler only");
    Ok(())
}
