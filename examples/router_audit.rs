//! End-to-end firmware audit: unpack an image, carve out the CGI
//! binary, scan it, and compare against ground truth.
//!
//! This is the §IV workflow of the paper: "we use a custom-written
//! extraction utility … to extract the root file system. Then we choose
//! the binary file of interest and load it into the static symbolic
//! analysis module". The subject is the D-Link DIR-645-shaped profile
//! (Table II row 1) with its Tables IV/V vulnerability mix.
//!
//! ```sh
//! cargo run --release --example router_audit
//! ```

use dtaint_core::Dtaint;
use dtaint_fwgen::{build_firmware, table2_profiles};
use dtaint_fwimage::{extract_binaries, extract_image};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. "Download" the DIR-645 firmware (generate it, with ground truth).
    let profile = table2_profiles().remove(0);
    let firmware = build_firmware(&profile);
    let blob = firmware.image.pack(false);
    println!(
        "firmware image: {} {} ({} bytes packed)",
        profile.manufacturer,
        profile.firmware_version,
        blob.len()
    );

    // 2. Unpack and carve out executables.
    let image = extract_image(&blob)?;
    println!(
        "extracted root filesystem: {} files, vendor {}",
        image.files.len(),
        image.metadata.vendor
    );
    let binaries = extract_binaries(&image)?;
    let (path, binary) = &binaries[0];
    println!(
        "binary of interest: {} ({} functions, {} KB)",
        path,
        binary.functions().len(),
        binary.total_size() / 1024
    );

    // 3. Run DTaint.
    let report = Dtaint::new().analyze(binary, profile.firmware_version)?;
    println!(
        "analysis took {:.2?} (ssa {:.2?}, ddg {:.2?})",
        report.timings.total(),
        report.timings.ssa,
        report.timings.ddg
    );
    println!();
    println!("== findings ==");
    for f in report.vulnerable_paths() {
        println!("{f}");
    }

    // 4. Score against ground truth.
    let expected: Vec<_> = firmware.ground_truth.iter().filter(|g| !g.sanitized).collect();
    let guarded = firmware.ground_truth.len() - expected.len();
    println!();
    println!("ground truth: {} planted vulnerabilities, {} guarded twins", expected.len(), guarded);
    println!(
        "detected: {} vulnerabilities over {} vulnerable paths",
        report.vulnerabilities(),
        report.vulnerable_paths().len()
    );
    for g in &expected {
        let hit = report
            .vulnerable_paths()
            .iter()
            .any(|f| f.sources.iter().any(|s| s.name == g.source) && f.sink == g.sink);
        println!(
            "  {:<28} {:>10} → {:<8} {}",
            g.id,
            g.source,
            g.sink,
            if hit { "DETECTED" } else { "MISSED" }
        );
    }
    assert_eq!(report.vulnerabilities(), expected.len());
    Ok(())
}
