//! Corpus triage: why static binary analysis is necessary at all.
//!
//! Reproduces the paper's §II empirical study on a generated corpus:
//! most firmware cannot be unpacked, and only ~10% of images boot in a
//! full-system emulator — so dynamic analysis is off the table for the
//! vast majority of devices. Prints the per-year histogram behind
//! Figure 1 and a breakdown of emulation failures.
//!
//! ```sh
//! cargo run --release --example corpus_triage
//! ```

use dtaint_fwimage::{extract_image, generate_corpus, try_emulate, CorpusConfig, EmulationFailure};
use std::collections::BTreeMap;

fn main() {
    let config = CorpusConfig { n_images: 2000, seed: 7, ..Default::default() };
    let corpus = generate_corpus(&config);
    println!("collected {} firmware images from 12 manufacturers", corpus.len());

    let mut by_year: BTreeMap<u16, (usize, usize)> = BTreeMap::new();
    let mut failures: BTreeMap<String, usize> = BTreeMap::new();
    for entry in &corpus {
        let slot = by_year.entry(entry.year).or_default();
        slot.0 += 1;
        let outcome = match extract_image(&entry.blob) {
            Err(_) => Err(EmulationFailure::Unpackable),
            Ok(img) => try_emulate(&img),
        };
        match outcome {
            Ok(()) => slot.1 += 1,
            Err(f) => {
                let key = match f {
                    EmulationFailure::Unpackable => "unpack failed (encrypted/unknown)",
                    EmulationFailure::ProprietaryPeripheral(_) => "proprietary hardware",
                    EmulationFailure::NvramMissing => "nvram contents missing",
                    EmulationFailure::CustomBootstrap => "vendor boot chain",
                    EmulationFailure::NetworkInitFailed => "network init failed",
                };
                *failures.entry(key.to_owned()).or_default() += 1;
            }
        }
    }

    println!();
    println!("emulation feasibility by release year (cf. paper Figure 1):");
    let max = by_year.values().map(|v| v.0).max().unwrap_or(1);
    for (year, (total, ok)) in &by_year {
        let bar = "#".repeat(total * 40 / max);
        let ok_bar = "+".repeat((ok * 40 / max).max(if *ok > 0 { 1 } else { 0 }));
        println!("{year}  {total:>4} images |{bar}");
        println!("      {ok:>4} bootable |{ok_bar}");
    }

    let total: usize = by_year.values().map(|v| v.0).sum();
    let ok: usize = by_year.values().map(|v| v.1).sum();
    println!();
    println!(
        "emulation succeeded for {ok}/{total} images ({:.1}%)",
        100.0 * ok as f64 / total as f64
    );
    println!();
    println!("failure breakdown:");
    for (reason, n) in &failures {
        println!("  {n:>5}  {reason}");
    }
    println!();
    println!(
        "conclusion: {:.0}% of firmware is out of reach for dynamic analysis —\n\
         the case for DTaint's static binary approach.",
        100.0 * (total - ok) as f64 / total as f64
    );
}
