//! Offline stand-in for the `rand` crate.
//!
//! Provides a deterministic, seedable generator with the small `Rng`
//! surface this workspace uses (`gen`, `gen_range`, `gen_bool`). The
//! stream is *not* the upstream StdRng stream — it is xoshiro256++
//! seeded through SplitMix64 — but every consumer in this repo only
//! relies on determinism for a fixed seed, which this provides.

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from a uniform bit stream (the `Standard`
/// distribution of upstream rand).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample(rng: &mut impl RngCore) -> Self;
}

impl Standard for u8 {
    fn sample(rng: &mut impl RngCore) -> Self {
        rng.next_u64() as u8
    }
}

impl Standard for u16 {
    fn sample(rng: &mut impl RngCore) -> Self {
        rng.next_u64() as u16
    }
}

impl Standard for u32 {
    fn sample(rng: &mut impl RngCore) -> Self {
        rng.next_u64() as u32
    }
}

impl Standard for u64 {
    fn sample(rng: &mut impl RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample(rng: &mut impl RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample(rng: &mut impl RngCore) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Raw 64-bit output.
pub trait RngCore {
    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from(self, rng: &mut impl RngCore) -> T;
}

/// Integers with an i128 widening, so one blanket [`SampleRange`] impl
/// covers all of them (a blanket impl is what lets integer-literal
/// ranges unify with the context's expected type, as upstream).
pub trait UniformInt: Copy {
    /// Widens to i128.
    fn to_i128(self) -> i128;
    /// Narrows from i128 (caller guarantees range).
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: UniformInt> SampleRange<T> for std::ops::Range<T> {
    fn sample_from(self, rng: &mut impl RngCore) -> T {
        let (start, end) = (self.start.to_i128(), self.end.to_i128());
        assert!(start < end, "gen_range on empty range");
        let span = (end - start) as u128;
        let v = ((rng.next_u64() as u128) % span) as i128;
        T::from_i128(start + v)
    }
}

impl<T: UniformInt> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from(self, rng: &mut impl RngCore) -> T {
        let (start, end) = (self.start().to_i128(), self.end().to_i128());
        assert!(start <= end, "gen_range on empty range");
        let span = (end - start + 1) as u128;
        let v = ((rng.next_u64() as u128) % span) as i128;
        T::from_i128(start + v)
    }
}

/// The user-facing sampling surface.
pub trait Rng: RngCore + Sized {
    /// Draws one value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for the upstream
    /// `StdRng`; same determinism guarantee, different stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn mix(state: &mut u64) -> u64 {
            // SplitMix64: seeds the xoshiro state from one word.
            *state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            if s == [0; 4] {
                return Self::seed_from_u64(0);
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut st = state;
            let s =
                [Self::mix(&mut st), Self::mix(&mut st), Self::mix(&mut st), Self::mix(&mut st)];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w: i64 = r.gen_range(-50i64..=50);
            assert!((-50..=50).contains(&w));
        }
    }

    #[test]
    fn gen_bool_hits_both_sides() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..1000).filter(|_| r.gen_bool(0.5)).count();
        assert!((300..700).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
