//! Offline stand-in for `serde`.
//!
//! Upstream serde abstracts over serializer backends; the only backend
//! this workspace uses is JSON, so the shim collapses the design to one
//! concrete [`Value`] tree. `#[derive(Serialize, Deserialize)]` works
//! through the sibling `serde_derive` shim and supports what the
//! workspace derives on: structs with named fields, enums with unit /
//! newtype / struct variants, and the `#[serde(default)]` field
//! attribute. The `serde_json` shim renders and parses [`Value`]s.

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A parsed/buildable JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without a fractional part (within `i64`).
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A short name of the value's type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// (De)serialisation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Builds an error from anything displayable.
    pub fn msg(m: impl fmt::Display) -> Error {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types renderable to a [`Value`].
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types buildable from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses `self` out of a value tree.
    ///
    /// # Errors
    ///
    /// Returns a message naming the mismatch when the tree has the wrong
    /// shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Extracts and deserialises a required object member (derive-macro
/// helper).
///
/// # Errors
///
/// Fails when `v` is not an object, the member is missing, or the member
/// fails to deserialise.
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v.get(name) {
        Some(m) => T::from_value(m).map_err(|e| Error(format!("field `{name}`: {e}"))),
        None => Err(Error(format!("missing field `{name}`"))),
    }
}

/// Like [`field`], but a missing member yields `T::default()`
/// (`#[serde(default)]`).
///
/// # Errors
///
/// Fails when the member is present but malformed.
pub fn field_or_default<T: Deserialize + Default>(v: &Value, name: &str) -> Result<T, Error> {
    match v.get(name) {
        Some(m) => T::from_value(m).map_err(|e| Error(format!("field `{name}`: {e}"))),
        None => Ok(T::default()),
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t)))),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(Error(format!(
                        "expected number, got {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Int(n) => Ok(*n as f64),
            Value::Float(f) => Ok(*f),
            other => Err(Error(format!("expected number, got {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Obj(pairs) => pairs
                .iter()
                .map(|(k, m)| {
                    V::from_value(m)
                        .map(|v| (k.clone(), v))
                        .map_err(|e| Error(format!("member `{k}`: {e}")))
                })
                .collect(),
            other => Err(Error(format!("expected object, got {}", other.kind()))),
        }
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        // Matches upstream serde's Duration encoding.
        Value::Obj(vec![
            ("secs".to_owned(), Value::Int(self.as_secs() as i64)),
            ("nanos".to_owned(), Value::Int(i64::from(self.subsec_nanos()))),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let secs: u64 = field(v, "secs")?;
        let nanos: u32 = field(v, "nanos")?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
