//! Offline stand-in for `proptest`.
//!
//! Keeps the property-test surface this workspace uses — `proptest!`,
//! `prop_oneof!`, `any`, ranges, `Just`, `prop_map`, tuple strategies,
//! `collection::vec`, `ProptestConfig::with_cases` — on a deterministic
//! sampler seeded from the test name. Two deliberate simplifications
//! versus upstream: no shrinking (a failing case asserts with its inputs
//! via the test's own message), and no persisted regression seeds (the
//! stream is already reproducible run-to-run).

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Per-test run parameters.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` samples.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream's default case count.
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic generator backing all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from a test's name, so every run of a given test
    /// replays the same cases.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

/// A recipe for sampling values of one type.
pub trait Strategy {
    /// The sampled type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy's type (used by `prop_oneof!` to mix arms of
    /// different concrete types).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe sampling, so strategies can be boxed.
trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// `Strategy::prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always yields a clone of its payload.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased arms (`prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds the union; panics on an empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() % self.0.len() as u64) as usize;
        self.0[idx].sample(rng)
    }
}

/// Types with a full-range default strategy (`any::<T>()`).
pub trait ArbitraryValue {
    /// Draws one uniformly distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(PhantomData<T>);

/// Full-range strategy for `T`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "sample from empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Samples a `Vec` whose length is drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `Vec` strategy with element strategy `elem` and length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "vec strategy with empty size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// The glob import every proptest test module uses.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any,
        ArbitraryValue, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` that samples `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns!(@cfg ($cfg) $($rest)*);
    };
}

/// Uniform choice among strategy expressions of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Upstream aborts the case and shrinks; the shim just asserts.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Upstream aborts the case and shrinks; the shim just asserts.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Upstream aborts the case and shrinks; the shim just asserts.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_respect_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        let r = 3u32..17;
        let v = crate::collection::vec(0i64..5, 1..8);
        for _ in 0..500 {
            assert!((3..17).contains(&r.sample(&mut rng)));
            let xs = v.sample(&mut rng);
            assert!((1..8).contains(&xs.len()));
            assert!(xs.iter().all(|x| (0..5).contains(x)));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = TestRng::deterministic("arms");
        let s = prop_oneof![Just(1u8), Just(2u8), (5u8..7).prop_map(|x| x)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            match s.sample(&mut rng) {
                1 => seen[0] = true,
                2 => seen[1] = true,
                5 => seen[2] = true,
                6 => seen[3] = true,
                other => panic!("unexpected sample {other}"),
            }
        }
        assert_eq!(seen, [true; 4]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro itself: args bind, tuples sample, asserts pass.
        #[test]
        fn macro_binds_args(
            a in any::<u8>(),
            pair in (0u32..10, any::<bool>()),
            xs in crate::collection::vec(any::<u16>(), 0..4),
        ) {
            let _ = a;
            prop_assert!(pair.0 < 10);
            prop_assert!(xs.len() < 4);
        }
    }
}
