//! Offline stand-in for `serde_derive`.
//!
//! Upstream leans on `syn`/`quote`; neither is available offline, so
//! this derive hand-walks the `proc_macro::TokenStream` and emits the
//! impl source as a string. Supported shapes — the ones this workspace
//! actually derives on — are structs with named fields and enums with
//! unit, newtype, tuple, and struct variants (no generics). The only
//! recognised field attribute is `#[serde(default)]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    default: bool,
}

enum VariantKind {
    Unit,
    Newtype,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Shape {
    Struct { name: String, fields: Vec<Field> },
    Enum { name: String, variants: Vec<Variant> },
}

/// Derives `serde::Serialize` (the shim's `to_value`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_input(input);
    let src = match &shape {
        Shape::Struct { name, fields } => serialize_struct(name, fields),
        Shape::Enum { name, variants } => serialize_enum(name, variants),
    };
    src.parse().expect("serde_derive shim emitted invalid Serialize impl")
}

/// Derives `serde::Deserialize` (the shim's `from_value`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_input(input);
    let src = match &shape {
        Shape::Struct { name, fields } => deserialize_struct(name, fields),
        Shape::Enum { name, variants } => deserialize_enum(name, variants),
    };
    src.parse().expect("serde_derive shim emitted invalid Deserialize impl")
}

// ---------------------------------------------------------------- parsing

fn parse_input(input: TokenStream) -> Shape {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&toks, &mut i);
    skip_vis(&toks, &mut i);
    let kw = expect_ident(&toks, &mut i);
    let name = expect_ident(&toks, &mut i);
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive does not support generic types ({name})");
    }
    let body = match toks.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("serde shim derive: expected braced body for {name}, got {other:?}"),
    };
    match kw.as_str() {
        "struct" => Shape::Struct { name, fields: parse_fields(body) },
        "enum" => Shape::Enum { name, variants: parse_variants(body) },
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    }
}

fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if matches!(toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Skips `#[...]` attributes; returns true if any was `#[serde(default)]`.
fn skip_attrs(toks: &[TokenTree], i: &mut usize) -> bool {
    let mut has_default = false;
    loop {
        match (toks.get(*i), toks.get(*i + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                has_default |= attr_is_serde_default(&g.stream());
                *i += 2;
            }
            _ => return has_default,
        }
    }
}

fn attr_is_serde_default(stream: &TokenStream) -> bool {
    let toks: Vec<TokenTree> = stream.clone().into_iter().collect();
    match (toks.first(), toks.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args)))
            if id.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(a) if a.to_string() == "default"))
        }
        _ => false,
    }
}

fn expect_ident(toks: &[TokenTree], i: &mut usize) -> String {
    match toks.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde shim derive: expected identifier, got {other:?}"),
    }
}

/// Advances past one type, stopping before a top-level `,` (or the end).
/// Group tokens are atomic, so only `<`/`>` puncts contribute nesting;
/// `->` only appears inside groups (fn-pointer types) and is untracked.
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut angle = 0i32;
    while let Some(t) = toks.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                ',' if angle == 0 => return,
                '<' => angle += 1,
                '>' => angle -= 1,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_fields(body: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let default = skip_attrs(&toks, &mut i);
        skip_vis(&toks, &mut i);
        let name = expect_ident(&toks, &mut i);
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde shim derive: expected `:` after field `{name}`, got {other:?}"),
        }
        skip_type(&toks, &mut i);
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        fields.push(Field { name, default });
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        let name = expect_ident(&toks, &mut i);
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                match count_tuple_fields(g.stream()) {
                    1 => VariantKind::Newtype,
                    n => VariantKind::Tuple(n),
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the comma.
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            skip_type(&toks, &mut i);
        }
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut n = 0;
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        skip_vis(&toks, &mut i);
        skip_type(&toks, &mut i);
        n += 1;
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    n
}

// ---------------------------------------------------------------- codegen

fn serialize_struct(name: &str, fields: &[Field]) -> String {
    let mut pairs = String::new();
    for f in fields {
        let fname = &f.name;
        pairs.push_str(&format!(
            "(::std::string::String::from(\"{fname}\"), \
             ::serde::Serialize::to_value(&self.{fname})),\n"
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
           fn to_value(&self) -> ::serde::Value {{\n\
             ::serde::Value::Obj(vec![\n{pairs}])\n\
           }}\n\
         }}\n"
    )
}

fn deserialize_struct(name: &str, fields: &[Field]) -> String {
    let mut inits = String::new();
    for f in fields {
        let fname = &f.name;
        let getter = if f.default { "field_or_default" } else { "field" };
        inits.push_str(&format!("{fname}: ::serde::{getter}(v, \"{fname}\")?,\n"));
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
           fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
             if !matches!(v, ::serde::Value::Obj(_)) {{\n\
               return ::std::result::Result::Err(::serde::Error(\
                 format!(\"expected object for {name}, got {{}}\", v.kind())));\n\
             }}\n\
             ::std::result::Result::Ok({name} {{\n{inits}}})\n\
           }}\n\
         }}\n"
    )
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.kind {
            VariantKind::Unit => arms.push_str(&format!(
                "{name}::{vname} => \
                 ::serde::Value::Str(::std::string::String::from(\"{vname}\")),\n"
            )),
            VariantKind::Newtype => arms.push_str(&format!(
                "{name}::{vname}(__f0) => ::serde::Value::Obj(vec![(\
                 ::std::string::String::from(\"{vname}\"), \
                 ::serde::Serialize::to_value(__f0))]),\n"
            )),
            VariantKind::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                let elems: Vec<String> =
                    binds.iter().map(|b| format!("::serde::Serialize::to_value({b})")).collect();
                arms.push_str(&format!(
                    "{name}::{vname}({}) => ::serde::Value::Obj(vec![(\
                     ::std::string::String::from(\"{vname}\"), \
                     ::serde::Value::Arr(vec![{}]))]),\n",
                    binds.join(", "),
                    elems.join(", ")
                ));
            }
            VariantKind::Struct(fields) => {
                let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                let pairs: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from(\"{0}\"), \
                             ::serde::Serialize::to_value({0}))",
                            f.name
                        )
                    })
                    .collect();
                arms.push_str(&format!(
                    "{name}::{vname} {{ {} }} => ::serde::Value::Obj(vec![(\
                     ::std::string::String::from(\"{vname}\"), \
                     ::serde::Value::Obj(vec![{}]))]),\n",
                    binds.join(", "),
                    pairs.join(", ")
                ));
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
           fn to_value(&self) -> ::serde::Value {{\n\
             match self {{\n{arms}}}\n\
           }}\n\
         }}\n"
    )
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut str_arms = String::new();
    let mut obj_arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.kind {
            VariantKind::Unit => str_arms
                .push_str(&format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n")),
            VariantKind::Newtype => obj_arms.push_str(&format!(
                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                 ::serde::Deserialize::from_value(__inner)?)),\n"
            )),
            VariantKind::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?"))
                    .collect();
                obj_arms.push_str(&format!(
                    "\"{vname}\" => match __inner {{\n\
                       ::serde::Value::Arr(__items) if __items.len() == {n} => \
                         ::std::result::Result::Ok({name}::{vname}({})),\n\
                       _ => ::std::result::Result::Err(::serde::Error(\
                         ::std::string::String::from(\
                           \"expected {n}-element array for {name}::{vname}\"))),\n\
                     }},\n",
                    elems.join(", ")
                ));
            }
            VariantKind::Struct(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        let getter = if f.default { "field_or_default" } else { "field" };
                        format!("{0}: ::serde::{getter}(__inner, \"{0}\")?", f.name)
                    })
                    .collect();
                obj_arms.push_str(&format!(
                    "\"{vname}\" => ::std::result::Result::Ok({name}::{vname} {{ {} }}),\n",
                    inits.join(", ")
                ));
            }
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
           fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
             match v {{\n\
               ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {str_arms}\
                 __other => ::std::result::Result::Err(::serde::Error(\
                   format!(\"unknown {name} variant `{{}}`\", __other))),\n\
               }},\n\
               ::serde::Value::Obj(__pairs) if __pairs.len() == 1 => {{\n\
                 let (__key, __inner) = &__pairs[0];\n\
                 match __key.as_str() {{\n\
                   {obj_arms}\
                   __other => ::std::result::Result::Err(::serde::Error(\
                     format!(\"unknown {name} variant `{{}}`\", __other))),\n\
                 }}\n\
               }}\n\
               __other => ::std::result::Result::Err(::serde::Error(\
                 format!(\"bad value for enum {name}: {{}}\", __other.kind()))),\n\
             }}\n\
           }}\n\
         }}\n"
    )
}
