//! Offline stand-in for `criterion`.
//!
//! Keeps the bench-authoring API this workspace uses (`criterion_group!`,
//! `criterion_main!`, groups, `bench_function`, `bench_with_input`,
//! `iter`, `iter_batched`) but replaces the statistics engine with a
//! plain measured loop: a short warm-up, then `sample_size` timed
//! samples, reporting the median per-iteration time on stdout. Good
//! enough to keep `cargo bench` compiling and yielding comparable
//! numbers offline; not a replacement for criterion's analysis.

use std::time::{Duration, Instant};

/// Per-iteration workload hint; the shim only uses it to pick iteration
/// counts conservatively for large inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup output; many iterations per sample are fine.
    SmallInput,
    /// Large setup output; one iteration per batch.
    LargeInput,
    /// Each batch holds exactly one iteration.
    PerIteration,
}

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A parameterised benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{parameter}", name.into()) }
    }

    /// Just the parameter as the label.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The top-level bench context.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, None, f);
        self
    }
}

/// A group of benchmarks sharing sample size and throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Records the per-iteration throughput for reporting.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{id}", self.name), self.sample_size, None, f);
        self
    }

    /// Runs one parameterised benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{id}", self.name), self.sample_size, None, |b| {
            f(b, input);
        });
        self
    }

    /// Ends the group (a no-op here; kept for API parity).
    pub fn finish(self) {}
}

/// Collects one benchmark's samples.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Times `routine` once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.target_samples {
            let start = Instant::now();
            let out = routine();
            self.samples.push(start.elapsed());
            drop(out);
        }
    }

    /// Times `routine` on fresh values from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.target_samples {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.samples.push(start.elapsed());
            drop(out);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    _t: Option<Throughput>,
    mut f: F,
) {
    // One warm-up sample, discarded.
    let mut warmup = Bencher { samples: Vec::new(), target_samples: 1 };
    f(&mut warmup);

    let mut b = Bencher { samples: Vec::new(), target_samples: sample_size };
    f(&mut b);
    b.samples.sort();
    let median = b.samples.get(b.samples.len() / 2).copied().unwrap_or_default();
    println!("bench {label:<40} median {median:>12.2?}  ({} samples)", b.samples.len());
}

/// Opaque-to-the-optimizer identity, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a bench group runner, as upstream.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point, as upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.throughput(Throughput::Elements(4));
        let mut runs = 0usize;
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("x", 7), &7u32, |b, &n| {
            b.iter_batched(
                || vec![n; 8],
                |v| {
                    runs += 1;
                    v.iter().sum::<u32>()
                },
                BatchSize::LargeInput,
            )
        });
        g.finish();
        assert!(runs >= 3);
    }
}
