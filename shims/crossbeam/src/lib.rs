//! Offline stand-in for the `crossbeam` crate.
//!
//! Since Rust 1.63 the standard library ships scoped threads, so this
//! shim maps the `crossbeam::thread::scope` API (the only part this
//! workspace uses) straight onto `std::thread::scope`. One deliberate
//! difference from upstream: the closure passed to [`thread::Scope::spawn`]
//! receives `()` instead of a nested `&Scope`, which every call site
//! here ignores with `|_|` anyway — nested spawning is not supported.

/// Scoped threads, mirroring `crossbeam::thread`.
pub mod thread {
    /// Join outcome, as `std::thread` reports it.
    pub type Result<T> = std::thread::Result<T>;

    /// A scope handle for spawning borrowing threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to one spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result (an `Err` carries
        /// the panic payload, as upstream).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread that may borrow from the enclosing scope. The
        /// closure's argument is `()` (upstream passes a nested scope).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle { inner: self.inner.spawn(move || f(())) }
        }
    }

    /// Runs `f` with a scope; all spawned threads are joined before this
    /// returns. Always `Ok` — unlike upstream, a panicking child
    /// propagates its panic at join time instead of poisoning the scope
    /// result (call sites here `.expect()` the result either way).
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u32, 2, 3, 4];
        let total: u32 = crate::thread::scope(|s| {
            let handles: Vec<_> =
                data.chunks(2).map(|c| s.spawn(move |_| c.iter().sum::<u32>())).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }
}
