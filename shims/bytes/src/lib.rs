//! Offline stand-in for the `bytes` crate.
//!
//! The container can't reach a registry, so this workspace vendors the
//! tiny slice of the `bytes` API its crates actually call: little-endian
//! integer reads over `&[u8]` cursors and integer/slice writes into
//! `Vec<u8>`. Semantics match the upstream crate for that surface.

/// Read side of a byte cursor (implemented for `&[u8]`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Skips `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics when fewer than `n` bytes remain.
    fn advance(&mut self, n: usize);
    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics when the cursor is empty.
    fn get_u8(&mut self) -> u8;
    /// Reads a little-endian `u16`.
    ///
    /// # Panics
    ///
    /// Panics when fewer than 2 bytes remain.
    fn get_u16_le(&mut self) -> u16;
    /// Reads a little-endian `u32`.
    ///
    /// # Panics
    ///
    /// Panics when fewer than 4 bytes remain.
    fn get_u32_le(&mut self) -> u32;
    /// Copies exactly `dst.len()` bytes out of the cursor.
    ///
    /// # Panics
    ///
    /// Panics when fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        self.advance(1);
        v
    }

    fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes([self[0], self[1]]);
        self.advance(2);
        v
    }

    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes([self[0], self[1], self[2], self[3]]);
        self.advance(4);
        v
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let n = dst.len();
        dst.copy_from_slice(&self[..n]);
        self.advance(n);
    }
}

/// Write side of a growable buffer (implemented for `Vec<u8>`).
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16);
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_ints_and_slices() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(7);
        out.put_u16_le(0x1234);
        out.put_u32_le(0xdeadbeef);
        out.put_slice(b"xy");
        let mut cur: &[u8] = &out;
        assert_eq!(cur.remaining(), 9);
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u16_le(), 0x1234);
        assert_eq!(cur.get_u32_le(), 0xdeadbeef);
        let mut two = [0u8; 2];
        cur.copy_to_slice(&mut two);
        assert_eq!(&two, b"xy");
        assert_eq!(cur.remaining(), 0);
    }
}
