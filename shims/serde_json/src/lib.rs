//! Offline stand-in for `serde_json`.
//!
//! Renders and parses the `serde` shim's [`Value`] tree as JSON. The
//! pretty printer uses the upstream 2-space layout so golden files and
//! snapshot-style assertions carry over.

use serde::{Deserialize, Serialize};
pub use serde::{Error, Value};

/// `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Renders `value` as compact JSON.
///
/// # Errors
///
/// Infallible for this shim's value model; kept fallible for API parity.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Renders `value` as 2-space-indented JSON.
///
/// # Errors
///
/// Infallible for this shim's value model; kept fallible for API parity.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Renders `value` as compact JSON bytes.
///
/// # Errors
///
/// Infallible for this shim's value model; kept fallible for API parity.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Parses a `T` out of JSON text.
///
/// # Errors
///
/// Fails on malformed JSON or a tree that doesn't match `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse(s)?;
    T::from_value(&value)
}

/// Parses a `T` out of JSON bytes.
///
/// # Errors
///
/// Fails on non-UTF-8 input, malformed JSON, or a mismatched tree.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

// --------------------------------------------------------------- printing

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` keeps a trailing `.0` on integral floats, like
                // upstream's ryu output.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Obj(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.eat_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Value::Bool(false)),
            Some(b'n') => self.eat_keyword("null").map(|()| Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.eat(b'{')?;
        self.skip_ws();
        let mut pairs = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.eat(b'[')?;
        self.skip_ws();
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect `\uXXXX` low half.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(code).ok_or_else(|| self.err("bad surrogate"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("bad codepoint"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| self.err(&format!("invalid UTF-8: {e}")))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>().map(Value::Float).map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = Value::Obj(vec![
            ("name".into(), Value::Str("a\"b\\c\nd".into())),
            ("n".into(), Value::Int(-42)),
            ("f".into(), Value::Float(1.5)),
            ("arr".into(), Value::Arr(vec![Value::Bool(true), Value::Null, Value::Obj(vec![])])),
        ]);
        for render in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&render).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn pretty_layout_matches_upstream() {
        let v = Value::Obj(vec![
            ("a".into(), Value::Int(1)),
            ("b".into(), Value::Arr(vec![Value::Int(2)])),
        ]);
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
    }

    #[test]
    fn unicode_escapes() {
        let back: Value = from_str("\"\\u0041\\ud83d\\ude00\"").unwrap();
        assert_eq!(back, Value::Str("A😀".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
