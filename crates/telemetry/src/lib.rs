//! Observability for the DTaint pipeline: spans, metrics, exporters,
//! and a leveled log facade.
//!
//! The layer is **deterministic by construction**: every value it feeds
//! back into analysis results is a *logical* work counter (blocks
//! executed, fuel spent, alias rewrites, …) derived from the analysis
//! itself, never from the clock. Wall-clock durations are collected
//! alongside — in [`SpanEvent`]s and per-function cost rows — but they
//! flow only into trace exports and the self-profiling printout, so
//! reports stay bit-identical across thread counts and machine speeds.
//!
//! Pieces:
//!
//! * [`Collector`] — the per-scan accumulator: a shared [`Clock`] epoch,
//!   the span event stream, and a [`MetricsRegistry`]. Cheap to carry
//!   around disabled ([`Collector::disabled`] records nothing).
//! * [`TraceBuffer`] — a thread-local span buffer for parallel stages;
//!   workers record into private buffers that the owner
//!   [`Collector::absorb`]s in a deterministic order.
//! * [`MetricsRegistry`] — counters, gauges, and [`Histogram`]s with
//!   fixed log2 buckets.
//! * [`export_jsonl`]/[`export_chrome`] — the JSONL event stream and the
//!   Chrome `trace_event` format (loadable in `chrome://tracing` and
//!   Perfetto).
//! * [`fleet`] — batch-level progress: the shared [`FleetProgress`]
//!   tracker and its [`Heartbeat`] snapshot for status files and the
//!   TTY status line.
//! * [`export_prometheus`] — the Prometheus text exposition format for
//!   textfile-collector scraping.
//! * [`log`] — a leveled stderr facade replacing ad-hoc `eprintln!`s.

pub mod fleet;
pub mod log;
pub mod metrics;
pub mod prometheus;
pub mod span;

pub use fleet::{FleetOutcome, FleetProgress, Heartbeat, ImageCacheStats, WorkerHeartbeat};
pub use metrics::{Histogram, MetricsRegistry, HISTOGRAM_BUCKETS};
pub use prometheus::{export_prometheus, lint_textfile, sanitize_metric_name};
pub use span::{export_chrome, export_jsonl, Clock, Collector, SpanEvent, TraceBuffer, TraceSpec};
