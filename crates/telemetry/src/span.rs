//! Hierarchical spans and their exporters.
//!
//! A [`SpanEvent`] is a completed span: a name, a category, a lane
//! (thread track), a start offset and duration against the scan's
//! [`Clock`] epoch, plus *logical* counters in `args`. Nesting is by
//! containment within a lane — the scan root span contains the stage
//! spans, which contain per-function spans — matching how the Chrome
//! `trace_event` viewer and Perfetto infer hierarchy from complete
//! (`ph: "X"`) events.
//!
//! Parallel stages record into per-worker [`TraceBuffer`]s sharing the
//! collector's clock; the owner absorbs them in worker order, so the
//! *set* of events is deterministic even though their timestamps are
//! not. Nothing downstream of the exporters ever reads a timestamp.

use crate::metrics::MetricsRegistry;
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::collections::BTreeMap;
use std::time::Instant;

/// A shared monotonic epoch; all span timestamps are offsets from it.
#[derive(Debug, Clone, Copy)]
pub struct Clock {
    epoch: Instant,
}

impl Clock {
    /// A clock starting now.
    pub fn new() -> Clock {
        Clock { epoch: Instant::now() }
    }

    /// Microseconds elapsed since the epoch.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::new()
    }
}

/// Where a parallel stage should record its spans: the shared clock and
/// the first lane its workers may use (worker *i* takes `base_lane + i`).
#[derive(Debug, Clone, Copy)]
pub struct TraceSpec {
    /// The scan's clock epoch.
    pub clock: Clock,
    /// First worker lane.
    pub base_lane: u32,
}

/// One completed span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanEvent {
    /// Span name (stage name or function name).
    pub name: String,
    /// Category: `"scan"`, `"stage"`, or `"function"`.
    pub cat: String,
    /// Lane (rendered as the thread id in Chrome traces). Lane 0 holds
    /// the scan root and stage spans; workers use lanes ≥ 1.
    pub lane: u32,
    /// Start offset from the scan epoch, microseconds.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Logical counters attached to the span (never durations).
    #[serde(default)]
    pub args: BTreeMap<String, u64>,
}

impl SpanEvent {
    /// True when `other` lies fully inside this span's time window.
    pub fn contains(&self, other: &SpanEvent) -> bool {
        self.start_us <= other.start_us
            && other.start_us + other.dur_us <= self.start_us + self.dur_us
    }
}

/// A thread-local span buffer for one worker lane.
#[derive(Debug)]
pub struct TraceBuffer {
    clock: Clock,
    lane: u32,
    on: bool,
    events: Vec<SpanEvent>,
}

impl TraceBuffer {
    /// A buffer recording (or, when `on` is false, discarding) spans for
    /// one lane.
    pub fn new(clock: Clock, lane: u32, on: bool) -> TraceBuffer {
        TraceBuffer { clock, lane, on, events: Vec::new() }
    }

    /// True when this buffer records.
    pub fn is_enabled(&self) -> bool {
        self.on
    }

    /// A start timestamp for a span about to open (0 when disabled).
    pub fn start(&self) -> u64 {
        if self.on {
            self.clock.now_us()
        } else {
            0
        }
    }

    /// Completes a span opened at `start_us`.
    pub fn record(&mut self, name: &str, cat: &str, start_us: u64, args: BTreeMap<String, u64>) {
        if !self.on {
            return;
        }
        let now = self.clock.now_us();
        self.events.push(SpanEvent {
            name: name.to_owned(),
            cat: cat.to_owned(),
            lane: self.lane,
            start_us,
            dur_us: now.saturating_sub(start_us),
            args,
        });
    }

    /// Surrenders the recorded events.
    pub fn into_events(self) -> Vec<SpanEvent> {
        self.events
    }
}

/// The per-scan telemetry accumulator: clock epoch, span events, and the
/// metrics registry.
#[derive(Debug)]
pub struct Collector {
    on: bool,
    clock: Clock,
    events: Vec<SpanEvent>,
    /// The metrics registry this scan populates.
    pub metrics: MetricsRegistry,
}

impl Collector {
    /// A recording collector.
    pub fn enabled() -> Collector {
        Collector {
            on: true,
            clock: Clock::new(),
            events: Vec::new(),
            metrics: MetricsRegistry::default(),
        }
    }

    /// A no-op collector: spans are dropped; the metrics registry still
    /// works (metrics are logical counters, free to keep).
    pub fn disabled() -> Collector {
        Collector { on: false, ..Collector::enabled() }
    }

    /// True when spans are recorded.
    pub fn is_enabled(&self) -> bool {
        self.on
    }

    /// The shared epoch, for handing to parallel stages.
    pub fn clock(&self) -> Clock {
        self.clock
    }

    /// A worker buffer on the given lane, inheriting the enabled flag.
    pub fn buffer(&self, lane: u32) -> TraceBuffer {
        TraceBuffer::new(self.clock, lane, self.on)
    }

    /// A start timestamp for a span about to open (0 when disabled).
    pub fn start(&self) -> u64 {
        if self.on {
            self.clock.now_us()
        } else {
            0
        }
    }

    /// Completes a lane-0 span opened at `start_us`.
    pub fn record(&mut self, name: &str, cat: &str, start_us: u64, args: BTreeMap<String, u64>) {
        if !self.on {
            return;
        }
        let now = self.clock.now_us();
        self.push(SpanEvent {
            name: name.to_owned(),
            cat: cat.to_owned(),
            lane: 0,
            start_us,
            dur_us: now.saturating_sub(start_us),
            args,
        });
    }

    /// Appends one pre-built event.
    pub fn push(&mut self, ev: SpanEvent) {
        if self.on {
            self.events.push(ev);
        }
    }

    /// Folds a worker buffer's (or stage's) events in.
    pub fn absorb(&mut self, events: Vec<SpanEvent>) {
        if self.on {
            self.events.extend(events);
        }
    }

    /// All recorded events, in absorption order.
    pub fn events(&self) -> &[SpanEvent] {
        &self.events
    }
}

/// Renders events as a JSONL stream: one [`SpanEvent`] JSON object per
/// line, round-trippable through `serde_json`.
pub fn export_jsonl(events: &[SpanEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&serde_json::to_string(ev).unwrap_or_default());
        out.push('\n');
    }
    out
}

/// Renders events in the Chrome `trace_event` format (complete events,
/// `ph: "X"`), loadable in `chrome://tracing` and Perfetto. Lanes map to
/// thread ids; nesting is inferred per-lane by containment.
pub fn export_chrome(events: &[SpanEvent]) -> String {
    let trace_events: Vec<Value> = events
        .iter()
        .map(|ev| {
            let args: Vec<(String, Value)> =
                ev.args.iter().map(|(k, v)| (k.clone(), Value::Int(*v as i64))).collect();
            Value::Obj(vec![
                ("name".into(), Value::Str(ev.name.clone())),
                ("cat".into(), Value::Str(ev.cat.clone())),
                ("ph".into(), Value::Str("X".into())),
                ("ts".into(), Value::Int(ev.start_us as i64)),
                ("dur".into(), Value::Int(ev.dur_us as i64)),
                ("pid".into(), Value::Int(1)),
                ("tid".into(), Value::Int(i64::from(ev.lane))),
                ("args".into(), Value::Obj(args)),
            ])
        })
        .collect();
    let doc = Value::Obj(vec![
        ("traceEvents".into(), Value::Arr(trace_events)),
        ("displayTimeUnit".into(), Value::Str("ms".into())),
    ]);
    serde_json::to_string_pretty(&doc).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, lane: u32, start: u64, dur: u64) -> SpanEvent {
        SpanEvent {
            name: name.into(),
            cat: "stage".into(),
            lane,
            start_us: start,
            dur_us: dur,
            args: [("work".to_owned(), 3u64)].into_iter().collect(),
        }
    }

    #[test]
    fn containment_defines_nesting() {
        let scan = ev("scan", 0, 0, 100);
        let stage = ev("ssa", 0, 10, 50);
        let outside = ev("late", 0, 90, 20);
        assert!(scan.contains(&stage));
        assert!(!stage.contains(&scan));
        assert!(!scan.contains(&outside));
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let mut c = Collector::disabled();
        let s = c.start();
        c.record("scan", "scan", s, BTreeMap::new());
        let mut b = c.buffer(1);
        let s = b.start();
        b.record("f", "function", s, BTreeMap::new());
        c.absorb(b.into_events());
        assert!(c.events().is_empty());
    }

    #[test]
    fn collector_absorbs_worker_buffers() {
        let mut c = Collector::enabled();
        let mut b1 = c.buffer(1);
        let mut b2 = c.buffer(2);
        b1.record("f1", "function", b1.start(), BTreeMap::new());
        b2.record("f2", "function", b2.start(), BTreeMap::new());
        c.absorb(b1.into_events());
        c.absorb(b2.into_events());
        assert_eq!(c.events().len(), 2);
        assert_eq!(c.events()[0].lane, 1);
        assert_eq!(c.events()[1].lane, 2);
    }

    #[test]
    fn jsonl_roundtrips_through_serde() {
        let events = vec![ev("scan", 0, 0, 100), ev("ssa", 0, 10, 50)];
        let jsonl = export_jsonl(&events);
        let back: Vec<SpanEvent> = jsonl
            .lines()
            .map(|l| serde_json::from_str::<SpanEvent>(l).expect("line parses"))
            .collect();
        assert_eq!(back, events);
    }

    #[test]
    fn chrome_export_is_valid_trace_event_json() {
        let events = vec![ev("scan", 0, 0, 100), ev("main", 1, 5, 20)];
        let doc: Value = serde_json::from_str(&export_chrome(&events)).expect("parses");
        let Some(Value::Arr(items)) = doc.get("traceEvents") else {
            panic!("missing traceEvents array")
        };
        assert_eq!(items.len(), 2);
        for item in items {
            assert_eq!(item.get("ph"), Some(&Value::Str("X".into())));
            for key in ["name", "ts", "dur", "pid", "tid", "args"] {
                assert!(item.get(key).is_some(), "missing {key}");
            }
        }
    }

    #[test]
    fn span_event_serializes_args_as_object() {
        let v = ev("x", 0, 1, 2).to_value();
        assert!(matches!(v.get("args"), Some(Value::Obj(_))));
    }
}
