//! Counters, gauges, and log2-bucketed histograms.
//!
//! Every metric in the registry carries *logical* quantities — work
//! units the analysis itself counts — so registries are bit-identical
//! across thread counts and host speeds. Wall-clock never enters here;
//! it lives in [`SpanEvent`](crate::SpanEvent)s only.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Number of histogram buckets: bucket 0 holds zeros, bucket *k* holds
/// values in `[2^(k-1), 2^k)`, and the last bucket absorbs everything
/// beyond `2^(HISTOGRAM_BUCKETS-2)`.
pub const HISTOGRAM_BUCKETS: usize = 33;

/// Bucket index for a value (fixed log2 buckets).
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// A histogram over fixed log2 buckets, with exact count/sum/min/max.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Log2 bucket occupancy (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { count: 0, sum: 0, min: 0, max: 0, buckets: vec![0; HISTOGRAM_BUCKETS] }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.buckets[bucket_of(v)] += 1;
    }

    /// Folds another histogram in.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`0.0..=1.0`): the upper bound of the
    /// bucket holding the `ceil(q·count)`-th observation, clamped to the
    /// exact observed min/max so tail quantiles stay honest.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = if i == 0 { 0 } else { (1u64 << i) - 1 };
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// A named collection of counters (monotonic sums), gauges (last-set
/// values), and [`Histogram`]s. Keys use dotted names
/// (`symex.blocks_executed`); `BTreeMap` keeps serialisation and
/// iteration order deterministic.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsRegistry {
    /// Monotonic counters.
    #[serde(default)]
    pub counters: BTreeMap<String, u64>,
    /// Point-in-time values.
    #[serde(default)]
    pub gauges: BTreeMap<String, u64>,
    /// Distributions over log2 buckets.
    #[serde(default)]
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Adds `by` to a counter, creating it at zero first.
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += by;
    }

    /// Reads a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets a gauge.
    pub fn set_gauge(&mut self, name: &str, value: u64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// Reads a gauge (0 when absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Records one observation into a named histogram.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms.entry(name.to_owned()).or_default().observe(value);
    }

    /// The named histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Folds another registry in: counters add, gauges take the other's
    /// value, histograms merge.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Folds another registry in *summing* gauges instead of overwriting
    /// them — the corpus-rollup semantics, where per-image point-in-time
    /// gauges (`image.functions`, `image.sinks`, …) are meaningful as
    /// corpus totals. Counters and histograms fold as in [`Self::merge`].
    /// Addition is order-insensitive, so a rollup built this way is
    /// bit-identical no matter how images were scheduled over workers.
    pub fn merge_summing_gauges(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_tracks_extremes_and_percentiles() {
        let mut h = Histogram::default();
        for v in [1u64, 2, 3, 100, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 1000);
        assert_eq!(h.sum, 1106);
        assert_eq!(h.percentile(1.0), 1000);
        assert!(h.percentile(0.5) <= 100);
        assert!(h.percentile(0.0) >= 1);
        assert!((h.mean() - 221.2).abs() < 1e-9);
    }

    #[test]
    fn histogram_merge_matches_direct_observation() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut direct = Histogram::default();
        for v in [5u64, 9, 0] {
            a.observe(v);
            direct.observe(v);
        }
        for v in [77u64, 2] {
            b.observe(v);
            direct.observe(v);
        }
        a.merge(&b);
        assert_eq!(a, direct);
    }

    #[test]
    fn histogram_merge_into_empty_preserves_min() {
        // The corpus-rollup cold path: the accumulator starts empty
        // (`min: 0` from Default). A naive merge would clamp min to 0;
        // the count==0 guard must instead adopt the other side wholesale.
        let mut empty = Histogram::default();
        let mut h = Histogram::default();
        h.observe(7);
        h.observe(12);
        empty.merge(&h);
        assert_eq!(empty, h, "merging into empty adopts the other histogram");
        assert_eq!(empty.min, 7, "min must not be clamped to the empty default 0");
    }

    #[test]
    fn histogram_merge_of_empty_is_identity() {
        let mut h = Histogram::default();
        h.observe(3);
        let before = h.clone();
        h.merge(&Histogram::default());
        assert_eq!(h, before, "merging an empty histogram changes nothing");
    }

    #[test]
    fn registry_counters_gauges_merge() {
        let mut r = MetricsRegistry::default();
        r.inc("x", 2);
        r.inc("x", 3);
        r.set_gauge("g", 7);
        r.observe("h", 4);
        assert_eq!(r.counter("x"), 5);
        assert_eq!(r.gauge("g"), 7);
        let mut other = MetricsRegistry::default();
        other.inc("x", 1);
        other.set_gauge("g", 9);
        other.observe("h", 8);
        r.merge(&other);
        assert_eq!(r.counter("x"), 6);
        assert_eq!(r.gauge("g"), 9);
        assert_eq!(r.histogram("h").unwrap().count, 2);
    }

    #[test]
    fn summing_merge_adds_gauges_and_is_order_insensitive() {
        let mut a = MetricsRegistry::default();
        a.inc("work", 10);
        a.set_gauge("image.functions", 4);
        a.observe("blocks", 8);
        let mut b = MetricsRegistry::default();
        b.inc("work", 5);
        b.set_gauge("image.functions", 3);
        b.observe("blocks", 2);

        let mut ab = MetricsRegistry::default();
        ab.merge_summing_gauges(&a);
        ab.merge_summing_gauges(&b);
        let mut ba = MetricsRegistry::default();
        ba.merge_summing_gauges(&b);
        ba.merge_summing_gauges(&a);

        assert_eq!(ab.counter("work"), 15);
        assert_eq!(ab.gauge("image.functions"), 7, "gauges sum, not overwrite");
        assert_eq!(ab.histogram("blocks").unwrap().count, 2);
        assert_eq!(ab, ba, "rollup is independent of fold order");
    }

    #[test]
    fn registry_roundtrips_through_json() {
        let mut r = MetricsRegistry::default();
        r.inc("a.b", 41);
        r.set_gauge("pool.nodes", 9000);
        r.observe("blocks", 17);
        let s = serde_json::to_string(&r).unwrap();
        let back: MetricsRegistry = serde_json::from_str(&s).unwrap();
        assert_eq!(back, r);
    }
}
