//! Fleet-level batch observability: a shared progress tracker, its
//! machine-readable heartbeat snapshot, and a TTY status line.
//!
//! A `dtaint batch` run over a corpus is long-lived; this module makes
//! it observable while it runs. Workers report image starts/finishes
//! into one [`FleetProgress`] (a mutex over plain counters — touched
//! once per image, never per block, so it cannot perturb analysis
//! throughput), and a reporter thread periodically takes a
//! [`Heartbeat`] snapshot to (a) render a `\r`-rewritten status line on
//! a TTY and (b) atomically rewrite a `status.json` file that external
//! monitors — and `dtaint status` — can poll.
//!
//! Everything here is **advisory**: heartbeats carry wall-clock rates
//! and ETAs and are explicitly excluded from the store's determinism
//! contract (`findings.json`/`corpus.json` byte-identity never depends
//! on them).

use serde::{Deserialize, Serialize};
use std::sync::Mutex;
use std::time::Instant;

/// Version stamp on [`Heartbeat`]; bump on schema changes.
pub const HEARTBEAT_VERSION: u32 = 1;

/// How one image's scan ended, as counted by the tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetOutcome {
    /// Scan completed (with or without findings).
    Ok,
    /// Scan failed with an error.
    Failed,
    /// Scan exceeded the deadline.
    Timeout,
}

/// Per-image cache traffic, reported at image completion.
#[derive(Debug, Clone, Copy, Default)]
pub struct ImageCacheStats {
    /// Per-function symbolic-summary cache hits.
    pub sym_hits: u64,
    /// Per-function symbolic-summary cache misses.
    pub sym_misses: u64,
    /// DDG slice cache hits.
    pub ddg_hits: u64,
    /// DDG slice cache misses.
    pub ddg_misses: u64,
    /// Cache entries invalidated by content/config drift.
    pub invalidations: u64,
}

/// One worker's slot in a heartbeat: what it is scanning and for how
/// long (`image: None` means idle or already drained).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerHeartbeat {
    /// Worker lane, 1-based (lane 0 is the batch driver).
    pub lane: u32,
    /// Image currently being scanned, if any.
    #[serde(default)]
    pub image: Option<String>,
    /// Milliseconds spent on that image so far.
    #[serde(default)]
    pub elapsed_ms: u64,
}

/// A point-in-time snapshot of a running (or finished) batch, written
/// atomically to `status.json`. All rates/ETAs are wall-clock and
/// advisory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Heartbeat {
    /// Schema version ([`HEARTBEAT_VERSION`]).
    pub v: u32,
    /// Pid of the batch process (cross-check against the store lock).
    pub pid: u32,
    /// `"running"` while the batch is in flight, `"done"` after commit.
    pub phase: String,
    /// The batch config tag (alias/cache settings).
    pub config: String,
    /// Total images in the corpus.
    pub total: usize,
    /// Images committed so far (fresh scans + resumed replays).
    pub done: usize,
    /// Of `done`, how many were replayed from the journal by `--resume`.
    pub resumed: usize,
    /// Committed images that scanned cleanly.
    pub ok: usize,
    /// Committed images that failed.
    pub failed: usize,
    /// Committed images that hit the deadline.
    pub timeouts: usize,
    /// Wall-clock seconds since the batch started.
    pub elapsed_secs: f64,
    /// Fresh (non-resumed) images committed per wall-clock second.
    pub images_per_sec: f64,
    /// Estimated seconds to completion, when the rate supports one.
    #[serde(default)]
    pub eta_secs: Option<u64>,
    /// Symbolic-summary cache hits across committed images.
    pub sym_hits: u64,
    /// Symbolic-summary cache misses across committed images.
    pub sym_misses: u64,
    /// DDG slice cache hits across committed images.
    pub ddg_hits: u64,
    /// DDG slice cache misses across committed images.
    pub ddg_misses: u64,
    /// Cache invalidations across committed images.
    #[serde(default)]
    pub invalidations: u64,
    /// Combined cache hit rate in `[0, 1]` (0 when no traffic).
    pub cache_hit_rate: f64,
    /// Per-worker current image + elapsed.
    pub workers: Vec<WorkerHeartbeat>,
}

impl Heartbeat {
    /// Fraction of hits over all cache lookups (0 when none).
    fn hit_rate(sym_hits: u64, sym_misses: u64, ddg_hits: u64, ddg_misses: u64) -> f64 {
        let hits = sym_hits + ddg_hits;
        let total = hits + sym_misses + ddg_misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// One-line human rendering for the TTY status line.
    pub fn render_line(&self) -> String {
        let pct =
            if self.total == 0 { 100.0 } else { 100.0 * self.done as f64 / self.total as f64 };
        let eta = match self.eta_secs {
            Some(s) => format!("ETA {}", format_secs(s)),
            None => "ETA --".to_owned(),
        };
        let mut line = format!(
            "batch {}/{} ({pct:.0}%) {:.2} img/s {eta} cache {:.0}%",
            self.done,
            self.total,
            self.images_per_sec,
            100.0 * self.cache_hit_rate,
        );
        for w in &self.workers {
            if let Some(img) = &w.image {
                line.push_str(&format!(
                    " [w{} {img} {}]",
                    w.lane,
                    format_secs(w.elapsed_ms / 1000)
                ));
            }
        }
        line
    }
}

/// `secs` as a compact `90s` / `4m05s` / `2h11m` string.
fn format_secs(secs: u64) -> String {
    if secs < 120 {
        format!("{secs}s")
    } else if secs < 7200 {
        format!("{}m{:02}s", secs / 60, secs % 60)
    } else {
        format!("{}h{:02}m", secs / 3600, (secs % 3600) / 60)
    }
}

/// Mutable progress state behind the [`FleetProgress`] mutex.
#[derive(Debug)]
struct FleetInner {
    done: usize,
    resumed: usize,
    ok: usize,
    failed: usize,
    timeouts: usize,
    cache: ImageCacheStats,
    /// Per-worker `(current image, start time)`.
    workers: Vec<(Option<String>, Instant)>,
}

/// Shared progress tracker for one batch run. Workers call
/// [`start_image`](FleetProgress::start_image) /
/// [`finish_image`](FleetProgress::finish_image); the driver notes
/// resumed replays and snapshots [`Heartbeat`]s.
#[derive(Debug)]
pub struct FleetProgress {
    started: Instant,
    pid: u32,
    config: String,
    total: usize,
    inner: Mutex<FleetInner>,
}

impl FleetProgress {
    /// A tracker for `total` images over `workers` worker lanes.
    pub fn new(total: usize, workers: usize, config: &str) -> FleetProgress {
        FleetProgress {
            started: Instant::now(),
            pid: std::process::id(),
            config: config.to_owned(),
            total,
            inner: Mutex::new(FleetInner {
                done: 0,
                resumed: 0,
                ok: 0,
                failed: 0,
                timeouts: 0,
                cache: ImageCacheStats::default(),
                workers: vec![(None, Instant::now()); workers],
            }),
        }
    }

    /// Records one image replayed from the journal (counts toward
    /// `done` but not toward the throughput rate).
    pub fn note_resumed(&self, outcome: FleetOutcome) {
        let mut g = self.inner.lock().unwrap();
        g.done += 1;
        g.resumed += 1;
        match outcome {
            FleetOutcome::Ok => g.ok += 1,
            FleetOutcome::Failed => g.failed += 1,
            FleetOutcome::Timeout => g.timeouts += 1,
        }
    }

    /// Marks worker `worker` (0-based) as scanning `image`.
    pub fn start_image(&self, worker: usize, image: &str) {
        let mut g = self.inner.lock().unwrap();
        if let Some(slot) = g.workers.get_mut(worker) {
            *slot = (Some(image.to_owned()), Instant::now());
        }
    }

    /// Records a fresh scan finishing on worker `worker`.
    pub fn finish_image(&self, worker: usize, outcome: FleetOutcome, cache: &ImageCacheStats) {
        let mut g = self.inner.lock().unwrap();
        if let Some(slot) = g.workers.get_mut(worker) {
            slot.0 = None;
        }
        g.done += 1;
        match outcome {
            FleetOutcome::Ok => g.ok += 1,
            FleetOutcome::Failed => g.failed += 1,
            FleetOutcome::Timeout => g.timeouts += 1,
        }
        g.cache.sym_hits += cache.sym_hits;
        g.cache.sym_misses += cache.sym_misses;
        g.cache.ddg_hits += cache.ddg_hits;
        g.cache.ddg_misses += cache.ddg_misses;
        g.cache.invalidations += cache.invalidations;
    }

    /// A point-in-time snapshot with the given `phase`.
    pub fn heartbeat(&self, phase: &str) -> Heartbeat {
        let g = self.inner.lock().unwrap();
        let elapsed = self.started.elapsed().as_secs_f64();
        let fresh = g.done.saturating_sub(g.resumed);
        let rate = if elapsed > 0.0 { fresh as f64 / elapsed } else { 0.0 };
        let remaining = self.total.saturating_sub(g.done);
        let eta_secs = if remaining == 0 {
            Some(0)
        } else if rate > 0.0 {
            Some((remaining as f64 / rate).ceil() as u64)
        } else {
            None
        };
        let workers = g
            .workers
            .iter()
            .enumerate()
            .map(|(i, (image, since))| WorkerHeartbeat {
                lane: i as u32 + 1,
                image: image.clone(),
                elapsed_ms: if image.is_some() { since.elapsed().as_millis() as u64 } else { 0 },
            })
            .collect();
        Heartbeat {
            v: HEARTBEAT_VERSION,
            pid: self.pid,
            phase: phase.to_owned(),
            config: self.config.clone(),
            total: self.total,
            done: g.done,
            resumed: g.resumed,
            ok: g.ok,
            failed: g.failed,
            timeouts: g.timeouts,
            elapsed_secs: elapsed,
            images_per_sec: rate,
            eta_secs,
            sym_hits: g.cache.sym_hits,
            sym_misses: g.cache.sym_misses,
            ddg_hits: g.cache.ddg_hits,
            ddg_misses: g.cache.ddg_misses,
            invalidations: g.cache.invalidations,
            cache_hit_rate: Heartbeat::hit_rate(
                g.cache.sym_hits,
                g.cache.sym_misses,
                g.cache.ddg_hits,
                g.cache.ddg_misses,
            ),
            workers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_counts_outcomes_and_cache() {
        let p = FleetProgress::new(4, 2, "alias=sse;cache=on");
        p.note_resumed(FleetOutcome::Ok);
        p.start_image(0, "alpha");
        p.start_image(1, "bravo");
        let hb = p.heartbeat("running");
        assert_eq!(hb.v, HEARTBEAT_VERSION);
        assert_eq!(hb.total, 4);
        assert_eq!(hb.done, 1);
        assert_eq!(hb.resumed, 1);
        assert_eq!(hb.workers.len(), 2);
        assert_eq!(hb.workers[0].image.as_deref(), Some("alpha"));
        assert_eq!(hb.workers[0].lane, 1);

        p.finish_image(
            0,
            FleetOutcome::Ok,
            &ImageCacheStats { sym_hits: 3, sym_misses: 1, ..Default::default() },
        );
        p.finish_image(1, FleetOutcome::Timeout, &ImageCacheStats::default());
        let hb = p.heartbeat("running");
        assert_eq!(hb.done, 3);
        assert_eq!(hb.ok, 2);
        assert_eq!(hb.timeouts, 1);
        assert_eq!(hb.sym_hits, 3);
        assert!((hb.cache_hit_rate - 0.75).abs() < 1e-9);
        assert!(hb.workers.iter().all(|w| w.image.is_none()), "slots cleared on finish");
    }

    #[test]
    fn eta_is_zero_when_done_and_absent_without_rate() {
        let p = FleetProgress::new(2, 1, "cfg");
        // Only resumed images: fresh rate is 0, ETA unknown.
        p.note_resumed(FleetOutcome::Ok);
        let hb = p.heartbeat("running");
        assert_eq!(hb.eta_secs, None);
        assert_eq!(hb.images_per_sec, 0.0);
        p.note_resumed(FleetOutcome::Ok);
        let hb = p.heartbeat("done");
        assert_eq!(hb.eta_secs, Some(0), "nothing remaining");
        assert_eq!(hb.phase, "done");
    }

    #[test]
    fn heartbeat_roundtrips_through_json() {
        let p = FleetProgress::new(3, 2, "alias=sse;cache=on");
        p.start_image(1, "zulu");
        let hb = p.heartbeat("running");
        let s = serde_json::to_string(&hb).unwrap();
        let back: Heartbeat = serde_json::from_str(&s).unwrap();
        assert_eq!(back, hb);
    }

    #[test]
    fn render_line_shows_progress_and_workers() {
        let p = FleetProgress::new(10, 2, "cfg");
        p.start_image(0, "alpha");
        p.finish_image(1, FleetOutcome::Ok, &ImageCacheStats::default());
        // Re-mark worker 1 busy after the finish cleared it.
        p.start_image(1, "bravo");
        let line = p.heartbeat("running").render_line();
        assert!(line.contains("1/10"), "line: {line}");
        assert!(line.contains("ETA"), "line: {line}");
        assert!(line.contains("alpha"), "line: {line}");
        assert!(line.contains("bravo"), "line: {line}");
    }

    #[test]
    fn format_secs_is_compact() {
        assert_eq!(format_secs(45), "45s");
        assert_eq!(format_secs(245), "4m05s");
        assert_eq!(format_secs(7860), "2h11m");
    }
}
