//! Prometheus text-exposition export for a [`MetricsRegistry`].
//!
//! Renders the registry in the textfile-collector format scraped by
//! `node_exporter`: every sample preceded by a `# TYPE` line, counters
//! with the `_total` suffix, histograms as cumulative `_bucket{le=…}`
//! series plus `_sum`/`_count`. The log2 bucket layout maps exactly:
//! bucket *k* of [`Histogram`](crate::Histogram) holds values in
//! `[2^(k-1), 2^k)`, so its inclusive upper bound is `2^k − 1` (bucket
//! 0, the zeros bucket, gets `le="0"`); the final overflow bucket folds
//! into `+Inf`.
//!
//! Only integers ever appear — the registry is all logical counters —
//! so rendering is exact and deterministic.

use crate::metrics::{Histogram, MetricsRegistry, HISTOGRAM_BUCKETS};

/// Rewrites a dotted registry key into a legal Prometheus metric name:
/// every character outside `[a-zA-Z0-9_:]` becomes `_`, and a leading
/// digit is prefixed with `_`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else if ok {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn push_histogram(out: &mut String, name: &str, h: &Histogram) {
    out.push_str(&format!("# TYPE {name} histogram\n"));
    let mut cum = 0u64;
    for (k, &n) in h.buckets.iter().enumerate() {
        cum += n;
        if k == HISTOGRAM_BUCKETS - 1 {
            break; // overflow bucket folds into +Inf below
        }
        let le = if k == 0 { 0 } else { (1u64 << k) - 1 };
        out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cum}\n"));
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
    out.push_str(&format!("{name}_sum {}\n", h.sum));
    out.push_str(&format!("{name}_count {}\n", h.count));
}

/// Renders `reg` in the Prometheus text exposition format. Every metric
/// name is `prefix` + the sanitized registry key; counters additionally
/// get the conventional `_total` suffix.
pub fn export_prometheus(reg: &MetricsRegistry, prefix: &str) -> String {
    let mut out = String::new();
    for (k, v) in &reg.counters {
        let name = format!("{prefix}{}_total", sanitize_metric_name(k));
        out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
    }
    for (k, v) in &reg.gauges {
        let name = format!("{prefix}{}", sanitize_metric_name(k));
        out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
    }
    for (k, h) in &reg.histograms {
        let name = format!("{prefix}{}", sanitize_metric_name(k));
        push_histogram(&mut out, &name, h);
    }
    out
}

/// A minimal textfile-format lint: every sample line must use a metric
/// name declared by a preceding `# TYPE` line (histogram samples match
/// their base name via the `_bucket`/`_sum`/`_count` suffixes), and
/// `# TYPE` values must be known. Returns the first violation.
///
/// # Errors
///
/// A description of the first malformed line.
pub fn lint_textfile(text: &str) -> Result<(), String> {
    let mut typed: Vec<String> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().ok_or(format!("line {}: TYPE without name", lineno + 1))?;
            let kind = it.next().ok_or(format!("line {}: TYPE without kind", lineno + 1))?;
            if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                return Err(format!("line {}: unknown TYPE kind {kind}", lineno + 1));
            }
            typed.push(name.to_owned());
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        let name_end = line.find(['{', ' ']).unwrap_or(line.len());
        let name = &line[..name_end];
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .unwrap_or(name);
        if !typed.iter().any(|t| t == name || t == base) {
            return Err(format!("line {}: sample {name} has no preceding # TYPE", lineno + 1));
        }
        if line[name_end..].trim_start_matches(|c: char| c != ' ').trim().is_empty() {
            return Err(format!("line {}: sample {name} has no value", lineno + 1));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_replaces_dots_and_leading_digits() {
        assert_eq!(sanitize_metric_name("symex.blocks_executed"), "symex_blocks_executed");
        assert_eq!(sanitize_metric_name("a-b.c"), "a_b_c");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
    }

    #[test]
    fn export_annotates_every_sample_and_lints_clean() {
        let mut reg = MetricsRegistry::default();
        reg.inc("symex.blocks_executed", 1234);
        reg.set_gauge("image.functions", 50);
        reg.observe("ddg.fuel_per_fn", 0);
        reg.observe("ddg.fuel_per_fn", 5);
        reg.observe("ddg.fuel_per_fn", 900);
        let text = export_prometheus(&reg, "dtaint_");
        assert!(text.contains("# TYPE dtaint_symex_blocks_executed_total counter\n"));
        assert!(text.contains("dtaint_symex_blocks_executed_total 1234\n"));
        assert!(text.contains("# TYPE dtaint_image_functions gauge\n"));
        assert!(text.contains("# TYPE dtaint_ddg_fuel_per_fn histogram\n"));
        assert!(text.contains("dtaint_ddg_fuel_per_fn_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("dtaint_ddg_fuel_per_fn_sum 905\n"));
        assert!(text.contains("dtaint_ddg_fuel_per_fn_count 3\n"));
        lint_textfile(&text).expect("exporter output passes its own lint");
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_log2_bounds() {
        let mut reg = MetricsRegistry::default();
        reg.observe("h", 0); // bucket 0 → le="0"
        reg.observe("h", 1); // bucket 1 → le="1"
        reg.observe("h", 3); // bucket 2 → le="3"
        let text = export_prometheus(&reg, "");
        assert!(text.contains("h_bucket{le=\"0\"} 1\n"), "text: {text}");
        assert!(text.contains("h_bucket{le=\"1\"} 2\n"), "text: {text}");
        assert!(text.contains("h_bucket{le=\"3\"} 3\n"), "text: {text}");
        assert!(text.contains("h_bucket{le=\"7\"} 3\n"), "cumulative beyond max");
        assert!(text.contains("h_bucket{le=\"+Inf\"} 3\n"));
    }

    #[test]
    fn lint_rejects_untyped_samples_and_bad_kinds() {
        assert!(lint_textfile("orphan_metric 3\n").is_err());
        assert!(lint_textfile("# TYPE m widget\nm 3\n").is_err());
        assert!(lint_textfile("# TYPE m gauge\nm 3\n").is_ok());
        assert!(lint_textfile("# TYPE h histogram\nh_bucket{le=\"+Inf\"} 0\nh_sum 0\nh_count 0\n")
            .is_ok());
    }
}
