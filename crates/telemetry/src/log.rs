//! A minimal leveled log facade.
//!
//! Library crates and the CLI route status output through this instead
//! of bare `eprintln!`, so one process-wide verbosity knob (set from
//! `--quiet`/`-v`) governs everything. Messages go to stderr; analysis
//! *results* never go through here — stdout stays machine-parseable.

use std::sync::atomic::{AtomicU8, Ordering};

/// Message severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable problems; always printed (even under `--quiet`).
    Error = 0,
    /// Suspicious-but-survivable conditions.
    Warn = 1,
    /// Progress and status notes (the default ceiling).
    Info = 2,
    /// Diagnostic chatter (`-v`).
    Debug = 3,
}

impl Level {
    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            _ => Level::Debug,
        }
    }

    /// The lowercase tag printed before each message.
    pub fn tag(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

static VERBOSITY: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// Sets the process-wide verbosity ceiling: messages above it are
/// dropped.
pub fn set_verbosity(level: Level) {
    VERBOSITY.store(level as u8, Ordering::Relaxed);
}

/// The current verbosity ceiling.
pub fn verbosity() -> Level {
    Level::from_u8(VERBOSITY.load(Ordering::Relaxed))
}

/// True when a message at `level` would be printed.
pub fn enabled(level: Level) -> bool {
    level <= verbosity()
}

/// Writes one message to stderr when `level` clears the ceiling.
pub fn log(level: Level, msg: &str) {
    if enabled(level) {
        // Errors keep their bare form (they may be multi-line usage
        // text); lower severities get a level tag.
        if level == Level::Error {
            eprintln!("{msg}");
        } else {
            eprintln!("{}: {msg}", level.tag());
        }
    }
}

/// [`log`] at [`Level::Error`].
pub fn error(msg: &str) {
    log(Level::Error, msg);
}

/// [`log`] at [`Level::Warn`].
pub fn warn(msg: &str) {
    log(Level::Warn, msg);
}

/// [`log`] at [`Level::Info`].
pub fn info(msg: &str) {
    log(Level::Info, msg);
}

/// [`log`] at [`Level::Debug`].
pub fn debug(msg: &str) {
    log(Level::Debug, msg);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbosity_gates_levels() {
        let saved = verbosity();
        set_verbosity(Level::Warn);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_verbosity(Level::Debug);
        assert!(enabled(Level::Debug));
        set_verbosity(saved);
    }

    #[test]
    fn levels_are_ordered_and_tagged() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert_eq!(Level::Warn.tag(), "warn");
    }
}
