//! Flat memory for the concrete emulator.
//!
//! Sections of the loaded binary are mapped at their link addresses; a
//! stack and a bump-allocated heap are added. All accesses are
//! bounds-checked — an out-of-region access is a [`Fault`], which is how
//! control-flow hijacks surface (a smashed return address sends the CPU
//! to unmapped space).

use crate::Fault;
use dtaint_fwbin::{Binary, SectionKind};

/// Base address of the emulated stack (grows down).
pub const STACK_TOP: u32 = 0x7fff_0000;
/// Stack size in bytes.
pub const STACK_SIZE: u32 = 1 << 20;
/// Base address of the emulated heap.
pub const HEAP_BASE: u32 = 0x5000_0000;
/// Heap size in bytes.
pub const HEAP_SIZE: u32 = 4 << 20;

struct Region {
    name: &'static str,
    base: u32,
    data: Vec<u8>,
    writable: bool,
}

/// The emulated address space.
pub struct Mem {
    regions: Vec<Region>,
    heap_cursor: u32,
}

impl Mem {
    /// Maps a binary's sections plus fresh stack and heap regions.
    pub fn new(bin: &Binary) -> Mem {
        let mut regions = Vec::new();
        for s in &bin.sections {
            let mut data = s.data.clone();
            data.resize(s.size as usize, 0);
            let writable = matches!(s.kind, SectionKind::Data | SectionKind::Bss);
            let name: &'static str = match s.kind {
                SectionKind::Text => "text",
                SectionKind::Plt => "plt",
                SectionKind::RoData => "rodata",
                SectionKind::Data => "data",
                SectionKind::Bss => "bss",
            };
            regions.push(Region { name, base: s.addr, data, writable });
        }
        regions.push(Region {
            name: "stack",
            base: STACK_TOP - STACK_SIZE,
            data: vec![0; STACK_SIZE as usize],
            writable: true,
        });
        regions.push(Region {
            name: "heap",
            base: HEAP_BASE,
            data: vec![0; HEAP_SIZE as usize],
            writable: true,
        });
        Mem { regions, heap_cursor: HEAP_BASE }
    }

    fn region(&self, addr: u32) -> Option<usize> {
        self.regions.iter().position(|r| {
            addr >= r.base && (addr - r.base) as usize <= r.data.len().saturating_sub(1)
        })
    }

    /// Allocates `size` bytes on the heap (8-byte aligned). Returns the
    /// address, or `None` when the heap is exhausted.
    pub fn alloc(&mut self, size: u32) -> Option<u32> {
        let aligned = (size + 7) & !7;
        if self.heap_cursor + aligned > HEAP_BASE + HEAP_SIZE {
            return None;
        }
        let p = self.heap_cursor;
        self.heap_cursor += aligned.max(8);
        Some(p)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`Fault::UnmappedLoad`] outside every region.
    pub fn load8(&self, addr: u32) -> Result<u8, Fault> {
        let i = self.region(addr).ok_or(Fault::UnmappedLoad { addr })?;
        let r = &self.regions[i];
        Ok(r.data[(addr - r.base) as usize])
    }

    /// Reads a little-endian 16-bit halfword.
    ///
    /// # Errors
    ///
    /// [`Fault::UnmappedLoad`] when any byte is outside mapped space.
    pub fn load16(&self, addr: u32) -> Result<u16, Fault> {
        let lo = self.load8(addr)? as u16;
        let hi = self.load8(addr.wrapping_add(1))? as u16;
        Ok(lo | (hi << 8))
    }

    /// Writes a little-endian 16-bit halfword.
    ///
    /// # Errors
    ///
    /// As [`Mem::store8`].
    pub fn store16(&mut self, addr: u32, v: u16) -> Result<(), Fault> {
        self.store8(addr, v as u8)?;
        self.store8(addr.wrapping_add(1), (v >> 8) as u8)
    }

    /// Reads a little-endian 32-bit word.
    ///
    /// # Errors
    ///
    /// [`Fault::UnmappedLoad`] when any byte is outside mapped space.
    pub fn load32(&self, addr: u32) -> Result<u32, Fault> {
        let mut b = [0u8; 4];
        for (k, out) in b.iter_mut().enumerate() {
            *out = self.load8(addr.wrapping_add(k as u32))?;
        }
        Ok(u32::from_le_bytes(b))
    }

    /// Writes one byte.
    ///
    /// # Errors
    ///
    /// [`Fault::UnmappedStore`] outside every region,
    /// [`Fault::WriteToReadOnly`] into text/rodata.
    pub fn store8(&mut self, addr: u32, v: u8) -> Result<(), Fault> {
        let i = self.region(addr).ok_or(Fault::UnmappedStore { addr })?;
        let r = &mut self.regions[i];
        if !r.writable {
            return Err(Fault::WriteToReadOnly { addr, region: r.name });
        }
        r.data[(addr - r.base) as usize] = v;
        Ok(())
    }

    /// Writes a little-endian 32-bit word.
    ///
    /// # Errors
    ///
    /// As [`Mem::store8`].
    pub fn store32(&mut self, addr: u32, v: u32) -> Result<(), Fault> {
        for (k, byte) in v.to_le_bytes().into_iter().enumerate() {
            self.store8(addr.wrapping_add(k as u32), byte)?;
        }
        Ok(())
    }

    /// Copies a byte slice into memory.
    ///
    /// # Errors
    ///
    /// As [`Mem::store8`]; partial writes are possible on fault.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) -> Result<(), Fault> {
        for (k, &b) in bytes.iter().enumerate() {
            self.store8(addr.wrapping_add(k as u32), b)?;
        }
        Ok(())
    }

    /// Reads a NUL-terminated string (capped at 64 KiB).
    ///
    /// # Errors
    ///
    /// [`Fault::UnmappedLoad`] when the string runs off mapped space.
    pub fn read_cstr(&self, addr: u32) -> Result<Vec<u8>, Fault> {
        let mut out = Vec::new();
        for k in 0..65536u32 {
            let b = self.load8(addr.wrapping_add(k))?;
            if b == 0 {
                break;
            }
            out.push(b);
        }
        Ok(out)
    }

    /// True when `addr` is inside the mapped stack.
    pub fn in_stack(&self, addr: u32) -> bool {
        (STACK_TOP - STACK_SIZE..STACK_TOP).contains(&addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtaint_fwbin::asm::Assembler;
    use dtaint_fwbin::link::BinaryBuilder;
    use dtaint_fwbin::Arch;

    fn mem() -> Mem {
        let mut a = Assembler::new(Arch::Arm32e);
        a.ret();
        let mut b = BinaryBuilder::new(Arch::Arm32e);
        b.add_function("f", a);
        b.add_cstring("s", "hello");
        b.add_bss("g", 32);
        Mem::new(&b.link().unwrap())
    }

    #[test]
    fn roundtrip_in_writable_regions() {
        let mut m = mem();
        let sp = STACK_TOP - 64;
        m.store32(sp, 0xdead_beef).unwrap();
        assert_eq!(m.load32(sp).unwrap(), 0xdead_beef);
        m.store8(sp, 0x42).unwrap();
        assert_eq!(m.load8(sp).unwrap(), 0x42);
    }

    #[test]
    fn text_is_read_only() {
        let mut m = mem();
        assert!(matches!(
            m.store8(dtaint_fwbin::link::TEXT_BASE, 0),
            Err(Fault::WriteToReadOnly { .. })
        ));
    }

    #[test]
    fn unmapped_accesses_fault() {
        let m = mem();
        assert!(matches!(m.load32(0x4141_4141), Err(Fault::UnmappedLoad { .. })));
        let mut m = mem();
        assert!(matches!(m.store32(0x1, 0), Err(Fault::UnmappedStore { .. })));
    }

    #[test]
    fn cstr_reads_from_rodata() {
        let m = mem();
        // Find the rodata region by scanning for 'h'.
        let mut found = false;
        for addr in 0x10000..0x12000u32 {
            if m.load8(addr) == Ok(b'h') && m.read_cstr(addr) == Ok(b"hello".to_vec()) {
                found = true;
                break;
            }
        }
        assert!(found);
    }

    #[test]
    fn heap_allocations_are_disjoint() {
        let mut m = mem();
        let a = m.alloc(100).unwrap();
        let b = m.alloc(100).unwrap();
        assert!(b >= a + 100);
        m.store32(a, 1).unwrap();
        m.store32(b, 2).unwrap();
        assert_eq!(m.load32(a).unwrap(), 1);
    }

    #[test]
    fn bss_reads_back_zero_and_is_writable() {
        let mut m = mem();
        // bss is the last binary section; find any writable non-stack.
        for addr in 0x10000..0x12000u32 {
            if m.load8(addr).is_ok() && m.store8(addr, 7).is_ok() {
                assert_eq!(m.load8(addr).unwrap(), 7);
                return;
            }
        }
        panic!("no writable data region found");
    }
}
