//! The concrete CPU: register file and single-step execution for both
//! dialects.

use crate::mem::Mem;
use crate::Fault;
use dtaint_fwbin::arm::{ArmIns, Cond};
use dtaint_fwbin::mips::MipsIns;
use dtaint_fwbin::{Arch, Reg, INS_SIZE};

/// Concrete machine state.
#[derive(Debug, Clone)]
pub struct Cpu {
    /// Guest architecture.
    pub arch: Arch,
    /// General-purpose registers (16 used on ARM, 32 on MIPS).
    pub regs: [u32; 32],
    /// Program counter.
    pub pc: u32,
    /// Operands of the latest ARM `CMP` (flags surrogate).
    pub last_cmp: (i32, i32),
}

/// What a single step asked the machine to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Keep executing at the (already updated) PC.
    Continue,
    /// A call: PC is the callee, the link register holds the return.
    Call,
    /// A return or indirect jump through a register.
    Jump,
}

impl Cpu {
    /// A CPU at `entry` with an empty register file.
    pub fn new(arch: Arch, entry: u32) -> Cpu {
        Cpu { arch, regs: [0; 32], pc: entry, last_cmp: (0, 0) }
    }

    /// Reads a register (MIPS `$zero` reads 0).
    pub fn get(&self, r: Reg) -> u32 {
        if self.arch == Arch::Mips32e && r == Reg::ZERO {
            0
        } else {
            self.regs[r.0 as usize]
        }
    }

    /// Writes a register (writes to MIPS `$zero` are dropped).
    pub fn set(&mut self, r: Reg, v: u32) {
        if self.arch == Arch::Mips32e && r == Reg::ZERO {
            return;
        }
        self.regs[r.0 as usize] = v;
    }

    fn cond(&self, c: Cond) -> bool {
        let (l, r) = self.last_cmp;
        match c {
            Cond::Eq => l == r,
            Cond::Ne => l != r,
            Cond::Lt => l < r,
            Cond::Ge => l >= r,
            Cond::Le => l <= r,
            Cond::Gt => l > r,
            Cond::Al => true,
        }
    }

    /// Executes one instruction at the current PC.
    ///
    /// # Errors
    ///
    /// Propagates memory faults and undecodable instructions
    /// ([`Fault::Undecodable`]).
    pub fn step(&mut self, mem: &mut Mem) -> Result<Step, Fault> {
        let pc = self.pc;
        let word = mem.load32(pc).map_err(|_| Fault::BadFetch { pc })?;
        match self.arch {
            Arch::Arm32e => self.step_arm(word, pc, mem),
            Arch::Mips32e => self.step_mips(word, pc, mem),
        }
    }

    fn step_arm(&mut self, word: u32, pc: u32, mem: &mut Mem) -> Result<Step, Fault> {
        use ArmIns::*;
        let ins = ArmIns::decode(word, pc).map_err(|_| Fault::Undecodable { pc })?;
        let next = pc + INS_SIZE;
        self.pc = next;
        match ins {
            Nop => {}
            MovR { rd, rm } => self.set(rd, self.get(rm)),
            MovI { rd, imm } => self.set(rd, imm as u32),
            MovT { rd, imm } => {
                let low = self.get(rd) & 0xffff;
                self.set(rd, ((imm as u32) << 16) | low);
            }
            AddR { rd, rn, rm } => self.set(rd, self.get(rn).wrapping_add(self.get(rm))),
            AddI { rd, rn, imm } => self.set(rd, self.get(rn).wrapping_add(imm as i32 as u32)),
            SubR { rd, rn, rm } => self.set(rd, self.get(rn).wrapping_sub(self.get(rm))),
            SubI { rd, rn, imm } => self.set(rd, self.get(rn).wrapping_sub(imm as i32 as u32)),
            Mul { rd, rn, rm } => self.set(rd, self.get(rn).wrapping_mul(self.get(rm))),
            AndR { rd, rn, rm } => self.set(rd, self.get(rn) & self.get(rm)),
            OrrR { rd, rn, rm } => self.set(rd, self.get(rn) | self.get(rm)),
            EorR { rd, rn, rm } => self.set(rd, self.get(rn) ^ self.get(rm)),
            LslI { rd, rn, sh } => self.set(rd, self.get(rn) << sh),
            LsrI { rd, rn, sh } => self.set(rd, self.get(rn) >> sh),
            LslR { rd, rn, rm } => self.set(rd, self.get(rn) << (self.get(rm) & 31)),
            LsrR { rd, rn, rm } => self.set(rd, self.get(rn) >> (self.get(rm) & 31)),
            CmpR { rn, rm } => self.last_cmp = (self.get(rn) as i32, self.get(rm) as i32),
            CmpI { rn, imm } => self.last_cmp = (self.get(rn) as i32, imm as i32),
            Ldr { rt, rn, off } => {
                let a = self.get(rn).wrapping_add(off as i32 as u32);
                let v = mem.load32(a)?;
                self.set(rt, v);
            }
            Str { rt, rn, off } => {
                let a = self.get(rn).wrapping_add(off as i32 as u32);
                mem.store32(a, self.get(rt))?;
            }
            Ldrb { rt, rn, off } => {
                let a = self.get(rn).wrapping_add(off as i32 as u32);
                let v = mem.load8(a)?;
                self.set(rt, v as u32);
            }
            Strb { rt, rn, off } => {
                let a = self.get(rn).wrapping_add(off as i32 as u32);
                mem.store8(a, self.get(rt) as u8)?;
            }
            Ldrh { rt, rn, off } => {
                let a = self.get(rn).wrapping_add(off as i32 as u32);
                let v = mem.load16(a)?;
                self.set(rt, v as u32);
            }
            Strh { rt, rn, off } => {
                let a = self.get(rn).wrapping_add(off as i32 as u32);
                mem.store16(a, self.get(rt) as u16)?;
            }
            Push { mask } => {
                let regs: Vec<Reg> = (0..16).filter(|i| mask & (1 << i) != 0).map(Reg).collect();
                let n = regs.len() as u32;
                let base = self.get(Reg::SP).wrapping_sub(4 * n);
                for (k, r) in regs.iter().enumerate() {
                    mem.store32(base + 4 * k as u32, self.get(*r))?;
                }
                self.set(Reg::SP, base);
            }
            Pop { mask } => {
                let regs: Vec<Reg> = (0..16).filter(|i| mask & (1 << i) != 0).map(Reg).collect();
                let base = self.get(Reg::SP);
                for (k, r) in regs.iter().enumerate() {
                    let v = mem.load32(base + 4 * k as u32)?;
                    self.set(*r, v);
                }
                self.set(Reg::SP, base + 4 * regs.len() as u32);
            }
            B { cond, off } => {
                if self.cond(cond) {
                    self.pc = (next as i64 + off as i64 * 4) as u32;
                }
            }
            Bl { off } => {
                self.set(Reg::LR, next);
                self.pc = (next as i64 + off as i64 * 4) as u32;
                return Ok(Step::Call);
            }
            Blx { rm } => {
                let target = self.get(rm);
                self.set(Reg::LR, next);
                self.pc = target;
                return Ok(Step::Call);
            }
            Bx { rm } => {
                self.pc = self.get(rm);
                return Ok(Step::Jump);
            }
        }
        Ok(Step::Continue)
    }

    fn step_mips(&mut self, word: u32, pc: u32, mem: &mut Mem) -> Result<Step, Fault> {
        use MipsIns::*;
        let ins = MipsIns::decode(word, pc).map_err(|_| Fault::Undecodable { pc })?;
        let next = pc + INS_SIZE;
        self.pc = next;
        match ins {
            Nop => {}
            Addu { rd, rs, rt } => self.set(rd, self.get(rs).wrapping_add(self.get(rt))),
            Addiu { rt, rs, imm } => self.set(rt, self.get(rs).wrapping_add(imm as i32 as u32)),
            Subu { rd, rs, rt } => self.set(rd, self.get(rs).wrapping_sub(self.get(rt))),
            And { rd, rs, rt } => self.set(rd, self.get(rs) & self.get(rt)),
            Andi { rt, rs, imm } => self.set(rt, self.get(rs) & imm as u32),
            Or { rd, rs, rt } => self.set(rd, self.get(rs) | self.get(rt)),
            Ori { rt, rs, imm } => self.set(rt, self.get(rs) | imm as u32),
            Xor { rd, rs, rt } => self.set(rd, self.get(rs) ^ self.get(rt)),
            Sll { rd, rt, sh } => self.set(rd, self.get(rt) << sh),
            Srl { rd, rt, sh } => self.set(rd, self.get(rt) >> sh),
            Mul { rd, rs, rt } => self.set(rd, self.get(rs).wrapping_mul(self.get(rt))),
            Slt { rd, rs, rt } => {
                self.set(rd, ((self.get(rs) as i32) < (self.get(rt) as i32)) as u32)
            }
            Slti { rt, rs, imm } => self.set(rt, ((self.get(rs) as i32) < imm as i32) as u32),
            Lui { rt, imm } => self.set(rt, (imm as u32) << 16),
            Lw { rt, base, off } => {
                let a = self.get(base).wrapping_add(off as i32 as u32);
                let v = mem.load32(a)?;
                self.set(rt, v);
            }
            Sw { rt, base, off } => {
                let a = self.get(base).wrapping_add(off as i32 as u32);
                mem.store32(a, self.get(rt))?;
            }
            Lb { rt, base, off } => {
                let a = self.get(base).wrapping_add(off as i32 as u32);
                let v = mem.load8(a)?;
                self.set(rt, v as u32);
            }
            Sb { rt, base, off } => {
                let a = self.get(base).wrapping_add(off as i32 as u32);
                mem.store8(a, self.get(rt) as u8)?;
            }
            Lh { rt, base, off } => {
                let a = self.get(base).wrapping_add(off as i32 as u32);
                let v = mem.load16(a)?;
                self.set(rt, v as u32);
            }
            Sh { rt, base, off } => {
                let a = self.get(base).wrapping_add(off as i32 as u32);
                mem.store16(a, self.get(rt) as u16)?;
            }
            Beq { rs, rt, off } => {
                if self.get(rs) == self.get(rt) {
                    self.pc = (next as i64 + off as i64 * 4) as u32;
                }
            }
            Bne { rs, rt, off } => {
                if self.get(rs) != self.get(rt) {
                    self.pc = (next as i64 + off as i64 * 4) as u32;
                }
            }
            Blez { rs, off } => {
                if self.get(rs) as i32 <= 0 {
                    self.pc = (next as i64 + off as i64 * 4) as u32;
                }
            }
            Bgtz { rs, off } => {
                if self.get(rs) as i32 > 0 {
                    self.pc = (next as i64 + off as i64 * 4) as u32;
                }
            }
            J { off } => {
                self.pc = (next as i64 + off as i64 * 4) as u32;
            }
            Jal { off } => {
                self.set(Reg::RA, next);
                self.pc = (next as i64 + off as i64 * 4) as u32;
                return Ok(Step::Call);
            }
            Jalr { rs } => {
                let t = self.get(rs);
                self.set(Reg::RA, next);
                self.pc = t;
                return Ok(Step::Call);
            }
            Jr { rs } => {
                self.pc = self.get(rs);
                return Ok(Step::Jump);
            }
        }
        Ok(Step::Continue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtaint_fwbin::asm::Assembler;
    use dtaint_fwbin::link::BinaryBuilder;

    fn setup(arch: Arch, f: impl FnOnce(&mut Assembler)) -> (Cpu, Mem, u32) {
        let mut a = Assembler::new(arch);
        f(&mut a);
        let mut b = BinaryBuilder::new(arch);
        b.add_function("f", a);
        let bin = b.link().unwrap();
        let entry = bin.function("f").unwrap().addr;
        let mut cpu = Cpu::new(arch, entry);
        cpu.set(arch.sp(), crate::mem::STACK_TOP - 64);
        (cpu, Mem::new(&bin), entry)
    }

    #[test]
    fn arm_arithmetic_and_flags() {
        let (mut cpu, mut mem, _) = setup(Arch::Arm32e, |a| {
            a.arm(ArmIns::MovI { rd: Reg(0), imm: 10 });
            a.arm(ArmIns::MovI { rd: Reg(1), imm: 3 });
            a.arm(ArmIns::SubR { rd: Reg(2), rn: Reg(0), rm: Reg(1) });
            a.arm(ArmIns::CmpI { rn: Reg(2), imm: 7 });
            a.arm_b(Cond::Eq, "yes");
            a.arm(ArmIns::MovI { rd: Reg(3), imm: 0 });
            a.ret();
            a.label("yes");
            a.arm(ArmIns::MovI { rd: Reg(3), imm: 1 });
            a.ret();
        });
        for _ in 0..8 {
            if cpu.step(&mut mem).unwrap() == Step::Jump {
                break;
            }
        }
        assert_eq!(cpu.get(Reg(2)), 7);
        assert_eq!(cpu.get(Reg(3)), 1, "beq must be taken");
    }

    #[test]
    fn arm_push_pop_roundtrip() {
        let (mut cpu, mut mem, _) = setup(Arch::Arm32e, |a| {
            a.arm(ArmIns::MovI { rd: Reg(4), imm: 0x42 });
            a.arm(ArmIns::Push { mask: 1 << 4 });
            a.arm(ArmIns::MovI { rd: Reg(4), imm: 0 });
            a.arm(ArmIns::Pop { mask: 1 << 4 });
            a.ret();
        });
        let sp0 = cpu.get(Reg::SP);
        for _ in 0..4 {
            cpu.step(&mut mem).unwrap();
        }
        assert_eq!(cpu.get(Reg(4)), 0x42);
        assert_eq!(cpu.get(Reg::SP), sp0);
    }

    #[test]
    fn mips_slt_branching() {
        let (mut cpu, mut mem, _) = setup(Arch::Mips32e, |a| {
            a.load_const(Reg(8), 5);
            a.load_const(Reg(9), 9);
            a.mips(MipsIns::Slt { rd: Reg(10), rs: Reg(8), rt: Reg(9) });
            a.mips_bne(Reg(10), Reg::ZERO, "lt");
            a.load_const(Reg(11), 0);
            a.ret();
            a.label("lt");
            a.load_const(Reg(11), 1);
            a.ret();
        });
        for _ in 0..8 {
            if cpu.step(&mut mem).unwrap() == Step::Jump {
                break;
            }
        }
        assert_eq!(cpu.get(Reg(11)), 1);
    }

    #[test]
    fn mips_zero_register_semantics() {
        let (mut cpu, mut mem, _) = setup(Arch::Mips32e, |a| {
            a.mips(MipsIns::Addiu { rt: Reg::ZERO, rs: Reg::ZERO, imm: 5 });
            a.mips(MipsIns::Addu { rd: Reg(8), rs: Reg::ZERO, rt: Reg::ZERO });
            a.ret();
        });
        cpu.step(&mut mem).unwrap();
        cpu.step(&mut mem).unwrap();
        assert_eq!(cpu.get(Reg::ZERO), 0);
        assert_eq!(cpu.get(Reg(8)), 0);
    }

    #[test]
    fn loads_and_stores_hit_memory() {
        let (mut cpu, mut mem, _) = setup(Arch::Arm32e, |a| {
            a.load_const(Reg(0), 0x1234_5678);
            a.arm(ArmIns::Str { rt: Reg(0), rn: Reg::SP, off: -8 });
            a.arm(ArmIns::Ldrb { rt: Reg(1), rn: Reg::SP, off: -8 });
            a.ret();
        });
        for _ in 0..4 {
            cpu.step(&mut mem).unwrap();
        }
        assert_eq!(cpu.get(Reg(1)), 0x78, "little-endian low byte");
    }

    #[test]
    fn halfword_load_store_roundtrip() {
        let (mut cpu, mut mem, _) = setup(Arch::Arm32e, |a| {
            a.load_const(Reg(0), 0xcafe);
            a.arm(ArmIns::Strh { rt: Reg(0), rn: Reg::SP, off: -4 });
            a.arm(ArmIns::Ldrh { rt: Reg(1), rn: Reg::SP, off: -4 });
            a.ret();
        });
        for _ in 0..3 {
            cpu.step(&mut mem).unwrap();
        }
        assert_eq!(cpu.get(Reg(1)), 0xcafe);
        // The high halfword of the slot is untouched garbage (zero).
        assert_eq!(mem.load16(cpu.get(Reg::SP).wrapping_sub(2)).unwrap(), 0);
    }

    #[test]
    fn jump_to_garbage_is_a_bad_fetch() {
        let (mut cpu, mut mem, _) = setup(Arch::Arm32e, |a| {
            a.load_const(Reg(4), 0x4141_4141);
            a.arm(ArmIns::Bx { rm: Reg(4) });
        });
        cpu.step(&mut mem).unwrap(); // movi
        cpu.step(&mut mem).unwrap(); // movt
        assert_eq!(cpu.step(&mut mem), Ok(Step::Jump));
        assert_eq!(cpu.pc, 0x4141_4141);
        assert_eq!(cpu.step(&mut mem), Err(Fault::BadFetch { pc: 0x4141_4141 }));
    }
}
