//! Attack-driven dynamic validation of static findings.
//!
//! The paper validated its findings on real devices ("We use real
//! devices for verifying these vulnerabilities", §V-A). The equivalent
//! here: run the binary concretely under hostile inputs and observe the
//! consequence —
//!
//! * **buffer overflows** smash the saved return slot; when the function
//!   returns, the restored PC is attacker bytes and the fetch faults,
//! * **command injections** deliver a `;`-separated payload into the
//!   logged `system`/`popen` command line.
//!
//! Guarded code rejects both probes, so sanitised twins validate as
//! [`Verdict::NoEffect`] — dynamic confirmation of the static
//! sanitisation judgement.

use crate::machine::{Exit, Machine};
use dtaint_fwbin::Binary;

/// Outcome of one validation attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// A hostile input crashed the program with corrupted control flow
    /// or a wild memory access — the overflow is real.
    MemoryCorruption(crate::Fault),
    /// The injected separator reached a command interpreter.
    CommandInjected(String),
    /// The program survived every probe.
    NoEffect,
    /// The program hung (step budget exhausted).
    Hang,
}

/// Attack configuration.
#[derive(Debug, Clone)]
pub struct AttackConfig {
    /// Length of the overflow probe (a run of `'A'`s).
    pub overflow_len: usize,
    /// Marker used for the injection probe.
    pub injection_marker: String,
    /// Environment/web variable names to poison (empty = every name the
    /// program asks for is served the probe — implemented by pre-seeding
    /// the given names).
    pub env_names: Vec<String>,
    /// Number of hostile input frames to queue.
    pub input_frames: usize,
    /// Instruction budget per run.
    pub max_steps: u64,
}

impl Default for AttackConfig {
    fn default() -> Self {
        AttackConfig {
            overflow_len: 4096,
            injection_marker: ";touch_pwned".to_owned(),
            env_names: Vec::new(),
            input_frames: 4,
            max_steps: 4_000_000,
        }
    }
}

/// Runs one probe: `payload` is served as every poisoned variable and
/// every queued input frame.
fn run_probe(
    bin: &Binary,
    entry: &str,
    config: &AttackConfig,
    payload: &[u8],
) -> (Exit, Vec<Vec<u8>>) {
    let mut m = Machine::new(bin);
    m.set_max_steps(config.max_steps);
    for name in &config.env_names {
        m.set_env(name, payload);
    }
    for _ in 0..config.input_frames {
        m.push_input(payload);
    }
    let exit = m.run(entry);
    (exit, m.commands.clone())
}

/// Validates the program under two canonical probes: a long-input
/// overflow probe and a separator injection probe.
///
/// Returns the strongest verdict observed (corruption > injection >
/// hang > no effect).
pub fn validate(bin: &Binary, entry: &str, config: &AttackConfig) -> Verdict {
    // Probe 1: overflow — long non-separator payload.
    let overflow_payload = vec![b'A'; config.overflow_len];
    let (exit, _) = run_probe(bin, entry, config, &overflow_payload);
    match exit {
        Exit::Fault(f) => return Verdict::MemoryCorruption(f),
        Exit::StepLimit => return Verdict::Hang,
        Exit::Returned(_) => {}
    }

    // Probe 2: injection — short payload led by the separator.
    let inj = config.injection_marker.as_bytes().to_vec();
    let (exit, commands) = run_probe(bin, entry, config, &inj);
    if let Exit::Fault(f) = exit {
        return Verdict::MemoryCorruption(f);
    }
    for cmd in &commands {
        if cmd.windows(inj.len()).any(|w| w == inj.as_slice()) && cmd.contains(&b';') {
            return Verdict::CommandInjected(String::from_utf8_lossy(cmd).into_owned());
        }
    }
    if exit == Exit::StepLimit {
        return Verdict::Hang;
    }
    Verdict::NoEffect
}

/// Convenience: poison every string literal that looks like a variable
/// name. Generated firmware names its variables in `.rodata`; seeding
/// them all makes `validate` usable without knowing the finding's exact
/// source variable.
pub fn poison_all_rodata_names(bin: &Binary, config: &mut AttackConfig) {
    use dtaint_fwbin::SectionKind;
    let Some(ro) = bin.section(SectionKind::RoData) else { return };
    let mut start = 0usize;
    for (i, &b) in ro.data.iter().enumerate() {
        if b == 0 {
            if i > start {
                let s = String::from_utf8_lossy(&ro.data[start..i]).into_owned();
                // Variable-name shaped: alphanumeric/underscore, no '%'.
                if !s.is_empty()
                    && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
                {
                    config.env_names.push(s);
                }
            }
            start = i + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtaint_fwbin::Arch;
    use dtaint_fwgen::spec::{Callee, FnSpec, ProgramSpec, Stmt};
    use dtaint_fwgen::templates::{plant, PlantKind, PlantSpec};

    fn build(kind: PlantKind, sanitized: bool, arch: Arch) -> Binary {
        let mut spec = ProgramSpec::new("v");
        let gt = plant(&mut spec, &PlantSpec::new(kind, "x", sanitized, 0));
        let mut main = FnSpec::new("main", 0);
        main.push(Stmt::Call { callee: Callee::Func(gt.entry_fn), args: vec![], ret: None });
        main.push(Stmt::Return(None));
        spec.func(main);
        dtaint_fwgen::compile(&spec, arch).unwrap()
    }

    fn verdict(kind: PlantKind, sanitized: bool, arch: Arch) -> Verdict {
        let bin = build(kind, sanitized, arch);
        let mut config = AttackConfig::default();
        poison_all_rodata_names(&bin, &mut config);
        validate(&bin, "main", &config)
    }

    #[test]
    fn overflow_plants_crash_with_corrupted_control_flow() {
        for kind in [
            PlantKind::BofRecvMemcpy,
            PlantKind::BofGetenvStrcpy,
            PlantKind::BofReadMemcpySmall,
            PlantKind::BofSscanfRtsp,
            PlantKind::BofReadLoopcopy,
            PlantKind::BofGetenvSprintf,
            PlantKind::BofReadStrncpy,
        ] {
            let v = verdict(kind, false, Arch::Arm32e);
            assert!(matches!(v, Verdict::MemoryCorruption(_)), "{kind:?} must crash, got {v:?}");
        }
    }

    #[test]
    fn injection_plants_deliver_the_marker() {
        for kind in [
            PlantKind::CmdiGetenvSystem,
            PlantKind::CmdiWebsgetvarSystem,
            PlantKind::CmdiFindvarPopen,
        ] {
            let v = verdict(kind, false, Arch::Mips32e);
            assert!(matches!(v, Verdict::CommandInjected(_)), "{kind:?} must inject, got {v:?}");
        }
    }

    #[test]
    fn sanitized_twins_survive_both_probes() {
        for kind in [
            PlantKind::BofRecvMemcpy,
            PlantKind::BofReadLoopcopy,
            PlantKind::CmdiGetenvSystem,
            PlantKind::CmdiWebsgetvarSystem,
        ] {
            let v = verdict(kind, true, Arch::Arm32e);
            assert_eq!(v, Verdict::NoEffect, "{kind:?} guarded twin must survive");
        }
    }

    #[test]
    fn alias_indirect_plant_crashes_dynamically_too() {
        let v = verdict(PlantKind::BofUrlParamAliasIndirect, false, Arch::Arm32e);
        assert!(matches!(v, Verdict::MemoryCorruption(_)), "got {v:?}");
    }
}
