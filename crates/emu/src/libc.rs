//! Hooked library functions with *real* semantics.
//!
//! Unlike the static analyzer's models, these hooks actually move bytes:
//! `strcpy` copies until NUL, `memcpy` copies exactly `n` bytes,
//! `sscanf("%s")` copies an unbounded token — so an attacker-sized input
//! genuinely smashes the saved return slot and the subsequent return
//! faults, giving dynamic proof for the static findings.

use crate::machine::Machine;
use crate::Fault;

/// Executes the hook for `name` on the machine.
///
/// Unknown imports return 0 — a benign default matching how stripped
/// firmware links against large libcs the analysis does not model.
///
/// # Errors
///
/// Propagates memory faults raised while the hook moves data (e.g. a
/// copy running off mapped space).
pub fn dispatch(m: &mut Machine<'_>, name: &str) -> Result<(), Fault> {
    match name {
        "read" | "BIO_read" => read_like(m, 1, 2),
        "recv" | "recvfrom" | "recvmsg" => read_like(m, 1, 2),
        "fgets" => fgets(m),
        "getenv" => getenv(m),
        "websGetVar" => webs_get_var(m),
        "find_var" => find_var(m),
        "strcpy" => strcpy(m),
        "strncpy" => strncpy(m),
        "strcat" => strcat(m),
        "memcpy" => memcpy(m),
        "memset" => memset(m),
        "strlen" => strlen(m),
        "strcmp" => strcmp(m),
        "strchr" => strchr(m),
        "atoi" => atoi(m),
        "malloc" => malloc(m),
        "free" | "close" => {
            m.set_ret(0);
            Ok(())
        }
        "socket" => {
            m.set_ret(3);
            Ok(())
        }
        "printf" => printf(m),
        "sprintf" => sprintf_like(m, None),
        "snprintf" => {
            let cap = m.arg(1);
            sprintf_like_at(m, 0, 2, Some(cap))
        }
        "sscanf" => sscanf(m),
        "system" | "popen" => system_like(m),
        _ => {
            m.set_ret(0);
            Ok(())
        }
    }
}

fn read_like(m: &mut Machine<'_>, buf_arg: usize, len_arg: usize) -> Result<(), Fault> {
    let buf = m.arg(buf_arg);
    let len = m.arg(len_arg) as usize;
    let data = m.inputs.pop_front().unwrap_or_default();
    let n = data.len().min(len);
    m.mem.write_bytes(buf, &data[..n])?;
    m.set_ret(n as u32);
    Ok(())
}

fn fgets(m: &mut Machine<'_>) -> Result<(), Fault> {
    let buf = m.arg(0);
    let cap = (m.arg(1) as usize).saturating_sub(1);
    let data = m.inputs.pop_front().unwrap_or_default();
    let n = data.len().min(cap);
    m.mem.write_bytes(buf, &data[..n])?;
    m.mem.store8(buf + n as u32, 0)?;
    m.set_ret(if n == 0 { 0 } else { buf });
    Ok(())
}

/// Materialises an env value as a heap C string (cached per name).
fn env_value_ptr(m: &mut Machine<'_>, name: &str) -> Result<Option<u32>, Fault> {
    if let Some(&p) = m.env_cache.get(name) {
        return Ok(Some(p));
    }
    let Some(value) = m.env.get(name).cloned() else { return Ok(None) };
    let p = m.mem.alloc(value.len() as u32 + 1).ok_or(Fault::OutOfMemory)?;
    m.mem.write_bytes(p, &value)?;
    m.mem.store8(p + value.len() as u32, 0)?;
    m.env_cache.insert(name.to_owned(), p);
    Ok(Some(p))
}

fn getenv(m: &mut Machine<'_>) -> Result<(), Fault> {
    let name = String::from_utf8_lossy(&m.mem.read_cstr(m.arg(0))?).into_owned();
    let p = env_value_ptr(m, &name)?.unwrap_or(0);
    m.set_ret(p);
    Ok(())
}

fn webs_get_var(m: &mut Machine<'_>) -> Result<(), Fault> {
    let name = String::from_utf8_lossy(&m.mem.read_cstr(m.arg(1))?).into_owned();
    let default = m.arg(2);
    let p = env_value_ptr(m, &name)?.unwrap_or(default);
    m.set_ret(p);
    Ok(())
}

fn find_var(m: &mut Machine<'_>) -> Result<(), Fault> {
    let name = String::from_utf8_lossy(&m.mem.read_cstr(m.arg(1))?).into_owned();
    let p = env_value_ptr(m, &name)?.unwrap_or(0);
    m.set_ret(p);
    Ok(())
}

fn strcpy(m: &mut Machine<'_>) -> Result<(), Fault> {
    let (dst, src) = (m.arg(0), m.arg(1));
    let s = m.mem.read_cstr(src)?;
    m.mem.write_bytes(dst, &s)?;
    m.mem.store8(dst + s.len() as u32, 0)?;
    m.set_ret(dst);
    Ok(())
}

fn strncpy(m: &mut Machine<'_>) -> Result<(), Fault> {
    let (dst, src, n) = (m.arg(0), m.arg(1), m.arg(2) as usize);
    let s = m.mem.read_cstr(src)?;
    let copy = s.len().min(n);
    m.mem.write_bytes(dst, &s[..copy])?;
    for k in copy..n {
        m.mem.store8(dst + k as u32, 0)?;
    }
    m.set_ret(dst);
    Ok(())
}

fn strcat(m: &mut Machine<'_>) -> Result<(), Fault> {
    let (dst, src) = (m.arg(0), m.arg(1));
    let head = m.mem.read_cstr(dst)?;
    let tail = m.mem.read_cstr(src)?;
    let at = dst + head.len() as u32;
    m.mem.write_bytes(at, &tail)?;
    m.mem.store8(at + tail.len() as u32, 0)?;
    m.set_ret(dst);
    Ok(())
}

fn memcpy(m: &mut Machine<'_>) -> Result<(), Fault> {
    let (dst, src, n) = (m.arg(0), m.arg(1), m.arg(2));
    for k in 0..n {
        let b = m.mem.load8(src.wrapping_add(k))?;
        m.mem.store8(dst.wrapping_add(k), b)?;
    }
    m.set_ret(dst);
    Ok(())
}

fn memset(m: &mut Machine<'_>) -> Result<(), Fault> {
    let (dst, c, n) = (m.arg(0), m.arg(1) as u8, m.arg(2));
    for k in 0..n {
        m.mem.store8(dst.wrapping_add(k), c)?;
    }
    m.set_ret(dst);
    Ok(())
}

fn strlen(m: &mut Machine<'_>) -> Result<(), Fault> {
    let n = m.mem.read_cstr(m.arg(0))?.len() as u32;
    m.set_ret(n);
    Ok(())
}

fn strcmp(m: &mut Machine<'_>) -> Result<(), Fault> {
    let a = m.mem.read_cstr(m.arg(0))?;
    let b = m.mem.read_cstr(m.arg(1))?;
    m.set_ret(match a.cmp(&b) {
        std::cmp::Ordering::Less => -1i32 as u32,
        std::cmp::Ordering::Equal => 0,
        std::cmp::Ordering::Greater => 1,
    });
    Ok(())
}

fn strchr(m: &mut Machine<'_>) -> Result<(), Fault> {
    let s = m.arg(0);
    let c = m.arg(1) as u8;
    let bytes = m.mem.read_cstr(s)?;
    match bytes.iter().position(|&b| b == c) {
        Some(i) => m.set_ret(s + i as u32),
        None => m.set_ret(0),
    }
    Ok(())
}

fn atoi(m: &mut Machine<'_>) -> Result<(), Fault> {
    let s = m.mem.read_cstr(m.arg(0))?;
    let text = String::from_utf8_lossy(&s);
    let v: i32 = text.trim().parse().unwrap_or(0);
    m.set_ret(v as u32);
    Ok(())
}

fn malloc(m: &mut Machine<'_>) -> Result<(), Fault> {
    let p = m.mem.alloc(m.arg(0)).unwrap_or(0);
    m.set_ret(p);
    Ok(())
}

fn printf(m: &mut Machine<'_>) -> Result<(), Fault> {
    let fmt = m.mem.read_cstr(m.arg(0))?;
    m.printed += fmt.len();
    m.set_ret(fmt.len() as u32);
    Ok(())
}

fn sprintf_like(m: &mut Machine<'_>, cap: Option<u32>) -> Result<(), Fault> {
    sprintf_like_at(m, 0, 1, cap)
}

/// `sprintf`/`snprintf` core: expand `%s`/`%d` from the varargs starting
/// at `fmt_arg + 1`, writing to `dst_arg`, optionally capped.
fn sprintf_like_at(
    m: &mut Machine<'_>,
    dst_arg: usize,
    fmt_arg: usize,
    cap: Option<u32>,
) -> Result<(), Fault> {
    let dst = m.arg(dst_arg);
    let fmt = m.mem.read_cstr(m.arg(fmt_arg))?;
    let mut out: Vec<u8> = Vec::new();
    let mut vararg = fmt_arg + 1;
    let mut i = 0;
    while i < fmt.len() {
        if fmt[i] == b'%' && i + 1 < fmt.len() {
            match fmt[i + 1] {
                b's' => {
                    let p = m.arg(vararg);
                    vararg += 1;
                    out.extend(m.mem.read_cstr(p)?);
                    i += 2;
                    continue;
                }
                b'd' => {
                    let v = m.arg(vararg) as i32;
                    vararg += 1;
                    out.extend(v.to_string().into_bytes());
                    i += 2;
                    continue;
                }
                b'%' => {
                    out.push(b'%');
                    i += 2;
                    continue;
                }
                _ => {}
            }
        }
        out.push(fmt[i]);
        i += 1;
    }
    if let Some(cap) = cap {
        out.truncate((cap as usize).saturating_sub(1));
    }
    m.mem.write_bytes(dst, &out)?;
    m.mem.store8(dst + out.len() as u32, 0)?;
    m.set_ret(out.len() as u32);
    Ok(())
}

fn sscanf(m: &mut Machine<'_>) -> Result<(), Fault> {
    let src = m.mem.read_cstr(m.arg(0))?;
    let fmt = m.mem.read_cstr(m.arg(1))?;
    let mut tokens = src.split(|b| b.is_ascii_whitespace()).filter(|t| !t.is_empty());
    let mut out_arg = 2;
    let mut converted = 0u32;
    let mut i = 0;
    while i + 1 < fmt.len() + 1 && i < fmt.len() {
        if fmt[i] == b'%' && i + 1 < fmt.len() && fmt[i + 1] == b's' {
            let Some(tok) = tokens.next() else { break };
            let dst = m.arg(out_arg);
            out_arg += 1;
            m.mem.write_bytes(dst, tok)?;
            m.mem.store8(dst + tok.len() as u32, 0)?;
            converted += 1;
            i += 2;
            continue;
        }
        i += 1;
    }
    m.set_ret(converted);
    Ok(())
}

fn system_like(m: &mut Machine<'_>) -> Result<(), Fault> {
    let cmd = m.mem.read_cstr(m.arg(0))?;
    m.commands.push(cmd);
    m.set_ret(0);
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::machine::{Exit, Machine};
    use dtaint_fwbin::asm::Assembler;
    use dtaint_fwbin::link::BinaryBuilder;
    use dtaint_fwbin::{Arch, Binary, Reg};

    /// Builds `main` that calls one import with the given rodata-backed
    /// arguments and returns the import's return value.
    fn call_import(
        import: &str,
        setup: impl FnOnce(&mut Assembler),
        extra: &[(&str, &str)],
    ) -> Binary {
        let mut a = Assembler::new(Arch::Arm32e);
        a.arm(dtaint_fwbin::arm::ArmIns::Push { mask: 1 << 14 });
        setup(&mut a);
        a.call(import);
        a.arm(dtaint_fwbin::arm::ArmIns::Pop { mask: 1 << 14 });
        a.ret();
        let mut b = BinaryBuilder::new(Arch::Arm32e);
        b.add_function("main", a);
        b.add_import(import);
        for (label, value) in extra {
            b.add_cstring(label, value);
        }
        b.add_bss("g_buf", 256);
        b.link().unwrap()
    }

    #[test]
    fn atoi_parses_decimal() {
        let bin = call_import("atoi", |a| a.load_addr(Reg(0), "num"), &[("num", "  1234")]);
        assert_eq!(Machine::new(&bin).run("main"), Exit::Returned(1234));
    }

    #[test]
    fn strcmp_orders_strings() {
        let bin = call_import(
            "strcmp",
            |a| {
                a.load_addr(Reg(0), "s1");
                a.load_addr(Reg(1), "s2");
            },
            &[("s1", "abc"), ("s2", "abd")],
        );
        assert_eq!(Machine::new(&bin).run("main"), Exit::Returned(-1i32 as u32));
    }

    #[test]
    fn strchr_finds_and_misses() {
        let bin = call_import(
            "strchr",
            |a| {
                a.load_addr(Reg(0), "s");
                a.load_const(Reg(1), b';' as u32);
            },
            &[("s", "ab;cd")],
        );
        let Exit::Returned(p) = Machine::new(&bin).run("main") else { panic!() };
        assert_ne!(p, 0);
        let bin = call_import(
            "strchr",
            |a| {
                a.load_addr(Reg(0), "s");
                a.load_const(Reg(1), b'!' as u32);
            },
            &[("s", "ab;cd")],
        );
        assert_eq!(Machine::new(&bin).run("main"), Exit::Returned(0));
    }

    #[test]
    fn sprintf_expands_percent_s_and_d() {
        // sprintf(g_buf, "v=%s n=%d", "xy", 7); strlen(g_buf) == 9
        let mut a = Assembler::new(Arch::Arm32e);
        a.arm(dtaint_fwbin::arm::ArmIns::Push { mask: 1 << 14 });
        a.load_addr(Reg(0), "g_buf");
        a.load_addr(Reg(1), "fmt");
        a.load_addr(Reg(2), "val");
        a.load_const(Reg(3), 7);
        a.call("sprintf");
        a.load_addr(Reg(0), "g_buf");
        a.call("strlen");
        a.arm(dtaint_fwbin::arm::ArmIns::Pop { mask: 1 << 14 });
        a.ret();
        let mut b = BinaryBuilder::new(Arch::Arm32e);
        b.add_function("main", a);
        b.add_import("sprintf");
        b.add_import("strlen");
        b.add_cstring("fmt", "v=%s n=%d");
        b.add_cstring("val", "xy");
        b.add_bss("g_buf", 64);
        let bin = b.link().unwrap();
        assert_eq!(Machine::new(&bin).run("main"), Exit::Returned("v=xy n=7".len() as u32));
    }

    #[test]
    fn sscanf_tokenises_on_whitespace() {
        // sscanf("hello world", "%s", g_buf); strlen(g_buf) == 5
        let mut a = Assembler::new(Arch::Arm32e);
        a.arm(dtaint_fwbin::arm::ArmIns::Push { mask: 1 << 14 });
        a.load_addr(Reg(0), "src");
        a.load_addr(Reg(1), "fmt");
        a.load_addr(Reg(2), "g_buf");
        a.call("sscanf");
        a.load_addr(Reg(0), "g_buf");
        a.call("strlen");
        a.arm(dtaint_fwbin::arm::ArmIns::Pop { mask: 1 << 14 });
        a.ret();
        let mut b = BinaryBuilder::new(Arch::Arm32e);
        b.add_function("main", a);
        b.add_import("sscanf");
        b.add_import("strlen");
        b.add_cstring("src", "hello world");
        b.add_cstring("fmt", "%s");
        b.add_bss("g_buf", 64);
        let bin = b.link().unwrap();
        assert_eq!(Machine::new(&bin).run("main"), Exit::Returned(5));
    }

    #[test]
    fn strcat_appends_in_place() {
        // strcpy(g_buf, "ab"); strcat(g_buf, "cd"); strlen → 4
        let mut a = Assembler::new(Arch::Arm32e);
        a.arm(dtaint_fwbin::arm::ArmIns::Push { mask: 1 << 14 });
        a.load_addr(Reg(0), "g_buf");
        a.load_addr(Reg(1), "s1");
        a.call("strcpy");
        a.load_addr(Reg(0), "g_buf");
        a.load_addr(Reg(1), "s2");
        a.call("strcat");
        a.load_addr(Reg(0), "g_buf");
        a.call("strlen");
        a.arm(dtaint_fwbin::arm::ArmIns::Pop { mask: 1 << 14 });
        a.ret();
        let mut b = BinaryBuilder::new(Arch::Arm32e);
        b.add_function("main", a);
        b.add_import("strcpy");
        b.add_import("strcat");
        b.add_import("strlen");
        b.add_cstring("s1", "ab");
        b.add_cstring("s2", "cd");
        b.add_bss("g_buf", 64);
        let bin = b.link().unwrap();
        assert_eq!(Machine::new(&bin).run("main"), Exit::Returned(4));
    }

    #[test]
    fn unknown_import_returns_zero() {
        let bin = call_import("mystery_fn", |a| a.load_const(Reg(0), 99), &[]);
        assert_eq!(Machine::new(&bin).run("main"), Exit::Returned(0));
    }
}
