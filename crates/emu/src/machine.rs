//! The run loop: concrete execution with hooked library imports.

use crate::cpu::Cpu;
use crate::libc;
use crate::mem::{Mem, STACK_TOP};
use crate::Fault;
use dtaint_fwbin::Binary;
use std::collections::{HashMap, VecDeque};

/// PC value standing for "return to the harness".
pub const RETURN_SENTINEL: u32 = 0xdead_0000;

/// Why execution stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Exit {
    /// The entry function returned normally with this value.
    Returned(u32),
    /// Execution faulted — for overflow PoCs, typically a
    /// [`Fault::BadFetch`] at an attacker-controlled address after a
    /// smashed return slot was restored.
    Fault(Fault),
    /// The step budget ran out (hangs, unbounded loops).
    StepLimit,
}

/// A concrete emulator instance for one binary.
///
/// # Examples
///
/// ```
/// use dtaint_emu::Machine;
/// use dtaint_fwbin::asm::Assembler;
/// use dtaint_fwbin::link::BinaryBuilder;
/// use dtaint_fwbin::{Arch, Reg};
///
/// let mut a = Assembler::new(Arch::Mips32e);
/// a.load_const(Reg(2), 41);
/// a.mips(dtaint_fwbin::mips::MipsIns::Addiu { rt: Reg(2), rs: Reg(2), imm: 1 });
/// a.ret();
/// let mut b = BinaryBuilder::new(Arch::Mips32e);
/// b.add_function("main", a);
/// let bin = b.link()?;
/// let mut m = Machine::new(&bin);
/// assert_eq!(m.run("main"), dtaint_emu::Exit::Returned(42));
/// # Ok::<(), dtaint_fwbin::Error>(())
/// ```
pub struct Machine<'a> {
    /// CPU state.
    pub cpu: Cpu,
    /// Address space.
    pub mem: Mem,
    pub(crate) bin: &'a Binary,
    /// Environment/web variables served to `getenv`/`websGetVar`/
    /// `find_var`.
    pub(crate) env: HashMap<String, Vec<u8>>,
    pub(crate) env_cache: HashMap<String, u32>,
    /// Queued input frames for `read`/`recv`/`fgets`/`BIO_read`.
    pub(crate) inputs: VecDeque<Vec<u8>>,
    /// Commands passed to `system`/`popen`, in order.
    pub commands: Vec<Vec<u8>>,
    /// Bytes "printed" by printf (counted only).
    pub printed: usize,
    max_steps: u64,
    /// Instructions executed so far.
    pub steps: u64,
}

impl<'a> Machine<'a> {
    /// Creates a machine for `bin` with default limits.
    pub fn new(bin: &'a Binary) -> Machine<'a> {
        Machine {
            cpu: Cpu::new(bin.arch, bin.entry),
            mem: Mem::new(bin),
            bin,
            env: HashMap::new(),
            env_cache: HashMap::new(),
            inputs: VecDeque::new(),
            commands: Vec::new(),
            printed: 0,
            max_steps: 2_000_000,
            steps: 0,
        }
    }

    /// Sets the instruction budget.
    pub fn set_max_steps(&mut self, n: u64) {
        self.max_steps = n;
    }

    /// Defines an environment/web variable.
    pub fn set_env(&mut self, name: &str, value: &[u8]) {
        self.env.insert(name.to_owned(), value.to_vec());
        self.env_cache.remove(name);
    }

    /// Queues one input frame for the next `read`-family call.
    pub fn push_input(&mut self, data: &[u8]) {
        self.inputs.push_back(data.to_vec());
    }

    /// Runs the named function to completion.
    ///
    /// # Panics
    ///
    /// Panics when the function name is not in the symbol table — a
    /// harness bug, not an input condition.
    pub fn run(&mut self, entry: &str) -> Exit {
        let addr = self.bin.function(entry).unwrap_or_else(|| panic!("no function `{entry}`")).addr;
        self.run_at(addr)
    }

    /// Runs from an entry address to completion.
    pub fn run_at(&mut self, entry: u32) -> Exit {
        let arch = self.bin.arch;
        self.cpu.pc = entry;
        self.cpu.set(arch.sp(), STACK_TOP - 64);
        self.cpu.set(arch.link_reg(), RETURN_SENTINEL);
        loop {
            if self.steps >= self.max_steps {
                return Exit::StepLimit;
            }
            if self.cpu.pc == RETURN_SENTINEL {
                return Exit::Returned(self.cpu.get(arch.ret_reg()));
            }
            if let Some(import) = self.bin.import_at(self.cpu.pc) {
                let name = import.name.clone();
                self.steps += 1;
                match libc::dispatch(self, &name) {
                    Ok(()) => {
                        // Return to the caller.
                        self.cpu.pc = self.cpu.get(arch.link_reg());
                        continue;
                    }
                    Err(f) => return Exit::Fault(f),
                }
            }
            self.steps += 1;
            if let Err(f) = self.cpu.step(&mut self.mem) {
                return Exit::Fault(f);
            }
        }
    }

    /// The i-th integer argument at an import boundary (register args,
    /// then stack slots).
    pub(crate) fn arg(&self, i: usize) -> u32 {
        let arch = self.bin.arch;
        if i < 4 {
            self.cpu.get(arch.arg_regs()[i])
        } else {
            let sp = self.cpu.get(arch.sp());
            self.mem.load32(sp + 4 * (i as u32 - 4)).unwrap_or(0)
        }
    }

    /// Sets the return value at an import boundary.
    pub(crate) fn set_ret(&mut self, v: u32) {
        let arch = self.bin.arch;
        self.cpu.set(arch.ret_reg(), v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtaint_fwbin::arm::ArmIns;
    use dtaint_fwbin::asm::Assembler;
    use dtaint_fwbin::link::BinaryBuilder;
    use dtaint_fwbin::{Arch, Reg};

    fn machine_for(arch: Arch, imports: &[&str], f: impl FnOnce(&mut Assembler)) -> (Binary, ()) {
        let mut a = Assembler::new(arch);
        f(&mut a);
        let mut b = BinaryBuilder::new(arch);
        b.add_function("main", a);
        for i in imports {
            b.add_import(i);
        }
        (b.link().unwrap(), ())
    }

    #[test]
    fn returns_value_through_sentinel() {
        let (bin, _) = machine_for(Arch::Arm32e, &[], |a| {
            a.load_const(Reg(0), 7);
            a.ret();
        });
        assert_eq!(Machine::new(&bin).run("main"), Exit::Returned(7));
    }

    #[test]
    fn calls_between_functions_work() {
        let arch = Arch::Arm32e;
        let mut callee = Assembler::new(arch);
        callee.arm(ArmIns::AddI { rd: Reg(0), rn: Reg(0), imm: 5 });
        callee.ret();
        let mut main = Assembler::new(arch);
        // Save LR across the call, the way compiled code does.
        main.arm(ArmIns::Push { mask: 1 << 14 });
        main.load_const(Reg(0), 10);
        main.call("callee");
        main.arm(ArmIns::Pop { mask: 1 << 14 });
        main.ret();
        let mut b = BinaryBuilder::new(arch);
        b.add_function("main", main);
        b.add_function("callee", callee);
        let bin = b.link().unwrap();
        assert_eq!(Machine::new(&bin).run("main"), Exit::Returned(15));
    }

    #[test]
    fn step_limit_catches_infinite_loops() {
        let (bin, _) = machine_for(Arch::Mips32e, &[], |a| {
            a.label("spin");
            a.jump("spin");
        });
        let mut m = Machine::new(&bin);
        m.set_max_steps(1000);
        assert_eq!(m.run("main"), Exit::StepLimit);
    }

    #[test]
    fn getenv_returns_configured_value() {
        let mut a = Assembler::new(Arch::Arm32e);
        a.arm(ArmIns::Push { mask: 1 << 14 });
        a.load_addr(Reg(0), "name");
        a.call("getenv");
        a.call("strlen"); // strlen(getenv("PATH"))
        a.arm(ArmIns::Pop { mask: 1 << 14 });
        a.ret();
        let mut b = BinaryBuilder::new(Arch::Arm32e);
        b.add_function("main", a);
        b.add_import("getenv");
        b.add_import("strlen");
        b.add_cstring("name", "PATH");
        let bin = b.link().unwrap();
        let mut m = Machine::new(&bin);
        m.set_env("PATH", b"hello");
        assert_eq!(m.run("main"), Exit::Returned(5));
    }

    #[test]
    fn read_consumes_queued_frames() {
        let mut a = Assembler::new(Arch::Mips32e);
        // read(0, sp-256, 128); return n
        a.mips(dtaint_fwbin::mips::MipsIns::Addiu { rt: Reg(29), rs: Reg(29), imm: -512 });
        a.mips(dtaint_fwbin::mips::MipsIns::Sw { rt: Reg(31), base: Reg(29), off: 4 });
        a.load_const(Reg(4), 0);
        a.mips(dtaint_fwbin::mips::MipsIns::Addiu { rt: Reg(5), rs: Reg(29), imm: 64 });
        a.load_const(Reg(6), 128);
        a.call("read");
        a.mips(dtaint_fwbin::mips::MipsIns::Lw { rt: Reg(31), base: Reg(29), off: 4 });
        a.mips(dtaint_fwbin::mips::MipsIns::Addiu { rt: Reg(29), rs: Reg(29), imm: 512 });
        a.ret();
        let mut b = BinaryBuilder::new(Arch::Mips32e);
        b.add_function("main", a);
        b.add_import("read");
        let bin = b.link().unwrap();
        let mut m = Machine::new(&bin);
        m.push_input(b"0123456789");
        assert_eq!(m.run("main"), Exit::Returned(10));
        // Second run with no input returns 0 bytes.
        let mut m = Machine::new(&bin);
        assert_eq!(m.run("main"), Exit::Returned(0));
    }

    #[test]
    fn system_logs_commands() {
        let mut a = Assembler::new(Arch::Arm32e);
        a.load_addr(Reg(0), "cmd");
        a.call("system");
        a.ret();
        let mut b = BinaryBuilder::new(Arch::Arm32e);
        b.add_function("main", a);
        b.add_import("system");
        b.add_cstring("cmd", "reboot");
        let bin = b.link().unwrap();
        let mut m = Machine::new(&bin);
        m.run("main");
        assert_eq!(m.commands, vec![b"reboot".to_vec()]);
    }
}
