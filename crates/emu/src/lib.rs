//! A concrete emulator for `arm32e`/`mips32e` binaries, used to
//! *dynamically validate* the static findings.
//!
//! The paper verified its findings on real devices; this crate is the
//! reproducible equivalent: run the suspect binary under attacker-shaped
//! inputs and observe the exploit primitive —
//!
//! * [`Machine`] — CPU + memory + hooked libc imports (`recv` serves
//!   queued attacker frames, `getenv`/`websGetVar` serve poisoned
//!   variables, `strcpy`/`memcpy`/`sscanf` really move the bytes,
//!   `system`/`popen` log their command lines),
//! * [`validate()`] — the two canonical probes: a long-input overflow
//!   probe (a smashed return slot turns the next return into a
//!   [`Fault::BadFetch`] at attacker bytes) and a `;`-separator
//!   injection probe (observed in the command log).
//!
//! The differential property that ties the workspace together: every
//! *vulnerable* template crashes or injects under the probes, and every
//! *sanitised twin* survives them — dynamic ground truth agreeing with
//! the static detector.
//!
//! # Examples
//!
//! ```
//! use dtaint_emu::{validate, AttackConfig, Verdict};
//! use dtaint_fwbin::asm::Assembler;
//! use dtaint_fwbin::link::BinaryBuilder;
//! use dtaint_fwbin::{Arch, Reg};
//!
//! // system(getenv("CMD")) — injectable.
//! let mut f = Assembler::new(Arch::Arm32e);
//! f.arm(dtaint_fwbin::arm::ArmIns::Push { mask: 1 << 14 });
//! f.load_addr(Reg(0), "name");
//! f.call("getenv");
//! f.call("system");
//! f.arm(dtaint_fwbin::arm::ArmIns::Pop { mask: 1 << 14 });
//! f.ret();
//! let mut b = BinaryBuilder::new(Arch::Arm32e);
//! b.add_function("main", f);
//! b.add_import("getenv");
//! b.add_import("system");
//! b.add_cstring("name", "CMD");
//! let bin = b.link()?;
//!
//! let config = AttackConfig { env_names: vec!["CMD".into()], ..Default::default() };
//! assert!(matches!(validate(&bin, "main", &config), Verdict::CommandInjected(_)));
//! # Ok::<(), dtaint_fwbin::Error>(())
//! ```

pub mod cpu;
pub mod libc;
pub mod machine;
pub mod mem;
pub mod validate;

pub use cpu::{Cpu, Step};
pub use machine::{Exit, Machine, RETURN_SENTINEL};
pub use mem::Mem;
pub use validate::{poison_all_rodata_names, validate, AttackConfig, Verdict};

use std::fmt;

/// A hardware fault raised by the emulated CPU or memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Instruction fetch from unmapped memory — the signature of a
    /// smashed return address.
    BadFetch {
        /// The faulting PC.
        pc: u32,
    },
    /// Data load from unmapped memory.
    UnmappedLoad {
        /// The faulting address.
        addr: u32,
    },
    /// Data store to unmapped memory.
    UnmappedStore {
        /// The faulting address.
        addr: u32,
    },
    /// Store into an immutable region.
    WriteToReadOnly {
        /// The faulting address.
        addr: u32,
        /// Region name.
        region: &'static str,
    },
    /// The word at PC does not decode.
    Undecodable {
        /// The faulting PC.
        pc: u32,
    },
    /// The emulated heap is exhausted.
    OutOfMemory,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::BadFetch { pc } => write!(f, "instruction fetch from {pc:#x}"),
            Fault::UnmappedLoad { addr } => write!(f, "load from unmapped {addr:#x}"),
            Fault::UnmappedStore { addr } => write!(f, "store to unmapped {addr:#x}"),
            Fault::WriteToReadOnly { addr, region } => {
                write!(f, "write to read-only {region} at {addr:#x}")
            }
            Fault::Undecodable { pc } => write!(f, "undecodable instruction at {pc:#x}"),
            Fault::OutOfMemory => f.write_str("emulated heap exhausted"),
        }
    }
}

impl std::error::Error for Fault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_display_is_informative() {
        assert!(Fault::BadFetch { pc: 0x41414141 }.to_string().contains("0x41414141"));
        assert!(Fault::WriteToReadOnly { addr: 1, region: "text" }.to_string().contains("text"));
    }
}
