//! The integer interval lattice.

use std::fmt;

/// `i64::MIN` stands for −∞ in interval bounds.
const NEG_INF: i64 = i64::MIN;
/// `i64::MAX` stands for +∞ in interval bounds.
const POS_INF: i64 = i64::MAX;

/// A closed integer interval `[lo, hi]` with ±∞ sentinels.
///
/// The empty interval (⊥) is canonically `[+∞, −∞]`; `[−∞, +∞]` is ⊤.
/// Guest values are 32-bit and sign-extended by the expression pool, so
/// finite bounds stay far from the sentinels and saturating arithmetic
/// is exact in practice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    lo: i64,
    hi: i64,
}

/// Saturating predecessor that keeps the sentinels fixed.
fn pred(v: i64) -> i64 {
    if v == NEG_INF || v == POS_INF {
        v
    } else {
        v - 1
    }
}

/// Saturating successor that keeps the sentinels fixed.
fn succ(v: i64) -> i64 {
    if v == NEG_INF || v == POS_INF {
        v
    } else {
        v + 1
    }
}

/// Adds two bounds; an infinite operand wins and clamping keeps finite
/// sums away from the sentinels.
fn add_bound(a: i64, b: i64) -> i64 {
    if a == NEG_INF || b == NEG_INF {
        NEG_INF
    } else if a == POS_INF || b == POS_INF {
        POS_INF
    } else {
        a.saturating_add(b).clamp(NEG_INF + 1, POS_INF - 1)
    }
}

impl Interval {
    /// The full lattice top: every value possible.
    pub const TOP: Interval = Interval { lo: NEG_INF, hi: POS_INF };
    /// The lattice bottom: no value possible (an infeasible fact).
    pub const EMPTY: Interval = Interval { lo: POS_INF, hi: NEG_INF };

    /// An interval from explicit bounds (canonicalised to
    /// [`Interval::EMPTY`] when `lo > hi`).
    pub fn new(lo: i64, hi: i64) -> Interval {
        if lo > hi {
            Interval::EMPTY
        } else {
            Interval { lo, hi }
        }
    }

    /// The singleton `[v, v]`.
    pub fn point(v: i64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// `(−∞, hi]`.
    pub fn at_most(hi: i64) -> Interval {
        Interval::new(NEG_INF, hi)
    }

    /// `[lo, +∞)`.
    pub fn at_least(lo: i64) -> Interval {
        Interval::new(lo, POS_INF)
    }

    /// True for the empty interval.
    pub fn is_empty(self) -> bool {
        self.lo > self.hi
    }

    /// True when nothing is known (both bounds infinite).
    pub fn is_top(self) -> bool {
        self == Interval::TOP
    }

    /// The finite lower bound, if one is proven.
    pub fn lower(self) -> Option<i64> {
        (!self.is_empty() && self.lo != NEG_INF).then_some(self.lo)
    }

    /// The finite upper bound, if one is proven.
    pub fn upper(self) -> Option<i64> {
        (!self.is_empty() && self.hi != POS_INF).then_some(self.hi)
    }

    /// The single value, when the interval is a point.
    pub fn as_point(self) -> Option<i64> {
        (self.lo == self.hi && !self.is_empty()).then_some(self.lo)
    }

    /// True when `v` lies inside.
    pub fn contains(self, v: i64) -> bool {
        !self.is_empty() && self.lo <= v && v <= self.hi
    }

    /// Greatest lower bound (intersection).
    pub fn meet(self, other: Interval) -> Interval {
        Interval::new(self.lo.max(other.lo), self.hi.min(other.hi))
    }

    /// Least upper bound (convex hull).
    pub fn join(self, other: Interval) -> Interval {
        if self.is_empty() {
            return other;
        }
        if other.is_empty() {
            return self;
        }
        Interval { lo: self.lo.min(other.lo), hi: self.hi.max(other.hi) }
    }

    /// Standard widening: a bound that moved since `self` (the previous
    /// iterate) jumps to its infinity; a stable bound is kept.
    ///
    /// The solver's refinement only ever *narrows*, so widening usually
    /// reproduces the previous iterate — it is the termination backstop
    /// for constraint cycles that would otherwise descend one unit per
    /// pass (see [`crate::IntervalAnalysis::solve`]).
    pub fn widen(self, next: Interval) -> Interval {
        if self.is_empty() {
            return next;
        }
        if next.is_empty() {
            return next;
        }
        Interval {
            lo: if next.lo < self.lo { NEG_INF } else { self.lo },
            hi: if next.hi > self.hi { POS_INF } else { self.hi },
        }
    }

    /// Bitwise-and upper bound: for non-negative operands the result
    /// cannot exceed either one (the `len & 0xff` masking idiom).
    pub fn bit_and(self, other: Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        if self.lo >= 0 && other.lo >= 0 {
            Interval::new(0, self.hi.min(other.hi))
        } else if self.lo >= 0 {
            Interval::new(0, self.hi)
        } else if other.lo >= 0 {
            Interval::new(0, other.hi)
        } else {
            Interval::TOP
        }
    }

    /// Bitwise or/xor upper bound: non-negative operands cannot set a
    /// bit above the highest bit of either, so the result stays below
    /// the next power of two.
    pub fn bit_or_like(self, other: Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        if self.lo < 0 || other.lo < 0 || self.hi == POS_INF || other.hi == POS_INF {
            return Interval::TOP;
        }
        let max = self.hi.max(other.hi);
        let bits = 64 - max.leading_zeros();
        if bits >= 63 {
            return Interval::TOP;
        }
        Interval::new(0, (1i64 << bits) - 1)
    }

    /// Logical shift right by a known amount (non-negative values only;
    /// anything else degrades to ⊤ because the guest shift is unsigned).
    pub fn shr_const(self, amount: u32) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        if self.lo < 0 || amount >= 32 {
            return Interval::TOP;
        }
        let hi = if self.hi == POS_INF { POS_INF } else { self.hi >> amount };
        Interval::new(self.lo >> amount, hi)
    }

    /// `[hi]`-side refinement helper: the interval of values strictly
    /// less than some value of `other`.
    pub fn lt_bound(other: Interval) -> Interval {
        if other.is_empty() {
            Interval::EMPTY
        } else {
            Interval::at_most(pred(other.hi))
        }
    }

    /// Values less than or equal to some value of `other`.
    pub fn le_bound(other: Interval) -> Interval {
        if other.is_empty() {
            Interval::EMPTY
        } else {
            Interval::at_most(other.hi)
        }
    }

    /// Values strictly greater than some value of `other`.
    pub fn gt_bound(other: Interval) -> Interval {
        if other.is_empty() {
            Interval::EMPTY
        } else {
            Interval::at_least(succ(other.lo))
        }
    }

    /// Values greater than or equal to some value of `other`.
    pub fn ge_bound(other: Interval) -> Interval {
        if other.is_empty() {
            Interval::EMPTY
        } else {
            Interval::at_least(other.lo)
        }
    }

    /// Removes a point from the interval when it sits on a bound (the
    /// only exclusion an interval can represent).
    pub fn without_point(self, v: i64) -> Interval {
        if self.is_empty() {
            return self;
        }
        if self.as_point() == Some(v) {
            return Interval::EMPTY;
        }
        if self.lo == v {
            Interval::new(succ(self.lo), self.hi)
        } else if self.hi == v {
            Interval::new(self.lo, pred(self.hi))
        } else {
            self
        }
    }
}

impl std::ops::Add for Interval {
    type Output = Interval;

    /// Interval addition.
    fn add(self, other: Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        Interval::new(add_bound(self.lo, other.lo), add_bound(self.hi, other.hi))
    }
}

impl std::ops::Sub for Interval {
    type Output = Interval;

    /// Interval subtraction.
    fn sub(self, other: Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        let neg = Interval::new(
            if other.hi == POS_INF { NEG_INF } else { -other.hi },
            if other.lo == NEG_INF { POS_INF } else { -other.lo },
        );
        self + neg
    }
}

impl std::ops::Mul for Interval {
    type Output = Interval;

    /// Interval multiplication; any infinite operand degrades to ⊤
    /// (conservative, and the guest's 32-bit wrap-around makes tighter
    /// bounds unsound anyway).
    fn mul(self, other: Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        if self.lo == NEG_INF || self.hi == POS_INF || other.lo == NEG_INF || other.hi == POS_INF {
            return Interval::TOP;
        }
        let products = [
            (self.lo as i128) * (other.lo as i128),
            (self.lo as i128) * (other.hi as i128),
            (self.hi as i128) * (other.lo as i128),
            (self.hi as i128) * (other.hi as i128),
        ];
        let lo = products.iter().copied().min().expect("non-empty");
        let hi = products.iter().copied().max().expect("non-empty");
        let clamp = |v: i128| v.clamp((NEG_INF + 1) as i128, (POS_INF - 1) as i128) as i64;
        Interval::new(clamp(lo), clamp(hi))
    }
}

impl Default for Interval {
    fn default() -> Self {
        Interval::TOP
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("⊥");
        }
        match (self.lo, self.hi) {
            (NEG_INF, POS_INF) => f.write_str("⊤"),
            (NEG_INF, hi) => write!(f, "(-∞, {hi}]"),
            (lo, POS_INF) => write!(f, "[{lo}, +∞)"),
            (lo, hi) if lo == hi => write!(f, "[{lo}]"),
            (lo, hi) => write!(f, "[{lo}, {hi}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meet_and_join_are_lattice_ops() {
        let a = Interval::new(0, 10);
        let b = Interval::new(5, 20);
        assert_eq!(a.meet(b), Interval::new(5, 10));
        assert_eq!(a.join(b), Interval::new(0, 20));
        assert!(a.meet(Interval::new(11, 12)).is_empty());
        assert_eq!(a.meet(Interval::TOP), a);
        assert_eq!(a.join(Interval::EMPTY), a);
        assert_eq!(Interval::EMPTY.meet(a), Interval::EMPTY);
    }

    #[test]
    fn point_queries() {
        let p = Interval::point(7);
        assert_eq!(p.as_point(), Some(7));
        assert_eq!(p.lower(), Some(7));
        assert_eq!(p.upper(), Some(7));
        assert!(p.contains(7));
        assert!(!p.contains(8));
        assert_eq!(Interval::TOP.upper(), None);
        assert_eq!(Interval::EMPTY.as_point(), None);
    }

    #[test]
    fn arithmetic_respects_infinities() {
        let a = Interval::new(1, 5);
        let b = Interval::new(10, 20);
        assert_eq!(a + b, Interval::new(11, 25));
        assert_eq!(b - a, Interval::new(5, 19));
        assert_eq!(Interval::at_most(9) + Interval::point(1), Interval::at_most(10));
        assert_eq!(Interval::TOP + a, Interval::TOP);
        assert!((Interval::EMPTY + a).is_empty());
        assert_eq!(a * b, Interval::new(10, 100));
        assert_eq!(Interval::new(-2, 3) * Interval::point(-4), Interval::new(-12, 8));
        assert_eq!(Interval::TOP * a, Interval::TOP);
    }

    #[test]
    fn bit_ops_bound_nonnegative_ranges() {
        let byte = Interval::new(0, 255);
        assert_eq!(byte.bit_and(Interval::point(0x0f)), Interval::new(0, 0x0f));
        assert_eq!(Interval::TOP.bit_and(byte), Interval::new(0, 255));
        assert_eq!(byte.bit_or_like(Interval::new(0, 100)), Interval::new(0, 255));
        assert_eq!(Interval::new(0, 256).bit_or_like(byte), Interval::new(0, 511));
        assert_eq!(Interval::TOP.bit_or_like(byte), Interval::TOP);
        assert_eq!(Interval::new(0, 100).shr_const(2), Interval::new(0, 25));
        assert_eq!(Interval::TOP.shr_const(2), Interval::TOP);
    }

    #[test]
    fn widening_jumps_moved_bounds_to_infinity() {
        let prev = Interval::new(0, 100);
        // Stable: kept.
        assert_eq!(prev.widen(Interval::new(0, 100)), prev);
        // Narrowed (a descending chain): reverts to the previous iterate.
        assert_eq!(prev.widen(Interval::new(0, 99)), prev);
        // Grown: the moving bound is widened away.
        assert_eq!(prev.widen(Interval::new(0, 101)), Interval::at_least(0));
        assert_eq!(prev.widen(Interval::new(-1, 100)), Interval::at_most(100));
        assert_eq!(Interval::EMPTY.widen(prev), prev);
    }

    #[test]
    fn directional_bounds() {
        let b = Interval::new(10, 20);
        assert_eq!(Interval::lt_bound(b), Interval::at_most(19));
        assert_eq!(Interval::le_bound(b), Interval::at_most(20));
        assert_eq!(Interval::gt_bound(b), Interval::at_least(11));
        assert_eq!(Interval::ge_bound(b), Interval::at_least(10));
        // Strict bounds against infinities stay infinite, not wrapped.
        assert_eq!(Interval::lt_bound(Interval::TOP), Interval::TOP);
    }

    #[test]
    fn without_point_trims_only_edges() {
        let b = Interval::new(10, 20);
        assert_eq!(b.without_point(10), Interval::new(11, 20));
        assert_eq!(b.without_point(20), Interval::new(10, 19));
        assert_eq!(b.without_point(15), b, "interior points are not representable exclusions");
        assert!(Interval::point(3).without_point(3).is_empty());
    }

    #[test]
    fn display_renders_lattice_points() {
        assert_eq!(Interval::TOP.to_string(), "⊤");
        assert_eq!(Interval::EMPTY.to_string(), "⊥");
        assert_eq!(Interval::point(4).to_string(), "[4]");
        assert_eq!(Interval::new(1, 2).to_string(), "[1, 2]");
        assert_eq!(Interval::at_most(9).to_string(), "(-∞, 9]");
        assert_eq!(Interval::at_least(9).to_string(), "[9, +∞)");
    }
}
