//! Constraint-driven interval evaluation of pool expressions.

use crate::Interval;
use dtaint_symex::pool::{CmpOp, ExprPool, SymNode};
use dtaint_symex::ExprId;
use std::collections::BTreeMap;

/// Refinement passes before widening cuts the descending chain.
///
/// Path constraints come from the executor's loop-once exploration, so
/// genuine loops cannot appear in a constraint set — but *cyclic*
/// comparisons (`x < y && y < x` shapes over finite ranges) would
/// otherwise narrow one unit per pass indefinitely.
const MAX_PASSES: usize = 16;

/// Recursion cap for structural evaluation (expressions are DAGs; the
/// cap guards against adversarially deep spines).
const MAX_EVAL_DEPTH: u32 = 32;

/// A flow-sensitive interval environment for one path through one
/// observing function.
///
/// Facts enter in two ways:
///
/// * [`assume`](Self::assume) — a path constraint recorded at a branch;
///   refines both operands and detects contradictions,
/// * [`seed_def`](Self::seed_def) — a definition pair `d = u` from the
///   observing function's summary (including pairs Algorithm 2 pushed up
///   from callees, which is how argument/return ranges travel
///   interprocedurally); multiple defs of one location *join*, and a
///   seed that contradicts the path's constraints is dropped rather
///   than trusted (definition pairs are flow-insensitive).
///
/// After [`solve`](Self::solve), [`range_of`](Self::range_of) answers
/// value-range queries and [`feasible`](Self::feasible) reports whether
/// the constraint set is satisfiable. All queries are pure functions of
/// the pool's interned nodes — no interior mutation, no iteration over
/// unordered maps — so results are identical across thread counts.
#[derive(Debug, Clone)]
pub struct IntervalAnalysis<'p> {
    pool: &'p ExprPool,
    env: BTreeMap<ExprId, Interval>,
    constraints: Vec<(CmpOp, ExprId, ExprId)>,
    seeds: BTreeMap<ExprId, Vec<ExprId>>,
    infeasible: bool,
    passes_run: u32,
}

impl<'p> IntervalAnalysis<'p> {
    /// An empty environment over `pool`.
    pub fn new(pool: &'p ExprPool) -> Self {
        IntervalAnalysis {
            pool,
            env: BTreeMap::new(),
            constraints: Vec::new(),
            seeds: BTreeMap::new(),
            infeasible: false,
            passes_run: 0,
        }
    }

    /// Refinement passes executed by [`solve`] so far — a deterministic
    /// logical work counter (one per fixpoint iteration, bounded by
    /// `MAX_PASSES` per solve), used by the telemetry layer.
    ///
    /// [`solve`]: Self::solve
    pub fn passes_run(&self) -> u32 {
        self.passes_run
    }

    /// Records a path constraint `lhs op rhs` for the next [`solve`].
    ///
    /// [`solve`]: Self::solve
    pub fn assume(&mut self, op: CmpOp, lhs: ExprId, rhs: ExprId) {
        self.constraints.push((op, lhs, rhs));
    }

    /// Records every constraint of a sink observation.
    pub fn assume_all(&mut self, constraints: &[(CmpOp, ExprId, ExprId)]) {
        self.constraints.extend_from_slice(constraints);
    }

    /// Records a definition pair `d = u` as a range seed for `d`.
    pub fn seed_def(&mut self, d: ExprId, u: ExprId) {
        if self.pool.as_const(d).is_some() || d == u {
            return;
        }
        let us = self.seeds.entry(d).or_default();
        if !us.contains(&u) {
            us.push(u);
        }
    }

    /// Runs constraint refinement to a fixpoint (or the pass budget).
    ///
    /// Each pass narrows operand ranges through every recorded
    /// constraint, then folds the definition seeds in. Refinement only
    /// narrows, so the iteration is a descending chain; if it has not
    /// stabilised after [`MAX_PASSES`], the final pass's movement is
    /// widened away ([`Interval::widen`]) and iteration stops — the
    /// sound direction for both queries (ranges stay wider, paths stay
    /// feasible).
    pub fn solve(&mut self) {
        for pass in 0..MAX_PASSES {
            self.passes_run += 1;
            let before = self.env.clone();
            let mut changed = false;
            let cons = self.constraints.clone();
            for (op, l, r) in cons {
                changed |= self.refine(op, l, r);
                if self.infeasible {
                    return;
                }
            }
            let seeds: Vec<(ExprId, Vec<ExprId>)> =
                self.seeds.iter().map(|(d, us)| (*d, us.clone())).collect();
            for (d, us) in seeds {
                let mut joined = Interval::EMPTY;
                for u in us {
                    joined = joined.join(self.eval(u, 0));
                }
                if joined.is_empty() || joined.is_top() {
                    continue;
                }
                let met = self.eval(d, 0).meet(joined);
                if met.is_empty() {
                    // The seed contradicts the path constraints: the
                    // defs are flow-insensitive, the constraints are
                    // not — trust the path.
                    continue;
                }
                changed |= self.store(d, met);
            }
            if !changed {
                return;
            }
            if pass == MAX_PASSES - 1 {
                for (e, cur) in self.env.iter_mut() {
                    let prev = before.get(e).copied().unwrap_or(Interval::TOP);
                    *cur = prev.widen(*cur);
                }
            }
        }
    }

    /// The proven value range of `e` under the solved constraints.
    pub fn range_of(&self, e: ExprId) -> Interval {
        self.eval(e, 0)
    }

    /// False when the constraint set was proven contradictory.
    pub fn feasible(&self) -> bool {
        !self.infeasible
    }

    /// One refinement step through `lhs op rhs`; returns true when an
    /// environment entry narrowed.
    fn refine(&mut self, op: CmpOp, l: ExprId, r: ExprId) -> bool {
        let lr = self.eval(l, 0);
        let rr = self.eval(r, 0);
        let (nl, nr) = match op {
            CmpOp::Lt => (lr.meet(Interval::lt_bound(rr)), rr.meet(Interval::gt_bound(lr))),
            CmpOp::Le => (lr.meet(Interval::le_bound(rr)), rr.meet(Interval::ge_bound(lr))),
            CmpOp::Gt => (lr.meet(Interval::gt_bound(rr)), rr.meet(Interval::lt_bound(lr))),
            CmpOp::Ge => (lr.meet(Interval::ge_bound(rr)), rr.meet(Interval::le_bound(lr))),
            CmpOp::Eq => {
                let m = lr.meet(rr);
                (m, m)
            }
            CmpOp::Ne => {
                let nl = match rr.as_point() {
                    Some(p) => lr.without_point(p),
                    None => lr,
                };
                let nr = match lr.as_point() {
                    Some(p) => rr.without_point(p),
                    None => rr,
                };
                (nl, nr)
            }
        };
        if nl.is_empty() || nr.is_empty() {
            self.infeasible = true;
            return true;
        }
        self.store(l, nl) | self.store(r, nr)
    }

    /// Narrows the stored range of `e`; constants are already exact.
    fn store(&mut self, e: ExprId, iv: Interval) -> bool {
        if self.pool.as_const(e).is_some() {
            return false;
        }
        let cur = self.env.get(&e).copied().unwrap_or(Interval::TOP);
        if iv == cur {
            return false;
        }
        self.env.insert(e, iv);
        true
    }

    /// Structural evaluation meet the refined environment.
    ///
    /// Structure alone already bounds several shapes: byte and
    /// half-word loads are zero-extended by the lifters, masking
    /// (`n & 0xff`) bounds from above, and comparison results are
    /// boolean. Any arithmetic whose interval escapes the guest's
    /// 32-bit value range degrades to ⊤, because the concrete machine
    /// would wrap where the interval would not.
    fn eval(&self, e: ExprId, depth: u32) -> Interval {
        let refined = self.env.get(&e).copied().unwrap_or(Interval::TOP);
        if depth > MAX_EVAL_DEPTH {
            return refined;
        }
        let d = depth + 1;
        let structural = match self.pool.node(e) {
            SymNode::Const(c) => return Interval::point(c),
            SymNode::Deref { width: 1, .. } => Interval::new(0, 0xff),
            SymNode::Deref { width: 2, .. } => Interval::new(0, 0xffff),
            SymNode::Add(a, b) => guest_range(self.eval(a, d) + self.eval(b, d)),
            SymNode::Mul(a, b) => guest_range(self.eval(a, d) * self.eval(b, d)),
            SymNode::And(a, b) => self.eval(a, d).bit_and(self.eval(b, d)),
            SymNode::Or(a, b) | SymNode::Xor(a, b) => self.eval(a, d).bit_or_like(self.eval(b, d)),
            SymNode::Shl(a, b) => match self.pool.as_const(b) {
                Some(s @ 0..=31) => guest_range(self.eval(a, d) * Interval::point(1i64 << s)),
                _ => Interval::TOP,
            },
            SymNode::Shr(a, b) => match self.pool.as_const(b) {
                Some(s @ 0..=63) => self.eval(a, d).shr_const(s as u32),
                _ => Interval::TOP,
            },
            SymNode::Cmp(..) => Interval::new(0, 1),
            _ => Interval::TOP,
        };
        structural.meet(refined)
    }
}

/// True when an interval fits the guest's 32-bit signed value range;
/// otherwise the operation may have wrapped and the bound is unusable.
fn guest_range(iv: Interval) -> Interval {
    let fits = |b: Option<i64>| b.is_some_and(|v| (-(1i64 << 31)..(1i64 << 31)).contains(&v));
    if iv.is_empty() || (fits(iv.lower()) && fits(iv.upper())) {
        iv
    } else {
        Interval::TOP
    }
}

/// Decides satisfiability of one path's constraint set.
///
/// This is the `path_feasible` query of the taint stage: an observation
/// whose guards contradict each other (`n < 8 && n > 64`) describes a
/// path the program cannot execute, so the finding is suppressed. Pure
/// constraint logic only — definition seeds are deliberately excluded,
/// keeping suppression decisions independent of flow-insensitive facts.
pub fn path_feasible(pool: &ExprPool, constraints: &[(CmpOp, ExprId, ExprId)]) -> bool {
    let mut a = IntervalAnalysis::new(pool);
    a.assume_all(constraints);
    a.solve();
    a.feasible()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounding_constraint_proves_an_upper_bound() {
        let mut p = ExprPool::new();
        let n = p.ret_sym(0x40);
        let c200 = p.constant(200);
        let mut a = IntervalAnalysis::new(&p);
        a.assume(CmpOp::Lt, n, c200);
        a.solve();
        assert_eq!(a.range_of(n).upper(), Some(199));
        assert_eq!(a.range_of(n).lower(), None);
        assert!(a.feasible());
    }

    #[test]
    fn reversed_and_inclusive_operators_bound_too() {
        let mut p = ExprPool::new();
        let n = p.ret_sym(0x40);
        let c64 = p.constant(64);
        for (op, l, r, hi) in
            [(CmpOp::Le, n, c64, 64), (CmpOp::Gt, c64, n, 63), (CmpOp::Ge, c64, n, 64)]
        {
            let mut a = IntervalAnalysis::new(&p);
            a.assume(op, l, r);
            a.solve();
            assert_eq!(a.range_of(n).upper(), Some(hi), "{op:?}");
        }
    }

    #[test]
    fn contradictory_constraints_are_infeasible() {
        let mut p = ExprPool::new();
        let n = p.ret_sym(0x40);
        let c8 = p.constant(8);
        let c64 = p.constant(64);
        assert!(!path_feasible(&p, &[(CmpOp::Lt, n, c8), (CmpOp::Gt, n, c64)]));
        assert!(path_feasible(&p, &[(CmpOp::Lt, n, c64), (CmpOp::Gt, n, c8)]));
    }

    #[test]
    fn contradictory_equalities_on_one_location_are_infeasible() {
        let mut p = ExprPool::new();
        let g = p.constant(0x11000);
        let sel = p.deref(g, 4);
        let c5 = p.constant(5);
        let c7 = p.constant(7);
        assert!(!path_feasible(&p, &[(CmpOp::Eq, sel, c5), (CmpOp::Eq, sel, c7)]));
        assert!(path_feasible(&p, &[(CmpOp::Eq, sel, c5), (CmpOp::Eq, sel, c5)]));
        // Ne against the pinned value is just as contradictory.
        assert!(!path_feasible(&p, &[(CmpOp::Eq, sel, c5), (CmpOp::Ne, sel, c5)]));
    }

    #[test]
    fn constant_only_contradictions_need_no_environment() {
        let mut p = ExprPool::new();
        let c3 = p.constant(3);
        let c5 = p.constant(5);
        assert!(!path_feasible(&p, &[(CmpOp::Lt, c5, c3)]));
        assert!(!path_feasible(&p, &[(CmpOp::Eq, c5, c3)]));
        assert!(path_feasible(&p, &[(CmpOp::Lt, c3, c5)]));
    }

    #[test]
    fn definition_seeds_resolve_symbolic_bounds() {
        // The symbolic-guard shape: `if (n < y)` where `y = *g_limit`
        // and a definition pair (pushed up from an init routine by
        // Algorithm 2) pins `*g_limit = 200`.
        let mut p = ExprPool::new();
        let n = p.ret_sym(0x40);
        let g = p.constant(0x11000);
        let y = p.deref(g, 4);
        let c200 = p.constant(200);
        let mut a = IntervalAnalysis::new(&p);
        a.seed_def(y, c200);
        a.assume(CmpOp::Lt, n, y);
        a.solve();
        assert_eq!(a.range_of(y).as_point(), Some(200));
        assert_eq!(a.range_of(n).upper(), Some(199));
    }

    #[test]
    fn multiple_defs_of_one_location_join() {
        let mut p = ExprPool::new();
        let g = p.constant(0x11000);
        let y = p.deref(g, 4);
        let c0 = p.constant(0);
        let c200 = p.constant(200);
        let mut a = IntervalAnalysis::new(&p);
        a.seed_def(y, c0);
        a.seed_def(y, c200);
        a.solve();
        assert_eq!(a.range_of(y).lower(), Some(0));
        assert_eq!(a.range_of(y).upper(), Some(200));
    }

    #[test]
    fn a_seed_contradicting_the_path_is_dropped_not_trusted() {
        // Defs are flow-insensitive: a store of 5 somewhere does not
        // make a path that observed 7 infeasible.
        let mut p = ExprPool::new();
        let g = p.constant(0x11000);
        let sel = p.deref(g, 4);
        let c5 = p.constant(5);
        let c7 = p.constant(7);
        let mut a = IntervalAnalysis::new(&p);
        a.seed_def(sel, c5);
        a.assume(CmpOp::Eq, sel, c7);
        a.solve();
        assert!(a.feasible(), "seed conflicts drop the seed, not the path");
        assert_eq!(a.range_of(sel).as_point(), Some(7));
    }

    #[test]
    fn structural_shapes_are_bounded_without_constraints() {
        let mut p = ExprPool::new();
        let addr = p.constant(0x11000);
        let byte = p.deref(addr, 1);
        let word = p.deref(addr, 4);
        let n = p.ret_sym(0x40);
        let mask = p.constant(0xff);
        let masked = p.and_op(n, mask);
        let flag = p.cmp(CmpOp::Lt, n, mask);
        let a = IntervalAnalysis::new(&p);
        assert_eq!(a.range_of(byte), Interval::new(0, 0xff));
        assert!(a.range_of(word).is_top());
        assert_eq!(a.range_of(masked).upper(), Some(0xff));
        assert_eq!(a.range_of(flag), Interval::new(0, 1));
    }

    #[test]
    fn ranges_propagate_through_arithmetic() {
        let mut p = ExprPool::new();
        let n = p.ret_sym(0x40);
        let c100 = p.constant(100);
        let four = p.constant(4);
        let sum = p.add(n, four);
        let prod = p.mul(n, four);
        let mut a = IntervalAnalysis::new(&p);
        a.assume(CmpOp::Lt, n, c100);
        a.assume(CmpOp::Ge, n, four);
        a.solve();
        assert_eq!(a.range_of(sum).upper(), Some(103));
        assert_eq!(a.range_of(sum).lower(), Some(8));
        assert_eq!(a.range_of(prod).upper(), Some(396));
    }

    #[test]
    fn widening_terminates_cyclic_narrowing() {
        // `x <= 100 && x < x` narrows one unit per pass and would
        // otherwise descend for 100 passes; the budget plus widening
        // stops it early, leaving a wider (sound) range.
        let mut p = ExprPool::new();
        let x = p.ret_sym(0x40);
        let c100 = p.constant(100);
        let mut a = IntervalAnalysis::new(&p);
        a.assume(CmpOp::Le, x, c100);
        a.assume(CmpOp::Lt, x, x);
        a.solve();
        assert!(a.range_of(x).upper().is_some(), "still bounded from the first constraint");
    }

    #[test]
    fn constraint_order_does_not_change_the_result() {
        let mut p = ExprPool::new();
        let n = p.ret_sym(0x40);
        let m = p.ret_sym(0x44);
        let c10 = p.constant(10);
        let c50 = p.constant(50);
        let cons = [(CmpOp::Lt, n, m), (CmpOp::Lt, m, c50), (CmpOp::Ge, n, c10)];
        let mut fwd = IntervalAnalysis::new(&p);
        fwd.assume_all(&cons);
        fwd.solve();
        let mut rev = IntervalAnalysis::new(&p);
        for c in cons.iter().rev() {
            rev.assume(c.0, c.1, c.2);
        }
        rev.solve();
        assert_eq!(fwd.range_of(n), rev.range_of(n));
        assert_eq!(fwd.range_of(m), rev.range_of(m));
        assert_eq!(fwd.range_of(n).upper(), Some(48), "n < m < 50");
    }
}
