//! Interval abstract interpretation over the symbolic expression pool.
//!
//! DTaint's sanitisation judgement (§IV of the paper) is *syntactic*:
//! any bounding constraint on the tainted length counts as a guard.
//! This crate replaces that pattern match with a small value-range
//! analysis so guard quality is *computed*:
//!
//! * [`IntervalAnalysis::range_of`] evaluates an expression's proven
//!   value range under a path's constraints — `if (n < y)` sanitises a
//!   copy exactly when the analysis can bound `y` (through definition
//!   pairs pushed up by Algorithm 2) tightly enough to fit the
//!   destination;
//! * [`path_feasible`] detects contradictory constraint sets
//!   (`n < 8 && n > 64`): an observation on an infeasible path is not a
//!   finding at all.
//!
//! The domain is the classic integer interval lattice with ±∞
//! sentinels ([`Interval`]); refinement runs a descending fixpoint over
//! the path's constraints with a pass budget and widening as the
//! termination backstop (see [`IntervalAnalysis::solve`]).
//!
//! The analysis only *reads* an [`ExprPool`](dtaint_symex::pool::ExprPool)
//! — every query is a pure function of the pool's interned nodes, which
//! is what keeps results bit-identical when it runs inside the
//! stratum-parallel DDG build.
//!
//! # Examples
//!
//! ```
//! use dtaint_absint::{path_feasible, Interval, IntervalAnalysis};
//! use dtaint_symex::pool::{CmpOp, ExprPool};
//!
//! let mut p = ExprPool::new();
//! let n = p.ret_sym(0x100); // e.g. the length recv returned
//! let c8 = p.constant(8);
//! let c64 = p.constant(64);
//!
//! // `n < 8` proves an upper bound of 7.
//! let mut a = IntervalAnalysis::new(&p);
//! a.assume(CmpOp::Lt, n, c8);
//! a.solve();
//! assert_eq!(a.range_of(n).upper(), Some(7));
//!
//! // `n < 8 && n > 64` is contradictory — the path cannot execute.
//! assert!(!path_feasible(&p, &[(CmpOp::Lt, n, c8), (CmpOp::Gt, n, c64)]));
//! ```

#![warn(missing_docs)]

mod analysis;
mod interval;

pub use analysis::{path_feasible, IntervalAnalysis};
pub use interval::Interval;
