use crate::funcfg::FunctionCfg;
use dtaint_fwbin::Binary;
use dtaint_ir::JumpKind;
use std::collections::{HashMap, HashSet};

/// What a call site targets.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CallTarget {
    /// A function defined in the binary, by entry address.
    Direct(u32),
    /// An imported library function, by name (`strcpy`, `recv`, …).
    Import(String),
    /// An indirect call (`BLX reg` / `JALR reg`); the target is resolved
    /// later by data-structure layout similarity.
    Indirect,
}

/// One call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Callsite {
    /// Entry address of the calling function.
    pub caller: u32,
    /// Address of the block ending in the call.
    pub block: u32,
    /// Address of the call instruction itself.
    pub ins_addr: u32,
    /// Address execution resumes at.
    pub return_to: u32,
    /// The callee.
    pub target: CallTarget,
}

/// The program call graph.
///
/// Direct edges come from `BL`/`JAL`; import calls are kept separate (they
/// are the sources/sinks of the taint analysis, not analyzable callees);
/// indirect sites are recorded for later resolution.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// Entry addresses of all functions, in address order.
    pub functions: Vec<u32>,
    /// Every call site in the binary.
    pub callsites: Vec<Callsite>,
    /// Direct call edges: caller entry → callee entries (deduplicated).
    pub edges: HashMap<u32, Vec<u32>>,
    /// Extra edges added by indirect-call resolution: `(ins_addr, callee)`.
    pub resolved_indirect: Vec<(u32, u32)>,
}

impl CallGraph {
    /// Builds the call graph from the binary and its function CFGs.
    pub fn build(bin: &Binary, cfgs: &[FunctionCfg]) -> CallGraph {
        let mut functions: Vec<u32> = cfgs.iter().map(|c| c.addr).collect();
        functions.sort_unstable();
        let func_set: HashSet<u32> = functions.iter().copied().collect();
        let mut callsites = Vec::new();
        let mut edges: HashMap<u32, Vec<u32>> = HashMap::new();
        for cfg in cfgs {
            edges.entry(cfg.addr).or_default();
            for (&baddr, block) in &cfg.blocks {
                let JumpKind::Call { return_to } = block.jumpkind else { continue };
                let ins_addr = block.end() - dtaint_fwbin::INS_SIZE;
                let target = match block.next_const() {
                    Some(t) if func_set.contains(&t) => CallTarget::Direct(t),
                    Some(t) => match bin.import_at(t) {
                        Some(imp) => CallTarget::Import(imp.name.clone()),
                        // A direct call to an address that is neither a
                        // function nor a stub — treat as unresolvable.
                        None => CallTarget::Indirect,
                    },
                    None => CallTarget::Indirect,
                };
                if let CallTarget::Direct(t) = target {
                    let out = edges.entry(cfg.addr).or_default();
                    if !out.contains(&t) {
                        out.push(t);
                    }
                }
                callsites.push(Callsite {
                    caller: cfg.addr,
                    block: baddr,
                    ins_addr,
                    return_to,
                    target,
                });
            }
        }
        CallGraph { functions, callsites, edges, resolved_indirect: Vec::new() }
    }

    /// Records a resolved indirect call and adds its edge to the graph.
    ///
    /// Used by the data-structure-similarity stage; `ins_addr` must be an
    /// indirect call site.
    pub fn add_resolved_indirect(&mut self, ins_addr: u32, callee: u32) {
        if let Some(cs) = self.callsites.iter().find(|c| c.ins_addr == ins_addr) {
            let caller = cs.caller;
            let out = self.edges.entry(caller).or_default();
            if !out.contains(&callee) {
                out.push(callee);
            }
        }
        self.resolved_indirect.push((ins_addr, callee));
    }

    /// Call sites inside the given function.
    pub fn callsites_of(&self, caller: u32) -> Vec<&Callsite> {
        self.callsites.iter().filter(|c| c.caller == caller).collect()
    }

    /// Direct (and resolved-indirect) callers of `callee`.
    pub fn callers_of(&self, callee: u32) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .edges
            .iter()
            .filter(|(_, callees)| callees.contains(&callee))
            .map(|(&caller, _)| caller)
            .collect();
        out.sort_unstable();
        out
    }

    /// Total number of call-graph edges (the paper's Table II column),
    /// counting one per call site with a known or resolved target.
    pub fn edge_count(&self) -> usize {
        self.callsites.iter().filter(|c| !matches!(c.target, CallTarget::Indirect)).count()
            + self.resolved_indirect.len()
    }

    /// Strongly connected components over direct (and resolved-indirect)
    /// call edges, via iterative Tarjan.
    ///
    /// Deterministic: roots are tried in address order and successors in
    /// edge order, and each component's members are sorted by address.
    /// Components come out in reverse-topological order over the
    /// condensation — every component is emitted after all components it
    /// calls into.
    pub fn sccs(&self) -> Vec<Vec<u32>> {
        let mut index: HashMap<u32, u32> = HashMap::new();
        let mut lowlink: HashMap<u32, u32> = HashMap::new();
        let mut on_stack: HashSet<u32> = HashSet::new();
        let mut stack: Vec<u32> = Vec::new();
        let mut next_index = 0u32;
        let mut comps: Vec<Vec<u32>> = Vec::new();

        for &root in &self.functions {
            if index.contains_key(&root) {
                continue;
            }
            let mut call: Vec<(u32, usize)> = vec![(root, 0)];
            index.insert(root, next_index);
            lowlink.insert(root, next_index);
            next_index += 1;
            stack.push(root);
            on_stack.insert(root);
            while let Some(&mut (v, ref mut ci)) = call.last_mut() {
                let outs = self.edges.get(&v).map(|e| e.as_slice()).unwrap_or(&[]);
                if *ci < outs.len() {
                    let w = outs[*ci];
                    *ci += 1;
                    match index.get(&w) {
                        None => {
                            index.insert(w, next_index);
                            lowlink.insert(w, next_index);
                            next_index += 1;
                            stack.push(w);
                            on_stack.insert(w);
                            call.push((w, 0));
                        }
                        Some(&iw) if on_stack.contains(&w) => {
                            let lv = lowlink.get_mut(&v).unwrap();
                            *lv = (*lv).min(iw);
                        }
                        Some(_) => {}
                    }
                } else {
                    call.pop();
                    if let Some(&(parent, _)) = call.last() {
                        let lv = lowlink[&v];
                        let lp = lowlink.get_mut(&parent).unwrap();
                        *lp = (*lp).min(lv);
                    }
                    if lowlink[&v] == index[&v] {
                        let mut comp = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack.remove(&w);
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        comp.sort_unstable();
                        comps.push(comp);
                    }
                }
            }
        }
        comps
    }

    /// Groups functions into dependency levels over the SCC condensation.
    ///
    /// Stratum 0 holds functions with no callees outside their own
    /// component; every function's out-of-component callees sit in
    /// strictly lower strata. Flattened, this is a valid bottom-up
    /// analysis order. Within one stratum, distinct components never call
    /// each other, so they can be analyzed concurrently; members of one
    /// recursive component share a stratum and must treat each other as
    /// opaque. Each stratum is sorted by address.
    pub fn strata(&self) -> Vec<Vec<u32>> {
        let comps = self.sccs();
        let mut comp_of: HashMap<u32, usize> = HashMap::new();
        for (i, c) in comps.iter().enumerate() {
            for &f in c {
                comp_of.insert(f, i);
            }
        }
        // Tarjan pops callees before callers, so one forward pass over
        // `comps` sees every callee component's level before it is needed.
        let mut level = vec![0usize; comps.len()];
        for (i, c) in comps.iter().enumerate() {
            let mut lv = 0;
            for f in c {
                for w in self.edges.get(f).into_iter().flatten() {
                    let j = comp_of[w];
                    if j != i {
                        debug_assert!(j < i, "condensation must be topological");
                        lv = lv.max(level[j] + 1);
                    }
                }
            }
            level[i] = lv;
        }
        let depth = level.iter().map(|&l| l + 1).max().unwrap_or(0);
        let mut out: Vec<Vec<u32>> = vec![Vec::new(); depth];
        for (i, c) in comps.iter().enumerate() {
            out[level[i]].extend(c.iter().copied());
        }
        for s in &mut out {
            s.sort_unstable();
        }
        out
    }

    /// Functions in post-order over direct call edges: callees before
    /// callers, each function exactly once.
    ///
    /// Recursion cycles are broken at the DFS back edge, so members of a
    /// cycle appear in DFS finish order — the bottom-up pass then analyzes
    /// each exactly once, as the paper specifies.
    pub fn post_order(&self) -> Vec<u32> {
        let mut visited: HashSet<u32> = HashSet::new();
        let mut order = Vec::with_capacity(self.functions.len());
        // Roots: functions nobody calls, then anything left (cycles).
        let mut callees: HashSet<u32> = HashSet::new();
        for outs in self.edges.values() {
            callees.extend(outs.iter().copied());
        }
        let roots: Vec<u32> = self
            .functions
            .iter()
            .copied()
            .filter(|f| !callees.contains(f))
            .chain(self.functions.iter().copied())
            .collect();
        for root in roots {
            if visited.contains(&root) {
                continue;
            }
            // Iterative DFS with finish-time collection.
            let mut stack: Vec<(u32, usize)> = vec![(root, 0)];
            visited.insert(root);
            while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
                let outs = self.edges.get(&node).map(|v| v.as_slice()).unwrap_or(&[]);
                if *idx < outs.len() {
                    let s = outs[*idx];
                    *idx += 1;
                    if !visited.contains(&s) {
                        visited.insert(s);
                        stack.push((s, 0));
                    }
                } else {
                    order.push(node);
                    stack.pop();
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::funcfg::build_all_cfgs;
    use dtaint_fwbin::asm::Assembler;
    use dtaint_fwbin::link::BinaryBuilder;
    use dtaint_fwbin::{Arch, Reg};

    /// Builds a binary where `main` calls `a` and `b`, `a` calls `b`,
    /// and `b` calls the import `recv` plus an indirect target.
    fn sample() -> (Binary, Vec<FunctionCfg>, CallGraph) {
        let arch = Arch::Arm32e;
        let mut main = Assembler::new(arch);
        main.call("a");
        main.call("b");
        main.ret();
        let mut a = Assembler::new(arch);
        a.call("b");
        a.ret();
        let mut b = Assembler::new(arch);
        b.call("recv");
        b.call_reg(Reg(4));
        b.ret();
        let mut bb = BinaryBuilder::new(arch);
        bb.add_function("main", main);
        bb.add_function("a", a);
        bb.add_function("b", b);
        bb.add_import("recv");
        let bin = bb.link().unwrap();
        let cfgs = build_all_cfgs(&bin).unwrap();
        let cg = CallGraph::build(&bin, &cfgs);
        (bin, cfgs, cg)
    }

    #[test]
    fn classifies_direct_import_and_indirect() {
        let (bin, _, cg) = sample();
        let b_addr = bin.function("b").unwrap().addr;
        let kinds: Vec<&CallTarget> =
            cg.callsites_of(b_addr).into_iter().map(|c| &c.target).collect();
        assert!(kinds.contains(&&CallTarget::Import("recv".into())));
        assert!(kinds.contains(&&CallTarget::Indirect));
        let main_addr = bin.function("main").unwrap().addr;
        assert_eq!(cg.edges[&main_addr].len(), 2);
    }

    #[test]
    fn post_order_visits_callees_first() {
        let (bin, _, cg) = sample();
        let order = cg.post_order();
        let pos = |name: &str| {
            let addr = bin.function(name).unwrap().addr;
            order.iter().position(|&x| x == addr).unwrap()
        };
        assert!(pos("b") < pos("a"), "b before a");
        assert!(pos("a") < pos("main"), "a before main");
        assert_eq!(order.len(), 3, "each function exactly once");
    }

    #[test]
    fn recursion_does_not_hang_post_order() {
        let arch = Arch::Mips32e;
        let mut f = Assembler::new(arch);
        f.call("g");
        f.ret();
        let mut g = Assembler::new(arch);
        g.call("f");
        g.ret();
        let mut bb = BinaryBuilder::new(arch);
        bb.add_function("f", f);
        bb.add_function("g", g);
        let bin = bb.link().unwrap();
        let cfgs = build_all_cfgs(&bin).unwrap();
        let cg = CallGraph::build(&bin, &cfgs);
        let order = cg.post_order();
        assert_eq!(order.len(), 2);
    }

    #[test]
    fn callers_of_inverts_edges() {
        let (bin, _, cg) = sample();
        let b_addr = bin.function("b").unwrap().addr;
        let callers = cg.callers_of(b_addr);
        assert_eq!(callers.len(), 2);
    }

    #[test]
    fn resolved_indirect_extends_edges_and_count() {
        let (bin, _, mut cg) = sample();
        let b_addr = bin.function("b").unwrap().addr;
        let a_addr = bin.function("a").unwrap().addr;
        let before = cg.edge_count();
        let site = cg
            .callsites_of(b_addr)
            .into_iter()
            .find(|c| c.target == CallTarget::Indirect)
            .unwrap()
            .ins_addr;
        cg.add_resolved_indirect(site, a_addr);
        assert_eq!(cg.edge_count(), before + 1);
        assert!(cg.edges[&b_addr].contains(&a_addr));
    }

    /// `strata()` invariant: a valid topological order — every callee in a
    /// different component sits in a strictly lower stratum, and the
    /// flattened strata cover each function exactly once.
    fn assert_valid_stratification(cg: &CallGraph) {
        let strata = cg.strata();
        let mut stratum_of: std::collections::HashMap<u32, usize> =
            std::collections::HashMap::new();
        for (lvl, s) in strata.iter().enumerate() {
            for &f in s {
                assert!(stratum_of.insert(f, lvl).is_none(), "{f:#x} in two strata");
            }
        }
        assert_eq!(stratum_of.len(), cg.functions.len(), "every function exactly once");
        let comps = cg.sccs();
        let comp_of: std::collections::HashMap<u32, usize> =
            comps.iter().enumerate().flat_map(|(i, c)| c.iter().map(move |&f| (f, i))).collect();
        for (&caller, callees) in &cg.edges {
            for &callee in callees {
                if comp_of[&caller] == comp_of[&callee] {
                    assert_eq!(
                        stratum_of[&caller], stratum_of[&callee],
                        "cycle members share a stratum"
                    );
                } else {
                    assert!(
                        stratum_of[&callee] < stratum_of[&caller],
                        "callee {callee:#x} must sit strictly below caller {caller:#x}"
                    );
                }
            }
        }
    }

    #[test]
    fn strata_are_topological_on_acyclic_graph() {
        let (bin, _, cg) = sample();
        assert_valid_stratification(&cg);
        // The concrete shape: b (leaf), then a, then main.
        let strata = cg.strata();
        let addr = |name: &str| bin.function(name).unwrap().addr;
        assert_eq!(strata.len(), 3);
        assert_eq!(strata[0], vec![addr("b")]);
        assert_eq!(strata[1], vec![addr("a")]);
        assert_eq!(strata[2], vec![addr("main")]);
    }

    #[test]
    fn strata_handle_mutual_recursion() {
        // main -> f; f <-> g (mutual recursion); f -> h (a leaf).
        let arch = Arch::Mips32e;
        let mut main = Assembler::new(arch);
        main.call("f");
        main.ret();
        let mut f = Assembler::new(arch);
        f.call("g");
        f.call("h");
        f.ret();
        let mut g = Assembler::new(arch);
        g.call("f");
        g.ret();
        let mut h = Assembler::new(arch);
        h.ret();
        let mut bb = BinaryBuilder::new(arch);
        bb.add_function("main", main);
        bb.add_function("f", f);
        bb.add_function("g", g);
        bb.add_function("h", h);
        let bin = bb.link().unwrap();
        let cfgs = build_all_cfgs(&bin).unwrap();
        let cg = CallGraph::build(&bin, &cfgs);
        assert_valid_stratification(&cg);

        let addr = |name: &str| bin.function(name).unwrap().addr;
        let comps = cg.sccs();
        let cycle: Vec<u32> = {
            let mut v = vec![addr("f"), addr("g")];
            v.sort_unstable();
            v
        };
        assert!(comps.contains(&cycle), "f and g form one component");
        assert_eq!(comps.len(), 3, "main and h are singletons");

        let strata = cg.strata();
        assert_eq!(strata.len(), 3);
        assert_eq!(strata[0], vec![addr("h")]);
        assert_eq!(strata[1], cycle, "the cycle shares one stratum");
        assert_eq!(strata[2], vec![addr("main")]);
    }

    #[test]
    fn strata_respect_resolved_indirect_edges() {
        let (bin, _, mut cg) = sample();
        assert_valid_stratification(&cg);
        // Resolving b's indirect site to a creates the cycle a <-> b
        // (a already calls b); stratification must still be valid.
        let a_addr = bin.function("a").unwrap().addr;
        let b_addr = bin.function("b").unwrap().addr;
        let site = cg
            .callsites_of(b_addr)
            .into_iter()
            .find(|c| c.target == CallTarget::Indirect)
            .unwrap()
            .ins_addr;
        cg.add_resolved_indirect(site, a_addr);
        assert_valid_stratification(&cg);
        let comps = cg.sccs();
        assert!(comps.iter().any(|c| c.len() == 2), "a and b now form a cycle");
    }

    #[test]
    fn flattened_strata_are_a_bottom_up_order() {
        let (bin, _, cg) = sample();
        let flat: Vec<u32> = cg.strata().into_iter().flatten().collect();
        let pos = |name: &str| {
            let addr = bin.function(name).unwrap().addr;
            flat.iter().position(|&x| x == addr).unwrap()
        };
        assert!(pos("b") < pos("a"));
        assert!(pos("a") < pos("main"));
        assert_eq!(flat.len(), cg.functions.len());
    }

    #[test]
    fn return_to_is_instruction_after_call() {
        let (bin, _, cg) = sample();
        for cs in &cg.callsites {
            assert_eq!(cs.return_to, cs.ins_addr + 4);
        }
        assert_eq!(cg.functions.len(), bin.functions().len());
    }
}
