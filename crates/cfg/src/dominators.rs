//! Dominator trees over function CFGs.
//!
//! A block `d` dominates `b` when every path from the entry to `b`
//! passes through `d`. The detector's sanitisation reasoning is
//! path-based, but dominators answer the stronger question "is this
//! guard *unavoidable* before the sink?" — useful for ranking findings
//! and for the future-work idea of suggesting guard placements.
//!
//! The implementation is the classic Cooper–Harvey–Kennedy iterative
//! algorithm over the reverse post-order.

use crate::funcfg::FunctionCfg;
use std::collections::HashMap;

/// The dominator tree of one function.
#[derive(Debug, Clone)]
pub struct Dominators {
    /// Immediate dominator per block (the entry maps to itself).
    pub idom: HashMap<u32, u32>,
    entry: u32,
}

impl Dominators {
    /// Computes dominators for a CFG.
    pub fn compute(cfg: &FunctionCfg) -> Dominators {
        let rpo = cfg.rpo();
        let order: HashMap<u32, usize> = rpo.iter().enumerate().map(|(i, &b)| (b, i)).collect();
        let mut idom: HashMap<u32, u32> = HashMap::new();
        idom.insert(cfg.addr, cfg.addr);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                // First processed predecessor.
                let preds = cfg.preds.get(&b).map(|v| v.as_slice()).unwrap_or(&[]);
                let mut new_idom: Option<u32> = None;
                for &p in preds {
                    if !idom.contains_key(&p) {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &order, cur, p),
                    });
                }
                let Some(ni) = new_idom else { continue };
                if idom.get(&b) != Some(&ni) {
                    idom.insert(b, ni);
                    changed = true;
                }
            }
        }
        Dominators { idom, entry: cfg.addr }
    }

    /// True when block `d` dominates block `b` (reflexive).
    pub fn dominates(&self, d: u32, b: u32) -> bool {
        let mut cur = b;
        loop {
            if cur == d {
                return true;
            }
            if cur == self.entry {
                return d == self.entry;
            }
            match self.idom.get(&cur) {
                Some(&n) if n != cur => cur = n,
                _ => return false,
            }
        }
    }

    /// All dominators of `b`, entry-first.
    pub fn dominators_of(&self, b: u32) -> Vec<u32> {
        let mut chain = vec![];
        let mut cur = b;
        loop {
            chain.push(cur);
            if cur == self.entry {
                break;
            }
            match self.idom.get(&cur) {
                Some(&n) if n != cur => cur = n,
                _ => break,
            }
        }
        chain.reverse();
        chain
    }
}

fn intersect(idom: &HashMap<u32, u32>, order: &HashMap<u32, usize>, mut a: u32, mut b: u32) -> u32 {
    while a != b {
        while order.get(&a) > order.get(&b) {
            a = idom[&a];
        }
        while order.get(&b) > order.get(&a) {
            b = idom[&b];
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::funcfg::build_function_cfg;
    use dtaint_fwbin::arm::{ArmIns, Cond};
    use dtaint_fwbin::asm::Assembler;
    use dtaint_fwbin::link::BinaryBuilder;
    use dtaint_fwbin::{Arch, Reg};

    fn cfg_of(f: impl FnOnce(&mut Assembler)) -> FunctionCfg {
        let mut a = Assembler::new(Arch::Arm32e);
        f(&mut a);
        let mut b = BinaryBuilder::new(Arch::Arm32e);
        b.add_function("f", a);
        let bin = b.link().unwrap();
        build_function_cfg(&bin, bin.function("f").unwrap()).unwrap()
    }

    #[test]
    fn straight_line_chain() {
        let cfg = cfg_of(|a| {
            a.arm(ArmIns::Nop);
            a.ret();
        });
        let dom = Dominators::compute(&cfg);
        assert!(dom.dominates(cfg.addr, cfg.addr));
    }

    #[test]
    fn diamond_join_dominated_by_entry_not_arms() {
        let cfg = cfg_of(|a| {
            a.arm(ArmIns::CmpI { rn: Reg(0), imm: 0 });
            a.arm_b(Cond::Eq, "else");
            a.arm(ArmIns::MovI { rd: Reg(1), imm: 1 });
            a.jump("join");
            a.label("else");
            a.arm(ArmIns::MovI { rd: Reg(1), imm: 2 });
            a.label("join");
            a.ret();
        });
        let dom = Dominators::compute(&cfg);
        let blocks: Vec<u32> = cfg.blocks.keys().copied().collect();
        let entry = blocks[0];
        let (then_b, else_b, join) = (blocks[1], blocks[2], blocks[3]);
        assert!(dom.dominates(entry, join));
        assert!(!dom.dominates(then_b, join), "join reachable around the then arm");
        assert!(!dom.dominates(else_b, join));
        assert_eq!(dom.idom[&join], entry);
        assert_eq!(dom.dominators_of(join), vec![entry, join]);
    }

    #[test]
    fn guard_block_dominates_guarded_sink() {
        // entry → guard → sink (no bypass): guard dominates sink.
        let cfg = cfg_of(|a| {
            a.arm(ArmIns::CmpI { rn: Reg(0), imm: 64 });
            a.arm_b(Cond::Ge, "out");
            a.arm(ArmIns::MovI { rd: Reg(2), imm: 0 }); // "sink" block
            a.label("out");
            a.ret();
        });
        let dom = Dominators::compute(&cfg);
        let blocks: Vec<u32> = cfg.blocks.keys().copied().collect();
        let (entry, sink, out) = (blocks[0], blocks[1], blocks[2]);
        assert!(dom.dominates(entry, sink));
        assert!(dom.dominates(entry, out));
        assert!(!dom.dominates(sink, out), "out reachable via the branch");
    }

    #[test]
    fn loop_header_dominates_body() {
        let cfg = cfg_of(|a| {
            a.arm(ArmIns::MovI { rd: Reg(2), imm: 10 });
            a.label("head");
            a.arm(ArmIns::CmpI { rn: Reg(2), imm: 0 });
            a.arm_b(Cond::Eq, "out");
            a.arm(ArmIns::SubI { rd: Reg(2), rn: Reg(2), imm: 1 });
            a.jump("head");
            a.label("out");
            a.ret();
        });
        let dom = Dominators::compute(&cfg);
        let head = cfg.addr + 4;
        for &b in cfg.blocks.keys() {
            if b != cfg.addr {
                assert!(dom.dominates(head, b), "head dominates {b:#x}");
            }
        }
    }
}
