//! Control-flow graphs, loop back edges, and the call graph.
//!
//! DTaint "performs a static analysis on the firmware to generate the CFG
//! for each function separately" (§III-B). This crate provides exactly
//! that layer on top of the lifted IR:
//!
//! * [`FunctionCfg`] — per-function basic blocks and edges, built by an
//!   exact linear sweep (both dialects use fixed-width instructions and
//!   contiguous function bodies), plus DFS back edges for the paper's
//!   *blocks in the same loop are only analyzed once* heuristic,
//! * [`CallGraph`] — call sites classified as direct, import (library) or
//!   indirect, with the post-order traversal the bottom-up
//!   interprocedural analysis walks (callees before callers, each
//!   function visited once; recursion cycles are broken at the DFS
//!   back edge).
//!
//! # Examples
//!
//! ```
//! use dtaint_fwbin::asm::Assembler;
//! use dtaint_fwbin::link::BinaryBuilder;
//! use dtaint_fwbin::Arch;
//! use dtaint_cfg::{build_all_cfgs, CallGraph};
//!
//! let mut main = Assembler::new(Arch::Arm32e);
//! main.call("helper");
//! main.ret();
//! let mut helper = Assembler::new(Arch::Arm32e);
//! helper.call("recv");
//! helper.ret();
//!
//! let mut b = BinaryBuilder::new(Arch::Arm32e);
//! b.add_function("main", main);
//! b.add_function("helper", helper);
//! b.add_import("recv");
//! let bin = b.link()?;
//!
//! let cfgs = build_all_cfgs(&bin)?;
//! let cg = CallGraph::build(&bin, &cfgs);
//! let helper_addr = bin.function("helper").unwrap().addr;
//! let main_addr = bin.function("main").unwrap().addr;
//! let order = cg.post_order();
//! // Bottom-up: helper is visited before main.
//! assert!(order.iter().position(|&a| a == helper_addr)
//!     < order.iter().position(|&a| a == main_addr));
//! # Ok::<(), dtaint_fwbin::Error>(())
//! ```

mod callgraph;
mod dominators;
mod funcfg;

pub use callgraph::{CallGraph, CallTarget, Callsite};
pub use dominators::Dominators;
pub use funcfg::{build_all_cfgs, build_function_cfg, FunctionCfg};
