use dtaint_fwbin::{Binary, Result, Symbol, INS_SIZE};
use dtaint_ir::lift::lift_block;
use dtaint_ir::{IrBlock, JumpKind};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// The control-flow graph of one function.
///
/// Blocks are keyed by start address. Edges within the function are in
/// `succs`/`preds`; a call's only intra-function successor is its return
/// site (the callee is an edge in the [`CallGraph`](crate::CallGraph),
/// not here).
#[derive(Debug, Clone)]
pub struct FunctionCfg {
    /// Entry address (also the function symbol's address).
    pub addr: u32,
    /// Function name from the symbol table.
    pub name: String,
    /// End address (exclusive).
    pub end: u32,
    /// Basic blocks keyed by start address.
    pub blocks: BTreeMap<u32, IrBlock>,
    /// Successor edges.
    pub succs: HashMap<u32, Vec<u32>>,
    /// Predecessor edges.
    pub preds: HashMap<u32, Vec<u32>>,
    /// DFS back edges `(from, to)` — the heads of loops.
    pub back_edges: HashSet<(u32, u32)>,
}

impl FunctionCfg {
    /// Number of basic blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Number of intra-function control-flow edges.
    pub fn edge_count(&self) -> usize {
        self.succs.values().map(Vec::len).sum()
    }

    /// The entry block.
    ///
    /// # Panics
    ///
    /// Panics when the function is empty (zero-size symbol) — builders
    /// never produce such CFGs.
    pub fn entry_block(&self) -> &IrBlock {
        &self.blocks[&self.addr]
    }

    /// True when `(from, to)` closes a loop.
    pub fn is_back_edge(&self, from: u32, to: u32) -> bool {
        self.back_edges.contains(&(from, to))
    }

    /// Addresses of blocks that are part of some loop (a non-trivial
    /// strongly connected component, or a self-loop).
    ///
    /// The paper's loop-copy sink ("copy statements in the loop", §IV)
    /// queries this set.
    pub fn loop_blocks(&self) -> HashSet<u32> {
        // Iterative Tarjan SCC over the block graph.
        #[derive(Clone, Copy)]
        struct NodeInfo {
            index: u32,
            lowlink: u32,
            on_stack: bool,
        }
        let mut info: HashMap<u32, NodeInfo> = HashMap::new();
        let mut next_index = 0u32;
        let mut scc_stack: Vec<u32> = Vec::new();
        let mut result: HashSet<u32> = HashSet::new();
        let mut self_loops: HashSet<u32> = HashSet::new();
        for (&a, outs) in &self.succs {
            if outs.contains(&a) {
                self_loops.insert(a);
            }
        }
        for &root in self.blocks.keys() {
            if info.contains_key(&root) {
                continue;
            }
            let mut call_stack: Vec<(u32, usize)> = vec![(root, 0)];
            info.insert(root, NodeInfo { index: next_index, lowlink: next_index, on_stack: true });
            scc_stack.push(root);
            next_index += 1;
            while let Some(&mut (node, ref mut idx)) = call_stack.last_mut() {
                let succs = self.succs.get(&node).map(|v| v.as_slice()).unwrap_or(&[]);
                if *idx < succs.len() {
                    let s = succs[*idx];
                    *idx += 1;
                    match info.get(&s) {
                        None => {
                            info.insert(
                                s,
                                NodeInfo { index: next_index, lowlink: next_index, on_stack: true },
                            );
                            scc_stack.push(s);
                            next_index += 1;
                            call_stack.push((s, 0));
                        }
                        Some(si) if si.on_stack => {
                            let s_index = si.index;
                            let ni = info.get_mut(&node).expect("node visited");
                            ni.lowlink = ni.lowlink.min(s_index);
                        }
                        Some(_) => {}
                    }
                } else {
                    call_stack.pop();
                    let node_info = info[&node];
                    if let Some(&(parent, _)) = call_stack.last() {
                        let pi = info.get_mut(&parent).expect("parent visited");
                        pi.lowlink = pi.lowlink.min(node_info.lowlink);
                    }
                    if node_info.lowlink == node_info.index {
                        // Pop the SCC rooted here.
                        let mut members = Vec::new();
                        loop {
                            let m = scc_stack.pop().expect("scc stack nonempty");
                            info.get_mut(&m).expect("member visited").on_stack = false;
                            members.push(m);
                            if m == node {
                                break;
                            }
                        }
                        if members.len() > 1 {
                            result.extend(members);
                        } else if self_loops.contains(&members[0]) {
                            result.insert(members[0]);
                        }
                    }
                }
            }
        }
        result
    }

    /// Blocks in reverse post-order from the entry (a topological order
    /// ignoring back edges).
    pub fn rpo(&self) -> Vec<u32> {
        let mut visited = HashSet::new();
        let mut post = Vec::new();
        // Iterative DFS with an explicit stack of (node, next-succ-index).
        let mut stack: Vec<(u32, usize)> = vec![(self.addr, 0)];
        visited.insert(self.addr);
        while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
            let succs = self.succs.get(&node).map(|v| v.as_slice()).unwrap_or(&[]);
            if *idx < succs.len() {
                let s = succs[*idx];
                *idx += 1;
                if visited.insert(s) {
                    stack.push((s, 0));
                }
            } else {
                post.push(node);
                stack.pop();
            }
        }
        post.reverse();
        post
    }
}

/// Builds the CFG for one function symbol.
///
/// The builder first performs a linear sweep over `[sym.addr, sym.addr +
/// sym.size)` to discover *leaders* (the entry, branch targets, and the
/// instruction after every terminator), then lifts one block per leader,
/// bounded by the next leader. This yields non-overlapping blocks even
/// when branches target the middle of straight-line runs.
///
/// # Errors
///
/// Propagates lifting errors ([`dtaint_fwbin::Error::BadInstruction`] on
/// undecodable words, [`dtaint_fwbin::Error::Truncated`] on unmapped
/// reads, [`dtaint_fwbin::Error::BadSymbol`] when the symbol's address
/// range wraps the 32-bit address space).
pub fn build_function_cfg(bin: &Binary, sym: &Symbol) -> Result<FunctionCfg> {
    let start = sym.addr;
    let end = sym
        .addr
        .checked_add(sym.size)
        .ok_or_else(|| dtaint_fwbin::Error::BadSymbol { name: sym.name.clone(), addr: sym.addr })?;

    // Pass 1: discover leaders by lifting one instruction at a time.
    // Terminator-ness comes from the decoded instruction, not from the
    // lifted shape: a `B +0` (jump to the next instruction) looks exactly
    // like fall-through in the IR but still ends its block in pass 2, so
    // its target must be a leader.
    let mut leaders: BTreeSet<u32> = BTreeSet::new();
    leaders.insert(start);
    let mut pc = start;
    while pc < end {
        let word = bin.read_u32(pc).ok_or(dtaint_fwbin::Error::Truncated)?;
        let is_term = match bin.arch {
            dtaint_fwbin::Arch::Arm32e => {
                dtaint_fwbin::arm::ArmIns::decode(word, pc)?.is_terminator()
            }
            dtaint_fwbin::Arch::Mips32e => {
                dtaint_fwbin::mips::MipsIns::decode(word, pc)?.is_terminator()
            }
        };
        if is_term {
            let one = lift_block(bin, pc, pc + INS_SIZE)?;
            for t in one.exit_targets() {
                if (start..end).contains(&t) {
                    leaders.insert(t);
                }
            }
            match one.jumpkind {
                JumpKind::Boring => {
                    if let Some(t) = one.next_const() {
                        if (start..end).contains(&t) {
                            leaders.insert(t);
                        }
                    }
                }
                JumpKind::Call { return_to } => {
                    if (start..end).contains(&return_to) {
                        leaders.insert(return_to);
                    }
                }
                JumpKind::Ret => {}
            }
            if pc + INS_SIZE < end && !one.exit_targets().is_empty() {
                leaders.insert(pc + INS_SIZE);
            }
        }
        pc += INS_SIZE;
    }

    // Pass 2: lift one block per leader, bounded by the next leader.
    let mut blocks: BTreeMap<u32, IrBlock> = BTreeMap::new();
    let leader_list: Vec<u32> = leaders.iter().copied().collect();
    for (i, &leader) in leader_list.iter().enumerate() {
        let limit = leader_list.get(i + 1).copied().unwrap_or(end);
        let block = lift_block(bin, leader, limit)?;
        blocks.insert(leader, block);
    }

    // Edges.
    let mut succs: HashMap<u32, Vec<u32>> = HashMap::new();
    let mut preds: HashMap<u32, Vec<u32>> = HashMap::new();
    for (&a, b) in &blocks {
        let mut out: Vec<u32> = Vec::new();
        for t in b.exit_targets() {
            if blocks.contains_key(&t) {
                out.push(t);
            }
        }
        match b.jumpkind {
            JumpKind::Ret => {}
            JumpKind::Call { return_to } => {
                if blocks.contains_key(&return_to) {
                    out.push(return_to);
                }
            }
            JumpKind::Boring => {
                if let Some(t) = b.next_const() {
                    if blocks.contains_key(&t) {
                        out.push(t);
                    }
                }
            }
        }
        out.dedup();
        for &s in &out {
            preds.entry(s).or_default().push(a);
        }
        succs.insert(a, out);
    }

    // DFS back edges.
    let mut back_edges = HashSet::new();
    let mut on_stack: HashSet<u32> = HashSet::new();
    let mut visited: HashSet<u32> = HashSet::new();
    let mut stack: Vec<(u32, usize)> = vec![(start, 0)];
    visited.insert(start);
    on_stack.insert(start);
    while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
        let ss = succs.get(&node).map(|v| v.as_slice()).unwrap_or(&[]);
        if *idx < ss.len() {
            let s = ss[*idx];
            *idx += 1;
            if on_stack.contains(&s) {
                back_edges.insert((node, s));
            } else if visited.insert(s) {
                on_stack.insert(s);
                stack.push((s, 0));
            }
        } else {
            on_stack.remove(&node);
            stack.pop();
        }
    }

    Ok(FunctionCfg { addr: start, name: sym.name.clone(), end, blocks, succs, preds, back_edges })
}

/// Builds CFGs for every function symbol in the binary, in address order.
///
/// # Errors
///
/// Propagates the first lifting error; see [`build_function_cfg`].
pub fn build_all_cfgs(bin: &Binary) -> Result<Vec<FunctionCfg>> {
    bin.functions().iter().map(|sym| build_function_cfg(bin, sym)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtaint_fwbin::arm::{ArmIns, Cond};
    use dtaint_fwbin::asm::Assembler;
    use dtaint_fwbin::link::BinaryBuilder;
    use dtaint_fwbin::{Arch, Reg};

    fn build(arch: Arch, f: impl FnOnce(&mut Assembler)) -> (Binary, FunctionCfg) {
        let mut a = Assembler::new(arch);
        f(&mut a);
        let mut b = BinaryBuilder::new(arch);
        b.add_function("f", a);
        b.add_import("recv");
        let bin = b.link().unwrap();
        let cfg = build_function_cfg(&bin, bin.function("f").unwrap()).unwrap();
        (bin, cfg)
    }

    #[test]
    fn straight_line_is_single_block() {
        let (_, cfg) = build(Arch::Arm32e, |a| {
            a.arm(ArmIns::MovI { rd: Reg(0), imm: 1 });
            a.arm(ArmIns::AddI { rd: Reg(0), rn: Reg(0), imm: 2 });
            a.ret();
        });
        assert_eq!(cfg.block_count(), 1);
        assert!(cfg.succs[&cfg.addr].is_empty());
        assert!(cfg.back_edges.is_empty());
    }

    #[test]
    fn diamond_has_four_blocks() {
        let (_, cfg) = build(Arch::Arm32e, |a| {
            a.arm(ArmIns::CmpI { rn: Reg(0), imm: 0 });
            a.arm_b(Cond::Eq, "else");
            a.arm(ArmIns::MovI { rd: Reg(1), imm: 1 });
            a.jump("join");
            a.label("else");
            a.arm(ArmIns::MovI { rd: Reg(1), imm: 2 });
            a.label("join");
            a.ret();
        });
        assert_eq!(cfg.block_count(), 4);
        let entry_succs = &cfg.succs[&cfg.addr];
        assert_eq!(entry_succs.len(), 2);
        // Both arms join at the return block.
        let join = *cfg.blocks.keys().last().unwrap();
        assert_eq!(cfg.preds[&join].len(), 2);
        assert!(cfg.back_edges.is_empty());
    }

    #[test]
    fn loop_produces_back_edge() {
        let (_, cfg) = build(Arch::Arm32e, |a| {
            a.arm(ArmIns::MovI { rd: Reg(2), imm: 10 });
            a.label("head");
            a.arm(ArmIns::CmpI { rn: Reg(2), imm: 0 });
            a.arm_b(Cond::Eq, "out");
            a.arm(ArmIns::SubI { rd: Reg(2), rn: Reg(2), imm: 1 });
            a.jump("head");
            a.label("out");
            a.ret();
        });
        assert_eq!(cfg.back_edges.len(), 1);
        let (_, to) = *cfg.back_edges.iter().next().unwrap();
        assert_eq!(to, cfg.addr + 4, "loop head is the second instruction");
    }

    #[test]
    fn call_splits_block_at_return_site() {
        let (bin, cfg) = build(Arch::Arm32e, |a| {
            a.arm(ArmIns::MovI { rd: Reg(0), imm: 0 });
            a.call("recv");
            a.arm(ArmIns::MovR { rd: Reg(4), rm: Reg(0) });
            a.ret();
        });
        assert_eq!(cfg.block_count(), 2);
        let call_block = &cfg.blocks[&cfg.addr];
        assert!(matches!(call_block.jumpkind, JumpKind::Call { .. }));
        // The call block's CFG successor is its return site, not the stub.
        let stub = bin.imports[0].stub_addr;
        assert_eq!(cfg.succs[&cfg.addr], vec![cfg.addr + 8]);
        assert_ne!(cfg.succs[&cfg.addr][0], stub);
    }

    #[test]
    fn branch_into_middle_splits_blocks() {
        // A backward branch into the middle of a straight-line run must
        // split that run into two blocks.
        let (_, cfg) = build(Arch::Arm32e, |a| {
            a.arm(ArmIns::MovI { rd: Reg(0), imm: 0 });
            a.label("mid");
            a.arm(ArmIns::AddI { rd: Reg(0), rn: Reg(0), imm: 1 });
            a.arm(ArmIns::CmpI { rn: Reg(0), imm: 5 });
            a.arm_b(Cond::Lt, "mid");
            a.ret();
        });
        assert!(cfg.blocks.contains_key(&(cfg.addr + 4)), "mid is a leader");
        assert_eq!(cfg.back_edges.len(), 1);
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable_blocks() {
        let (_, cfg) = build(Arch::Mips32e, |a| {
            a.mips_bne(Reg(4), Reg(5), "other");
            a.ret();
            a.label("other");
            a.ret();
        });
        let rpo = cfg.rpo();
        assert_eq!(rpo[0], cfg.addr);
        assert_eq!(rpo.len(), 3);
    }

    #[test]
    fn mips_cfg_with_loop() {
        let (_, cfg) = build(Arch::Mips32e, |a| {
            a.mips(dtaint_fwbin::mips::MipsIns::Ori { rt: Reg(8), rs: Reg::ZERO, imm: 4 });
            a.label("head");
            a.mips(dtaint_fwbin::mips::MipsIns::Addiu { rt: Reg(8), rs: Reg(8), imm: -1 });
            a.mips_bgtz(Reg(8), "head");
            a.ret();
        });
        assert_eq!(cfg.back_edges.len(), 1);
        assert!(cfg.block_count() >= 3);
    }

    #[test]
    fn loop_blocks_cover_the_cycle_only() {
        let (_, cfg) = build(Arch::Arm32e, |a| {
            a.arm(ArmIns::MovI { rd: Reg(2), imm: 10 }); // pre-header
            a.label("head");
            a.arm(ArmIns::CmpI { rn: Reg(2), imm: 0 });
            a.arm_b(Cond::Eq, "out");
            a.arm(ArmIns::SubI { rd: Reg(2), rn: Reg(2), imm: 1 });
            a.jump("head");
            a.label("out");
            a.ret();
        });
        let loops = cfg.loop_blocks();
        assert!(loops.contains(&(cfg.addr + 4)), "loop head in loop");
        assert!(!loops.contains(&cfg.addr), "pre-header not in loop");
        let out = *cfg.blocks.keys().last().unwrap();
        assert!(!loops.contains(&out), "exit block not in loop");
    }

    #[test]
    fn loop_blocks_empty_for_acyclic_cfg() {
        let (_, cfg) = build(Arch::Arm32e, |a| {
            a.arm(ArmIns::CmpI { rn: Reg(0), imm: 0 });
            a.arm_b(Cond::Eq, "x");
            a.label("x");
            a.ret();
        });
        assert!(cfg.loop_blocks().is_empty());
    }

    #[test]
    fn self_loop_detected() {
        let (_, cfg) = build(Arch::Arm32e, |a| {
            a.arm(ArmIns::Nop);
            a.label("spin");
            a.arm(ArmIns::CmpI { rn: Reg(0), imm: 0 });
            a.arm_b(Cond::Ne, "spin");
            a.ret();
        });
        let loops = cfg.loop_blocks();
        assert!(loops.contains(&(cfg.addr + 4)));
    }

    #[test]
    fn build_all_cfgs_covers_every_function() {
        let mut f = Assembler::new(Arch::Arm32e);
        f.ret();
        let mut g = Assembler::new(Arch::Arm32e);
        g.ret();
        let mut b = BinaryBuilder::new(Arch::Arm32e);
        b.add_function("f", f);
        b.add_function("g", g);
        let bin = b.link().unwrap();
        let cfgs = build_all_cfgs(&bin).unwrap();
        assert_eq!(cfgs.len(), 2);
        assert_eq!(cfgs[0].name, "f");
        assert_eq!(cfgs[1].name, "g");
    }

    #[test]
    fn block_count_matches_paper_style_accounting() {
        // Sanity for the Table II "Blocks" column: block totals are the sum
        // over functions.
        let (_, cfg) = build(Arch::Arm32e, |a| {
            a.arm(ArmIns::CmpI { rn: Reg(0), imm: 0 });
            a.arm_b(Cond::Ne, "x");
            a.label("x");
            a.ret();
        });
        assert_eq!(cfg.block_count(), 2);
    }
}
