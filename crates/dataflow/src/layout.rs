//! Data-structure layout inference and similarity — §III-D, Formula 2.
//!
//! At the binary level a `struct` survives only as a family of
//! `base + offset` accesses. DTaint reconstructs, per root pointer, the
//! set of observed fields, and compares two structures by the similarity
//! of their layouts:
//!
//! ```text
//! σ(A, B) = Σ (i,j) |A_i ∩ B_j| / |A_i ∪ B_j|
//! ```
//!
//! where `A_i`/`B_j` are field sets grouped by base address and the pairs
//! `(i, j)` align bases. Bases are compared *structurally* across
//! functions by their access path from the root (e.g. the base
//! `deref(root + 0x58)` has path `[0x58]`), which is what makes layouts
//! from different functions comparable at all.

use dtaint_symex::pool::{ExprPool, SymNode};
use dtaint_symex::{ExprId, FuncSummary, VType};
use std::collections::{BTreeMap, BTreeSet};

/// The access path of a base pointer relative to a root: the sequence of
/// field offsets dereferenced on the way. The root itself has the empty
/// path.
pub type AccessPath = Vec<i64>;

/// The reconstructed layout of one data structure (all fields reachable
/// from one root pointer).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Layout {
    /// Field sets grouped by base access path: `path → offset → type`.
    pub groups: BTreeMap<AccessPath, BTreeMap<i64, VType>>,
}

impl Layout {
    /// Total number of observed fields.
    pub fn field_count(&self) -> usize {
        self.groups.values().map(|g| g.len()).sum()
    }

    /// True when no field was observed.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// The paper's two pre-conditions: one base set contains the other,
    /// and fields at the same base+offset have compatible types.
    pub fn compatible(&self, other: &Layout) -> bool {
        let a: BTreeSet<&AccessPath> = self.groups.keys().collect();
        let b: BTreeSet<&AccessPath> = other.groups.keys().collect();
        if !(a.is_subset(&b) || b.is_subset(&a)) {
            return false;
        }
        for (path, fields_a) in &self.groups {
            let Some(fields_b) = other.groups.get(path) else { continue };
            for (off, ta) in fields_a {
                if let Some(tb) = fields_b.get(off) {
                    if !types_compatible(*ta, *tb) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Formula 2: the sum over aligned bases of the Jaccard similarity of
    /// their field sets. Returns 0.0 for incompatible layouts.
    pub fn similarity(&self, other: &Layout) -> f64 {
        if !self.compatible(other) {
            return 0.0;
        }
        let mut sigma = 0.0;
        for (path, fields_a) in &self.groups {
            let Some(fields_b) = other.groups.get(path) else { continue };
            let a: BTreeSet<i64> = fields_a.keys().copied().collect();
            let b: BTreeSet<i64> = fields_b.keys().copied().collect();
            let inter = a.intersection(&b).count() as f64;
            let union = a.union(&b).count() as f64;
            if union > 0.0 {
                sigma += inter / union;
            }
        }
        sigma
    }
}

fn types_compatible(a: VType, b: VType) -> bool {
    a == VType::Unknown || b == VType::Unknown || a == b || (a.is_pointer() && b.is_pointer())
}

/// Extracts, for every root pointer, the structure layout observed in a
/// function summary.
///
/// Field accesses come from every expression the summary mentions —
/// definition pairs, call arguments, constraints — matching the paper's
/// "collects the `base + offset` expressions to construct the layout"
/// (§III-D). Roots are the function's formal arguments and other
/// non-derived pointers (taint-style structures usually arrive through
/// arguments).
pub fn infer_layouts(summary: &FuncSummary, pool: &ExprPool) -> BTreeMap<ExprId, Layout> {
    let mut layouts: BTreeMap<ExprId, Layout> = BTreeMap::new();
    let mut visit = |e: ExprId| {
        collect_fields(e, summary, pool, &mut layouts);
    };
    for dp in &summary.def_pairs {
        visit(dp.d);
        visit(dp.u);
    }
    for cs in &summary.callsites {
        for &a in &cs.args {
            visit(a);
        }
        if let dtaint_symex::CalleeRef::Indirect(e) = &cs.callee {
            visit(*e);
        }
    }
    for c in &summary.constraints {
        visit(c.lhs);
        visit(c.rhs);
    }
    layouts
}

/// Walks one expression, recording every `deref(base + off)` as a field
/// of the root structure `base` belongs to.
fn collect_fields(
    e: ExprId,
    summary: &FuncSummary,
    pool: &ExprPool,
    layouts: &mut BTreeMap<ExprId, Layout>,
) {
    match pool.node(e) {
        SymNode::Deref { addr, .. } => {
            let (base, off) = pool.base_offset(addr);
            if let Some((root, mut path)) = root_and_path(base, pool) {
                let ftype = summary.type_of(e);
                layouts
                    .entry(root)
                    .or_default()
                    .groups
                    .entry(std::mem::take(&mut path))
                    .or_default()
                    .entry(off)
                    .and_modify(|t| *t = t.join(ftype))
                    .or_insert(ftype);
            }
            collect_fields(addr, summary, pool, layouts);
        }
        SymNode::Add(a, b)
        | SymNode::Mul(a, b)
        | SymNode::And(a, b)
        | SymNode::Or(a, b)
        | SymNode::Xor(a, b)
        | SymNode::Shl(a, b)
        | SymNode::Shr(a, b)
        | SymNode::Cmp(_, a, b) => {
            collect_fields(a, summary, pool, layouts);
            collect_fields(b, summary, pool, layouts);
        }
        _ => {}
    }
}

/// Resolves a base expression to `(root, access path)`.
///
/// `arg0` → `(arg0, [])`; `deref(arg0 + 0x58)` → `(arg0, [0x58])`;
/// `deref(deref(arg0 + 0x58) + 0x10)` → `(arg0, [0x58, 0x10])`. The root
/// must be a leaf symbol (argument, return symbol, initial register,
/// stack base) — constant bases (globals) root at themselves.
pub fn root_and_path(base: ExprId, pool: &ExprPool) -> Option<(ExprId, AccessPath)> {
    match pool.node(base) {
        SymNode::Deref { addr, .. } => {
            let (inner_base, off) = pool.base_offset(addr);
            let (root, mut path) = root_and_path(inner_base, pool)?;
            path.push(off);
            Some((root, path))
        }
        SymNode::Arg(_)
        | SymNode::RetSym(_)
        | SymNode::InitReg(_)
        | SymNode::StackBase
        | SymNode::CallOut { .. }
        | SymNode::Unknown(_)
        | SymNode::Const(_) => Some((base, Vec::new())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtaint_symex::DefPair;

    fn field(pool: &mut ExprPool, root: ExprId, off: i64) -> ExprId {
        let a = pool.add_const(root, off);
        pool.deref(a, 4)
    }

    /// Builds a summary whose def pairs access the given offsets through
    /// arg0, with optional nested fields through `deref(arg0 + link)`.
    fn summary_with_fields(
        pool: &mut ExprPool,
        offs: &[i64],
        nested: &[(i64, i64)],
    ) -> FuncSummary {
        let mut s = FuncSummary::default();
        let arg0 = pool.arg(0);
        let zero = pool.constant(0);
        for &o in offs {
            let d = field(pool, arg0, o);
            s.def_pairs.push(DefPair { d, u: zero, ins_addr: 0, path: 0 });
        }
        for &(link, o) in nested {
            let inner = field(pool, arg0, link);
            let a = pool.add_const(inner, o);
            let d = pool.deref(a, 4);
            s.def_pairs.push(DefPair { d, u: zero, ins_addr: 0, path: 0 });
        }
        s
    }

    #[test]
    fn infer_groups_by_access_path() {
        let mut pool = ExprPool::new();
        let s = summary_with_fields(&mut pool, &[0x4c, 0x58], &[(0x58, 0xec)]);
        let arg0 = pool.arg(0);
        let layouts = infer_layouts(&s, &pool);
        let layout = &layouts[&arg0];
        assert_eq!(layout.groups.len(), 2, "root group + nested group");
        assert_eq!(layout.groups[&vec![]].keys().copied().collect::<Vec<_>>(), vec![0x4c, 0x58]);
        assert_eq!(layout.groups[&vec![0x58]].keys().copied().collect::<Vec<_>>(), vec![0xec]);
        assert_eq!(layout.field_count(), 3);
    }

    #[test]
    fn identical_layouts_have_maximal_similarity() {
        let mut pool = ExprPool::new();
        let s1 = summary_with_fields(&mut pool, &[0x10, 0x14, 0x18], &[]);
        let s2 = summary_with_fields(&mut pool, &[0x10, 0x14, 0x18], &[]);
        let arg0 = pool.arg(0);
        let a = &infer_layouts(&s1, &pool)[&arg0];
        let b = &infer_layouts(&s2, &pool)[&arg0];
        assert!((a.similarity(b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn partial_overlap_scores_jaccard() {
        let mut pool = ExprPool::new();
        let s1 = summary_with_fields(&mut pool, &[0x10, 0x14], &[]);
        let s2 = summary_with_fields(&mut pool, &[0x10, 0x14, 0x18, 0x1c], &[]);
        let arg0 = pool.arg(0);
        let a = &infer_layouts(&s1, &pool)[&arg0];
        let b = &infer_layouts(&s2, &pool)[&arg0];
        // |∩| = 2, |∪| = 4.
        assert!((a.similarity(b) - 0.5).abs() < 1e-9);
        assert!((a.similarity(b) - b.similarity(a)).abs() < 1e-9, "symmetric");
    }

    #[test]
    fn nested_groups_add_their_jaccard_terms() {
        let mut pool = ExprPool::new();
        let s1 = summary_with_fields(&mut pool, &[0x10], &[(0x10, 0x4)]);
        let s2 = summary_with_fields(&mut pool, &[0x10], &[(0x10, 0x4)]);
        let arg0 = pool.arg(0);
        let a = &infer_layouts(&s1, &pool)[&arg0];
        let b = &infer_layouts(&s2, &pool)[&arg0];
        assert!((a.similarity(b) - 2.0).abs() < 1e-9, "two groups, each 1.0");
    }

    #[test]
    fn type_conflict_breaks_compatibility() {
        let mut pool = ExprPool::new();
        let arg0 = pool.arg(0);
        let mut s1 = FuncSummary::default();
        let d1 = field(&mut pool, arg0, 0x10);
        let zero = pool.constant(0);
        s1.def_pairs.push(DefPair { d: d1, u: zero, ins_addr: 0, path: 0 });
        s1.observe_type(d1, VType::Int);
        let mut s2 = FuncSummary::default();
        s2.def_pairs.push(DefPair { d: d1, u: zero, ins_addr: 0, path: 0 });
        s2.observe_type(d1, VType::CharPtr);
        let a = &infer_layouts(&s1, &pool)[&arg0];
        let b = &infer_layouts(&s2, &pool)[&arg0];
        assert!(!a.compatible(b));
        assert_eq!(a.similarity(b), 0.0);
    }

    #[test]
    fn disjoint_base_sets_are_incompatible() {
        let mut pool = ExprPool::new();
        let s1 = summary_with_fields(&mut pool, &[0x10], &[(0x10, 0x4)]);
        let s2 = summary_with_fields(&mut pool, &[0x10], &[(0x20, 0x4)]);
        let arg0 = pool.arg(0);
        let a = &infer_layouts(&s1, &pool)[&arg0];
        let b = &infer_layouts(&s2, &pool)[&arg0];
        // base sets {[], [0x10]} vs {[], [0x20]} — neither contains the
        // other.
        assert!(!a.compatible(b));
    }

    #[test]
    fn pointer_flavours_are_compatible() {
        assert!(types_compatible(VType::Ptr, VType::CharPtr));
        assert!(types_compatible(VType::Unknown, VType::Int));
        assert!(!types_compatible(VType::Int, VType::CharPtr));
    }

    #[test]
    fn root_and_path_of_paper_example() {
        // deref(deref(arg0 + 0x58) + 0xEC): the base of the outer access
        // is deref(arg0+0x58) with path [0x58] from root arg0.
        let mut pool = ExprPool::new();
        let arg0 = pool.arg(0);
        let a1 = pool.add_const(arg0, 0x58);
        let inner = pool.deref(a1, 4);
        let (root, path) = root_and_path(inner, &pool).unwrap();
        assert_eq!(root, arg0);
        assert_eq!(path, vec![0x58]);
    }

    #[test]
    fn callsite_args_contribute_fields() {
        let mut pool = ExprPool::new();
        let arg0 = pool.arg(0);
        let f = field(&mut pool, arg0, 0x30);
        let mut s = FuncSummary::default();
        s.callsites.push(dtaint_symex::CallsiteInfo {
            ins_addr: 0,
            callee: dtaint_symex::CalleeRef::Import("strlen".into()),
            args: vec![f],
            ret: pool.ret_sym(0),
            path: 0,
        });
        let layouts = infer_layouts(&s, &pool);
        assert!(layouts[&arg0].groups[&vec![]].contains_key(&0x30));
    }
}
