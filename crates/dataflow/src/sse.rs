//! SSE-based alias analysis — structured-symbolic-expression matching.
//!
//! The paper's Algorithm 1 ([`alias_replace`](crate::alias::alias_replace))
//! recognises one store shape, `deref(base1 + o1) = base2 + o2`, and
//! rewrites other definitions once, forward only (`base2 → name - o2`).
//! That misses multi-level chains: when the intermediate pointer of
//! `deref(deref(base + o1) + o2)` is itself only reachable through an
//! alias, a single pass can never connect the two names — the rewrite
//! that would expose the match is only produced *by* the pass itself.
//!
//! The same first author's follow-up work ("Finding Taint-Style
//! Vulnerabilities in Linux-based Embedded Firmware with SSE-based Alias
//! Analysis") replaces the single pass with structured-symbolic-
//! expression matching. This module ports that idea onto our expression
//! pool:
//!
//! * every definition name is canonicalised into an SSE — a root base
//!   plus a spine of `(offset, width)` deref steps ([`canonicalize`]);
//! * recognised aliases are indexed by base so each round is a hash
//!   lookup per pointer, not a scan;
//! * substitution runs in **both** directions — forward
//!   (`base → name - offset`) like Algorithm 1, and reverse
//!   (`name → base + offset`), which resolves a memory name back to the
//!   pointer value it holds;
//! * rounds iterate to a fixpoint: a twin appended in round *k* can seed
//!   both new aliases and new matches in round *k+1*, connecting chains
//!   of arbitrary (bounded) depth;
//! * the expression universe is bounded by [`AliasConfig::max_depth`]
//!   (deref nesting) and the iteration by [`AliasConfig::max_rounds`];
//!   a pass that still had pending rewrites at the round cap reports
//!   itself as saturated.
//!
//! Unlike store mode, SSE admits **writable-global** constants as alias
//! bases: `*(g_ctx + 8) = g_req` is precisely the cross-callee chain
//! link embedded firmware builds out of static config structs. The
//! caller supplies the "is this constant a writable address" predicate
//! since only it can see the binary's section map.

use crate::alias::{AliasConfig, AliasEntry};
use dtaint_fwbin::{Binary, SymbolKind};
use dtaint_symex::pool::{ExprPool, SymNode};
use dtaint_symex::{DefPair, ExprId, FuncSummary};
use std::collections::{HashMap, HashSet};

/// Resolves a constant address to the base address of the writable
/// global object containing it — the `global_base` oracle the SSE pass
/// needs, backed by the binary's symbol map.
///
/// A constant inside a sized writable `Object` symbol resolves to the
/// symbol's start; a constant in a writable section with no covering
/// symbol is treated as its own zero-offset object; anything immutable
/// or unmapped resolves to `None`.
#[derive(Debug, Clone, Default)]
pub struct GlobalMap {
    /// `(start, end)` of sized writable `Object` symbols, sorted.
    objects: Vec<(u32, u32)>,
    /// `(start, end)` of writable sections, sorted.
    writable: Vec<(u32, u32)>,
}

impl GlobalMap {
    /// Indexes the binary's writable objects and sections.
    pub fn build(bin: &Binary) -> GlobalMap {
        let mut objects: Vec<(u32, u32)> = bin
            .symbols
            .iter()
            .filter(|s| {
                s.kind == SymbolKind::Object && s.size > 0 && !bin.is_immutable_addr(s.addr)
            })
            .map(|s| (s.addr, s.addr.saturating_add(s.size)))
            .collect();
        objects.sort_unstable();
        let mut writable: Vec<(u32, u32)> = bin
            .sections
            .iter()
            .filter(|s| !bin.is_immutable_addr(s.addr))
            .map(|s| (s.addr, s.addr.saturating_add(s.size)))
            .collect();
        writable.sort_unstable();
        GlobalMap { objects, writable }
    }

    /// The base of the writable object containing `c`, if any.
    pub fn base_of(&self, c: i64) -> Option<i64> {
        let addr = u32::try_from(c).ok()?;
        if let Some(&(start, _)) = range_containing(&self.objects, addr) {
            return Some(i64::from(start));
        }
        if range_containing(&self.writable, addr).is_some() {
            return Some(c);
        }
        None
    }
}

/// Binary-searches sorted, non-overlapping `(start, end)` ranges.
fn range_containing(ranges: &[(u32, u32)], addr: u32) -> Option<&(u32, u32)> {
    let i = ranges.partition_point(|&(start, _)| start <= addr);
    let r = ranges.get(i.checked_sub(1)?)?;
    (addr < r.1).then_some(r)
}

/// One deref step of an SSE spine: the constant offset added to the
/// inner value before dereferencing, and the access width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpineStep {
    /// Constant offset along the normalised `Add` spine.
    pub offset: i64,
    /// Access width in bytes.
    pub width: u8,
}

/// A structured symbolic expression: a deref-free root base plus the
/// spine of deref steps applied to it, innermost first.
///
/// `deref(deref(arg0 + 0x4C) + 8, 4)` canonicalises to base `arg0`,
/// spine `[(0x4C, w_inner), (8, 4)]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Sse {
    /// Root base expression (contains no `Deref`).
    pub base: ExprId,
    /// Deref steps, innermost first. Never empty.
    pub spine: Vec<SpineStep>,
}

impl Sse {
    /// Deref depth of the canonicalised expression.
    pub fn depth(&self) -> u32 {
        self.spine.len() as u32
    }
}

/// Canonicalises `e` into an [`Sse`] when it is a *structured* memory
/// name: a chain of derefs whose every address is `inner + constant`
/// and whose root base touches no memory. Returns `None` for
/// non-memory expressions and for irregular shapes (symbolic offsets,
/// derefs buried inside arithmetic).
pub fn canonicalize(pool: &ExprPool, e: ExprId) -> Option<Sse> {
    let mut spine_rev: Vec<SpineStep> = Vec::new();
    let mut cur = e;
    while let SymNode::Deref { addr, width } = pool.node(cur) {
        let (base, offset) = pool.base_offset(addr);
        // `base_offset` peels one `Add(x, const)` level; any
        // remaining arithmetic around a deref is unstructured.
        if !matches!(pool.node(base), SymNode::Deref { .. }) && pool.deref_depth(base) > 0 {
            return None;
        }
        spine_rev.push(SpineStep { offset, width });
        cur = base;
    }
    if spine_rev.is_empty() {
        return None;
    }
    spine_rev.reverse();
    Some(Sse { base: cur, spine: spine_rev })
}

/// Outcome counters of one [`sse_replace`] pass. All values are pure
/// step counts — identical across thread counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SseStats {
    /// Fixpoint rounds executed (0 when the summary had nothing to do).
    pub rounds: u32,
    /// Definition pairs appended.
    pub rewrites: u32,
    /// Deepest deref nesting among appended names.
    pub max_depth: u32,
    /// True when the round budget ran out with rewrites still pending.
    pub saturated: bool,
}

/// Runs SSE alias matching over one summary to a bounded fixpoint,
/// appending rewritten definition pairs and accumulating the SSE
/// counters into the summary. Deterministic: all iteration follows
/// discovery order, never hash order.
///
/// `global_base` maps a constant address to the start of the writable
/// object containing it (`None` for non-global constants). The pool
/// folds `g + off` into one constant, so recovering the `(object,
/// offset)` split needs the binary's symbol map — only the caller has
/// it.
pub fn sse_replace(
    summary: &mut FuncSummary,
    pool: &mut ExprPool,
    cfg: &AliasConfig,
    global_base: &dyn Fn(i64) -> Option<i64>,
) -> SseStats {
    let mut stats = SseStats::default();
    if cfg.max_rounds == 0
        || !summary.def_pairs.iter().any(|dp| matches!(pool.node(dp.d), SymNode::Deref { .. }))
    {
        return stats;
    }

    // (d, u) pairs already present — the append-side dedup.
    let mut seen: HashSet<(ExprId, ExprId)> =
        summary.def_pairs.iter().map(|p| (p.d, p.u)).collect();

    // Expressions used as a deref base anywhere in the summary. The
    // executor only types load/store bases it saw locally; a callee's
    // buffer argument is still a pointer if *we* deref it.
    let mut deref_bases: HashSet<ExprId> = HashSet::new();
    let mut scratch: Vec<ExprId> = Vec::new();

    let mut aliases: Vec<AliasEntry> = Vec::new();
    let mut alias_seen: HashSet<AliasEntry> = HashSet::new();
    // Alias indices by base expression, in discovery order.
    let mut by_base: HashMap<ExprId, Vec<usize>> = HashMap::new();
    let mut bases_scanned = 0usize;

    // Pair indices appended by the previous round; the work list when
    // the alias set did not change.
    let mut frontier: Vec<usize> = (0..summary.def_pairs.len()).collect();

    for round in 1..=cfg.max_rounds {
        stats.rounds = round;

        // Refresh the deref-base set from pairs not yet scanned.
        for dp in &summary.def_pairs[bases_scanned..] {
            for side in [dp.d, dp.u] {
                pool.ptrs_in_into(side, &mut scratch);
                for &b in &scratch {
                    deref_bases.insert(b);
                }
            }
        }
        bases_scanned = summary.def_pairs.len();

        // Collect aliases over all pairs (the deref-base set may have
        // grown, making previously rejected pairs eligible).
        let mut grew = false;
        for i in 0..summary.def_pairs.len() {
            let dp = summary.def_pairs[i];
            let Some(entry) = alias_entry(summary, pool, &dp, &deref_bases, global_base) else {
                continue;
            };
            if alias_seen.insert(entry) {
                by_base.entry(entry.base).or_default().push(aliases.len());
                aliases.push(entry);
                grew = true;
            }
        }
        if aliases.is_empty() {
            stats.rounds = round - 1;
            break;
        }

        // New aliases can match any pair; otherwise only last round's
        // twins can produce anything new.
        let work: Vec<usize> = if grew {
            (0..summary.def_pairs.len()).collect()
        } else {
            std::mem::take(&mut frontier)
        };

        let mut appended: Vec<DefPair> = Vec::new();
        for &i in &work {
            let dp = summary.def_pairs[i];
            if !matches!(pool.node(dp.d), SymNode::Deref { .. }) {
                continue;
            }
            // Forward: replace an aliased base with its memory name.
            // A folded global address `Const(obj + off)` matches an
            // alias of `Const(obj)` with the residual offset re-added.
            pool.ptrs_in_into(dp.d, &mut scratch);
            let ptrs = std::mem::take(&mut scratch);
            for &ptr in &ptrs {
                let (lookup, residual) = match pool.node(ptr) {
                    SymNode::Const(c) => match global_base(c) {
                        Some(s) if s != c => (pool.constant(s), c - s),
                        _ => (ptr, 0),
                    },
                    _ => (ptr, 0),
                };
                let Some(idxs) = by_base.get(&lookup) else { continue };
                // Indices, not a borrow: `push_twin` needs the pool.
                for ai in idxs.clone() {
                    let alias = aliases[ai];
                    // Occurs check: rewriting a name that already
                    // mentions the alias would nest it inside itself
                    // and ping-pong against the reverse direction.
                    if alias.name == dp.d || pool.contains(dp.d, alias.name) {
                        continue;
                    }
                    let repl = pool.add_const(alias.name, residual - alias.offset);
                    push_twin(dp, ptr, repl, pool, cfg, &mut seen, &mut appended, &mut stats);
                }
            }
            scratch = ptrs;
            // Reverse: resolve a memory name occurring strictly inside
            // the definition back to the pointer value it holds.
            for alias in &aliases {
                if alias.name == dp.d || !pool.contains(dp.d, alias.name) {
                    continue;
                }
                let repl = pool.add_const(alias.base, alias.offset);
                push_twin(dp, alias.name, repl, pool, cfg, &mut seen, &mut appended, &mut stats);
            }
        }

        if appended.is_empty() {
            break;
        }
        let start = summary.def_pairs.len();
        stats.rewrites = stats.rewrites.saturating_add(appended.len() as u32);
        summary.def_pairs.extend(appended);
        frontier = (start..summary.def_pairs.len()).collect();
        if round == cfg.max_rounds {
            stats.saturated = true;
        }
    }

    summary.alias_rewrites = summary.alias_rewrites.saturating_add(stats.rewrites);
    summary.sse_rewrites = summary.sse_rewrites.saturating_add(stats.rewrites);
    summary.sse_rounds = summary.sse_rounds.saturating_add(stats.rounds);
    summary.sse_depth = summary.sse_depth.max(stats.max_depth);
    summary.sse_saturated |= stats.saturated;
    stats
}

/// Applies one substitution to `dp.d` and appends the twin when it is
/// new and within the depth budget.
#[allow(clippy::too_many_arguments)]
fn push_twin(
    dp: DefPair,
    from: ExprId,
    to: ExprId,
    pool: &mut ExprPool,
    cfg: &AliasConfig,
    seen: &mut HashSet<(ExprId, ExprId)>,
    appended: &mut Vec<DefPair>,
    stats: &mut SseStats,
) {
    let new_d = pool.replace(dp.d, from, to);
    if new_d == dp.d {
        return;
    }
    let depth = pool.deref_depth(new_d);
    if depth > cfg.max_depth || !seen.insert((new_d, dp.u)) {
        return;
    }
    stats.max_depth = stats.max_depth.max(depth);
    appended.push(DefPair { d: new_d, u: dp.u, ins_addr: dp.ins_addr, path: dp.path });
}

/// Recognises one alias from a definition pair, SSE-style: the name
/// must canonicalise as a structured memory expression, and the stored
/// value must look like a pointer — by inferred type, by being the
/// stack frame, by being used as a deref base somewhere in this
/// summary, or by being an address inside writable global storage (in
/// which case the alias is anchored at the object's base with the
/// interior displacement as its offset).
fn alias_entry(
    summary: &FuncSummary,
    pool: &mut ExprPool,
    dp: &DefPair,
    deref_bases: &HashSet<ExprId>,
    global_base: &dyn Fn(i64) -> Option<i64>,
) -> Option<AliasEntry> {
    canonicalize(pool, dp.d)?;
    let (mut base, mut offset) = pool.base_offset(dp.u);
    if base == dp.d {
        // Self-referential store (`*p = *p + 8`); never an alias link.
        return None;
    }
    let pointer_like = match pool.node(base) {
        SymNode::Const(c) => match global_base(c) {
            Some(s) => {
                if s != c {
                    base = pool.constant(s);
                    offset += c - s;
                }
                true
            }
            None => false,
        },
        SymNode::StackBase => true,
        _ => {
            summary.type_of(dp.u).is_pointer()
                || summary.type_of(base).is_pointer()
                || deref_bases.contains(&dp.u)
                || deref_bases.contains(&base)
        }
    };
    if !pointer_like {
        return None;
    }
    Some(AliasEntry { name: dp.d, base, offset })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alias::{alias_replace, AliasMode};
    use dtaint_symex::VType;

    fn cfg() -> AliasConfig {
        AliasConfig { mode: AliasMode::Sse, ..AliasConfig::default() }
    }

    fn no_globals(_: i64) -> Option<i64> {
        None
    }

    /// 256-byte writable objects at 0x30000, 0x30100, … — the shape the
    /// binary's symbol map provides in production.
    fn globals(c: i64) -> Option<i64> {
        if (0x30000..0x40000).contains(&c) {
            Some(c & !0xFF)
        } else {
            None
        }
    }

    #[test]
    fn canonicalize_builds_the_spine() {
        let mut pool = ExprPool::new();
        let arg0 = pool.arg(0);
        let f = pool.add_const(arg0, 0x4C);
        let inner = pool.deref(f, 4);
        let g = pool.add_const(inner, 8);
        let outer = pool.deref(g, 4);
        let sse = canonicalize(&pool, outer).expect("structured");
        assert_eq!(sse.base, arg0);
        assert_eq!(
            sse.spine,
            vec![SpineStep { offset: 0x4C, width: 4 }, SpineStep { offset: 8, width: 4 }]
        );
        assert_eq!(sse.depth(), 2);
        // Non-memory and irregular shapes do not canonicalise.
        assert!(canonicalize(&pool, arg0).is_none());
        let arg1 = pool.arg(1);
        let sym_off = pool.add(inner, arg1);
        let irregular = pool.deref(sym_off, 4);
        assert!(canonicalize(&pool, irregular).is_none());
    }

    /// The store-mode example still works: SSE subsumes Algorithm 1.
    #[test]
    fn sse_covers_the_store_alias_shape() {
        let mut pool = ExprPool::new();
        let arg0 = pool.arg(0);
        let arg1 = pool.arg(1);
        let q4 = pool.add_const(arg1, 4);
        let name = pool.deref(q4, 4);
        let taint = pool.call_out(0x100, 1);
        let p_deref = pool.deref(arg0, 1);
        let mut s = FuncSummary::default();
        s.observe_type(arg0, VType::Ptr);
        s.def_pairs.push(DefPair { d: name, u: arg0, ins_addr: 0x10, path: 0 });
        s.def_pairs.push(DefPair { d: p_deref, u: taint, ins_addr: 0x14, path: 0 });
        let stats = sse_replace(&mut s, &mut pool, &cfg(), &no_globals);
        let expected_d = pool.deref(name, 1);
        assert!(s.def_pairs.iter().any(|p| p.d == expected_d && p.u == taint));
        assert!(stats.rewrites >= 1);
        assert!(!stats.saturated);
        assert_eq!(s.sse_rounds, stats.rounds);
    }

    /// Reverse substitution: the name resolves back to the stored
    /// pointer, connecting a nested name store mode cannot touch.
    #[test]
    fn reverse_substitution_resolves_names_to_values() {
        let mut pool = ExprPool::new();
        let arg0 = pool.arg(0); // ctx
        let arg1 = pool.arg(1); // req
        let arg2 = pool.arg(2); // buf
        let co = pool.add_const(arg0, 0x20);
        let n1 = pool.deref(co, 4); // deref(ctx+0x20) — holds req
        let n1u = pool.add_const(n1, 0x40);
        let nested = pool.deref(n1u, 4); // deref(deref(ctx+0x20)+0x40)
        let out = pool.call_out(0x100, 1);
        let buf_deref = pool.deref(arg2, 1);

        let mut s = FuncSummary::default();
        s.observe_type(arg1, VType::Ptr);
        s.def_pairs.push(DefPair { d: n1, u: arg1, ins_addr: 0, path: 0 });
        s.def_pairs.push(DefPair { d: nested, u: arg2, ins_addr: 4, path: 0 });
        s.def_pairs.push(DefPair { d: buf_deref, u: out, ins_addr: 8, path: 0 });
        sse_replace(&mut s, &mut pool, &cfg(), &no_globals);
        // deref(deref(ctx+0x20)+0x40) = buf, with deref(ctx+0x20) ≡ req,
        // must gain the twin deref(req+0x40) = buf.
        let req_u = pool.add_const(arg1, 0x40);
        let twin = pool.deref(req_u, 4);
        assert!(
            s.def_pairs.iter().any(|p| p.d == twin && p.u == arg2),
            "{:?}",
            s.def_pairs.iter().map(|p| pool.display(p.d).to_string()).collect::<Vec<_>>()
        );
        // Store mode cannot produce that twin.
        let mut s2 = FuncSummary::default();
        s2.observe_type(arg1, VType::Ptr);
        s2.def_pairs.push(DefPair { d: n1, u: arg1, ins_addr: 0, path: 0 });
        s2.def_pairs.push(DefPair { d: nested, u: arg2, ins_addr: 4, path: 0 });
        s2.def_pairs.push(DefPair { d: buf_deref, u: out, ins_addr: 8, path: 0 });
        alias_replace(&mut s2, &mut pool);
        assert!(!s2.def_pairs.iter().any(|p| p.d == twin));
    }

    /// A 3-link chain needs a round-2 rewrite: the round-1 twin seeds
    /// the match that connects the full chain.
    #[test]
    fn fixpoint_connects_chains_across_rounds() {
        let mut pool = ExprPool::new();
        let g_ctx = pool.constant(0x30000);
        let g_req = pool.constant(0x30100);
        let g_inner = pool.constant(0x30200);
        let g_buf = pool.constant(0x30300);
        let co = pool.add_const(g_ctx, 0x20);
        let e1 = pool.deref(co, 4); // deref(g_ctx+0x20) = g_req
        let ro = pool.add_const(g_req, 0x28);
        let e2 = pool.deref(ro, 4); // deref(g_req+0x28) = g_inner
        let uo = pool.add_const(g_inner, 0x40);
        let e3 = pool.deref(uo, 4); // deref(g_inner+0x40) = g_buf
        let out = pool.call_out(0x100, 1);
        let buf_deref = pool.deref(g_buf, 1);

        let mut s = FuncSummary::default();
        s.def_pairs.push(DefPair { d: e1, u: g_req, ins_addr: 0, path: 0 });
        s.def_pairs.push(DefPair { d: e2, u: g_inner, ins_addr: 4, path: 0 });
        s.def_pairs.push(DefPair { d: e3, u: g_buf, ins_addr: 8, path: 0 });
        s.def_pairs.push(DefPair { d: buf_deref, u: out, ins_addr: 12, path: 0 });
        let stats = sse_replace(&mut s, &mut pool, &cfg(), &globals);

        // The reader-side name deref(deref(deref(g_ctx+0x20)+0x28)+0x40)
        // requires composing two forward rewrites.
        let l1 = pool.add_const(e1, 0x28);
        let d1 = pool.deref(l1, 4);
        let l2 = pool.add_const(d1, 0x40);
        let d2 = pool.deref(l2, 4);
        assert!(
            s.def_pairs.iter().any(|p| p.d == d2 && p.u == g_buf),
            "{:?}",
            s.def_pairs.iter().map(|p| pool.display(p.d).to_string()).collect::<Vec<_>>()
        );
        assert!(stats.rounds >= 2, "needs at least two rounds, got {}", stats.rounds);
        assert!(stats.max_depth >= 3);
    }

    /// Depth budget: rewrites past `max_depth` are discarded and the
    /// pass still converges.
    #[test]
    fn depth_budget_bounds_the_universe() {
        let mut pool = ExprPool::new();
        let g_ctx = pool.constant(0x30000);
        let g_req = pool.constant(0x30100);
        let co = pool.add_const(g_ctx, 0x20);
        let e1 = pool.deref(co, 4);
        let uo = pool.add_const(g_req, 0x40);
        let e2 = pool.deref(uo, 4);
        let out = pool.call_out(0x100, 1);
        let mut s = FuncSummary::default();
        s.def_pairs.push(DefPair { d: e1, u: g_req, ins_addr: 0, path: 0 });
        s.def_pairs.push(DefPair { d: e2, u: out, ins_addr: 4, path: 0 });
        let tight = AliasConfig { mode: AliasMode::Sse, max_depth: 1, max_rounds: 6 };
        let stats = sse_replace(&mut s, &mut pool, &tight, &globals);
        assert_eq!(stats.rewrites, 0, "depth-2 twin exceeds the budget");
        for dp in &s.def_pairs {
            assert!(pool.deref_depth(dp.d) <= 1);
        }
    }

    /// Idempotence: a second pass over converged output changes nothing.
    #[test]
    fn idempotent_once_converged() {
        let mut pool = ExprPool::new();
        let g_ctx = pool.constant(0x30000);
        let g_req = pool.constant(0x30100);
        let g_buf = pool.constant(0x30300);
        let co = pool.add_const(g_ctx, 0x20);
        let e1 = pool.deref(co, 4);
        let uo = pool.add_const(g_req, 0x40);
        let e2 = pool.deref(uo, 4);
        let out = pool.call_out(0x100, 1);
        let buf_deref = pool.deref(g_buf, 1);
        let mut s = FuncSummary::default();
        s.def_pairs.push(DefPair { d: e1, u: g_req, ins_addr: 0, path: 0 });
        s.def_pairs.push(DefPair { d: e2, u: g_buf, ins_addr: 4, path: 0 });
        s.def_pairs.push(DefPair { d: buf_deref, u: out, ins_addr: 8, path: 0 });
        let first = sse_replace(&mut s, &mut pool, &cfg(), &globals);
        assert!(!first.saturated);
        let n = s.def_pairs.len();
        let second = sse_replace(&mut s, &mut pool, &cfg(), &globals);
        assert_eq!(s.def_pairs.len(), n, "converged output is a fixpoint");
        assert_eq!(second.rewrites, 0);
    }

    /// The occurs-check regression: a pair of mutually-referential
    /// aliases must not ping-pong forever; the round budget holds and
    /// the pass reports saturation instead of diverging.
    #[test]
    fn mutually_referential_aliases_saturate_within_budget() {
        let mut pool = ExprPool::new();
        let g_a = pool.constant(0x30000);
        let g_b = pool.constant(0x30100);
        let a8 = pool.add_const(g_a, 8);
        let n1 = pool.deref(a8, 4); // deref(g_a+8) = g_b + 8
        let b8v = pool.add_const(g_b, 8);
        let b8 = pool.add_const(g_b, 16);
        let n2 = pool.deref(b8, 4); // deref(g_b+16) = g_a + 8
        let a8v = pool.add_const(g_a, 8);
        let out = pool.call_out(0x100, 1);
        let sink = pool.deref(g_b, 1);
        let mut s = FuncSummary::default();
        s.def_pairs.push(DefPair { d: n1, u: b8v, ins_addr: 0, path: 0 });
        s.def_pairs.push(DefPair { d: n2, u: a8v, ins_addr: 4, path: 0 });
        s.def_pairs.push(DefPair { d: sink, u: out, ins_addr: 8, path: 0 });
        let budget = AliasConfig { mode: AliasMode::Sse, max_depth: 3, max_rounds: 4 };
        let stats = sse_replace(&mut s, &mut pool, &budget, &globals);
        assert!(stats.rounds <= budget.max_rounds);
        // Every appended name respects the depth bound.
        for dp in &s.def_pairs {
            assert!(pool.deref_depth(dp.d) <= budget.max_depth);
        }
    }
}
