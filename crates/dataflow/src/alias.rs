//! Pointer-aliasing recognition — the paper's Algorithm 1.
//!
//! The troublesome alias shape is a pointer saved into memory:
//!
//! ```c
//! int *p = x;  *(q + 4) = p;   // *(*(q+4)) and *p alias
//! ```
//!
//! which, in variable descriptions, is a definition pair
//! `deref(base1 + offset1) = base2 + offset2` (Formula 1). For every
//! other definition whose description mentions `base2`, we add a rewritten
//! twin in which `base2` is replaced by `deref(base1 + offset1) - offset2`,
//! so data flow through either name connects.

use dtaint_symex::pool::{ExprPool, SymNode};
use dtaint_symex::{DefPair, ExprId, FuncSummary};
use std::collections::HashSet;

/// One recognised alias: `name` (a `deref(…)` expression) holds the value
/// `base + offset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AliasEntry {
    /// The memory name holding the pointer (`deref(base1 + offset1)`).
    pub name: ExprId,
    /// The pointer value's base.
    pub base: ExprId,
    /// The pointer value's constant offset.
    pub offset: i64,
}

/// Which alias-recognition algorithm the dataflow stage runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AliasMode {
    /// The paper's Algorithm 1: a single store-based rewrite pass per
    /// local summary. Misses multi-level chains whose links are split
    /// across callees or hidden behind another alias.
    Store,
    /// Structured-symbolic-expression matching (the same first author's
    /// follow-up work): bidirectional substitution iterated to a
    /// fixpoint with bounded deref depth, run both on local summaries
    /// and again after callee substitution so chains composed at a call
    /// site still connect.
    #[default]
    Sse,
}

impl AliasMode {
    /// Stable one-byte tag for cache-salt hashing.
    pub fn salt_tag(self) -> u8 {
        match self {
            AliasMode::Store => 0,
            AliasMode::Sse => 1,
        }
    }
}

impl std::str::FromStr for AliasMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "store" => Ok(AliasMode::Store),
            "sse" => Ok(AliasMode::Sse),
            other => Err(format!("unknown alias mode `{other}` (expected `store` or `sse`)")),
        }
    }
}

impl std::fmt::Display for AliasMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AliasMode::Store => "store",
            AliasMode::Sse => "sse",
        })
    }
}

/// Alias-analysis knobs. Every field is semantic (changes which
/// definition pairs exist) and therefore enters the DDG cache salt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AliasConfig {
    /// Which algorithm to run.
    pub mode: AliasMode,
    /// Maximum deref nesting allowed in an SSE-rewritten name; deeper
    /// rewrites are discarded. Bounds the expression universe so the
    /// fixpoint terminates.
    pub max_depth: u32,
    /// Maximum SSE fixpoint rounds per summary; a pass that still has
    /// pending rewrites at the cap sets `FuncSummary::sse_saturated`.
    pub max_rounds: u32,
}

impl Default for AliasConfig {
    fn default() -> Self {
        AliasConfig { mode: AliasMode::default(), max_depth: 4, max_rounds: 6 }
    }
}

/// Mode-dispatched front for the alias stage: runs the configured
/// algorithm over one summary. `global_base` maps a constant address to
/// the base of the writable global object containing it — the SSE pass
/// uses it to admit global structs as alias bases (store mode never
/// does).
pub fn alias_pass(
    summary: &mut FuncSummary,
    pool: &mut ExprPool,
    cfg: &AliasConfig,
    global_base: &dyn Fn(i64) -> Option<i64>,
) {
    match cfg.mode {
        AliasMode::Store => {
            alias_replace(summary, pool);
        }
        AliasMode::Sse => {
            crate::sse::sse_replace(summary, pool, cfg, global_base);
        }
    }
}

/// Runs Algorithm 1 over a function summary, appending the rewritten
/// definition pairs and returning the alias set that was used.
///
/// A value counts as a pointer when its inferred type is a pointer, when
/// its base is the stack frame, or when it is itself memory-shaped and
/// used as a base elsewhere (the executor types load/store bases as
/// pointers, so this covers the common cases).
pub fn alias_replace(summary: &mut FuncSummary, pool: &mut ExprPool) -> Vec<AliasEntry> {
    // Collect ALIAS: defs of Formula-(1) shape. Hashed dedup keeps
    // collection linear; the Vec preserves deterministic discovery order.
    let mut aliases: Vec<AliasEntry> = Vec::new();
    let mut alias_seen: HashSet<AliasEntry> = HashSet::new();
    for dp in &summary.def_pairs {
        if !matches!(pool.node(dp.d), SymNode::Deref { .. }) {
            continue;
        }
        let (base, offset) = pool.base_offset(dp.u);
        let is_ptr = summary.type_of(dp.u).is_pointer()
            || summary.type_of(base).is_pointer()
            || matches!(pool.node(base), SymNode::StackBase);
        if !is_ptr || matches!(pool.node(base), SymNode::Const(_)) {
            continue;
        }
        let entry = AliasEntry { name: dp.d, base, offset };
        if alias_seen.insert(entry) {
            aliases.push(entry);
        }
    }

    // Collect DOP: defs whose description contains base pointers, and
    // rewrite each matching base with its alias name.
    let mut new_pairs: Vec<DefPair> = Vec::new();
    let mut ptrs: Vec<ExprId> = Vec::new();
    for dp in &summary.def_pairs {
        if !matches!(pool.node(dp.d), SymNode::Deref { .. }) {
            continue;
        }
        pool.ptrs_in_into(dp.d, &mut ptrs);
        for &ptr in &ptrs {
            for alias in &aliases {
                // Do not rewrite a name with itself, and — the occurs
                // check — never rewrite a def that already mentions the
                // alias name: substituting `base → name - offset` there
                // nests the name inside itself, and under fixpoint
                // iteration the reverse substitution would ping-pong.
                if alias.base != ptr || alias.name == dp.d || pool.contains(dp.d, alias.name) {
                    continue;
                }
                let replacement = pool.add_const(alias.name, -alias.offset);
                let new_d = pool.replace(dp.d, ptr, replacement);
                if new_d != dp.d {
                    new_pairs.push(DefPair {
                        d: new_d,
                        u: dp.u,
                        ins_addr: dp.ins_addr,
                        path: dp.path,
                    });
                }
            }
        }
    }
    let mut existing: HashSet<(ExprId, ExprId)> =
        summary.def_pairs.iter().map(|p| (p.d, p.u)).collect();
    let mut appended = 0u32;
    for p in new_pairs {
        if existing.insert((p.d, p.u)) {
            summary.def_pairs.push(p);
            appended += 1;
        }
    }
    summary.alias_rewrites = summary.alias_rewrites.saturating_add(appended);
    aliases
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtaint_symex::VType;

    /// Builds the paper's second alias example:
    /// `int *p = x; *(q+4) = p; *p = taint`
    /// encoded as def pairs
    ///   deref(arg1 + 4) = arg0          (store p into q+4; p == arg0)
    ///   deref(arg0)     = out_...       (write through p)
    /// Algorithm 1 must add `deref(deref(arg1+4)) = out_...`.
    #[test]
    fn store_alias_generates_rewritten_pair() {
        let mut pool = ExprPool::new();
        let arg0 = pool.arg(0); // p's value
        let arg1 = pool.arg(1); // q
        let q4 = pool.add_const(arg1, 4);
        let name = pool.deref(q4, 4); // deref(q+4)
        let taint = pool.call_out(0x100, 1);
        let p_deref = pool.deref(arg0, 1);

        let mut s = FuncSummary::default();
        s.observe_type(arg0, VType::Ptr);
        s.def_pairs.push(DefPair { d: name, u: arg0, ins_addr: 0x10, path: 0 });
        s.def_pairs.push(DefPair { d: p_deref, u: taint, ins_addr: 0x14, path: 0 });

        let aliases = alias_replace(&mut s, &mut pool);
        assert_eq!(aliases.len(), 1);
        assert_eq!(aliases[0], AliasEntry { name, base: arg0, offset: 0 });

        // The rewritten pair names the same object through q.
        let expected_d = pool.deref(name, 1);
        assert!(
            s.def_pairs.iter().any(|p| p.d == expected_d && p.u == taint),
            "missing rewritten pair deref(deref(arg1 + 4)) = taint: {:?}",
            s.def_pairs
                .iter()
                .map(|p| format!("{} = {}", pool.display(p.d), pool.display(p.u)))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn offset_aliases_subtract_the_offset() {
        // deref(arg1) = arg0 + 8  →  arg0 == deref(arg1) - 8.
        // A def through arg0 must gain a twin through deref(arg1) - 8.
        let mut pool = ExprPool::new();
        let arg0 = pool.arg(0);
        let arg1 = pool.arg(1);
        let name = pool.deref(arg1, 4);
        let val = pool.add_const(arg0, 8);
        let field = pool.add_const(arg0, 0x20);
        let d2 = pool.deref(field, 4);
        let seven = pool.constant(7);

        let mut s = FuncSummary::default();
        s.observe_type(val, VType::Ptr);
        s.def_pairs.push(DefPair { d: name, u: val, ins_addr: 0, path: 0 });
        s.def_pairs.push(DefPair { d: d2, u: seven, ins_addr: 4, path: 0 });

        alias_replace(&mut s, &mut pool);
        // Twin: deref((deref(arg1) - 8) + 0x20) = deref(deref(arg1) + 0x18).
        let base = pool.add_const(name, -8);
        let twin_addr = pool.add_const(base, 0x20);
        let twin = pool.deref(twin_addr, 4);
        assert!(
            s.def_pairs.iter().any(|p| p.d == twin && p.u == seven),
            "{:?}",
            s.def_pairs.iter().map(|p| pool.display(p.d).to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn non_pointer_values_do_not_create_aliases() {
        let mut pool = ExprPool::new();
        let arg0 = pool.arg(0);
        let addr = pool.add_const(arg0, 4);
        let d = pool.deref(addr, 4);
        let c = pool.constant(42);
        let mut s = FuncSummary::default();
        s.def_pairs.push(DefPair { d, u: c, ins_addr: 0, path: 0 });
        let aliases = alias_replace(&mut s, &mut pool);
        assert!(aliases.is_empty());
        assert_eq!(s.def_pairs.len(), 1, "no pairs added");
    }

    #[test]
    fn stack_pointers_count_as_pointers() {
        // deref(arg0 + 8) = sp0 - 0x40 (a stack buffer address escapes
        // into a structure).
        let mut pool = ExprPool::new();
        let arg0 = pool.arg(0);
        let f = pool.add_const(arg0, 8);
        let name = pool.deref(f, 4);
        let sp = pool.stack_base();
        let buf = pool.add_const(sp, -0x40);
        let mut s = FuncSummary::default();
        s.def_pairs.push(DefPair { d: name, u: buf, ins_addr: 0, path: 0 });
        let aliases = alias_replace(&mut s, &mut pool);
        assert_eq!(aliases.len(), 1);
        assert_eq!(aliases[0].offset, -0x40);
    }

    #[test]
    fn idempotent_on_second_run() {
        let mut pool = ExprPool::new();
        let arg0 = pool.arg(0);
        let arg1 = pool.arg(1);
        let q4 = pool.add_const(arg1, 4);
        let name = pool.deref(q4, 4);
        let taint = pool.call_out(0x100, 1);
        let p_deref = pool.deref(arg0, 1);
        let mut s = FuncSummary::default();
        s.observe_type(arg0, VType::Ptr);
        s.def_pairs.push(DefPair { d: name, u: arg0, ins_addr: 0, path: 0 });
        s.def_pairs.push(DefPair { d: p_deref, u: taint, ins_addr: 4, path: 0 });
        alias_replace(&mut s, &mut pool);
        let n = s.def_pairs.len();
        alias_replace(&mut s, &mut pool);
        assert_eq!(s.def_pairs.len(), n, "re-running adds nothing new");
    }
}
