//! Bottom-up interprocedural data flow — §III-E, Algorithm 2.
//!
//! DTaint traverses the call graph in post-order (callees before
//! callers), analyzing every function exactly once. At each call site of
//! an already-summarised callee it:
//!
//! * **replaces the return variable** — `ret_{callsite}` becomes the
//!   callee's return expression, with the callee's formals mapped to the
//!   site's actual arguments (`ReplaceRetVariable` + `ReplaceFormalArgs`),
//! * **pushes callee definitions up** — definition pairs that reach the
//!   callee's exit and are rooted in a formal argument or returned
//!   pointer are rewritten into the caller's namespace and both appended
//!   to the caller's pairs and *substituted* into the caller's
//!   expressions, connecting memory written by the callee to loads in
//!   the caller (`UpdatDefPairs`),
//! * **forwards unresolved uses up** — a sink whose arguments still
//!   mention formal arguments bubbles to every caller with
//!   formals replaced by actuals (`ForwardUndefinedUse`), accumulating
//!   the call chain and the path constraints met along the way.
//!
//! The output, [`ProgramDataflow`], is the data-dependency substrate the
//! detector traverses backwards from sinks to sources.
//!
//! # Parallel construction
//!
//! The bottom-up pass is stratified over the call graph's SCC
//! condensation: stratum 0 holds functions whose every out-of-component
//! callee is already done (leaves), stratum *k* those whose callees all
//! sit in strata < *k*. Functions within one stratum never read each
//! other's summaries — distinct components at one level share no edge,
//! and members of one recursive component treat each other as opaque —
//! so a stratum can be summarised concurrently. Each worker forks the
//! master [`ExprPool`] and works on a private copy; the merge re-interns
//! every finished summary into the master in function-address order and
//! renumbers worker-created unknowns onto the master's counter in
//! creation order, which makes the result bit-identical to a
//! single-threaded run regardless of thread count or scheduling.

use crate::cache::{self, CacheRef, Level};
use crate::indirect::{resolve_indirect_calls, ResolvedCall};
use dtaint_cfg::CallGraph;
use dtaint_fwbin::Binary;
use dtaint_symex::pool::{CmpOp, ExprPool, SymNode};
use dtaint_symex::{CalleeRef, Constraint, DefPair, ExprId, FuncSummary};
use dtaint_telemetry::{Clock, SpanEvent, TraceBuffer, TraceSpec};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::time::{Duration, Instant};

/// Below this many functions, a stratum is summarised directly on the
/// master pool: forking the pool and merging back costs more than the
/// work it would spread out.
const PAR_STRATUM_MIN: usize = 8;

/// Switches for the pipeline stages (used by the ablation benches).
#[derive(Debug, Clone)]
pub struct DataflowConfig {
    /// Run pointer-aliasing recognition (Algorithm 1 or its SSE
    /// successor, per [`AliasConfig::mode`]).
    pub enable_alias: bool,
    /// Alias-analysis algorithm and budgets. Every field is semantic
    /// and enters the DDG cache salt.
    pub alias: crate::alias::AliasConfig,
    /// Resolve indirect calls by layout similarity (§III-D).
    pub enable_indirect: bool,
    /// Import names treated as sensitive sinks (bubbled up the call
    /// graph as [`SinkObservation`]s).
    pub sink_names: HashSet<String>,
    /// Treat memory-copy statements in loops as sinks.
    pub loop_copy_sinks: bool,
    /// Cap on sink observations carried per function (safety valve).
    pub max_sinks_per_fn: usize,
    /// Worker threads for the bottom-up pass (1 = fully sequential).
    /// Results are identical for every value.
    pub threads: usize,
    /// Drop sink observations whose path constraints are contradictory
    /// (`n < 8 && n > 64`) during propagation, before they bubble to
    /// callers — the interval-analysis extension. The feasibility check
    /// is a pure function of the pool's interned nodes, so pruning
    /// preserves the bit-identical-across-threads guarantee.
    pub interval_guards: bool,
    /// Per-function fuel for the bottom-up propagation, in work units
    /// (one unit per call-site application plus one per callee term
    /// substituted up). Deterministic step count, never wall-clock:
    /// the set of functions that exhaust it is identical for every
    /// thread count. When a function runs out, the remaining call
    /// sites keep their un-substituted symbolic form (a conservative
    /// partial summary) and the function is flagged
    /// [`FinalSummary::budget_exhausted`]. The default is far above any
    /// realistic function, so it only binds when lowered explicitly.
    pub max_fuel: u64,
    /// Fault-injection drill: panic when propagating the function at
    /// this address. Exercises the per-function `catch_unwind`
    /// isolation in tests; `None` in production.
    pub panic_on: Option<u32>,
    /// When set, the propagation stage records one span per function
    /// into [`ProgramDataflow::trace_events`] against the given clock
    /// epoch (worker *i* uses lane `base_lane + i`). Spans carry
    /// wall-clock durations for trace export only — nothing analysed
    /// downstream reads them, so `None` vs `Some` never changes
    /// findings. `None` (the default) records nothing.
    pub trace: Option<TraceSpec>,
    /// Incremental summary cache handle. When set, each function's final
    /// summary is looked up by content key before Algorithm 2's inner
    /// loop runs, and stored after (see [`crate::cache`]). `None` (the
    /// default) analyzes everything cold. Hits and misses never change
    /// results — only whether they are recomputed or rehydrated.
    pub cache: Option<crate::cache::CacheRef>,
}

impl Default for DataflowConfig {
    fn default() -> Self {
        DataflowConfig {
            enable_alias: true,
            alias: crate::alias::AliasConfig::default(),
            enable_indirect: true,
            sink_names: [
                "strcpy", "strncpy", "sprintf", "memcpy", "strcat", "sscanf", "system", "popen",
            ]
            .into_iter()
            .map(str::to_owned)
            .collect(),
            loop_copy_sinks: true,
            max_sinks_per_fn: 4096,
            threads: 1,
            interval_guards: false,
            max_fuel: 1 << 24,
            panic_on: None,
            trace: None,
            cache: None,
        }
    }
}

/// Wall-clock breakdown of [`build_dataflow`]'s stages.
#[derive(Debug, Clone, Copy, Default)]
pub struct DdgTimings {
    /// Pointer-aliasing recognition (Algorithm 1).
    pub alias: Duration,
    /// Indirect-call resolution by layout similarity (§III-D).
    pub indirect: Duration,
    /// The bottom-up propagation itself (Algorithm 2) — the stage the
    /// `threads` knob parallelises.
    pub propagate: Duration,
    /// Interval feasibility pruning inside propagation (only non-zero
    /// with [`DataflowConfig::interval_guards`]); summed across workers,
    /// so this is CPU time, not wall-clock.
    pub absint: Duration,
}

/// What kind of sink an observation describes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SinkKind {
    /// A call to a sensitive library function.
    Import(String),
    /// A memory copy inside a loop.
    LoopCopy,
}

/// A sensitive sink, as visible from some function up the call chain.
///
/// `args` and `constraints` are expressed in the *observing* function's
/// namespace; when the observation bubbles from callee to caller, formals
/// are replaced by actuals and the caller's own constraints on the
/// calling path are appended.
#[derive(Debug, Clone)]
pub struct SinkObservation {
    /// The sink's kind.
    pub kind: SinkKind,
    /// Instruction address of the sink itself.
    pub sink_ins: u32,
    /// Function that contains the sink.
    pub sink_fn: u32,
    /// Sink arguments in the observing function's namespace. For
    /// [`SinkKind::LoopCopy`] this is `[destination address, value]`.
    pub args: Vec<ExprId>,
    /// Call-site chain from the observing function down to the sink
    /// (instruction addresses; empty when observed in `sink_fn` itself).
    pub call_chain: Vec<u32>,
    /// Path constraints collected along the chain, for the sanitisation
    /// check.
    pub constraints: Vec<(CmpOp, ExprId, ExprId)>,
}

/// Final (post-propagation) summary of one function.
#[derive(Debug, Clone)]
pub struct FinalSummary {
    /// The function's summary with callee knowledge substituted in.
    pub summary: FuncSummary,
    /// Sinks visible from this function (own + inherited from callees).
    pub sinks: Vec<SinkObservation>,
    /// Number of leading entries of `summary.constraints` that are the
    /// function's *own* (path-local) constraints; the rest were pulled
    /// from callees and are not re-exported (transitive pulling would
    /// compound exponentially up the call graph).
    pub local_constraints: usize,
    /// True when propagation for this function panicked and was caught:
    /// the summary was downgraded to an opaque one (no defs, no sinks)
    /// and every expression the failed run interned was rolled back.
    pub panicked: bool,
    /// True when propagation stopped at [`DataflowConfig::max_fuel`];
    /// call sites past the cut-off keep their symbolic form.
    pub budget_exhausted: bool,
    /// Fuel units this function's propagation consumed — a deterministic
    /// step count (a pure function of the callee summaries), never a
    /// wall-clock measurement, so it is safe to compare across thread
    /// counts. Zero for panicked functions.
    pub fuel_used: u64,
}

/// Accumulator for the interval feasibility pruning performed during
/// propagation (one per worker; summed at the merge barrier).
#[derive(Debug, Clone, Copy, Default)]
struct AbsintStats {
    time: Duration,
    pruned: usize,
}

/// The whole-program data-flow result.
#[derive(Debug)]
pub struct ProgramDataflow {
    /// The shared expression pool.
    pub pool: ExprPool,
    /// Final summaries keyed by function entry address. Ordered, so every
    /// whole-program iteration downstream is deterministic.
    pub finals: BTreeMap<u32, FinalSummary>,
    /// The bottom-up analysis order used (the flattened strata).
    pub order: Vec<u32>,
    /// Indirect calls resolved by layout similarity.
    pub resolved_indirect: Vec<ResolvedCall>,
    /// Import call sites across the program: `ins_addr → import name`.
    pub import_sites: HashMap<u32, String>,
    /// Wall-clock breakdown of the build.
    pub timings: DdgTimings,
    /// Sink observations dropped because their accumulated path
    /// constraints are contradictory (only with
    /// [`DataflowConfig::interval_guards`]; zero otherwise).
    pub pruned_infeasible: usize,
    /// Functions whose alias-recognition pass panicked; their summaries
    /// kept the pre-alias form (no rewriting) and were flagged
    /// [`FuncSummary::degraded`]. Sorted by address.
    pub alias_panics: Vec<u32>,
    /// Per-function propagation spans, recorded only when
    /// [`DataflowConfig::trace`] is set (empty otherwise). Ordered by
    /// stratum, then by worker, then by address within each worker's
    /// chunk. Durations are wall-clock and must never feed findings.
    pub trace_events: Vec<SpanEvent>,
}

impl ProgramDataflow {
    /// Sinks observed at "root" level — in functions with no analyzed
    /// callers, where argument substitution has gone as far as it can.
    ///
    /// Deduplicated by sink instruction: each sink is reported in its
    /// most-contextualised form(s).
    pub fn root_sinks(&self) -> Vec<(&FinalSummary, &SinkObservation)> {
        let called: HashSet<u32> = self
            .finals
            .values()
            .flat_map(|f| f.summary.callsites.iter())
            .filter_map(|c| match c.callee {
                CalleeRef::Direct(a) => Some(a),
                _ => None,
            })
            .collect();
        let mut out = Vec::new();
        for f in self.finals.values() {
            if called.contains(&f.summary.addr) {
                continue;
            }
            for s in &f.sinks {
                out.push((f, s));
            }
        }
        out
    }

    /// Every sink observation, across all functions.
    pub fn all_sinks(&self) -> impl Iterator<Item = (&FinalSummary, &SinkObservation)> {
        self.finals.values().flat_map(|f| f.sinks.iter().map(move |s| (f, s)))
    }

    /// Caller/callee names for every call site in the program, keyed by
    /// the call instruction address. Direct callees resolve through
    /// their final summaries, imports keep their import name, and
    /// indirect calls resolve through the layout-similarity matches
    /// (falling back to `"<indirect>"` when unresolved). Feeds the
    /// per-finding provenance chain: each `call_chain` entry becomes a
    /// named callsite-substitution evidence step.
    pub fn callsite_index(&self) -> HashMap<u32, (String, String)> {
        let resolved: HashMap<u32, u32> =
            self.resolved_indirect.iter().map(|r| (r.ins_addr, r.callee)).collect();
        let name_of = |addr: u32| {
            self.finals.get(&addr).map_or_else(|| format!("{addr:#x}"), |f| f.summary.name.clone())
        };
        let mut out = HashMap::new();
        for f in self.finals.values() {
            for cs in &f.summary.callsites {
                let callee = match &cs.callee {
                    CalleeRef::Direct(a) => name_of(*a),
                    CalleeRef::Import(n) => n.clone(),
                    CalleeRef::Indirect(_) => resolved
                        .get(&cs.ins_addr)
                        .map_or_else(|| "<indirect>".to_owned(), |&a| name_of(a)),
                };
                out.insert(cs.ins_addr, (f.summary.name.clone(), callee));
            }
        }
        out
    }

    /// Values known to be stored at the pointee of `ptr` within the given
    /// function's final definition pairs (any access width).
    ///
    /// A copy sink like `strcpy(dst, src)` receives the *pointer* `src`;
    /// the tainted payload is what memory holds at `deref(src)`. This
    /// resolves that indirection.
    pub fn pointee_values(&self, func: u32, ptr: ExprId) -> Vec<ExprId> {
        let Some(f) = self.finals.get(&func) else { return Vec::new() };
        // Value closure of the pointer: the pointer expression itself
        // plus anything the definition pairs say it evaluates to (e.g.
        // `deref(g + 0x10) = &buf` resolves a field-loaded pointer to
        // the buffer it designates).
        let mut vals = vec![ptr];
        let mut i = 0;
        while i < vals.len() && vals.len() < 32 {
            let v = vals[i];
            i += 1;
            for dp in &f.summary.def_pairs {
                if dp.d == v && !vals.contains(&dp.u) {
                    vals.push(dp.u);
                }
            }
        }
        let mut out = Vec::new();
        for dp in &f.summary.def_pairs {
            if let SymNode::Deref { addr, .. } = self.pool.node(dp.d) {
                if vals.contains(&addr) && !out.contains(&dp.u) {
                    out.push(dp.u);
                }
            }
        }
        out
    }
}

/// Runs the bottom-up interprocedural analysis.
///
/// `locals` are the per-function symbolic summaries, all interned in
/// `pool` (see [`FuncSummary::translate_into`] for merging parallel
/// results). The call graph gains edges for indirect calls resolved
/// during the run.
pub fn build_dataflow(
    bin: &Binary,
    callgraph: &mut CallGraph,
    locals: Vec<FuncSummary>,
    mut pool: ExprPool,
    config: &DataflowConfig,
) -> ProgramDataflow {
    let mut timings = DdgTimings::default();
    let mut absint = AbsintStats::default();
    // Ordered, so per-function passes intern into the pool in a fixed
    // order regardless of how `locals` arrived.
    let mut by_addr: BTreeMap<u32, FuncSummary> = locals.into_iter().map(|s| (s.addr, s)).collect();

    // Stage 1: pointer aliasing per function (Algorithm 1 in store
    // mode, the SSE fixpoint in sse mode). Degraded summaries skip it
    // (that is what "degraded" means: optional refinements off); a
    // panic inside it downgrades just that function — the pristine
    // summary is restored, the pool rolled back, and the scan
    // continues.
    let t = Instant::now();
    let globals = crate::sse::GlobalMap::build(bin);
    let mut alias_panics: Vec<u32> = Vec::new();
    if config.enable_alias {
        for s in by_addr.values_mut() {
            if s.degraded {
                continue;
            }
            let mark = pool.mark();
            let saved = s.clone();
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                crate::alias::alias_pass(s, &mut pool, &config.alias, &|c| globals.base_of(c))
            }));
            if r.is_err() {
                pool.rollback(mark);
                *s = saved;
                s.degraded = true;
                alias_panics.push(s.addr);
            }
        }
    }
    timings.alias = t.elapsed();

    // Stage 2: indirect-call resolution (§III-D).
    let t = Instant::now();
    let resolved: Vec<ResolvedCall> = if config.enable_indirect {
        let owned: Vec<FuncSummary> = by_addr.values().cloned().collect();
        resolve_indirect_calls(bin, &owned, &pool)
    } else {
        Vec::new()
    };
    timings.indirect = t.elapsed();
    let resolution: HashMap<u32, u32> = resolved.iter().map(|r| (r.ins_addr, r.callee)).collect();
    for r in &resolved {
        callgraph.add_resolved_indirect(r.ins_addr, r.callee);
    }

    // Import call sites (for the detector's source lookup).
    let mut import_sites: HashMap<u32, String> = HashMap::new();
    for s in by_addr.values() {
        for cs in &s.callsites {
            if let CalleeRef::Import(name) = &cs.callee {
                import_sites.insert(cs.ins_addr, name.clone());
            }
        }
    }

    // Stage 3: bottom-up propagation (Algorithm 2), stratified over the
    // SCC condensation. Strata must be computed *after* indirect
    // resolution, whose edges can deepen (or entangle) the order.
    let t = Instant::now();
    let strata = callgraph.strata();
    let order: Vec<u32> = strata.iter().flatten().copied().collect();
    let comp_of: HashMap<u32, usize> = callgraph
        .sccs()
        .into_iter()
        .enumerate()
        .flat_map(|(i, c)| c.into_iter().map(move |f| (f, i)))
        .collect();
    let threads = config.threads.max(1);
    // Incremental-cache context: content hashes over the *post-alias*
    // local summaries (so Algorithm 1's rewrites are part of the key),
    // computed while `by_addr` is still fully populated — the stratum
    // loop below drains it.
    let mut cache_ctx = DdgCacheCtx::build(bin, config, &by_addr, callgraph);
    let mut finals: BTreeMap<u32, FinalSummary> = BTreeMap::new();
    // Copy the trace spec out so worker closures capture a `Copy` value
    // rather than borrowing `config` through the scope.
    let trace = config.trace;
    let mk_buf = |lane_off: u32| match trace {
        Some(ts) => TraceBuffer::new(ts.clock, ts.base_lane + lane_off, true),
        None => TraceBuffer::new(Clock::new(), 0, false),
    };
    let mut trace_events: Vec<SpanEvent> = Vec::new();

    for stratum in &strata {
        // Pull this stratum's work out in address order.
        let work: Vec<(u32, FuncSummary)> =
            stratum.iter().filter_map(|&f| by_addr.remove(&f).map(|s| (f, s))).collect();
        if work.is_empty() {
            continue;
        }

        // Final scan keys compose bottom-up: a function's key folds its
        // own content hash with the keys of its out-of-component callees,
        // all of which live in earlier strata and are already keyed.
        // Computed before dispatch so parallel workers read a frozen map.
        if let Some(ctx) = cache_ctx.as_mut() {
            for (faddr, summary) in &work {
                let key = ctx.key_for(*faddr, summary, &comp_of, &resolution);
                ctx.final_keys.insert(*faddr, key);
            }
        }

        if threads <= 1 || work.len() < PAR_STRATUM_MIN {
            let mut buf = mk_buf(0);
            for (faddr, summary) in work {
                let t0 = buf.start();
                let key =
                    cache_ctx.as_ref().and_then(|c| c.final_keys.get(&faddr).copied().flatten());
                let before_unknowns = pool.next_unknown_index();
                let pruned_before = absint.pruned;
                let mut hit: Option<(FinalSummary, u32)> = None;
                if let (Some(ctx), Some(k)) = (cache_ctx.as_ref(), key) {
                    if let Some(blob) = ctx.cref.cache.lookup_blob(Level::Ddg, k) {
                        hit = ctx.rehydrate(&blob, faddr, &mut pool);
                    }
                }
                let was_hit = hit.is_some();
                let fs = match hit {
                    Some((fs, blob_pruned)) => {
                        // Re-credit the pruning the cold run performed so
                        // `pruned_infeasible` matches a cold scan exactly.
                        absint.pruned += blob_pruned as usize;
                        fs
                    }
                    None => process_function_caught(
                        bin,
                        faddr,
                        summary,
                        &finals,
                        &comp_of,
                        &resolution,
                        &globals,
                        &mut pool,
                        config,
                        &mut absint,
                    ),
                };
                if buf.is_enabled() {
                    let mut args = BTreeMap::new();
                    args.insert("addr".to_owned(), faddr as u64);
                    args.insert("fuel".to_owned(), fs.fuel_used);
                    buf.record(&fs.summary.name, "ddg_fn", t0, args);
                }
                let created_k = pool.next_unknown_index() - before_unknowns;
                let fn_pruned = (absint.pruned - pruned_before) as u32;
                if let Some(ctx) = cache_ctx.as_mut() {
                    ctx.push_base(before_unknowns, created_k, faddr);
                    ctx.settle(&pool, faddr, &fs, key, was_hit, fn_pruned, created_k);
                }
                finals.insert(faddr, fs);
            }
            trace_events.extend(buf.into_events());
            continue;
        }

        // Fork: contiguous address-ordered chunks, one worker each. Every
        // worker reads only completed lower-strata summaries and writes
        // to a private pool forked from the master.
        let nchunks = threads.min(work.len());
        let chunk_len = work.len().div_ceil(nchunks);
        let mut work = work;
        let chunks: Vec<Vec<(u32, FuncSummary)>> = {
            let mut out = Vec::with_capacity(nchunks);
            while !work.is_empty() {
                let rest = work.split_off(chunk_len.min(work.len()));
                out.push(std::mem::replace(&mut work, rest));
            }
            out
        };
        type WorkerItem = (u32, FinalSummary, std::ops::Range<u32>, bool, u32);
        type WorkerOut = (ExprPool, Vec<WorkerItem>, AbsintStats, Vec<SpanEvent>);
        let fork_base = pool.len();
        let results: Vec<WorkerOut> = {
            let pool_ref = &pool;
            let finals_ref = &finals;
            let comp_ref = &comp_of;
            let res_ref = &resolution;
            let globals_ref = &globals;
            let ctx_ref = cache_ctx.as_ref();
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = chunks
                    .into_iter()
                    .enumerate()
                    .map(|(widx, chunk)| {
                        scope.spawn(move |_| {
                            let mut fork = pool_ref.clone();
                            let mut out = Vec::with_capacity(chunk.len());
                            let mut absint = AbsintStats::default();
                            let mut buf = match trace {
                                Some(ts) => {
                                    TraceBuffer::new(ts.clock, ts.base_lane + widx as u32, true)
                                }
                                None => TraceBuffer::new(Clock::new(), 0, false),
                            };
                            for (faddr, summary) in chunk {
                                let before = fork.next_unknown_index();
                                let pruned_before = absint.pruned;
                                let t0 = buf.start();
                                // Cache probe: decode into the fork — the
                                // fork inherits the master numbering for
                                // every earlier stratum, so recorded
                                // owner bases stay valid; the merge
                                // renumbers this function's own unknowns
                                // exactly as it would a cold result.
                                let key = ctx_ref
                                    .and_then(|c| c.final_keys.get(&faddr).copied().flatten());
                                let mut hit: Option<(FinalSummary, u32)> = None;
                                if let (Some(ctx), Some(k)) = (ctx_ref, key) {
                                    if let Some(blob) = ctx.cref.cache.lookup_blob(Level::Ddg, k) {
                                        hit = ctx.rehydrate(&blob, faddr, &mut fork);
                                    }
                                }
                                let was_hit = hit.is_some();
                                let fs = match hit {
                                    Some((fs, blob_pruned)) => {
                                        absint.pruned += blob_pruned as usize;
                                        fs
                                    }
                                    None => process_function_caught(
                                        bin,
                                        faddr,
                                        summary,
                                        finals_ref,
                                        comp_ref,
                                        res_ref,
                                        globals_ref,
                                        &mut fork,
                                        config,
                                        &mut absint,
                                    ),
                                };
                                if buf.is_enabled() {
                                    let mut args = BTreeMap::new();
                                    args.insert("addr".to_owned(), faddr as u64);
                                    args.insert("fuel".to_owned(), fs.fuel_used);
                                    buf.record(&fs.summary.name, "ddg_fn", t0, args);
                                }
                                let created = before..fork.next_unknown_index();
                                let fn_pruned = (absint.pruned - pruned_before) as u32;
                                out.push((faddr, fs, created, was_hit, fn_pruned));
                            }
                            (fork, out, absint, buf.into_events())
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("ddg worker panicked")).collect()
            })
            .expect("ddg worker scope")
        };

        // Merge: chunks are contiguous and address-ordered, so draining
        // workers in spawn order visits the stratum in address order, and
        // remapping each function's created unknowns in creation order
        // reproduces the single-threaded numbering exactly. Translation
        // is fork-aware: ids below `fork_base` denote the same node in
        // the fork and the master, so only fork-created nodes cost work.
        for (mut fork, items, worker_absint, events) in results {
            absint.time += worker_absint.time;
            absint.pruned += worker_absint.pruned;
            trace_events.extend(events);
            for (faddr, fs, created, was_hit, fn_pruned) in items {
                let base = pool.next_unknown_index();
                let created_k = created.end - created.start;
                let mut memo: HashMap<ExprId, ExprId> = HashMap::new();
                for k in created {
                    let src_id = fork.intern(SymNode::Unknown(k));
                    let dst_id = pool.fresh_unknown();
                    memo.insert(src_id, dst_id);
                }
                let summary =
                    fs.summary.translate_into_fork(&fork, fork_base, &mut pool, &mut memo);
                let sinks = fs
                    .sinks
                    .iter()
                    .map(|sk| SinkObservation {
                        kind: sk.kind.clone(),
                        sink_ins: sk.sink_ins,
                        sink_fn: sk.sink_fn,
                        args: sk
                            .args
                            .iter()
                            .map(|&a| pool.translate_fork(&fork, fork_base, a, &mut memo))
                            .collect(),
                        call_chain: sk.call_chain.clone(),
                        constraints: sk
                            .constraints
                            .iter()
                            .map(|&(op, l, r)| {
                                (
                                    op,
                                    pool.translate_fork(&fork, fork_base, l, &mut memo),
                                    pool.translate_fork(&fork, fork_base, r, &mut memo),
                                )
                            })
                            .collect(),
                    })
                    .collect();
                finals.insert(
                    faddr,
                    FinalSummary {
                        summary,
                        sinks,
                        local_constraints: fs.local_constraints,
                        panicked: fs.panicked,
                        budget_exhausted: fs.budget_exhausted,
                        fuel_used: fs.fuel_used,
                    },
                );
                // Stats and stores run master-side in drain order (which
                // is address order), so counters and cache contents are
                // deterministic for every thread count. Blobs encode in
                // the master numbering, identical to a sequential store.
                if let Some(ctx) = cache_ctx.as_mut() {
                    ctx.push_base(base, created_k, faddr);
                    let key = ctx.final_keys.get(&faddr).copied().flatten();
                    let merged = finals.get(&faddr).expect("just inserted");
                    ctx.settle(&pool, faddr, merged, key, was_hit, fn_pruned, created_k);
                }
            }
        }
    }
    timings.propagate = t.elapsed();
    timings.absint = absint.time;

    ProgramDataflow {
        pool,
        finals,
        order,
        resolved_indirect: resolved,
        import_sites,
        timings,
        pruned_infeasible: absint.pruned,
        alias_panics,
        trace_events,
    }
}

/// Per-scan state for the incremental DDG cache (see [`crate::cache`]).
///
/// Holds the content hashes computed up front, the per-stratum final
/// scan keys, and the unknown-ownership table that makes cached blobs
/// relocatable: every `Unknown(n)` serializes as `(owner_addr, n −
/// base_owner)` and rehydrates against *this* scan's bases.
struct DdgCacheCtx {
    cref: CacheRef,
    salt: u64,
    /// Per-function content hash over raw bytes + post-alias canonical
    /// summary encoding. `None` when the function has no binary symbol
    /// or its summary refuses canonical encoding (then it can never hit
    /// or be stored, and neither can its callers).
    own: HashMap<u32, Option<u64>>,
    /// For members of multi-function SCCs: the combined component hash
    /// (all members fold into every member's key — a change anywhere in
    /// a recursive component invalidates the whole component).
    combined: HashMap<u32, Option<u64>>,
    /// Final scan key per function, filled stratum by stratum.
    final_keys: HashMap<u32, Option<u64>>,
    /// `(base, k, addr)` unknown-ownership ranges in master numbering,
    /// sorted by base (strictly increasing; zero-width ranges omitted).
    /// Backs the abs→(owner, rel) lookup when encoding blobs.
    owner_of: Vec<(u32, u32, u32)>,
    /// `addr → (base, k)` — the inverse, for decoding.
    base_of: HashMap<u32, (u32, u32)>,
}

impl DdgCacheCtx {
    fn build(
        bin: &Binary,
        config: &DataflowConfig,
        by_addr: &BTreeMap<u32, FuncSummary>,
        callgraph: &CallGraph,
    ) -> Option<DdgCacheCtx> {
        let cref = config.cache.clone()?;
        let env = cache::env_digest(bin);
        let salt = cache::ddg_salt(env, config);
        // The own hash covers the function's raw bytes only — not its
        // local summary. The summary is a deterministic function of
        // those bytes plus the config (in the salt) plus the rest of the
        // image's data sections, symbols, and imports (in the env
        // digest), and deliberately NOT of its structural encoding: the
        // parallel merge rebuilds expressions through normalising
        // constructors, so structurally distinct but observationally
        // equal forms exist across thread counts, and keying on them
        // would make warmth thread-dependent.
        let mut own: HashMap<u32, Option<u64>> = HashMap::new();
        for (&addr, s) in by_addr {
            let h = (|| {
                let sym = bin.function_at(addr)?;
                let bytes = bin.bytes_at(sym.addr, sym.size)?;
                Some(cache::function_content_hash(salt, addr, &s.name, &bytes))
            })();
            own.insert(addr, h);
        }
        let mut combined: HashMap<u32, Option<u64>> = HashMap::new();
        for comp in callgraph.sccs() {
            if comp.len() < 2 {
                continue;
            }
            let members: Option<Vec<(u32, u64)>> =
                comp.iter().map(|&a| Some((a, own.get(&a).copied().flatten()?))).collect();
            let c = members.as_deref().map(cache::combine_scc);
            for &a in &comp {
                combined.insert(a, c);
            }
        }
        Some(DdgCacheCtx {
            cref,
            salt,
            own,
            combined,
            final_keys: HashMap::new(),
            owner_of: Vec::new(),
            base_of: HashMap::new(),
        })
    }

    /// The final scan key for one function: the own hash, the
    /// SCC-combined hash, and one marker per call site in local-summary
    /// order. Resolution outcomes and callee keys flow in through the
    /// markers, so a change in any transitive out-of-component callee —
    /// or in how an indirect site resolves — changes the key. `None`
    /// poisons callers too.
    fn key_for(
        &self,
        faddr: u32,
        summary: &FuncSummary,
        comp_of: &HashMap<u32, usize>,
        resolution: &HashMap<u32, u32>,
    ) -> Option<u64> {
        let own = self.own.get(&faddr).copied().flatten()?;
        let combined = match self.combined.get(&faddr) {
            Some(c) => Some((*c)?),
            None => None,
        };
        let mut markers = Vec::with_capacity(summary.callsites.len());
        for cs in &summary.callsites {
            let callee_addr = match &cs.callee {
                CalleeRef::Import(name) => {
                    markers.push(cache::marker::import(name));
                    continue;
                }
                CalleeRef::Direct(a) => Some(*a),
                CalleeRef::Indirect(_) => resolution.get(&cs.ins_addr).copied(),
            };
            let Some(a) = callee_addr else {
                markers.push(cache::marker::unresolved());
                continue;
            };
            if comp_of.get(&a) == comp_of.get(&faddr) {
                markers.push(cache::marker::same_scc());
                continue;
            }
            match self.final_keys.get(&a) {
                Some(Some(k)) => markers.push(*k),
                Some(None) => return None,
                // Callee never summarised (no CFG): propagation will
                // skip the site, deterministically — mark its absence.
                None => markers.push(cache::marker::absent(a)),
            }
        }
        Some(cache::compose_final_key(self.salt, own, combined, &markers))
    }

    /// Records a function's unknown-ownership range for this scan.
    /// Called for every function, hit or miss, in processing order, so
    /// bases are identical to a cold scan's lazily-created numbering.
    fn push_base(&mut self, base: u32, k: u32, addr: u32) {
        if k == 0 {
            return;
        }
        self.owner_of.push((base, k, addr));
        self.base_of.insert(addr, (base, k));
    }

    /// abs unknown index → (owner addr, index relative to owner's base).
    fn map_abs(&self, abs: u32) -> Option<(u32, u32)> {
        let i = self.owner_of.partition_point(|&(b, _, _)| b <= abs);
        let (b, k, a) = *self.owner_of.get(i.checked_sub(1)?)?;
        (abs < b + k).then_some((a, abs - b))
    }

    /// Attempts to rehydrate a cached blob: allocates the blob's `k`
    /// unknowns up front (rel `j` → `base + j`, matching the cold run's
    /// creation order), then decodes. Failure rolls the pool back — node
    /// count *and* unknown counter — and falls through to a recompute.
    fn rehydrate(
        &self,
        blob: &[u8],
        faddr: u32,
        pool: &mut ExprPool,
    ) -> Option<(FinalSummary, u32)> {
        let k = cache::blob_k_unknowns(blob)?;
        let mark = pool.mark();
        let base = pool.next_unknown_index();
        for _ in 0..k {
            pool.fresh_unknown();
        }
        let r = cache::decode_final(blob, pool, &mut |owner, rel| {
            if owner == faddr {
                (rel < k).then_some(base + rel)
            } else {
                self.base_of.get(&owner).and_then(|&(b, bk)| (rel < bk).then_some(b + rel))
            }
        });
        if r.is_none() {
            pool.rollback(mark);
        }
        r
    }

    /// Post-processing bookkeeping for one function: hit/miss counters
    /// and, on an eligible miss, the store. Faulted results — panicked,
    /// budget-exhausted, degraded, or symex-quarantined (`uncacheable`)
    /// — are never stored: a cache must not launder a partial summary
    /// into a healthy-looking one.
    #[allow(clippy::too_many_arguments)]
    fn settle(
        &self,
        pool: &ExprPool,
        faddr: u32,
        fs: &FinalSummary,
        key: Option<u64>,
        was_hit: bool,
        fn_pruned: u32,
        created_k: u32,
    ) {
        let cache_store = &self.cref.cache;
        if was_hit {
            if let Some(k) = key {
                cache_store.note_hit(Level::Ddg, &self.cref.scan, faddr, k);
            }
            return;
        }
        cache_store.note_miss(Level::Ddg, &self.cref.scan, &fs.summary.name, faddr, key);
        let Some(k) = key else { return };
        if fs.panicked
            || fs.budget_exhausted
            || fs.summary.degraded
            || self.cref.uncacheable.contains(&faddr)
        {
            return;
        }
        let blob =
            cache::encode_final(pool, fs, fn_pruned, created_k, &mut |abs| self.map_abs(abs));
        if let Some(b) = blob {
            cache_store.store(Level::Ddg, &self.cref.scan, k, b);
        }
    }
}

/// [`process_function`] behind a panic boundary: a panic while
/// propagating one function rolls the pool back to its pre-function
/// state (erasing every node and unknown the failed run interned, so
/// later functions see bit-identical ids) and yields an opaque
/// [`FinalSummary`] — no defs, no sinks — flagged `panicked`.
#[allow(clippy::too_many_arguments)]
fn process_function_caught(
    bin: &Binary,
    faddr: u32,
    summary: FuncSummary,
    finals: &BTreeMap<u32, FinalSummary>,
    comp_of: &HashMap<u32, usize>,
    resolution: &HashMap<u32, u32>,
    globals: &crate::sse::GlobalMap,
    pool: &mut ExprPool,
    config: &DataflowConfig,
    absint: &mut AbsintStats,
) -> FinalSummary {
    let name = summary.name.clone();
    let mark = pool.mark();
    let saved_absint = *absint;
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        process_function(
            bin, faddr, summary, finals, comp_of, resolution, globals, pool, config, absint,
        )
    }));
    match r {
        Ok(fs) => fs,
        Err(_) => {
            pool.rollback(mark);
            *absint = saved_absint;
            FinalSummary {
                summary: FuncSummary { addr: faddr, name, ..FuncSummary::default() },
                sinks: Vec::new(),
                local_constraints: 0,
                panicked: true,
                budget_exhausted: false,
                fuel_used: 0,
            }
        }
    }
}

/// Summarises one function (Algorithm 2 outer-loop body): collects its
/// own sinks, then applies every already-summarised callee at each call
/// site.
///
/// `finals` must already contain every callee outside the function's own
/// component — the stratified order guarantees it. Callees *inside* the
/// component (recursion) are treated as opaque, so members of a cycle
/// can be summarised in any order, or concurrently, with one result.
#[allow(clippy::too_many_arguments)]
fn process_function(
    bin: &Binary,
    faddr: u32,
    mut summary: FuncSummary,
    finals: &BTreeMap<u32, FinalSummary>,
    comp_of: &HashMap<u32, usize>,
    resolution: &HashMap<u32, u32>,
    globals: &crate::sse::GlobalMap,
    pool: &mut ExprPool,
    config: &DataflowConfig,
    absint: &mut AbsintStats,
) -> FinalSummary {
    if config.panic_on == Some(faddr) {
        panic!("injected fault: ddg panic drill at {faddr:#x}");
    }
    let local_constraints = summary.constraints.len();
    let mut sinks: Vec<SinkObservation> = Vec::new();
    let mut fuel = config.max_fuel;
    let mut budget_exhausted = false;

    // Own loop-copy sinks.
    if config.loop_copy_sinks {
        for lc in &summary.loop_copies {
            let cons = constraints_on_path(&summary, lc.path);
            sinks.push(SinkObservation {
                kind: SinkKind::LoopCopy,
                sink_ins: lc.ins_addr,
                sink_fn: faddr,
                args: vec![lc.dst_addr, lc.value],
                call_chain: vec![],
                constraints: cons,
            });
        }
    }

    // Iterate by index: earlier call sites substitute expressions
    // (ret symbols, callee stores) that later call sites' arguments
    // must observe, so each site is re-read after prior rewrites.
    for idx in 0..summary.callsites.len() {
        let cs = summary.callsites[idx].clone();
        let cs = &cs;
        let callee_addr = match &cs.callee {
            CalleeRef::Direct(a) => Some(*a),
            CalleeRef::Indirect(_) => resolution.get(&cs.ins_addr).copied(),
            CalleeRef::Import(name) => {
                if config.sink_names.contains(name) {
                    let cons = constraints_on_path(&summary, cs.path);
                    sinks.push(SinkObservation {
                        kind: SinkKind::Import(name.clone()),
                        sink_ins: cs.ins_addr,
                        sink_fn: faddr,
                        args: cs.args.clone(),
                        call_chain: vec![],
                        constraints: cons,
                    });
                }
                None
            }
        };
        let Some(callee_addr) = callee_addr else { continue };
        if comp_of.get(&callee_addr) == comp_of.get(&faddr) {
            // Recursion (self or mutual): the callee is in this
            // function's own component, treated as opaque so each
            // function is analyzed exactly once, as the paper
            // prescribes — independent of summarisation order.
            continue;
        }
        let Some(callee) = finals.get(&callee_addr) else { continue };
        // Fuel: one unit for the application itself plus one per callee
        // term that must be substituted up. Charged before applying so
        // the cut-off point is a pure function of the summaries, not of
        // timing or thread count.
        let cost = 1
            + callee.summary.escape_defs.len() as u64
            + callee.summary.ret_values.len() as u64
            + callee.sinks.len() as u64;
        if fuel < cost {
            // Out of fuel: remaining call sites keep their symbolic
            // `ret_{cs}` form — a conservative partial summary.
            budget_exhausted = true;
            break;
        }
        fuel -= cost;
        apply_callee(
            bin,
            &mut summary,
            &mut sinks,
            callee,
            cs.ins_addr,
            cs.path,
            &cs.args,
            pool,
            config,
        );
    }

    // SSE refinement: callee application composes definition pairs from
    // different callees, but `substitute_everywhere` only rewrites
    // expressions that exist at application time — a chain link added
    // by a later callee keeps its nested name unconnected. Re-running
    // the SSE fixpoint over the composed summary closes those
    // cross-callee chains. Store mode stays faithful to the paper's
    // single local pass.
    if config.enable_alias
        && config.alias.mode == crate::alias::AliasMode::Sse
        && !summary.degraded
        && !summary.callsites.is_empty()
    {
        crate::sse::sse_replace(&mut summary, pool, &config.alias, &|c| globals.base_of(c));
    }

    // Interval extension: an observation whose accumulated constraints
    // contradict each other describes a path the program cannot take;
    // dropping it here also stops it bubbling further up the call graph.
    if config.interval_guards {
        let t = Instant::now();
        let before = sinks.len();
        sinks.retain(|sk| dtaint_absint::path_feasible(pool, &sk.constraints));
        absint.pruned += before - sinks.len();
        absint.time += t.elapsed();
    }

    sinks.truncate(config.max_sinks_per_fn);
    FinalSummary {
        summary,
        sinks,
        local_constraints,
        panicked: false,
        budget_exhausted,
        fuel_used: config.max_fuel - fuel,
    }
}

fn constraints_on_path(summary: &FuncSummary, path: u32) -> Vec<(CmpOp, ExprId, ExprId)> {
    summary.constraints.iter().filter(|c| c.path == path).map(|c| (c.op, c.lhs, c.rhs)).collect()
}

/// Applies one summarised callee at one call site (Algorithm 2 body).
#[allow(clippy::too_many_arguments)]
fn apply_callee(
    bin: &Binary,
    summary: &mut FuncSummary,
    sinks: &mut Vec<SinkObservation>,
    callee: &FinalSummary,
    cs_ins: u32,
    cs_path: u32,
    actual_args: &[ExprId],
    pool: &mut ExprPool,
    config: &DataflowConfig,
) {
    // Maps a callee-namespace expression into the caller's namespace.
    let mut stack_unknown: Option<ExprId> = None;
    let mut reg_unknowns: HashMap<u8, ExprId> = HashMap::new();
    let mut map_expr = |e: ExprId, pool: &mut ExprPool| -> ExprId {
        let mut su = stack_unknown;
        let mut ru = std::mem::take(&mut reg_unknowns);
        let out = pool.rewrite(e, &mut |p, id| match p.node(id) {
            SymNode::Arg(i) => Some(match actual_args.get(i as usize) {
                Some(&a) => a,
                None => p.fresh_unknown(),
            }),
            SymNode::StackBase => Some(*su.get_or_insert_with(|| p.fresh_unknown())),
            SymNode::InitReg(r) => Some(*ru.entry(r).or_insert_with(|| p.fresh_unknown())),
            _ => None,
        });
        stack_unknown = su;
        reg_unknowns = ru;
        out
    };

    // (a) ReplaceRetVariable: ret_{cs} → callee return expression.
    let ret_sym = pool.ret_sym(cs_ins);
    if let Some(&rv) = callee.summary.ret_values.first() {
        let mapped = map_expr(rv, pool);
        substitute_everywhere(summary, sinks, pool, ret_sym, mapped);
    }

    // (b) Push callee escape defs: add + substitute.
    let mut subs: Vec<(ExprId, ExprId)> = Vec::new();
    for dp in &callee.summary.escape_defs {
        let d = map_expr(dp.d, pool);
        let u = map_expr(dp.u, pool);
        if d == u {
            continue;
        }
        summary.def_pairs.push(DefPair { d, u, ins_addr: cs_ins, path: cs_path });
        subs.push((d, u));
    }
    for (d, u) in subs {
        substitute_everywhere(summary, sinks, pool, d, u);
    }

    // (c) Pull callee constraints that are *meaningful to the caller* —
    // those over formal arguments and call results (the "check helper"
    // pattern). Constraints over the callee's own stack or saved
    // registers would map to fresh unknowns, carry no information, and
    // compound exponentially up deep call graphs.
    let portable = |p: &ExprPool, e: ExprId| {
        !p.any_node(e, &mut |n| {
            matches!(n, SymNode::StackBase | SymNode::InitReg(_) | SymNode::Unknown(_))
        })
    };
    let callee_cons: Vec<(CmpOp, ExprId, ExprId)> = callee
        .summary
        .constraints
        .iter()
        .take(callee.local_constraints)
        .filter(|c| portable(pool, c.lhs) && portable(pool, c.rhs))
        .map(|c| (c.op, c.lhs, c.rhs))
        .collect();
    for (op, l, r) in &callee_cons {
        if summary.constraints.len() >= 4096 {
            break;
        }
        let lhs = map_expr(*l, pool);
        let rhs = map_expr(*r, pool);
        let c = Constraint { op: *op, lhs, rhs, ins_addr: cs_ins, path: cs_path };
        if !summary.constraints.contains(&c) {
            summary.constraints.push(c);
        }
    }

    // (d) ForwardUndefinedUse: bubble the callee's sinks up — but only
    // those whose arguments still need caller context. The paper pushes
    // *undefined* uses to callers; a sink whose variables no longer
    // mention a formal argument (or a writable global that other
    // functions may define) gains nothing from further substitution and
    // would otherwise fan out combinatorially through dense call graphs.
    let caller_cons = constraints_on_path(summary, cs_path);
    for sk in &callee.sinks {
        if sinks.len() >= config.max_sinks_per_fn {
            break;
        }
        let unresolved = sk.args.iter().any(|&a| {
            pool.any_node(a, &mut |n| match n {
                SymNode::Arg(_) => true,
                SymNode::Const(c) => {
                    let addr = c as u32;
                    bin.section_at(addr).is_some() && !bin.is_immutable_addr(addr)
                }
                _ => false,
            })
        });
        if !unresolved {
            continue;
        }
        let args = sk.args.iter().map(|&a| map_expr(a, pool)).collect();
        let mut constraints: Vec<(CmpOp, ExprId, ExprId)> = sk
            .constraints
            .iter()
            .map(|(op, l, r)| (*op, map_expr(*l, pool), map_expr(*r, pool)))
            .collect();
        constraints.extend(caller_cons.iter().copied());
        let mut call_chain = vec![cs_ins];
        call_chain.extend(&sk.call_chain);
        sinks.push(SinkObservation {
            kind: sk.kind.clone(),
            sink_ins: sk.sink_ins,
            sink_fn: sk.sink_fn,
            args,
            call_chain,
            constraints,
        });
    }
}

/// Substitutes `from → to` across every expression a summary holds,
/// including the sink observations gathered so far.
fn substitute_everywhere(
    summary: &mut FuncSummary,
    sinks: &mut [SinkObservation],
    pool: &mut ExprPool,
    from: ExprId,
    to: ExprId,
) {
    if from == to {
        return;
    }
    for dp in &mut summary.def_pairs {
        // A defined location keeps its name: only *inner* occurrences of
        // `from` rewrite on the d side, otherwise the fact `from = u`
        // would degenerate to `to = u` and the binding would be lost.
        if dp.d != from {
            dp.d = pool.replace(dp.d, from, to);
        }
        dp.u = pool.replace(dp.u, from, to);
    }
    for dp in &mut summary.escape_defs {
        if dp.d != from {
            dp.d = pool.replace(dp.d, from, to);
        }
        dp.u = pool.replace(dp.u, from, to);
    }
    for cs in &mut summary.callsites {
        for a in &mut cs.args {
            *a = pool.replace(*a, from, to);
        }
        if let CalleeRef::Indirect(e) = &mut cs.callee {
            *e = pool.replace(*e, from, to);
        }
    }
    for c in &mut summary.constraints {
        c.lhs = pool.replace(c.lhs, from, to);
        c.rhs = pool.replace(c.rhs, from, to);
    }
    for r in &mut summary.ret_values {
        *r = pool.replace(*r, from, to);
    }
    for lc in &mut summary.loop_copies {
        lc.dst_addr = pool.replace(lc.dst_addr, from, to);
        lc.value = pool.replace(lc.value, from, to);
    }
    for sk in sinks.iter_mut() {
        for a in &mut sk.args {
            *a = pool.replace(*a, from, to);
        }
        for (_, l, r) in &mut sk.constraints {
            *l = pool.replace(*l, from, to);
            *r = pool.replace(*r, from, to);
        }
    }
}
