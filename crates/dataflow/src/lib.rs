//! Data-flow identification — the core of DTaint (§III of the paper).
//!
//! This crate combines the per-function symbolic summaries of
//! [`dtaint_symex`] into whole-program data flow:
//!
//! * [`alias`] — pointer-aliasing recognition (Algorithm 1),
//! * [`layout`] — data-structure layout inference and the similarity
//!   metric σ (Formula 2),
//! * [`indirect`] — indirect-call resolution by layout similarity,
//! * [`interproc`] — the bottom-up interprocedural propagation
//!   (Algorithm 2), producing a [`ProgramDataflow`] with fully
//!   contextualised sink observations ready for taint checking.
//!
//! # Examples
//!
//! The paper's running example (Figures 5–7): `foo` calls `woo`, which
//! stores a buffer pointer into `*(arg0 + 0x4C)` and `recv`s into that
//! buffer; back in `foo` the buffer is read through the same field and
//! `memcpy`'d with a tainted length. After `build_dataflow`, the `memcpy`
//! sink's argument expressions contain the `recv` output symbol — the
//! source-to-sink flow the detector reports.
//!
//! See `tests/` in this crate and the `dtaint-core` pipeline for runnable
//! versions.

pub mod alias;
pub mod cache;
pub mod ddg;
pub mod indirect;
pub mod interproc;
pub mod layout;
pub mod sse;

pub use alias::{alias_pass, alias_replace, AliasConfig, AliasEntry, AliasMode};
pub use cache::{
    CacheFormat, CacheLoadReport, CacheRef, CacheTotals, Level, ScanStats, SummaryCache,
};
pub use ddg::{backward_trace, Ddg, DdgNode, DdgNodeKind, TraceStep};
pub use indirect::{resolve_indirect_calls, Installer, ResolvedCall};
pub use interproc::{
    build_dataflow, DataflowConfig, DdgTimings, FinalSummary, ProgramDataflow, SinkKind,
    SinkObservation,
};
pub use layout::{infer_layouts, root_and_path, AccessPath, Layout};
pub use sse::{canonicalize, sse_replace, Sse, SseStats};

#[cfg(test)]
mod tests {
    use super::*;
    use dtaint_cfg::{build_all_cfgs, CallGraph};
    use dtaint_fwbin::arm::ArmIns;
    use dtaint_fwbin::asm::Assembler;
    use dtaint_fwbin::link::BinaryBuilder;
    use dtaint_fwbin::{Arch, Binary, Reg};
    use dtaint_symex::pool::SymNode;
    use dtaint_symex::{analyze_function, ExprPool, SymexConfig};

    fn analyze_all(bin: &Binary) -> (CallGraph, Vec<dtaint_symex::FuncSummary>, ExprPool) {
        let cfgs = build_all_cfgs(bin).unwrap();
        let cg = CallGraph::build(bin, &cfgs);
        let mut pool = ExprPool::new();
        let summaries = cfgs
            .iter()
            .map(|c| analyze_function(bin, c, &mut pool, &SymexConfig::default()))
            .collect();
        (cg, summaries, pool)
    }

    /// Builds the paper's Figure 5 program:
    ///
    /// ```c
    /// void woo(ctx *a0, req *a1) {
    ///     char *buf = a1->buf;      // +0x24
    ///     a0->data = buf;           // +0x4C
    ///     recv(0, buf, 0x200, 0);
    /// }
    /// void foo(ctx *a0, req *a1) {
    ///     int n = woo(a0, a1);      // ret used as length
    ///     char local[0x100];
    ///     memcpy(local, a0->data, n);   // sink
    /// }
    /// ```
    fn paper_figure5_binary() -> Binary {
        let arch = Arch::Arm32e;

        let mut woo = Assembler::new(arch);
        woo.arm(ArmIns::Ldr { rt: Reg(5), rn: Reg(1), off: 0x24 });
        woo.arm(ArmIns::Str { rt: Reg(5), rn: Reg(0), off: 0x4c });
        woo.arm(ArmIns::MovI { rd: Reg(0), imm: 0 });
        woo.arm(ArmIns::MovR { rd: Reg(1), rm: Reg(5) });
        woo.arm(ArmIns::MovI { rd: Reg(2), imm: 0x200 });
        woo.arm(ArmIns::MovI { rd: Reg(3), imm: 0 });
        woo.call("recv");
        woo.ret();

        let mut foo = Assembler::new(arch);
        foo.arm(ArmIns::SubI { rd: Reg::SP, rn: Reg::SP, imm: 0x118 });
        foo.arm(ArmIns::MovR { rd: Reg(11), rm: Reg(0) }); // save ctx
        foo.arm(ArmIns::MovR { rd: Reg(4), rm: Reg(1) });
        foo.call("woo");
        foo.arm(ArmIns::MovR { rd: Reg(2), rm: Reg(0) }); // n = ret
        foo.arm(ArmIns::Ldr { rt: Reg(1), rn: Reg(11), off: 0x4c }); // src = ctx->data
        foo.arm(ArmIns::AddI { rd: Reg(0), rn: Reg::SP, imm: 0x18 }); // dst = local
        foo.call("memcpy");
        foo.arm(ArmIns::AddI { rd: Reg::SP, rn: Reg::SP, imm: 0x118 });
        foo.ret();

        let mut b = BinaryBuilder::new(arch);
        b.add_function("foo", foo);
        b.add_function("woo", woo);
        b.add_import("recv");
        b.add_import("memcpy");
        b.link().unwrap()
    }

    #[test]
    fn figure5_source_reaches_memcpy_sink() {
        let bin = paper_figure5_binary();
        let (mut cg, summaries, pool) = analyze_all(&bin);
        let df = build_dataflow(&bin, &mut cg, summaries, pool, &DataflowConfig::default());

        let foo = bin.function("foo").unwrap().addr;
        let foo_final = &df.finals[&foo];
        let memcpy_sink = foo_final
            .sinks
            .iter()
            .find(|s| s.kind == SinkKind::Import("memcpy".into()))
            .expect("memcpy sink observed in foo");

        // The source (src argument, index 1) is a pointer whose pointee
        // must carry recv's output after woo's stores are pushed up.
        let src = memcpy_sink.args[1];
        let mut carriers = df.pointee_values(foo, src);
        carriers.push(src);
        let has_recv_data = carriers.iter().any(|&v| {
            df.pool.any_node(v, &mut |n| {
                matches!(n, SymNode::CallOut { callsite, .. }
                    if df.import_sites.get(&callsite).map(String::as_str) == Some("recv"))
            })
        });
        assert!(
            has_recv_data,
            "memcpy src pointee must carry recv output, got {} (pointees: {:?})",
            df.pool.display(src),
            df.pointee_values(foo, src)
                .iter()
                .map(|&v| df.pool.display(v).to_string())
                .collect::<Vec<_>>()
        );

        // The length argument (index 2) is recv's return value.
        let len = memcpy_sink.args[2];
        let has_recv_ret = df.pool.any_node(len, &mut |n| {
            matches!(n, SymNode::RetSym(cs)
                if df.import_sites.get(&cs).map(String::as_str) == Some("recv"))
        });
        assert!(has_recv_ret, "memcpy length must be recv's return, got {}", df.pool.display(len));
        // No length check anywhere: no bounding constraint mentions `len`.
        assert!(memcpy_sink.constraints.is_empty());
    }

    #[test]
    fn sink_inside_callee_bubbles_to_caller_with_actuals() {
        // main reads env data and passes it to helper, which system()s it.
        let arch = Arch::Arm32e;
        let mut helper = Assembler::new(arch);
        helper.call("system"); // system(arg0)
        helper.ret();
        let mut main = Assembler::new(arch);
        main.load_addr(Reg(0), "name");
        main.call("getenv");
        main.call("helper"); // helper(getenv(...))
        main.ret();
        let mut b = BinaryBuilder::new(arch);
        b.add_function("main", main);
        b.add_function("helper", helper);
        b.add_import("getenv");
        b.add_import("system");
        b.add_cstring("name", "PATH");
        let bin = b.link().unwrap();

        let (mut cg, summaries, pool) = analyze_all(&bin);
        let df = build_dataflow(&bin, &mut cg, summaries, pool, &DataflowConfig::default());
        let main_addr = bin.function("main").unwrap().addr;
        let helper_addr = bin.function("helper").unwrap().addr;

        // helper sees system(arg0).
        let h = &df.finals[&helper_addr];
        let hs = h.sinks.iter().find(|s| s.kind == SinkKind::Import("system".into())).unwrap();
        assert!(matches!(df.pool.node(hs.args[0]), SymNode::Arg(0)));

        // main sees the same sink with arg0 replaced by getenv's return.
        let m = &df.finals[&main_addr];
        let ms = m.sinks.iter().find(|s| s.kind == SinkKind::Import("system".into())).unwrap();
        assert_eq!(ms.call_chain.len(), 1);
        let is_getenv_ret = df.pool.any_node(ms.args[0], &mut |n| {
            matches!(n, SymNode::RetSym(cs)
                if df.import_sites.get(&cs).map(String::as_str) == Some("getenv"))
        });
        assert!(
            is_getenv_ret,
            "bubbled sink arg must be getenv's return, got {}",
            df.pool.display(ms.args[0])
        );
    }

    #[test]
    fn callee_return_value_substitutes_at_caller() {
        // int id(int x) { return x; }   int f() { return id(7); }
        let arch = Arch::Mips32e;
        let mut id = Assembler::new(arch);
        id.mov(Reg(2), Reg(4)); // v0 = a0
        id.ret();
        let mut f = Assembler::new(arch);
        f.load_const(Reg(4), 7);
        f.call("id");
        f.ret();
        let mut b = BinaryBuilder::new(arch);
        b.add_function("f", f);
        b.add_function("id", id);
        let bin = b.link().unwrap();

        let (mut cg, summaries, pool) = analyze_all(&bin);
        let df = build_dataflow(&bin, &mut cg, summaries, pool, &DataflowConfig::default());
        let f_addr = bin.function("f").unwrap().addr;
        let rv = df.finals[&f_addr].summary.ret_values[0];
        assert_eq!(df.pool.as_const(rv), Some(7), "id(7) folds to 7 in the caller");
    }

    #[test]
    fn escape_defs_connect_memory_across_functions() {
        // init(p) stores taint into *(p+8); use(p) reads *(p+8).
        // After propagation, caller's read resolves to the taint.
        let arch = Arch::Arm32e;
        let mut init = Assembler::new(arch);
        init.arm(ArmIns::MovR { rd: Reg(4), rm: Reg(0) });
        init.call("getenv"); // returns external pointer
        init.arm(ArmIns::Str { rt: Reg(0), rn: Reg(4), off: 8 });
        init.ret();
        let mut main = Assembler::new(arch);
        main.arm(ArmIns::SubI { rd: Reg(0), rn: Reg::SP, imm: 0x40 });
        main.arm(ArmIns::MovR { rd: Reg(5), rm: Reg(0) });
        main.call("init");
        main.arm(ArmIns::Ldr { rt: Reg(0), rn: Reg(5), off: 8 });
        main.call("system"); // system(*(p+8)) — tainted command
        main.ret();
        let mut b = BinaryBuilder::new(arch);
        b.add_function("main", main);
        b.add_function("init", init);
        b.add_import("getenv");
        b.add_import("system");
        let bin = b.link().unwrap();

        let (mut cg, summaries, pool) = analyze_all(&bin);
        let df = build_dataflow(&bin, &mut cg, summaries, pool, &DataflowConfig::default());
        let main_addr = bin.function("main").unwrap().addr;
        let ms = df.finals[&main_addr]
            .sinks
            .iter()
            .find(|s| s.kind == SinkKind::Import("system".into()))
            .expect("system sink in main");
        let carries_getenv = df.pool.any_node(ms.args[0], &mut |n| {
            matches!(n, SymNode::RetSym(cs) | SymNode::CallOut { callsite: cs, .. }
                if df.import_sites.get(&cs).map(String::as_str) == Some("getenv"))
        });
        assert!(
            carries_getenv,
            "system arg must resolve through init's store: {}",
            df.pool.display(ms.args[0])
        );
    }

    #[test]
    fn sanitized_path_carries_its_bounding_constraint() {
        use dtaint_fwbin::arm::Cond;
        // n = recv(...); if (n < 64) memcpy(dst, buf, n);
        let arch = Arch::Arm32e;
        let mut f = Assembler::new(arch);
        f.arm(ArmIns::SubI { rd: Reg::SP, rn: Reg::SP, imm: 0x200 });
        f.arm(ArmIns::MovI { rd: Reg(0), imm: 0 });
        f.arm(ArmIns::AddI { rd: Reg(1), rn: Reg::SP, imm: 0x100 });
        f.arm(ArmIns::MovI { rd: Reg(2), imm: 0x100 });
        f.arm(ArmIns::MovI { rd: Reg(3), imm: 0 });
        f.call("recv");
        f.arm(ArmIns::CmpI { rn: Reg(0), imm: 64 });
        f.arm_b(Cond::Ge, "out");
        f.arm(ArmIns::MovR { rd: Reg(2), rm: Reg(0) }); // n
        f.arm(ArmIns::AddI { rd: Reg(1), rn: Reg::SP, imm: 0x100 });
        f.arm(ArmIns::AddI { rd: Reg(0), rn: Reg::SP, imm: 0x20 });
        f.call("memcpy");
        f.label("out");
        f.arm(ArmIns::AddI { rd: Reg::SP, rn: Reg::SP, imm: 0x200 });
        f.ret();
        let mut b = BinaryBuilder::new(arch);
        b.add_function("f", f);
        b.add_import("recv");
        b.add_import("memcpy");
        let bin = b.link().unwrap();

        let (mut cg, summaries, pool) = analyze_all(&bin);
        let df = build_dataflow(&bin, &mut cg, summaries, pool, &DataflowConfig::default());
        let f_addr = bin.function("f").unwrap().addr;
        let sink = df.finals[&f_addr]
            .sinks
            .iter()
            .find(|s| s.kind == SinkKind::Import("memcpy".into()))
            .expect("memcpy sink");
        let len = sink.args[2];
        // The guarding constraint `len < 64` is attached to the sink.
        let guarded = sink.constraints.iter().any(|(op, l, r)| {
            *op == dtaint_symex::CmpOp::Lt && *l == len && df.pool.as_const(*r) == Some(64)
        });
        assert!(guarded, "bounding constraint must accompany the sink");
    }

    #[test]
    fn indirect_call_sink_is_found_through_layout_similarity() {
        // A handler is installed into a struct field; a dispatcher calls
        // through the same field. The handler system()s its argument.
        let arch = Arch::Arm32e;
        let mut handler = Assembler::new(arch);
        handler.arm(ArmIns::Ldr { rt: Reg(0), rn: Reg(0), off: 0x10 }); // cmd = s->buf
        handler.call("system");
        handler.ret();
        let mut install = Assembler::new(arch);
        install.load_addr(Reg(1), "handler");
        install.arm(ArmIns::Str { rt: Reg(1), rn: Reg(0), off: 8 }); // s->fn = handler
        install.arm(ArmIns::MovI { rd: Reg(2), imm: 0 });
        install.arm(ArmIns::Str { rt: Reg(2), rn: Reg(0), off: 0x10 }); // touch s->buf
        install.ret();
        let mut dispatch = Assembler::new(arch);
        dispatch.arm(ArmIns::MovR { rd: Reg(4), rm: Reg(0) });
        dispatch.arm(ArmIns::Ldr { rt: Reg(5), rn: Reg(4), off: 8 }); // fn = s->fn
        dispatch.arm(ArmIns::Ldr { rt: Reg(6), rn: Reg(4), off: 0x10 }); // touch s->buf
        dispatch.arm(ArmIns::MovR { rd: Reg(0), rm: Reg(4) });
        dispatch.arm(ArmIns::Blx { rm: Reg(5) }); // s->fn(s)
        dispatch.ret();
        let mut b = BinaryBuilder::new(arch);
        b.add_function("dispatch", dispatch);
        b.add_function("install", install);
        b.add_function("handler", handler);
        b.add_import("system");
        let bin = b.link().unwrap();

        let (mut cg, summaries, pool) = analyze_all(&bin);
        let df = build_dataflow(&bin, &mut cg, summaries, pool, &DataflowConfig::default());
        assert_eq!(df.resolved_indirect.len(), 1);
        assert_eq!(df.resolved_indirect[0].callee, bin.function("handler").unwrap().addr);
        // The system sink bubbles into dispatch through the resolved edge.
        let dispatch_addr = bin.function("dispatch").unwrap().addr;
        assert!(df.finals[&dispatch_addr]
            .sinks
            .iter()
            .any(|s| s.kind == SinkKind::Import("system".into())));
    }

    #[test]
    fn disabling_stages_changes_results() {
        let bin = paper_figure5_binary();
        let (mut cg, summaries, pool) = analyze_all(&bin);
        let config =
            DataflowConfig { enable_alias: false, enable_indirect: false, ..Default::default() };
        let df = build_dataflow(&bin, &mut cg, summaries, pool, &config);
        assert!(df.resolved_indirect.is_empty());
        // The memcpy sink is still observed (it is a direct-flow case).
        let foo = bin.function("foo").unwrap().addr;
        assert!(!df.finals[&foo].sinks.is_empty());
    }

    #[test]
    fn post_order_is_respected_in_output() {
        let bin = paper_figure5_binary();
        let (mut cg, summaries, pool) = analyze_all(&bin);
        let df = build_dataflow(&bin, &mut cg, summaries, pool, &DataflowConfig::default());
        let foo = bin.function("foo").unwrap().addr;
        let woo = bin.function("woo").unwrap().addr;
        let pos = |a| df.order.iter().position(|&x| x == a).unwrap();
        assert!(pos(woo) < pos(foo));
    }
}
