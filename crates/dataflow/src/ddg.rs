//! An explicit data-dependency graph with backward sink→source
//! traversal.
//!
//! The paper: "Based on the data flow graph, we track the sinks and
//! perform backward depth-first traversal to generate paths from sinks
//! to sources" (§I). The propagation stage already *substitutes* callee
//! knowledge into expressions; this module materialises the dependency
//! relation those expressions encode as a graph one can walk and render:
//!
//! * a **def node** per definition pair `(d, u)` — location `d` received
//!   value `u` at some instruction,
//! * a **source node** per source-import call site,
//! * an edge `A → B` when `B`'s value mentions the location `A` defines
//!   (or the source symbol `A` produces).
//!
//! [`backward_trace`] performs the paper's backward DFS from a sink
//! variable to the sources feeding it, returning a printable
//! step-by-step path.

use crate::interproc::ProgramDataflow;
use dtaint_symex::pool::SymNode;
use dtaint_symex::ExprId;
use std::collections::{HashMap, HashSet};

/// One step of a sink-to-source path (printed source-first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceStep {
    /// Attacker data enters at this call site.
    Source {
        /// Import name (`recv`, `getenv`, …).
        name: String,
        /// Call-site instruction address.
        ins_addr: u32,
    },
    /// A definition propagates the data.
    Def {
        /// Instruction address of the defining store/call.
        ins_addr: u32,
        /// Rendered location (`deref(arg0 + 0x4c)`).
        location: String,
        /// Rendered value.
        value: String,
    },
    /// The data reaches the sink variable.
    Sink {
        /// Rendered tainted variable.
        expr: String,
    },
}

impl std::fmt::Display for TraceStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceStep::Source { name, ins_addr } => write!(f, "source {name}@{ins_addr:#x}"),
            TraceStep::Def { ins_addr, location, value } => {
                write!(f, "def @{ins_addr:#x}: {location} = {value}")
            }
            TraceStep::Sink { expr } => write!(f, "sink var {expr}"),
        }
    }
}

/// A whole-program dependency graph built from the final summaries.
#[derive(Debug, Default)]
pub struct Ddg {
    /// Graph nodes.
    pub nodes: Vec<DdgNode>,
    /// `edges[i]` = indices of nodes that node `i` feeds.
    pub edges: Vec<Vec<usize>>,
}

/// One node of the [`Ddg`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DdgNode {
    /// Function the node belongs to.
    pub func: u32,
    /// Instruction address.
    pub ins_addr: u32,
    /// What the node is.
    pub kind: DdgNodeKind,
}

/// Node classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DdgNodeKind {
    /// A definition: `var` receives `value`.
    Def {
        /// Defined location.
        var: ExprId,
        /// Assigned value.
        value: ExprId,
    },
    /// A source call site.
    Source {
        /// Import name.
        name: String,
    },
}

impl Ddg {
    /// Builds the graph over every function's final definition pairs.
    ///
    /// `sources` filters which import call sites become source nodes.
    pub fn build(df: &ProgramDataflow, sources: &HashSet<String>) -> Ddg {
        let mut nodes = Vec::new();
        // Source nodes, indexed by call site.
        let mut source_idx: HashMap<u32, usize> = HashMap::new();
        for (&cs, name) in &df.import_sites {
            if sources.contains(name) {
                source_idx.insert(cs, nodes.len());
                nodes.push(DdgNode {
                    func: 0,
                    ins_addr: cs,
                    kind: DdgNodeKind::Source { name: clone_name(name) },
                });
            }
        }
        // Def nodes.
        let mut defs: Vec<(usize, ExprId, ExprId)> = Vec::new();
        for f in df.finals.values() {
            for dp in &f.summary.def_pairs {
                let idx = nodes.len();
                nodes.push(DdgNode {
                    func: f.summary.addr,
                    ins_addr: dp.ins_addr,
                    kind: DdgNodeKind::Def { var: dp.d, value: dp.u },
                });
                defs.push((idx, dp.d, dp.u));
            }
        }
        // Edges: def A feeds def B when B's value mentions A's location;
        // a source feeds B when B's value mentions its symbols.
        let mut edges = vec![Vec::new(); nodes.len()];
        for &(bi, _, bu) in &defs {
            for &(ai, ad, _) in &defs {
                if ai != bi && df.pool.contains(bu, ad) {
                    edges[ai].push(bi);
                }
            }
            df.pool.any_node(bu, &mut |n| {
                let cs = match n {
                    SymNode::RetSym(cs) | SymNode::CallOut { callsite: cs, .. } => Some(cs),
                    _ => None,
                };
                if let Some(cs) = cs {
                    if let Some(&si) = source_idx.get(&cs) {
                        if !edges[si].contains(&bi) {
                            edges[si].push(bi);
                        }
                    }
                }
                false
            });
        }
        Ddg { nodes, edges }
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// Source nodes reaching the given node (forward closure check).
    pub fn sources_reaching(&self, target: usize) -> Vec<usize> {
        // Reverse reachability: BFS backwards.
        let mut reverse: Vec<Vec<usize>> = vec![Vec::new(); self.nodes.len()];
        for (a, outs) in self.edges.iter().enumerate() {
            for &b in outs {
                reverse[b].push(a);
            }
        }
        let mut seen = HashSet::new();
        let mut stack = vec![target];
        let mut out = Vec::new();
        while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            if matches!(self.nodes[n].kind, DdgNodeKind::Source { .. }) {
                out.push(n);
            }
            stack.extend(reverse[n].iter().copied());
        }
        out.sort_unstable();
        out
    }
}

fn clone_name(s: &str) -> String {
    s.to_owned()
}

/// Backward depth-first traversal from a sink variable to the sources
/// feeding it, within the observing function's final summary.
///
/// Returns the first source-reaching path, rendered source-first
/// (`Source → Def* → Sink`), or an empty vector when the expression is
/// not source-derived. `max_depth` bounds the def-chain length.
pub fn backward_trace(
    df: &ProgramDataflow,
    holder_fn: u32,
    sink_expr: ExprId,
    sources: &HashSet<String>,
    max_depth: usize,
) -> Vec<TraceStep> {
    let Some(holder) = df.finals.get(&holder_fn) else { return Vec::new() };
    let mut visited: HashSet<ExprId> = HashSet::new();
    let mut steps: Vec<TraceStep> = Vec::new();
    if dfs(df, holder, sink_expr, sources, max_depth, &mut visited, &mut steps) {
        // The DFS pushes the source at the deepest point and each def as
        // its frame unwinds, so `steps` is already source-first.
        steps.push(TraceStep::Sink { expr: df.pool.display(sink_expr).to_string() });
        steps
    } else {
        Vec::new()
    }
}

/// DFS helper: true when `expr` reaches a source; `steps` collects the
/// path from the sink side down.
fn dfs(
    df: &ProgramDataflow,
    holder: &crate::interproc::FinalSummary,
    expr: ExprId,
    sources: &HashSet<String>,
    depth: usize,
    visited: &mut HashSet<ExprId>,
    steps: &mut Vec<TraceStep>,
) -> bool {
    if !visited.insert(expr) {
        return false;
    }
    // Direct source symbols in the expression.
    let mut found: Option<(String, u32)> = None;
    df.pool.any_node(expr, &mut |n| {
        let cs = match n {
            SymNode::RetSym(cs) | SymNode::CallOut { callsite: cs, .. } => Some(cs),
            _ => None,
        };
        if let Some(cs) = cs {
            if let Some(name) = df.import_sites.get(&cs) {
                if sources.contains(name) && found.is_none() {
                    found = Some((name.clone(), cs));
                }
            }
        }
        false
    });
    if let Some((name, ins_addr)) = found {
        steps.push(TraceStep::Source { name, ins_addr });
        return true;
    }
    if depth == 0 {
        return false;
    }
    // Defs whose location appears in the expression (including object
    // granularity: a def at any offset of a base the expression reads).
    for dp in &holder.summary.def_pairs {
        let related = df.pool.contains(expr, dp.d) || same_object_read(df, expr, dp.d);
        if related && dfs(df, holder, dp.u, sources, depth - 1, visited, steps) {
            steps.push(TraceStep::Def {
                ins_addr: dp.ins_addr,
                location: df.pool.display(dp.d).to_string(),
                value: df.pool.display(dp.u).to_string(),
            });
            return true;
        }
    }
    false
}

/// True when `expr` reads memory from the same object base that `def_d`
/// defines (offset-insensitive, the Heartbleed `buf+1` case).
fn same_object_read(df: &ProgramDataflow, expr: ExprId, def_d: ExprId) -> bool {
    let SymNode::Deref { addr: daddr, .. } = df.pool.node(def_d) else { return false };
    let (dbase, _) = df.pool.base_offset(daddr);
    let mut hit = false;
    df.pool.any_node(expr, &mut |n| {
        if let SymNode::Deref { addr, .. } = n {
            let (base, _) = df.pool.base_offset(addr);
            if base == dbase {
                hit = true;
            }
        }
        false
    });
    hit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interproc::{build_dataflow, DataflowConfig};
    use dtaint_cfg::{build_all_cfgs, CallGraph};
    use dtaint_fwbin::arm::ArmIns;
    use dtaint_fwbin::asm::Assembler;
    use dtaint_fwbin::link::BinaryBuilder;
    use dtaint_fwbin::{Arch, Reg};
    use dtaint_symex::{analyze_function, CalleeRef, ExprPool, SymexConfig};

    fn sources() -> HashSet<String> {
        ["recv", "getenv"].into_iter().map(str::to_owned).collect()
    }

    /// recv fills a buffer; the buffer pointer is stored into a struct
    /// field; memcpy consumes the field.
    fn dataflow_sample() -> (dtaint_fwbin::Binary, ProgramDataflow) {
        let arch = Arch::Arm32e;
        let mut f = Assembler::new(arch);
        f.arm(ArmIns::SubI { rd: Reg::SP, rn: Reg::SP, imm: 0x200 });
        f.arm(ArmIns::MovI { rd: Reg(0), imm: 0 });
        f.arm(ArmIns::AddI { rd: Reg(1), rn: Reg::SP, imm: 0x100 });
        f.arm(ArmIns::MovI { rd: Reg(2), imm: 0x80 });
        f.arm(ArmIns::MovI { rd: Reg(3), imm: 0 });
        f.call("recv");
        f.arm(ArmIns::MovR { rd: Reg(2), rm: Reg(0) });
        f.arm(ArmIns::AddI { rd: Reg(1), rn: Reg::SP, imm: 0x100 });
        f.arm(ArmIns::AddI { rd: Reg(0), rn: Reg::SP, imm: 0x20 });
        f.call("memcpy");
        f.arm(ArmIns::AddI { rd: Reg::SP, rn: Reg::SP, imm: 0x200 });
        f.ret();
        let mut b = BinaryBuilder::new(arch);
        b.add_function("f", f);
        b.add_import("recv");
        b.add_import("memcpy");
        let bin = b.link().unwrap();
        let cfgs = build_all_cfgs(&bin).unwrap();
        let mut cg = CallGraph::build(&bin, &cfgs);
        let mut pool = ExprPool::new();
        let sums: Vec<_> = cfgs
            .iter()
            .map(|c| analyze_function(&bin, c, &mut pool, &SymexConfig::default()))
            .collect();
        let df = build_dataflow(&bin, &mut cg, sums, pool, &DataflowConfig::default());
        (bin, df)
    }

    #[test]
    fn graph_has_source_and_def_nodes_with_edges() {
        let (_, df) = dataflow_sample();
        let ddg = Ddg::build(&df, &sources());
        let n_sources =
            ddg.nodes.iter().filter(|n| matches!(n.kind, DdgNodeKind::Source { .. })).count();
        assert_eq!(n_sources, 1, "one recv source");
        assert!(ddg.nodes.len() > 1, "def nodes exist");
        assert!(ddg.edge_count() >= 1, "the recv source feeds defs");
        // Some def is reachable from the source.
        let src =
            ddg.nodes.iter().position(|n| matches!(n.kind, DdgNodeKind::Source { .. })).unwrap();
        assert!(!ddg.edges[src].is_empty());
        let target = ddg.edges[src][0];
        assert_eq!(ddg.sources_reaching(target), vec![src]);
    }

    #[test]
    fn backward_trace_finds_the_recv_source() {
        let (bin, df) = dataflow_sample();
        let f_addr = bin.function("f").unwrap().addr;
        // The memcpy sink's length arg = ret of recv.
        let sink = df.finals[&f_addr]
            .sinks
            .iter()
            .find(|s| matches!(&s.kind, crate::SinkKind::Import(n) if n == "memcpy"))
            .unwrap();
        let len = sink.args[2];
        let trace = backward_trace(&df, f_addr, len, &sources(), 8);
        assert!(!trace.is_empty(), "length is source-derived");
        assert!(matches!(&trace[0], TraceStep::Source { name, .. } if name == "recv"));
        assert!(matches!(trace.last().unwrap(), TraceStep::Sink { .. }));
    }

    #[test]
    fn backward_trace_walks_def_chains() {
        // Multi-hop: v = getenv(...); *(g+4) = v; read *(g+4) into sink.
        let arch = Arch::Arm32e;
        let mut f = Assembler::new(arch);
        f.load_addr(Reg(4), "g_slot");
        f.load_addr(Reg(0), "name");
        f.call("getenv");
        f.arm(ArmIns::Str { rt: Reg(0), rn: Reg(4), off: 4 });
        f.arm(ArmIns::Ldr { rt: Reg(0), rn: Reg(4), off: 4 });
        f.call("system");
        f.ret();
        let mut b = BinaryBuilder::new(arch);
        b.add_function("f", f);
        b.add_import("getenv");
        b.add_import("system");
        b.add_cstring("name", "X");
        b.add_bss("g_slot", 16);
        let bin = b.link().unwrap();
        let cfgs = build_all_cfgs(&bin).unwrap();
        let mut cg = CallGraph::build(&bin, &cfgs);
        let mut pool = ExprPool::new();
        let sums: Vec<_> = cfgs
            .iter()
            .map(|c| analyze_function(&bin, c, &mut pool, &SymexConfig::default()))
            .collect();
        let df = build_dataflow(&bin, &mut cg, sums, pool, &DataflowConfig::default());
        let f_addr = bin.function("f").unwrap().addr;
        let sink = df.finals[&f_addr]
            .sinks
            .iter()
            .find(|s| matches!(&s.kind, crate::SinkKind::Import(n) if n == "system"))
            .unwrap();
        let trace = backward_trace(&df, f_addr, sink.args[0], &sources(), 8);
        assert!(matches!(&trace.first(), Some(TraceStep::Source { name, .. }) if name == "getenv"));
    }

    #[test]
    fn untainted_expression_has_empty_trace() {
        let (bin, df) = dataflow_sample();
        let f_addr = bin.function("f").unwrap().addr;
        // A constant is never source-derived.
        let c = {
            // Find any constant expression in the pool via a def pair.
            df.finals[&f_addr]
                .summary
                .callsites
                .iter()
                .find_map(|cs| cs.args.iter().copied().find(|&a| df.pool.as_const(a).is_some()))
                .expect("some constant arg")
        };
        assert!(backward_trace(&df, f_addr, c, &sources(), 8).is_empty());
    }

    #[test]
    fn graph_scales_linearly_on_generated_firmware() {
        let mut p = dtaint_fwgen::table2_profiles().remove(0);
        p.total_functions = 60;
        let fw = dtaint_fwgen::build_firmware(&p);
        let cfgs = build_all_cfgs(&fw.binary).unwrap();
        let mut cg = CallGraph::build(&fw.binary, &cfgs);
        let mut pool = ExprPool::new();
        let sums: Vec<_> = cfgs
            .iter()
            .map(|c| analyze_function(&fw.binary, c, &mut pool, &SymexConfig::default()))
            .collect();
        let df = build_dataflow(&fw.binary, &mut cg, sums, pool, &DataflowConfig::default());
        let all_sources: HashSet<String> = ["read", "recv", "getenv", "websGetVar", "find_var"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let ddg = Ddg::build(&df, &all_sources);
        assert!(ddg.nodes.len() > 50);
        // Every source with an outgoing edge reaches at least one def.
        for (i, n) in ddg.nodes.iter().enumerate() {
            if matches!(n.kind, DdgNodeKind::Source { .. }) && !ddg.edges[i].is_empty() {
                assert!(!ddg.sources_reaching(ddg.edges[i][0]).is_empty());
            }
        }
    }

    #[test]
    fn callee_ref_is_reexported_for_consumers() {
        // Minor API sanity so downstream code can match on it.
        let x: CalleeRef = CalleeRef::Import("recv".into());
        assert!(matches!(x, CalleeRef::Import(_)));
    }
}
