//! Indirect-call resolution through data-structure layout similarity
//! (§III-D).
//!
//! The key insight of the paper: the object flowing into an indirect call
//! site and the object a function pointer was installed into usually
//! *share a data structure*. We therefore:
//!
//! 1. find **installers** — definition pairs storing a function's address
//!    into a structure field (`deref(root·path + off) = &func`),
//! 2. find **indirect call sites** — calls through `deref(base + off)`,
//! 3. match sites to installers with the same field position
//!    (access path and offset), ranking matches by the layout similarity
//!    σ of the two structures (Formula 2).

use crate::layout::{infer_layouts, root_and_path, AccessPath, Layout};
use dtaint_fwbin::Binary;
use dtaint_symex::pool::{ExprPool, SymNode};
use dtaint_symex::{CalleeRef, FuncSummary};
use std::collections::BTreeMap;

/// A function pointer installed into a structure field.
#[derive(Debug, Clone)]
pub struct Installer {
    /// Entry address of the installed (target) function.
    pub func: u32,
    /// Function that performed the store.
    pub in_func: u32,
    /// Access path of the field's base from the structure root.
    pub path: AccessPath,
    /// Field offset of the stored pointer.
    pub offset: i64,
    /// Layout of the root structure as seen by the installer.
    pub layout: Layout,
}

/// A resolved indirect call.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedCall {
    /// Instruction address of the indirect call.
    pub ins_addr: u32,
    /// Function containing the call.
    pub caller: u32,
    /// Resolved callee entry address.
    pub callee: u32,
    /// Layout similarity of the match (Formula 2); 0 when the match fell
    /// back to unique field position without layout evidence.
    pub score: f64,
}

/// Finds installers and matches every indirect call site against them.
///
/// `summaries` must share `pool`. Sites with several structurally
/// plausible targets resolve to the highest-similarity one ("the highest
/// similarity σ", §III-D); ties and zero-evidence sites resolve only when
/// the field position identifies a unique candidate.
pub fn resolve_indirect_calls(
    bin: &Binary,
    summaries: &[FuncSummary],
    pool: &ExprPool,
) -> Vec<ResolvedCall> {
    // Pass 1: installers.
    let mut installers: Vec<Installer> = Vec::new();
    let mut layouts_cache: BTreeMap<u32, BTreeMap<dtaint_symex::ExprId, Layout>> = BTreeMap::new();
    for s in summaries {
        layouts_cache.insert(s.addr, infer_layouts(s, pool));
    }
    for s in summaries {
        for dp in &s.def_pairs {
            let SymNode::Deref { addr, .. } = pool.node(dp.d) else { continue };
            let Some(c) = pool.as_const(dp.u) else { continue };
            let target = c as u32;
            let Some(func) = bin.function_at(target) else { continue };
            if func.addr != target {
                continue;
            }
            let (base, offset) = pool.base_offset(addr);
            let Some((root, path)) = root_and_path(base, pool) else { continue };
            let layout = layouts_cache[&s.addr].get(&root).cloned().unwrap_or_default();
            installers.push(Installer { func: target, in_func: s.addr, path, offset, layout });
        }
    }

    // Pass 2: match indirect call sites.
    let mut resolved = Vec::new();
    for s in summaries {
        for cs in &s.callsites {
            let CalleeRef::Indirect(e) = &cs.callee else { continue };
            let SymNode::Deref { addr, .. } = pool.node(*e) else { continue };
            let (base, offset) = pool.base_offset(addr);
            let Some((root, path)) = root_and_path(base, pool) else { continue };
            let caller_layout = layouts_cache[&s.addr].get(&root).cloned().unwrap_or_default();
            let positional: Vec<&Installer> =
                installers.iter().filter(|i| i.path == path && i.offset == offset).collect();
            if positional.is_empty() {
                continue;
            }
            // Rank by layout similarity.
            let mut best: Option<(&Installer, f64)> = None;
            let mut best_count = 0usize;
            for inst in &positional {
                let score = caller_layout.similarity(&inst.layout);
                match &best {
                    Some((_, s0)) if score < *s0 => {}
                    Some((_, s0)) if (score - s0).abs() < 1e-12 => best_count += 1,
                    _ => {
                        best = Some((inst, score));
                        best_count = 1;
                    }
                }
            }
            let (inst, score) = best.expect("positional nonempty");
            let distinct_targets: std::collections::BTreeSet<u32> =
                positional.iter().map(|i| i.func).collect();
            let unique = distinct_targets.len() == 1;
            // Resolve on a strict similarity winner, or when the field
            // position identifies a single target anyway. Ambiguous ties
            // between different targets stay unresolved — precision over
            // recall.
            if (score > 0.0 && best_count == 1) || unique {
                resolved.push(ResolvedCall {
                    ins_addr: cs.ins_addr,
                    caller: s.addr,
                    callee: inst.func,
                    score,
                });
            }
        }
    }
    resolved.sort_by_key(|r| r.ins_addr);
    resolved.dedup_by_key(|r| (r.ins_addr, r.callee));
    resolved
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtaint_fwbin::fbf::{Section, SectionKind, Symbol, SymbolKind};
    use dtaint_fwbin::Arch;
    use dtaint_symex::{CallsiteInfo, DefPair, ExprId};

    /// A binary with two functions at 0x1000 and 0x2000 (no code needed —
    /// resolution only consults the symbol table).
    fn fake_bin() -> Binary {
        Binary {
            arch: Arch::Arm32e,
            entry: 0x1000,
            sections: vec![Section {
                name: ".text".into(),
                kind: SectionKind::Text,
                addr: 0x1000,
                size: 0x2000,
                data: vec![0; 0x2000],
            }],
            symbols: vec![
                Symbol {
                    name: "handler_a".into(),
                    addr: 0x1000,
                    size: 16,
                    kind: SymbolKind::Function,
                },
                Symbol {
                    name: "handler_b".into(),
                    addr: 0x2000,
                    size: 16,
                    kind: SymbolKind::Function,
                },
            ],
            imports: vec![],
        }
    }

    fn field(pool: &mut ExprPool, root: ExprId, off: i64) -> ExprId {
        let a = pool.add_const(root, off);
        pool.deref(a, 4)
    }

    /// Installer summary: stores &handler into arg0+8 and touches fields
    /// `offs` of the same struct.
    fn installer_summary(
        pool: &mut ExprPool,
        addr: u32,
        handler: u32,
        offs: &[i64],
    ) -> FuncSummary {
        let mut s = FuncSummary { addr, name: format!("install_{addr:x}"), ..Default::default() };
        let arg0 = pool.arg(0);
        let fp_field = field(pool, arg0, 8);
        let target = pool.constant(handler as i64);
        s.def_pairs.push(DefPair { d: fp_field, u: target, ins_addr: addr, path: 0 });
        let zero = pool.constant(0);
        for &o in offs {
            let d = field(pool, arg0, o);
            s.def_pairs.push(DefPair { d, u: zero, ins_addr: addr, path: 0 });
        }
        s
    }

    /// Caller summary: calls through arg0+8 and touches fields `offs`.
    fn caller_summary(pool: &mut ExprPool, addr: u32, offs: &[i64]) -> FuncSummary {
        let mut s = FuncSummary { addr, name: format!("call_{addr:x}"), ..Default::default() };
        let arg0 = pool.arg(0);
        let fp = field(pool, arg0, 8);
        let ret = pool.ret_sym(addr + 4);
        s.callsites.push(CallsiteInfo {
            ins_addr: addr + 4,
            callee: CalleeRef::Indirect(fp),
            args: vec![arg0],
            ret,
            path: 0,
        });
        let zero = pool.constant(0);
        for &o in offs {
            let d = field(pool, arg0, o);
            s.def_pairs.push(DefPair { d, u: zero, ins_addr: addr, path: 0 });
        }
        s
    }

    #[test]
    fn unique_candidate_resolves_even_without_layout_overlap() {
        let bin = fake_bin();
        let mut pool = ExprPool::new();
        let inst = installer_summary(&mut pool, 0x1100, 0x1000, &[]);
        let call = caller_summary(&mut pool, 0x1200, &[]);
        let r = resolve_indirect_calls(&bin, &[inst, call], &pool);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].callee, 0x1000);
    }

    #[test]
    fn similarity_picks_the_matching_structure() {
        let bin = fake_bin();
        let mut pool = ExprPool::new();
        // Two installers at the same field offset but different struct
        // shapes; the caller shares fields {0x10, 0x14} with installer A.
        let inst_a = installer_summary(&mut pool, 0x1100, 0x1000, &[0x10, 0x14]);
        let inst_b = installer_summary(&mut pool, 0x1300, 0x2000, &[0x40, 0x44, 0x48]);
        let call = caller_summary(&mut pool, 0x1200, &[0x10, 0x14]);
        let r = resolve_indirect_calls(&bin, &[inst_a, inst_b, call], &pool);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].callee, 0x1000, "layout similarity must pick handler_a");
        assert!(r[0].score > 0.5);
    }

    #[test]
    fn mismatched_field_offset_does_not_resolve() {
        let bin = fake_bin();
        let mut pool = ExprPool::new();
        let inst = installer_summary(&mut pool, 0x1100, 0x1000, &[0x10]);
        // Caller uses offset 12, installer stored at offset 8.
        let mut call = FuncSummary { addr: 0x1200, ..Default::default() };
        let arg0 = pool.arg(0);
        let fp = field(&mut pool, arg0, 12);
        let ret = pool.ret_sym(0x1204);
        call.callsites.push(CallsiteInfo {
            ins_addr: 0x1204,
            callee: CalleeRef::Indirect(fp),
            args: vec![],
            ret,
            path: 0,
        });
        let r = resolve_indirect_calls(&bin, &[inst, call], &pool);
        assert!(r.is_empty());
    }

    #[test]
    fn ambiguous_identical_candidates_stay_unresolved() {
        let bin = fake_bin();
        let mut pool = ExprPool::new();
        // Two installers, identical shapes, different targets: ambiguous.
        let inst_a = installer_summary(&mut pool, 0x1100, 0x1000, &[0x10]);
        let inst_b = installer_summary(&mut pool, 0x1300, 0x2000, &[0x10]);
        let call = caller_summary(&mut pool, 0x1200, &[0x10]);
        let r = resolve_indirect_calls(&bin, &[inst_a, inst_b, call], &pool);
        assert!(r.is_empty(), "tie between different targets must stay unresolved");
    }

    #[test]
    fn non_function_constants_are_not_installers() {
        let bin = fake_bin();
        let mut pool = ExprPool::new();
        let mut inst = FuncSummary { addr: 0x1100, ..Default::default() };
        let arg0 = pool.arg(0);
        let f = field(&mut pool, arg0, 8);
        // 0x1008 is *inside* handler_a but not its entry.
        let mid = pool.constant(0x1008);
        inst.def_pairs.push(DefPair { d: f, u: mid, ins_addr: 0, path: 0 });
        let call = caller_summary(&mut pool, 0x1200, &[]);
        let r = resolve_indirect_calls(&bin, &[inst, call], &pool);
        assert!(r.is_empty());
    }
}
