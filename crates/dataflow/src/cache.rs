//! The incremental summary cache (content-addressed, two-level).
//!
//! Algorithm 2 makes a function's final summary a pure function of
//! (a) its own post-alias local summary, (b) the final summaries of its
//! out-of-component callees, (c) the indirect-call resolution at its
//! call sites, and (d) the analysis configuration. That purity is what
//! makes summary reuse across scans sound: key each serialized summary
//! by an FNV content hash of exactly those inputs, composed bottom-up
//! over the SCC condensation, and a re-scan of a modified image misses
//! only on the changed functions and their transitive callers.
//!
//! Two levels share one store:
//!
//! * **symex** — the per-function local summary, keyed by the function's
//!   raw bytes under a config salt. A hit skips symbolic execution.
//! * **ddg** — the final (post-propagation) summary plus its sink
//!   observations, keyed by the local summary's canonical encoding
//!   composed with every callee's final key (whole-SCC granularity for
//!   recursive components: members treat each other as opaque, so the
//!   sorted member hashes stand in for the cycle). A hit skips the
//!   Algorithm 2 inner loop for that function.
//!
//! Keys bake in an **environment digest** (sections, symbols, imports)
//! and a **config salt** — including the fault-drill `panic_on` knobs,
//! so a drilled scan never hits entries produced by a healthy one — but
//! never thread counts or trace settings, which are observationally
//! irrelevant. Blobs are pool-free ([`dtaint_symex::encode`]); unknowns
//! rehydrate through per-scan ownership tables, renumbered onto the
//! destination pool exactly like a fork merge.
//!
//! Functions whose symex stage reported any non-`Analyzed` outcome are
//! listed in [`CacheRef::uncacheable`] and are never stored (their keys
//! still exist, so callers above them can hit).

use dtaint_fwbin::Binary;
use dtaint_symex::encode::Fnv64;
use dtaint_symex::SymexConfig;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::interproc::DataflowConfig;

/// Which cache level an entry belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Local (pre-interprocedural) function summaries.
    Symex,
    /// Final summaries with sink observations.
    Ddg,
}

/// Per-scan hit/miss accounting, queryable by scan label.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScanStats {
    /// Symex-level hits.
    pub sym_hits: u64,
    /// Symex-level misses.
    pub sym_misses: u64,
    /// DDG-level hits.
    pub ddg_hits: u64,
    /// DDG-level misses.
    pub ddg_misses: u64,
    /// Misses where the same scan label previously recorded a
    /// *different* key for the same function — i.e. the function (or
    /// something below it) changed between scans.
    pub invalidations: u64,
    /// Blobs written by this scan.
    pub stores: u64,
    /// Names of the functions that missed at the symex level.
    pub sym_miss_fns: BTreeSet<String>,
    /// Names of the functions that missed at the DDG level.
    pub ddg_miss_fns: BTreeSet<String>,
}

/// Whole-cache totals across every scan since load.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CacheTotals {
    /// Hits across both levels.
    pub hits: u64,
    /// Misses across both levels.
    pub misses: u64,
    /// Key-changed misses.
    pub invalidations: u64,
    /// Blobs written.
    pub stores: u64,
    /// Entries currently held (both levels).
    pub entries: usize,
}

#[derive(Debug, Default)]
struct Inner {
    sym: HashMap<u64, Vec<u8>>,
    ddg: HashMap<u64, Vec<u8>>,
    /// `(scan label, level, function addr) → last key`, across scans —
    /// how a re-scan's key changes are classified as invalidations.
    seen: HashMap<(String, u8, u32), u64>,
    stats: HashMap<String, ScanStats>,
    totals: CacheTotals,
}

/// The shared blob store. All methods take `&self`; one instance serves
/// every worker thread of every concurrent scan.
#[derive(Debug, Default)]
pub struct SummaryCache {
    inner: Mutex<Inner>,
}

/// Magic bytes opening the current (`DTC2`) on-disk cache file.
pub const CACHE_MAGIC: [u8; 4] = *b"DTC2";

/// Magic bytes of the legacy `DTC1` format (no checksums; readable, but
/// any damage discards the whole file).
pub const CACHE_MAGIC_V1: [u8; 4] = *b"DTC1";

/// Marker bytes opening every `DTC2` record — the resync anchor the
/// salvaging parser scans for after a damaged record.
pub const RECORD_MARKER: [u8; 2] = [0xD7, 0xC2];

/// What format the loaded cache file turned out to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheFormat {
    /// No file on disk.
    Missing,
    /// Current checksummed format.
    Dtc2,
    /// Legacy PR-6 format (loads whole-file-or-nothing).
    Dtc1,
    /// Neither magic matched — cold start.
    Unrecognized,
}

/// What a [`SummaryCache::load_with_report`] found on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLoadReport {
    /// Detected file format.
    pub format: CacheFormat,
    /// Entries actually loaded into the cache.
    pub entries: usize,
    /// Entries recovered from a *damaged* `DTC2` file (0 for a clean
    /// load — salvage only counts what survived damage).
    pub salvaged: u64,
    /// Entries the header promised but the file no longer delivers
    /// (truncated or checksum-failed records). 0 when the header itself
    /// is damaged: the promise is unreadable.
    pub discarded: u64,
    /// Whether any damage was detected (header, records, or trailing
    /// garbage).
    pub damaged: bool,
}

impl CacheLoadReport {
    fn clean(format: CacheFormat, entries: usize) -> Self {
        CacheLoadReport { format, entries, salvaged: 0, discarded: 0, damaged: false }
    }
}

impl SummaryCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets the per-scan statistics for `scan` (the seen-key table
    /// survives, so invalidations across repeated scans keep counting).
    pub fn begin_scan(&self, scan: &str) {
        let mut g = self.inner.lock().unwrap();
        g.stats.insert(scan.to_owned(), ScanStats::default());
    }

    /// The blob stored under `key`, if any. Pure lookup — call
    /// [`Self::note_hit`] or [`Self::note_miss`] after the decode
    /// attempt settles what actually happened.
    pub fn lookup_blob(&self, level: Level, key: u64) -> Option<Vec<u8>> {
        let g = self.inner.lock().unwrap();
        match level {
            Level::Symex => g.sym.get(&key).cloned(),
            Level::Ddg => g.ddg.get(&key).cloned(),
        }
    }

    /// Records a served hit for `scan`.
    pub fn note_hit(&self, level: Level, scan: &str, addr: u32, key: u64) {
        let mut g = self.inner.lock().unwrap();
        g.seen.insert((scan.to_owned(), level_tag(level), addr), key);
        let st = g.stats.entry(scan.to_owned()).or_default();
        match level {
            Level::Symex => st.sym_hits += 1,
            Level::Ddg => st.ddg_hits += 1,
        }
        g.totals.hits += 1;
    }

    /// Records a miss for `scan`; a previously-seen different key for
    /// the same `(scan, level, addr)` also counts as an invalidation.
    pub fn note_miss(&self, level: Level, scan: &str, fn_name: &str, addr: u32, key: Option<u64>) {
        let mut g = self.inner.lock().unwrap();
        let mut invalidated = false;
        if let Some(k) = key {
            let prev = g.seen.insert((scan.to_owned(), level_tag(level), addr), k);
            invalidated = prev.is_some_and(|p| p != k);
        }
        let st = g.stats.entry(scan.to_owned()).or_default();
        match level {
            Level::Symex => {
                st.sym_misses += 1;
                st.sym_miss_fns.insert(fn_name.to_owned());
            }
            Level::Ddg => {
                st.ddg_misses += 1;
                st.ddg_miss_fns.insert(fn_name.to_owned());
            }
        }
        if invalidated {
            st.invalidations += 1;
        }
        g.totals.misses += 1;
        if invalidated {
            g.totals.invalidations += 1;
        }
    }

    /// Stores a blob under `key`, crediting `scan`.
    pub fn store(&self, level: Level, scan: &str, key: u64, blob: Vec<u8>) {
        let mut g = self.inner.lock().unwrap();
        match level {
            Level::Symex => g.sym.insert(key, blob),
            Level::Ddg => g.ddg.insert(key, blob),
        };
        g.stats.entry(scan.to_owned()).or_default().stores += 1;
        g.totals.stores += 1;
    }

    /// The statistics accumulated for `scan` since its last
    /// [`Self::begin_scan`].
    pub fn scan_stats(&self, scan: &str) -> ScanStats {
        self.inner.lock().unwrap().stats.get(scan).cloned().unwrap_or_default()
    }

    /// Whole-cache totals.
    pub fn totals(&self) -> CacheTotals {
        let g = self.inner.lock().unwrap();
        CacheTotals { entries: g.sym.len() + g.ddg.len(), ..g.totals }
    }

    /// Serialises both levels as `DTC2` bytes: a 16-byte header (magic,
    /// entry count, FNV of the first 8 header bytes) then key-sorted,
    /// individually checksummed records. Statistics and the seen-key
    /// table are per-process and not persisted.
    pub fn to_bytes(&self) -> Vec<u8> {
        let g = self.inner.lock().unwrap();
        let count = (g.sym.len() + g.ddg.len()) as u32;
        let mut out = Vec::new();
        out.extend_from_slice(&CACHE_MAGIC);
        out.extend_from_slice(&count.to_le_bytes());
        let head_check = fnv64_bytes(&out[..8]);
        out.extend_from_slice(&head_check.to_le_bytes());
        for (tag, map) in [(0u8, &g.sym), (1u8, &g.ddg)] {
            let sorted: BTreeMap<&u64, &Vec<u8>> = map.iter().collect();
            for (k, v) in sorted {
                out.extend_from_slice(&RECORD_MARKER);
                let body_start = out.len();
                out.push(tag);
                out.extend_from_slice(&k.to_le_bytes());
                out.extend_from_slice(&(v.len() as u32).to_le_bytes());
                out.extend_from_slice(v);
                let check = fnv64_bytes(&out[body_start..]);
                out.extend_from_slice(&check.to_le_bytes());
            }
        }
        out
    }

    /// Serialises both levels to `path` in `DTC2` format. Prefer
    /// [`Self::to_bytes`] plus an atomic write for crash safety; this
    /// plain write is kept for ad-hoc tooling.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Deserialises cache bytes, salvaging what survives damage. `DTC2`
    /// bytes recover every record whose checksum holds (resyncing on the
    /// record marker after damage); legacy `DTC1` bytes load
    /// whole-file-or-nothing; anything else is a cold start. Never an
    /// error: a cache is advisory.
    pub fn from_bytes(bytes: &[u8]) -> (Self, CacheLoadReport) {
        let cache = Self::new();
        if bytes.get(..4) == Some(&CACHE_MAGIC) {
            let report = parse_dtc2(bytes, &mut cache.inner.lock().unwrap());
            return (cache, report);
        }
        if bytes.get(..4) == Some(&CACHE_MAGIC_V1) {
            return match parse_dtc1(bytes) {
                Some(inner) => {
                    let entries = inner.sym.len() + inner.ddg.len();
                    *cache.inner.lock().unwrap() = inner;
                    (cache, CacheLoadReport::clean(CacheFormat::Dtc1, entries))
                }
                // Damaged DTC1 has no record boundaries to resync on:
                // the whole file is discarded, salvage stays 0.
                None => (
                    cache,
                    CacheLoadReport {
                        damaged: true,
                        ..CacheLoadReport::clean(CacheFormat::Dtc1, 0)
                    },
                ),
            };
        }
        let format =
            if bytes.is_empty() { CacheFormat::Missing } else { CacheFormat::Unrecognized };
        let damaged = format == CacheFormat::Unrecognized;
        (cache, CacheLoadReport { damaged, ..CacheLoadReport::clean(format, 0) })
    }

    /// Loads the cache at `path` with a full [`CacheLoadReport`]. A
    /// missing file is an empty cache ([`CacheFormat::Missing`]).
    pub fn load_with_report(path: &Path) -> (Self, CacheLoadReport) {
        match std::fs::read(path) {
            Ok(bytes) => Self::from_bytes(&bytes),
            Err(_) => (Self::new(), CacheLoadReport::clean(CacheFormat::Missing, 0)),
        }
    }

    /// Loads a cache saved by [`Self::save`], discarding the report.
    pub fn load(path: &Path) -> Self {
        Self::load_with_report(path).0
    }

    /// Serialises both levels in the legacy `DTC1` layout — only for
    /// migration tests that need a genuine old-format file.
    pub fn encode_dtc1(&self) -> Vec<u8> {
        let g = self.inner.lock().unwrap();
        let mut out = Vec::new();
        out.extend_from_slice(&CACHE_MAGIC_V1);
        for map in [&g.sym, &g.ddg] {
            let sorted: BTreeMap<&u64, &Vec<u8>> = map.iter().collect();
            out.extend_from_slice(&(sorted.len() as u32).to_le_bytes());
            for (k, v) in sorted {
                out.extend_from_slice(&k.to_le_bytes());
                out.extend_from_slice(&(v.len() as u32).to_le_bytes());
                out.extend_from_slice(v);
            }
        }
        out
    }
}

/// FNV-1a 64 over raw bytes (checksums; same function as the key
/// hasher's primitive, duplicated to keep the codec self-contained).
fn fnv64_bytes(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Parses `DTC2` bytes into `inner`, salvaging intact records. The
/// header's entry count (when its own checksum holds) is the promise
/// that prices the damage: `discarded = promised − loaded`.
fn parse_dtc2(bytes: &[u8], inner: &mut Inner) -> CacheLoadReport {
    let header_ok = bytes.len() >= 16
        && fnv64_bytes(&bytes[..8]) == u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let promised: Option<u64> =
        header_ok.then(|| u64::from(u32::from_le_bytes(bytes[4..8].try_into().unwrap())));

    let mut loaded = 0u64;
    let mut damaged = !header_ok;
    let mut pos = 16.min(bytes.len());
    while pos < bytes.len() {
        match parse_record(bytes, pos) {
            Some((tag, key, blob, next)) => {
                match tag {
                    0 => inner.sym.insert(key, blob),
                    _ => inner.ddg.insert(key, blob),
                };
                loaded += 1;
                pos = next;
            }
            None => {
                // Damage: resync on the next record marker strictly
                // past this position (the marker here, if any, fronted
                // the bad record).
                damaged = true;
                match find_marker(bytes, pos + 1) {
                    Some(at) => pos = at,
                    None => break,
                }
            }
        }
    }
    if promised.is_some_and(|p| p != loaded) {
        damaged = true;
    }
    let entries = inner.sym.len() + inner.ddg.len();
    CacheLoadReport {
        format: CacheFormat::Dtc2,
        entries,
        salvaged: if damaged { loaded } else { 0 },
        discarded: promised.map_or(0, |p| p.saturating_sub(loaded)),
        damaged,
    }
}

/// Tries to parse one record at `pos`; returns `(level tag, key, blob,
/// next pos)` only when the marker, bounds, level, and checksum all
/// hold.
fn parse_record(bytes: &[u8], pos: usize) -> Option<(u8, u64, Vec<u8>, usize)> {
    if bytes.get(pos..pos + 2)? != RECORD_MARKER {
        return None;
    }
    let body = pos + 2;
    let tag = *bytes.get(body)?;
    if tag > 1 {
        return None;
    }
    let key = u64::from_le_bytes(bytes.get(body + 1..body + 9)?.try_into().ok()?);
    let len = u32::from_le_bytes(bytes.get(body + 9..body + 13)?.try_into().ok()?) as usize;
    let blob_end = (body + 13).checked_add(len)?;
    let blob = bytes.get(body + 13..blob_end)?;
    let check = u64::from_le_bytes(bytes.get(blob_end..blob_end + 8)?.try_into().ok()?);
    if fnv64_bytes(&bytes[body..blob_end]) != check {
        return None;
    }
    Some((tag, key, blob.to_vec(), blob_end + 8))
}

/// First offset `>= from` where the record marker occurs.
fn find_marker(bytes: &[u8], from: usize) -> Option<usize> {
    (from..bytes.len().checked_sub(1)?).find(|&i| bytes[i..i + 2] == RECORD_MARKER)
}

fn level_tag(level: Level) -> u8 {
    match level {
        Level::Symex => 0,
        Level::Ddg => 1,
    }
}

/// Legacy whole-file-or-nothing `DTC1` parser, kept for migration.
fn parse_dtc1(bytes: &[u8]) -> Option<Inner> {
    let mut pos = 0usize;
    if bytes.get(..4)? != CACHE_MAGIC_V1 {
        return None;
    }
    pos += 4;
    let mut maps: Vec<HashMap<u64, Vec<u8>>> = Vec::with_capacity(2);
    for _ in 0..2 {
        let n = get_u32(bytes, &mut pos)? as usize;
        let mut map = HashMap::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let key = get_u64(bytes, &mut pos)?;
            let len = get_u32(bytes, &mut pos)? as usize;
            let blob = bytes.get(pos..pos.checked_add(len)?)?.to_vec();
            pos += len;
            map.insert(key, blob);
        }
        maps.push(map);
    }
    let ddg = maps.pop()?;
    let sym = maps.pop()?;
    Some(Inner { sym, ddg, ..Inner::default() })
}

fn get_u32(b: &[u8], pos: &mut usize) -> Option<u32> {
    let s = b.get(*pos..*pos + 4)?;
    *pos += 4;
    Some(u32::from_le_bytes(s.try_into().ok()?))
}

fn get_u64(b: &[u8], pos: &mut usize) -> Option<u64> {
    let s = b.get(*pos..*pos + 8)?;
    *pos += 8;
    Some(u64::from_le_bytes(s.try_into().ok()?))
}

/// A scan's handle on the shared cache, carried inside the stage
/// configs. Cloning shares the underlying store.
#[derive(Debug, Clone)]
pub struct CacheRef {
    /// The shared blob store.
    pub cache: Arc<SummaryCache>,
    /// Scan label (usually the image name) for statistics and
    /// invalidation tracking.
    pub scan: String,
    /// Entry addresses of functions whose symex stage reported a
    /// non-`Analyzed` outcome this scan; their summaries are never
    /// stored (a degraded artefact must not masquerade as an analyzed
    /// one), though their content keys still participate in callers'
    /// key composition.
    pub uncacheable: Arc<BTreeSet<u32>>,
}

impl CacheRef {
    /// A handle on `cache` for the scan labelled `scan`, with an empty
    /// uncacheable set.
    pub fn new(cache: Arc<SummaryCache>, scan: impl Into<String>) -> Self {
        CacheRef { cache, scan: scan.into(), uncacheable: Arc::new(BTreeSet::new()) }
    }
}

// --- Key derivation -------------------------------------------------

/// Digest of everything about the binary that is not one function's own
/// bytes: architecture, entry point, section layout (with the data of
/// every non-text section — rodata literals and globals feed the
/// analysis), the symbol table, and the import table.
pub fn env_digest(bin: &Binary) -> u64 {
    let mut h = Fnv64::new();
    h.write_str("dtaint-env/v1");
    h.write_u8(bin.arch as u8);
    h.write_u32(bin.entry);
    h.write_u32(bin.sections.len() as u32);
    for s in &bin.sections {
        h.write_str(&s.name);
        h.write_u8(section_kind_tag(s.kind));
        h.write_u32(s.addr);
        h.write_u32(s.size);
        if s.kind != dtaint_fwbin::SectionKind::Text {
            h.write(&s.data);
        }
    }
    h.write_u32(bin.symbols.len() as u32);
    for s in &bin.symbols {
        h.write_str(&s.name);
        h.write_u32(s.addr);
        h.write_u32(s.size);
        h.write_u8(matches!(s.kind, dtaint_fwbin::SymbolKind::Function) as u8);
    }
    h.write_u32(bin.imports.len() as u32);
    for i in &bin.imports {
        h.write_str(&i.name);
        h.write_u32(i.stub_addr);
    }
    h.finish()
}

fn section_kind_tag(k: dtaint_fwbin::SectionKind) -> u8 {
    use dtaint_fwbin::SectionKind::*;
    match k {
        Text => 0,
        Plt => 1,
        RoData => 2,
        Data => 3,
        Bss => 4,
    }
}

/// Salt for symex-level keys: environment digest plus every
/// [`SymexConfig`] knob that can change a local summary. `panic_on` is
/// included so fault-drilled scans never hit healthy entries.
pub fn sym_salt(env: u64, cfg: &SymexConfig) -> u64 {
    let mut h = Fnv64::new();
    // v2: the summary blob encoding gained the SSE counters.
    h.write_str("dtaint-symex/v2");
    h.write_u64(env);
    h.write_u32(cfg.max_paths);
    h.write_u32(cfg.max_blocks_per_path);
    h.write_u8(cfg.stack_args);
    h.write_u32(cfg.max_fuel);
    write_opt_u32(&mut h, cfg.panic_on);
    h.finish()
}

/// Salt for DDG-level keys: environment digest plus every
/// [`DataflowConfig`] knob that can change a final summary. Thread
/// count and tracing are observationally irrelevant and excluded.
pub fn ddg_salt(env: u64, cfg: &DataflowConfig) -> u64 {
    let mut h = Fnv64::new();
    // v2: alias mode/budget knobs joined the salt and the summary blob
    // encoding gained the SSE counters; v1 blobs must never match.
    h.write_str("dtaint-ddg/v2");
    h.write_u64(env);
    h.write_u8(cfg.enable_alias as u8);
    h.write_u8(cfg.alias.mode.salt_tag());
    h.write_u32(cfg.alias.max_depth);
    h.write_u32(cfg.alias.max_rounds);
    h.write_u8(cfg.enable_indirect as u8);
    let mut sinks: Vec<&str> = cfg.sink_names.iter().map(String::as_str).collect();
    sinks.sort_unstable();
    h.write_u32(sinks.len() as u32);
    for s in sinks {
        h.write_str(s);
    }
    h.write_u8(cfg.loop_copy_sinks as u8);
    h.write_u64(cfg.max_sinks_per_fn as u64);
    h.write_u8(cfg.interval_guards as u8);
    h.write_u64(cfg.max_fuel);
    write_opt_u32(&mut h, cfg.panic_on);
    h.finish()
}

fn write_opt_u32(h: &mut Fnv64, v: Option<u32>) {
    match v {
        Some(x) => {
            h.write_u8(1);
            h.write_u32(x);
        }
        None => h.write_u8(0),
    }
}

/// Content hash of one function: salt, identity, and raw machine bytes
/// only. Deliberately *not* any rendering of the symbolic summary: the
/// local summary is a deterministic function of the bytes plus the
/// config (in the salt) and the rest-of-image context (in the
/// environment digest), while its pool *structure* varies with the
/// merge path that absorbed it (the parallel merge rebuilds expressions
/// through normalizing constructors), so hashing it would make keys
/// thread-count-dependent.
pub fn function_content_hash(salt: u64, addr: u32, name: &str, bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(salt);
    h.write_u32(addr);
    h.write_str(name);
    h.write_u32(bytes.len() as u32);
    h.write(bytes);
    h.finish()
}

/// Per-call-site marker kinds for [`compose_final_key`]. Encoded into
/// the key in call-site order, so the key captures exactly what
/// Algorithm 2's inner loop will consume at each site.
pub mod marker {
    use super::Fnv64;

    /// A call to an import (sink or benign) — keyed by name.
    pub fn import(name: &str) -> u64 {
        let mut h = Fnv64::new();
        h.write_u8(1);
        h.write_str(name);
        h.finish()
    }

    /// A callee inside the caller's own SCC (treated as opaque).
    pub fn same_scc() -> u64 {
        let mut h = Fnv64::new();
        h.write_u8(2);
        h.finish()
    }

    /// An indirect call the resolver left unresolved this scan.
    pub fn unresolved() -> u64 {
        let mut h = Fnv64::new();
        h.write_u8(3);
        h.finish()
    }

    /// A direct callee with no final summary (call into no known
    /// function) — keyed by target address.
    pub fn absent(addr: u32) -> u64 {
        let mut h = Fnv64::new();
        h.write_u8(4);
        h.write_u32(addr);
        h.finish()
    }
}

/// Composes a function's final scan key from its own content hash, the
/// combined hash of its SCC (multi-member components only: the sorted
/// member hashes, because members consume each other only as opaque
/// boundaries), and the per-call-site markers in call-site order.
pub fn compose_final_key(salt: u64, own: u64, scc_combined: Option<u64>, markers: &[u64]) -> u64 {
    let mut h = Fnv64::new();
    h.write_str("dtaint-final/v1");
    h.write_u64(salt);
    h.write_u64(own);
    match scc_combined {
        Some(c) => {
            h.write_u8(1);
            h.write_u64(c);
        }
        None => h.write_u8(0),
    }
    h.write_u32(markers.len() as u32);
    for &m in markers {
        h.write_u64(m);
    }
    h.finish()
}

/// Combined hash of a multi-member SCC: the sorted `(addr, own hash)`
/// pairs of its members.
pub fn combine_scc(members: &[(u32, u64)]) -> u64 {
    let mut sorted = members.to_vec();
    sorted.sort_unstable();
    let mut h = Fnv64::new();
    h.write_str("dtaint-scc/v1");
    h.write_u32(sorted.len() as u32);
    for (addr, own) in sorted {
        h.write_u32(addr);
        h.write_u64(own);
    }
    h.finish()
}

// --- Final-summary blob codec ---------------------------------------

use crate::interproc::{FinalSummary, SinkKind, SinkObservation};
use dtaint_symex::encode::{SummaryDecoder, SummaryEncoder};
use dtaint_symex::ExprPool;

/// Encodes a final summary (plus the per-function infeasible-pruned
/// count a hit must re-credit) into a pool-free blob. `k_unknowns` is
/// the number of unknowns this function's propagation created;
/// rehydration re-allocates exactly that many up front.
pub fn encode_final(
    pool: &ExprPool,
    fin: &FinalSummary,
    pruned: u32,
    k_unknowns: u32,
    map_unknown: &mut dyn FnMut(u32) -> Option<(u32, u32)>,
) -> Option<Vec<u8>> {
    let mut enc = SummaryEncoder::new(pool, map_unknown);
    enc.u32(k_unknowns);
    enc.summary(&fin.summary);
    enc.u64(fin.local_constraints as u64);
    enc.u64(fin.fuel_used);
    enc.u32(pruned);
    enc.u32(fin.sinks.len() as u32);
    for sk in &fin.sinks {
        match &sk.kind {
            SinkKind::Import(n) => {
                enc.u8(0);
                enc.str(n);
            }
            SinkKind::LoopCopy => enc.u8(1),
        }
        enc.u32(sk.sink_ins);
        enc.u32(sk.sink_fn);
        enc.u32(sk.args.len() as u32);
        for &a in &sk.args {
            enc.expr(a);
        }
        enc.u32(sk.call_chain.len() as u32);
        for &c in &sk.call_chain {
            enc.u32(c);
        }
        enc.u32(sk.constraints.len() as u32);
        for &(op, l, r) in &sk.constraints {
            enc.u8(cmp_op_tag(op));
            enc.expr(l);
            enc.expr(r);
        }
    }
    let mut blob = enc.finish()?;
    // Trailer duplicate of k: the caller must allocate the function's
    // unknowns (to build the unmapper) *before* the node table can be
    // parsed, so k has to be readable without decoding anything.
    blob.extend_from_slice(&k_unknowns.to_le_bytes());
    Some(blob)
}

/// The number of unknowns a blob's function created, from the trailer —
/// readable before any decode, because the caller allocates them to
/// build the unknown unmapper the decoder needs.
pub fn blob_k_unknowns(blob: &[u8]) -> Option<u32> {
    blob.len()
        .checked_sub(4)
        .and_then(|s| blob.get(s..).map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]])))
}

fn cmp_op_tag(op: dtaint_symex::CmpOp) -> u8 {
    use dtaint_symex::CmpOp::*;
    match op {
        Eq => 0,
        Ne => 1,
        Lt => 2,
        Ge => 3,
        Le => 4,
        Gt => 5,
    }
}

fn cmp_op_untag(t: u8) -> Option<dtaint_symex::CmpOp> {
    use dtaint_symex::CmpOp::*;
    Some(match t {
        0 => Eq,
        1 => Ne,
        2 => Lt,
        3 => Ge,
        4 => Le,
        5 => Gt,
        _ => return None,
    })
}

/// Decodes a blob written by [`encode_final`] into `pool`. Returns the
/// summary plus the stored infeasible-pruned count.
pub fn decode_final(
    blob: &[u8],
    pool: &mut ExprPool,
    unmap: &mut dyn FnMut(u32, u32) -> Option<u32>,
) -> Option<(FinalSummary, u32)> {
    let body = blob.get(..blob.len().checked_sub(4)?)?;
    let mut dec = SummaryDecoder::new(body, pool, unmap)?;
    let _k = dec.u32()?;
    let summary = dec.summary()?;
    let local_constraints = dec.u64()? as usize;
    let fuel_used = dec.u64()?;
    let pruned = dec.u32()?;
    let nsinks = dec.u32()?;
    let mut sinks = Vec::with_capacity(nsinks as usize);
    for _ in 0..nsinks {
        let kind = match dec.u8()? {
            0 => SinkKind::Import(dec.str()?),
            1 => SinkKind::LoopCopy,
            _ => return None,
        };
        let sink_ins = dec.u32()?;
        let sink_fn = dec.u32()?;
        let mut args = Vec::new();
        for _ in 0..dec.u32()? {
            args.push(dec.expr()?);
        }
        let mut call_chain = Vec::new();
        for _ in 0..dec.u32()? {
            call_chain.push(dec.u32()?);
        }
        let mut constraints = Vec::new();
        for _ in 0..dec.u32()? {
            let op = cmp_op_untag(dec.u8()?)?;
            let l = dec.expr()?;
            let r = dec.expr()?;
            constraints.push((op, l, r));
        }
        sinks.push(SinkObservation { kind, sink_ins, sink_fn, args, call_chain, constraints });
    }
    if !dec.at_end() {
        return None;
    }
    Some((
        FinalSummary {
            summary,
            sinks,
            local_constraints,
            panicked: false,
            budget_exhausted: false,
            fuel_used,
        },
        pruned,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_lookup_and_stats() {
        let c = SummaryCache::new();
        c.begin_scan("img");
        assert!(c.lookup_blob(Level::Symex, 7).is_none());
        c.note_miss(Level::Symex, "img", "f", 0x100, Some(7));
        c.store(Level::Symex, "img", 7, vec![1, 2, 3]);
        assert_eq!(c.lookup_blob(Level::Symex, 7).as_deref(), Some(&[1u8, 2, 3][..]));
        c.note_hit(Level::Symex, "img", 0x100, 7);
        let st = c.scan_stats("img");
        assert_eq!((st.sym_hits, st.sym_misses, st.stores), (1, 1, 1));
        assert!(st.sym_miss_fns.contains("f"));
        assert_eq!(c.totals().entries, 1);
    }

    #[test]
    fn key_change_counts_as_invalidation() {
        let c = SummaryCache::new();
        c.begin_scan("img");
        c.note_miss(Level::Ddg, "img", "f", 0x100, Some(1));
        c.begin_scan("img");
        c.note_miss(Level::Ddg, "img", "f", 0x100, Some(2));
        let st = c.scan_stats("img");
        assert_eq!(st.invalidations, 1);
        // Same key again is a plain miss, not an invalidation.
        c.begin_scan("img");
        c.note_miss(Level::Ddg, "img", "f", 0x100, Some(2));
        assert_eq!(c.scan_stats("img").invalidations, 0);
    }

    #[test]
    fn begin_scan_resets_stats_not_entries() {
        let c = SummaryCache::new();
        c.begin_scan("a");
        c.store(Level::Ddg, "a", 9, vec![0]);
        c.begin_scan("a");
        assert_eq!(c.scan_stats("a"), ScanStats::default());
        assert!(c.lookup_blob(Level::Ddg, 9).is_some());
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("dtc-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.bin");
        let c = SummaryCache::new();
        c.store(Level::Symex, "s", 1, vec![10, 11]);
        c.store(Level::Ddg, "s", 2, vec![20]);
        c.save(&path).unwrap();
        let (back, report) = SummaryCache::load_with_report(&path);
        assert_eq!(back.lookup_blob(Level::Symex, 1).as_deref(), Some(&[10u8, 11][..]));
        assert_eq!(back.lookup_blob(Level::Ddg, 2).as_deref(), Some(&[20u8][..]));
        assert_eq!(back.totals().entries, 2);
        assert_eq!(report, CacheLoadReport::clean(CacheFormat::Dtc2, 2));
        // Corrupt file → cold start, no panic, damage reported.
        std::fs::write(&path, b"garbage").unwrap();
        let (cold, report) = SummaryCache::load_with_report(&path);
        assert_eq!(cold.totals().entries, 0);
        assert_eq!(report.format, CacheFormat::Unrecognized);
        assert!(report.damaged);
        // Missing file → cold start.
        let (cold, report) = SummaryCache::load_with_report(&dir.join("nope.bin"));
        assert_eq!(cold.totals().entries, 0);
        assert_eq!(report, CacheLoadReport::clean(CacheFormat::Missing, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A cache with `n` entries whose blobs avoid the record marker's
    /// first byte, so damage can never fabricate a spurious record.
    fn marker_free_cache(n: u64) -> SummaryCache {
        let c = SummaryCache::new();
        for k in 0..n {
            let blob = vec![(k % 200) as u8; 5 + (k as usize % 7)];
            c.store(if k % 2 == 0 { Level::Symex } else { Level::Ddg }, "s", k, blob);
        }
        c
    }

    #[test]
    fn truncated_dtc2_salvages_the_intact_prefix() {
        let bytes = marker_free_cache(6).to_bytes();
        // Chop mid-way through the last record.
        let cut = bytes.len() - 3;
        let (back, report) = SummaryCache::from_bytes(&bytes[..cut]);
        assert!(report.damaged);
        assert_eq!(report.format, CacheFormat::Dtc2);
        assert_eq!(report.salvaged, 5, "five intact records survive");
        assert_eq!(report.discarded, 1, "the header promised one more");
        assert_eq!(back.totals().entries, 5);
    }

    #[test]
    fn bit_flipped_record_is_discarded_neighbors_survive() {
        let c = marker_free_cache(4);
        let mut bytes = c.to_bytes();
        // Flip a bit inside the second record's blob. Records start at
        // 16; record size = 23 + blob len. Find the second marker.
        let second = (17..bytes.len()).find(|&i| bytes[i..i + 2] == RECORD_MARKER).unwrap();
        bytes[second + 15] ^= 0x01;
        let (back, report) = SummaryCache::from_bytes(&bytes);
        assert!(report.damaged);
        assert_eq!(report.salvaged, 3);
        assert_eq!(report.discarded, 1);
        assert_eq!(back.totals().entries, 3);
    }

    #[test]
    fn damaged_header_still_salvages_records() {
        let mut bytes = marker_free_cache(3).to_bytes();
        bytes[5] ^= 0xFF; // corrupt the count field → header checksum fails
        let (back, report) = SummaryCache::from_bytes(&bytes);
        assert!(report.damaged);
        assert_eq!(report.salvaged, 3, "records are self-checksummed");
        assert_eq!(report.discarded, 0, "no trustworthy promise to price against");
        assert_eq!(back.totals().entries, 3);
    }

    #[test]
    fn legacy_dtc1_loads_cleanly() {
        let c = SummaryCache::new();
        c.store(Level::Symex, "s", 1, vec![10, 11]);
        c.store(Level::Ddg, "s", 2, vec![20]);
        let v1 = c.encode_dtc1();
        assert_eq!(&v1[..4], b"DTC1");
        let (back, report) = SummaryCache::from_bytes(&v1);
        assert_eq!(report, CacheLoadReport::clean(CacheFormat::Dtc1, 2));
        assert_eq!(back.lookup_blob(Level::Symex, 1).as_deref(), Some(&[10u8, 11][..]));
        assert_eq!(back.lookup_blob(Level::Ddg, 2).as_deref(), Some(&[20u8][..]));
    }

    #[test]
    fn damaged_dtc1_is_a_cold_start_not_an_error() {
        let c = SummaryCache::new();
        c.store(Level::Symex, "s", 1, vec![10, 11]);
        let v1 = c.encode_dtc1();
        let (back, report) = SummaryCache::from_bytes(&v1[..v1.len() - 1]);
        assert_eq!(back.totals().entries, 0);
        assert!(report.damaged);
        assert_eq!(report.format, CacheFormat::Dtc1);
        assert_eq!(report.salvaged, 0, "DTC1 has no record boundaries to salvage");
    }

    #[test]
    fn salts_separate_configs_and_drills() {
        let env = 42u64;
        let base = SymexConfig::default();
        let drilled = SymexConfig { panic_on: Some(0x8000), ..SymexConfig::default() };
        assert_ne!(sym_salt(env, &base), sym_salt(env, &drilled));
        assert_ne!(sym_salt(env, &base), sym_salt(env + 1, &base));
        let d = DataflowConfig::default();
        let d2 = DataflowConfig { interval_guards: true, ..DataflowConfig::default() };
        assert_ne!(ddg_salt(env, &d), ddg_salt(env, &d2));
        // Thread count must NOT separate keys.
        let d3 = DataflowConfig { threads: 8, ..DataflowConfig::default() };
        assert_eq!(ddg_salt(env, &d), ddg_salt(env, &d3));
    }

    #[test]
    fn final_key_composition_is_sensitive() {
        let k = compose_final_key(1, 2, None, &[marker::import("recv")]);
        assert_ne!(k, compose_final_key(1, 3, None, &[marker::import("recv")]));
        assert_ne!(k, compose_final_key(1, 2, None, &[marker::import("read")]));
        assert_ne!(k, compose_final_key(1, 2, Some(9), &[marker::import("recv")]));
        assert_ne!(k, compose_final_key(1, 2, None, &[]));
        assert_ne!(marker::same_scc(), marker::unresolved());
        assert_ne!(marker::absent(4), marker::absent(5));
    }
}
