//! A conventional top-down, context-sensitive data-dependency generator —
//! the comparator of the paper's Table VII.
//!
//! The paper attributes angr's slowness to its "worklist-based and
//! iterative approach to generate interprocedural data flows": the same
//! callee is re-analyzed under every calling context, and data
//! dependencies are built for *every* variable rather than just what
//! taint analysis needs. This crate reproduces that design honestly:
//!
//! * the call graph is traversed **top-down from the roots**,
//! * at every call site the callee is **re-lifted and re-executed from
//!   scratch** with the caller's actual arguments as its context,
//! * the same function analyzed under *k* different contexts costs *k*
//!   full symbolic executions (DTaint's bottom-up pass costs exactly
//!   one).
//!
//! The result quality on direct flows matches DTaint (the same sinks are
//! observed with contextualised arguments); the cost difference is the
//! point. `BaselineResult::contexts_analyzed` vs the function count makes
//! the re-analysis factor measurable.

use dtaint_cfg::{CallGraph, FunctionCfg};
use dtaint_fwbin::Binary;
use dtaint_symex::pool::ExprPool;
use dtaint_symex::{analyze_function, CalleeRef, ExprId, FuncSummary, SymexConfig};
use std::collections::{HashMap, HashSet};

/// Tuning for the top-down exploration.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// Maximum call-chain depth explored from each root.
    pub max_depth: usize,
    /// Per-function symbolic execution settings. Defaults to a larger
    /// path budget than DTaint's, reflecting the generic engine's lack
    /// of the loop-once specialisation.
    pub symex: SymexConfig,
    /// Import names recorded as sinks (for result parity with DTaint).
    pub sink_names: HashSet<String>,
    /// Hard cap on analyzed contexts (safety valve for pathological
    /// call graphs).
    pub max_contexts: usize,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            max_depth: 8,
            symex: SymexConfig { max_paths: 128, ..SymexConfig::default() },
            sink_names: [
                "strcpy", "strncpy", "sprintf", "memcpy", "strcat", "sscanf", "system", "popen",
            ]
            .into_iter()
            .map(str::to_owned)
            .collect(),
            max_contexts: 200_000,
        }
    }
}

/// A sink observed under one concrete calling context.
#[derive(Debug, Clone)]
pub struct ContextSink {
    /// Import name of the sink.
    pub name: String,
    /// Instruction address of the sink call.
    pub ins_addr: u32,
    /// Function containing the sink.
    pub func: u32,
    /// Sink arguments after context substitution.
    pub args: Vec<ExprId>,
}

/// Outcome of the top-down analysis.
#[derive(Debug)]
pub struct BaselineResult {
    /// The expression pool shared by all contexts.
    pub pool: ExprPool,
    /// Number of (function, context) analyses performed — each one a
    /// full re-lift and re-execution.
    pub contexts_analyzed: usize,
    /// Number of distinct functions reached.
    pub functions_reached: usize,
    /// `contexts_analyzed - functions_reached`: pure re-analysis waste.
    pub reanalyses: usize,
    /// Sinks observed, one entry per (sink, context).
    pub sinks: Vec<ContextSink>,
}

/// Runs the conventional top-down analysis over the whole binary.
///
/// Roots are functions without callers; every root is explored with
/// unconstrained arguments.
pub fn analyze_topdown(
    bin: &Binary,
    cfgs: &[FunctionCfg],
    callgraph: &CallGraph,
    config: &BaselineConfig,
) -> BaselineResult {
    let cfg_by_addr: HashMap<u32, &FunctionCfg> = cfgs.iter().map(|c| (c.addr, c)).collect();
    let mut pool = ExprPool::new();
    let mut result = BaselineResult {
        pool: ExprPool::new(),
        contexts_analyzed: 0,
        functions_reached: 0,
        reanalyses: 0,
        sinks: Vec::new(),
    };
    let mut reached: HashSet<u32> = HashSet::new();

    // Roots: functions nobody calls (fall back to all functions).
    let callees: HashSet<u32> = callgraph.edges.values().flat_map(|v| v.iter().copied()).collect();
    let roots: Vec<u32> = {
        let r: Vec<u32> =
            callgraph.functions.iter().copied().filter(|f| !callees.contains(f)).collect();
        if r.is_empty() {
            callgraph.functions.clone()
        } else {
            r
        }
    };

    // Explicit stack of (function, context args, depth, on-stack set).
    for root in roots {
        let mut stack: Vec<(u32, Vec<ExprId>, usize, Vec<u32>)> =
            vec![(root, Vec::new(), 0, Vec::new())];
        while let Some((faddr, ctx_args, depth, chain)) = stack.pop() {
            if result.contexts_analyzed >= config.max_contexts {
                break;
            }
            let Some(fcfg) = cfg_by_addr.get(&faddr) else { continue };
            // The expensive step, repeated per context: full re-analysis.
            let summary: FuncSummary = analyze_function(bin, fcfg, &mut pool, &config.symex);
            result.contexts_analyzed += 1;
            reached.insert(faddr);

            // Context substitution of this summary's expressions.
            let subst = |pool: &mut ExprPool, e: ExprId| -> ExprId {
                pool.rewrite(e, &mut |p, id| match p.node(id) {
                    dtaint_symex::SymNode::Arg(i) => {
                        ctx_args.get(i as usize).copied().or_else(|| Some(p.fresh_unknown()))
                    }
                    _ => None,
                })
            };

            for cs in &summary.callsites {
                match &cs.callee {
                    CalleeRef::Import(name) => {
                        if config.sink_names.contains(name) {
                            let args = cs.args.iter().map(|&a| subst(&mut pool, a)).collect();
                            result.sinks.push(ContextSink {
                                name: name.clone(),
                                ins_addr: cs.ins_addr,
                                func: faddr,
                                args,
                            });
                        }
                    }
                    CalleeRef::Direct(callee) => {
                        if depth < config.max_depth && *callee != faddr && !chain.contains(callee) {
                            let args: Vec<ExprId> =
                                cs.args.iter().map(|&a| subst(&mut pool, a)).collect();
                            let mut new_chain = chain.clone();
                            new_chain.push(faddr);
                            stack.push((*callee, args, depth + 1, new_chain));
                        }
                    }
                    CalleeRef::Indirect(_) => {
                        // The conventional engine leaves indirect calls
                        // unresolved — a recall gap DTaint's layout
                        // similarity closes (§VI).
                    }
                }
            }
        }
    }

    result.functions_reached = reached.len();
    result.reanalyses = result.contexts_analyzed.saturating_sub(result.functions_reached);
    result.pool = pool;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtaint_cfg::build_all_cfgs;
    use dtaint_fwbin::asm::Assembler;
    use dtaint_fwbin::link::BinaryBuilder;
    use dtaint_fwbin::{Arch, Reg};

    /// A fan-shaped program: `main` calls `util` via three intermediate
    /// helpers, so `util` has three calling contexts.
    fn fan_binary() -> Binary {
        let arch = Arch::Arm32e;
        let mut b = BinaryBuilder::new(arch);
        let mut main = Assembler::new(arch);
        for h in ["h0", "h1", "h2"] {
            main.call(h);
        }
        main.ret();
        b.add_function("main", main);
        for (i, h) in ["h0", "h1", "h2"].iter().enumerate() {
            let mut a = Assembler::new(arch);
            a.arm(dtaint_fwbin::arm::ArmIns::MovI { rd: Reg(0), imm: i as u16 });
            a.call("util");
            a.ret();
            b.add_function(h, a);
        }
        let mut util = Assembler::new(arch);
        util.arm(dtaint_fwbin::arm::ArmIns::MovR { rd: Reg(1), rm: Reg(0) });
        util.call("strcpy");
        util.ret();
        b.add_function("util", util);
        b.add_import("strcpy");
        b.link().unwrap()
    }

    #[test]
    fn reanalyzes_shared_callee_once_per_context() {
        let bin = fan_binary();
        let cfgs = build_all_cfgs(&bin).unwrap();
        let cg = CallGraph::build(&bin, &cfgs);
        let r = analyze_topdown(&bin, &cfgs, &cg, &BaselineConfig::default());
        // 1 main + 3 helpers + 3 × util = 7 contexts over 5 functions.
        assert_eq!(r.functions_reached, 5);
        assert_eq!(r.contexts_analyzed, 7);
        assert_eq!(r.reanalyses, 2);
        // The strcpy sink is seen once per context.
        assert_eq!(r.sinks.len(), 3);
    }

    #[test]
    fn context_substitution_reaches_the_sink() {
        let bin = fan_binary();
        let cfgs = build_all_cfgs(&bin).unwrap();
        let cg = CallGraph::build(&bin, &cfgs);
        let r = analyze_topdown(&bin, &cfgs, &cg, &BaselineConfig::default());
        // Each context passes a distinct constant as arg0 → strcpy's
        // second arg (copied from arg0 in util).
        let consts: HashSet<i64> =
            r.sinks.iter().filter_map(|s| r.pool.as_const(s.args[1])).collect();
        assert_eq!(consts, HashSet::from([0, 1, 2]));
    }

    #[test]
    fn depth_limit_bounds_recursion() {
        let arch = Arch::Mips32e;
        let mut f = Assembler::new(arch);
        f.call("f"); // direct self-recursion
        f.ret();
        let mut b = BinaryBuilder::new(arch);
        b.add_function("f", f);
        let bin = b.link().unwrap();
        let cfgs = build_all_cfgs(&bin).unwrap();
        let cg = CallGraph::build(&bin, &cfgs);
        let r = analyze_topdown(&bin, &cfgs, &cg, &BaselineConfig::default());
        assert_eq!(r.contexts_analyzed, 1, "self-recursion cut by the chain check");
    }

    #[test]
    fn max_contexts_is_a_hard_cap() {
        let bin = fan_binary();
        let cfgs = build_all_cfgs(&bin).unwrap();
        let cg = CallGraph::build(&bin, &cfgs);
        let config = BaselineConfig { max_contexts: 3, ..Default::default() };
        let r = analyze_topdown(&bin, &cfgs, &cg, &config);
        assert!(r.contexts_analyzed <= 3);
    }
}
