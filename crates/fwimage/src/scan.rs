//! Signature scanning and binary extraction — the Binwalk substitute.
//!
//! Real firmware triage starts by scanning a blob for known signatures
//! (filesystem superblocks, compression headers, executables) and carving
//! out the pieces. This module does the same for the formats of this
//! workspace: FWI containers, FBF executables, and a couple of foreign
//! magics that are recognised but not extractable — mirroring how Binwalk
//! identifies more than it can unpack.

use crate::container::{FwImage, FWI_MAGIC};
use crate::{Error, Result};
use dtaint_fwbin::fbf::FBF_MAGIC;
use dtaint_fwbin::Binary;

/// A recognised signature kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignatureKind {
    /// An FWI firmware container.
    FwImage,
    /// An FBF executable.
    FbfBinary,
    /// A SquashFS-like superblock (recognised, not extractable).
    SquashFs,
    /// A gzip stream (recognised, not extractable).
    Gzip,
}

/// One signature hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Signature {
    /// Byte offset of the magic.
    pub offset: usize,
    /// What the magic identifies.
    pub kind: SignatureKind,
}

/// Scans a blob for known signatures, in offset order.
pub fn scan(data: &[u8]) -> Vec<Signature> {
    const MAGICS: &[(&[u8], SignatureKind)] = &[
        (&FWI_MAGIC, SignatureKind::FwImage),
        (&FBF_MAGIC, SignatureKind::FbfBinary),
        (b"hsqs", SignatureKind::SquashFs),
        (&[0x1f, 0x8b, 0x08], SignatureKind::Gzip),
    ];
    let mut out = Vec::new();
    for i in 0..data.len() {
        for (magic, kind) in MAGICS {
            if data[i..].starts_with(magic) {
                out.push(Signature { offset: i, kind: *kind });
            }
        }
    }
    out
}

/// Extracts the firmware image from a blob (the image may be embedded at
/// a non-zero offset, e.g. after a bootloader stub).
///
/// # Errors
///
/// * [`Error::NoImageFound`] — no FWI signature in the blob.
/// * [`Error::Encrypted`] / [`Error::Corrupted`] — the container is
///   present but cannot be unpacked.
pub fn extract_image(data: &[u8]) -> Result<FwImage> {
    let sig = scan(data)
        .into_iter()
        .find(|s| s.kind == SignatureKind::FwImage)
        .ok_or(Error::NoImageFound)?;
    FwImage::unpack(&data[sig.offset..])
}

/// Parses every FBF executable in an unpacked image's filesystem,
/// returning `(path, binary)` pairs. Non-executable files are skipped;
/// malformed executables surface as errors.
///
/// # Errors
///
/// Returns [`Error::BadBinary`] naming the offending path when a file
/// that starts with the FBF magic fails to parse.
pub fn extract_binaries(img: &FwImage) -> Result<Vec<(String, Binary)>> {
    let mut out = Vec::new();
    for f in &img.files {
        if f.data.starts_with(&FBF_MAGIC) {
            let bin = Binary::from_bytes(&f.data)
                .map_err(|e| Error::BadBinary { path: f.path.clone(), source: e })?;
            out.push((f.path.clone(), bin));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::{Arch2, BootstrapKind, FwFile, FwMetadata};
    use dtaint_fwbin::asm::Assembler;
    use dtaint_fwbin::link::BinaryBuilder;
    use dtaint_fwbin::Arch;

    fn image_with_binary() -> FwImage {
        let mut a = Assembler::new(Arch::Mips32e);
        a.ret();
        let mut b = BinaryBuilder::new(Arch::Mips32e);
        b.add_function("main", a);
        let bin = b.link().unwrap();
        FwImage {
            metadata: FwMetadata {
                vendor: "Netgear".into(),
                product: "DGN1000".into(),
                version: "1.1.00.46".into(),
                arch: Arch2::Mips,
                release_year: 2014,
                peripherals: vec![],
                nvram_required: false,
                nvram_defaults_present: false,
                bootstrap: BootstrapKind::Standard,
            },
            files: vec![
                FwFile { path: "www/setup.cgi".into(), data: bin.to_bytes() },
                FwFile { path: "etc/version".into(), data: b"1.1.00.46".to_vec() },
            ],
        }
    }

    #[test]
    fn scan_finds_embedded_image_after_padding() {
        let img = image_with_binary();
        let mut blob = vec![0u8; 512]; // bootloader stub padding
        blob.extend(img.pack(false));
        let sigs = scan(&blob);
        assert!(sigs.iter().any(|s| s.kind == SignatureKind::FwImage && s.offset == 512));
        // The FBF binary inside the container is also visible to the scan.
        assert!(sigs.iter().any(|s| s.kind == SignatureKind::FbfBinary));
        let back = extract_image(&blob).unwrap();
        assert_eq!(back.metadata.product, "DGN1000");
    }

    #[test]
    fn scan_recognises_foreign_magics() {
        let blob = [b"junk".as_ref(), b"hsqs", &[0u8, 0x1f, 0x8b, 0x08], b"end"].concat();
        let kinds: Vec<SignatureKind> = scan(&blob).iter().map(|s| s.kind).collect();
        assert!(kinds.contains(&SignatureKind::SquashFs));
        assert!(kinds.contains(&SignatureKind::Gzip));
    }

    #[test]
    fn extract_binaries_parses_fbf_files_only() {
        let img = image_with_binary();
        let bins = extract_binaries(&img).unwrap();
        assert_eq!(bins.len(), 1);
        assert_eq!(bins[0].0, "www/setup.cgi");
        assert!(bins[0].1.function("main").is_some());
    }

    #[test]
    fn corrupt_embedded_binary_is_reported_with_path() {
        let mut img = image_with_binary();
        // Truncate the executable: magic survives, body does not.
        img.files[0].data.truncate(6);
        let err = extract_binaries(&img).unwrap_err();
        assert!(matches!(err, Error::BadBinary { ref path, .. } if path == "www/setup.cgi"));
    }

    #[test]
    fn no_image_found_in_garbage() {
        assert_eq!(extract_image(b"not firmware at all").unwrap_err(), Error::NoImageFound);
    }
}
