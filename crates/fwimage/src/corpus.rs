//! Seeded firmware-corpus generation — the substitute for the paper's
//! 6,529 crawled vendor images (§II-A).
//!
//! The generator reproduces the corpus *statistics* the paper reports:
//! 12 manufacturers, releases spread over 2009–2016 with rising volume,
//! more than 65% of images not unpackable (modelled as vendor
//! encryption), and roughly 10% of the total bootable in a full-system
//! emulator. The [`triage`] helper runs the whole unpack→emulate
//! pipeline and aggregates the per-year histogram behind Figure 1.

use crate::container::{Arch2, BootstrapKind, FwFile, FwImage, FwMetadata, Peripheral};
use crate::emulate::try_emulate;
use crate::scan::extract_image;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// The twelve manufacturers of the simulated corpus.
pub const VENDORS: [&str; 12] = [
    "D-Link",
    "Netgear",
    "Hikvision",
    "Uniview",
    "TP-Link",
    "Tenda",
    "Zyxel",
    "Belkin",
    "Linksys",
    "Axis",
    "Foscam",
    "Trendnet",
];

/// Corpus generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct CorpusConfig {
    /// Number of images (the paper collected 6,529).
    pub n_images: usize,
    /// RNG seed for reproducibility.
    pub seed: u64,
    /// First release year.
    pub start_year: u16,
    /// Last release year (inclusive).
    pub end_year: u16,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig { n_images: 6529, seed: 0xd7a1_2018, start_year: 2009, end_year: 2016 }
    }
}

/// One generated corpus entry: the raw blob as a crawler would store it.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Packed (possibly encrypted) image bytes.
    pub blob: Vec<u8>,
    /// Release year (also recorded inside the metadata).
    pub year: u16,
    /// Manufacturer.
    pub vendor: String,
}

/// Per-year triage counters (the data behind Figure 1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct YearStats {
    /// Images released that year.
    pub total: usize,
    /// Successfully unpacked.
    pub unpacked: usize,
    /// Successfully booted in the emulator.
    pub emulated: usize,
}

/// Generates a seeded corpus.
pub fn generate_corpus(config: &CorpusConfig) -> Vec<CorpusEntry> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let years: Vec<u16> = (config.start_year..=config.end_year).collect();
    // Release volume grows over the years, with a dip in the final year
    // (crawled mid-cycle), matching the Figure 1 silhouette.
    let mut weights: Vec<f64> = (0..years.len()).map(|i| 3.0 + 2.0 * i as f64).collect();
    if let Some(last) = weights.last_mut() {
        *last *= 0.8;
    }
    let wsum: f64 = weights.iter().sum();

    let mut out = Vec::with_capacity(config.n_images);
    for _ in 0..config.n_images {
        // Sample a year by weight.
        let mut pick = rng.gen::<f64>() * wsum;
        let mut year = years[years.len() - 1];
        for (i, w) in weights.iter().enumerate() {
            if pick < *w {
                year = years[i];
                break;
            }
            pick -= w;
        }
        let vendor = VENDORS[rng.gen_range(0..VENDORS.len())].to_owned();
        let is_camera_vendor =
            matches!(vendor.as_str(), "Hikvision" | "Uniview" | "Axis" | "Foscam");

        let mut peripherals = vec![Peripheral::Ethernet];
        if rng.gen_bool(0.7) {
            peripherals.push(Peripheral::Wifi);
        }
        if is_camera_vendor {
            peripherals.push(Peripheral::Camera { proprietary: rng.gen_bool(0.6) });
        }
        if rng.gen_bool(0.30) {
            peripherals.push(Peripheral::CustomAsic);
        }
        if rng.gen_bool(0.08) {
            peripherals.push(Peripheral::StrictWatchdog);
        }
        if rng.gen_bool(0.15) {
            peripherals.push(Peripheral::DslModem);
        }

        let bootstrap = if rng.gen_bool(0.12) {
            BootstrapKind::CustomLoader
        } else if rng.gen_bool(0.08) {
            BootstrapKind::EncryptedLoader
        } else {
            BootstrapKind::Standard
        };
        let nvram_required = rng.gen_bool(0.5);
        let nvram_defaults_present = !nvram_required || rng.gen_bool(0.6);

        let mut files = vec![FwFile {
            path: "etc/version".into(),
            data: format!("{vendor} fw {year}").into_bytes(),
        }];
        if rng.gen_bool(0.9) {
            files.push(FwFile { path: "etc/network/interfaces".into(), data: vec![] });
        }

        let img = FwImage {
            metadata: FwMetadata {
                vendor: vendor.clone(),
                product: format!("M{}", rng.gen_range(100..9999)),
                version: format!("{}.{:02}", rng.gen_range(1..4), rng.gen_range(0..100)),
                arch: if rng.gen_bool(0.5) { Arch2::Arm } else { Arch2::Mips },
                release_year: year,
                peripherals,
                nvram_required,
                nvram_defaults_present,
                bootstrap,
            },
            files,
        };
        // >65% of real images cannot be unpacked (encryption/unknown
        // formats, §VI).
        let encrypted = rng.gen_bool(0.65);
        out.push(CorpusEntry { blob: img.pack(encrypted), year, vendor });
    }
    out
}

/// Runs unpack → emulate over a corpus, aggregating per-year statistics.
pub fn triage(entries: &[CorpusEntry]) -> BTreeMap<u16, YearStats> {
    let mut by_year: BTreeMap<u16, YearStats> = BTreeMap::new();
    for e in entries {
        let stats = by_year.entry(e.year).or_default();
        stats.total += 1;
        let Ok(img) = extract_image(&e.blob) else { continue };
        stats.unpacked += 1;
        if try_emulate(&img).is_ok() {
            stats.emulated += 1;
        }
    }
    by_year
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_corpus() -> Vec<CorpusEntry> {
        generate_corpus(&CorpusConfig { n_images: 2000, seed: 42, ..Default::default() })
    }

    #[test]
    fn corpus_is_reproducible() {
        let config = CorpusConfig { n_images: 50, seed: 7, ..Default::default() };
        let a = generate_corpus(&config);
        let b = generate_corpus(&config);
        assert_eq!(a.len(), 50);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.blob, y.blob);
        }
    }

    #[test]
    fn statistics_match_the_paper_shape() {
        let corpus = small_corpus();
        let stats = triage(&corpus);
        let total: usize = stats.values().map(|s| s.total).sum();
        let unpacked: usize = stats.values().map(|s| s.unpacked).sum();
        let emulated: usize = stats.values().map(|s| s.emulated).sum();
        assert_eq!(total, 2000);
        // >65% unpack failure.
        let unpack_rate = unpacked as f64 / total as f64;
        assert!(unpack_rate < 0.40, "unpack rate {unpack_rate} too high");
        // ~10% emulation success (paper: 670 / 6529 ≈ 10.3%).
        let emu_rate = emulated as f64 / total as f64;
        assert!((0.04..0.18).contains(&emu_rate), "emulation rate {emu_rate} off");
    }

    #[test]
    fn yearly_volume_grows() {
        let corpus = small_corpus();
        let stats = triage(&corpus);
        let years: Vec<u16> = stats.keys().copied().collect();
        assert_eq!(years.first(), Some(&2009));
        assert_eq!(years.last(), Some(&2016));
        // Monotone-ish growth: the 2015 bucket clearly exceeds 2009's.
        assert!(stats[&2015].total > 2 * stats[&2009].total);
    }

    #[test]
    fn emulated_is_subset_of_unpacked() {
        for s in triage(&small_corpus()).values() {
            assert!(s.emulated <= s.unpacked);
            assert!(s.unpacked <= s.total);
        }
    }

    #[test]
    fn vendors_cover_the_twelve() {
        let corpus = small_corpus();
        let distinct: std::collections::HashSet<&str> =
            corpus.iter().map(|e| e.vendor.as_str()).collect();
        assert_eq!(distinct.len(), 12);
    }
}
