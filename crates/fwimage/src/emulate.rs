//! The emulation-feasibility model — the FIRMADYNE substitute behind
//! Figure 1.
//!
//! The paper's empirical study runs every collected image through a
//! full-system emulator; ~90% fail "mainly because the firmware failed
//! to access custom and proprietary hardware components or failed to
//! initialize the network configuration in the boot process" (§II-A).
//! This module reproduces those failure modes as a deterministic
//! decision over image metadata, so the corpus generator can shape the
//! success rate and the Figure 1 harness can measure it.

use crate::container::{BootstrapKind, FwImage};
use std::fmt;

/// Why the emulator failed to boot an image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmulationFailure {
    /// The image could not be unpacked at all (encrypted/corrupted).
    Unpackable,
    /// Boot probes a hardware component the emulator cannot provide.
    ProprietaryPeripheral(String),
    /// Boot requires NVRAM contents that are not in the image.
    NvramMissing,
    /// A vendor-specific or encrypted boot chain.
    CustomBootstrap,
    /// Userland came up but network configuration failed, so no
    /// analysable services are reachable.
    NetworkInitFailed,
}

impl fmt::Display for EmulationFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmulationFailure::Unpackable => f.write_str("image could not be unpacked"),
            EmulationFailure::ProprietaryPeripheral(p) => {
                write!(f, "boot blocked on proprietary hardware: {p}")
            }
            EmulationFailure::NvramMissing => f.write_str("required nvram contents missing"),
            EmulationFailure::CustomBootstrap => f.write_str("vendor-specific boot chain"),
            EmulationFailure::NetworkInitFailed => f.write_str("network initialisation failed"),
        }
    }
}

/// Attempts to boot an image in the simulated full-system emulator.
///
/// # Errors
///
/// Returns the first blocking [`EmulationFailure`], checked in boot
/// order: bootstrap → peripherals → NVRAM → network.
pub fn try_emulate(img: &FwImage) -> Result<(), EmulationFailure> {
    match img.metadata.bootstrap {
        BootstrapKind::Standard => {}
        BootstrapKind::CustomLoader | BootstrapKind::EncryptedLoader => {
            return Err(EmulationFailure::CustomBootstrap);
        }
    }
    for p in &img.metadata.peripherals {
        if p.blocks_emulation() {
            return Err(EmulationFailure::ProprietaryPeripheral(format!("{p:?}")));
        }
    }
    if img.metadata.nvram_required && !img.metadata.nvram_defaults_present {
        return Err(EmulationFailure::NvramMissing);
    }
    // Network init needs an interface configuration script in the image.
    let has_net_config = img
        .files
        .iter()
        .any(|f| f.path.contains("network") || f.path.contains("rc.d") || f.path == "etc/init");
    if !has_net_config {
        return Err(EmulationFailure::NetworkInitFailed);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::{Arch2, FwFile, FwMetadata, Peripheral};

    fn bootable() -> FwImage {
        FwImage {
            metadata: FwMetadata {
                vendor: "v".into(),
                product: "p".into(),
                version: "1".into(),
                arch: Arch2::Arm,
                release_year: 2014,
                peripherals: vec![Peripheral::Ethernet],
                nvram_required: false,
                nvram_defaults_present: false,
                bootstrap: BootstrapKind::Standard,
            },
            files: vec![FwFile { path: "etc/network/interfaces".into(), data: vec![] }],
        }
    }

    #[test]
    fn standard_image_boots() {
        assert_eq!(try_emulate(&bootable()), Ok(()));
    }

    #[test]
    fn custom_bootstrap_blocks() {
        let mut img = bootable();
        img.metadata.bootstrap = BootstrapKind::CustomLoader;
        assert_eq!(try_emulate(&img), Err(EmulationFailure::CustomBootstrap));
    }

    #[test]
    fn proprietary_hardware_blocks() {
        let mut img = bootable();
        img.metadata.peripherals.push(Peripheral::CustomAsic);
        assert!(matches!(try_emulate(&img), Err(EmulationFailure::ProprietaryPeripheral(_))));
    }

    #[test]
    fn nvram_requirement_respects_defaults_file() {
        let mut img = bootable();
        img.metadata.nvram_required = true;
        assert_eq!(try_emulate(&img), Err(EmulationFailure::NvramMissing));
        img.metadata.nvram_defaults_present = true;
        assert_eq!(try_emulate(&img), Ok(()));
    }

    #[test]
    fn missing_network_config_blocks() {
        let mut img = bootable();
        img.files.clear();
        assert_eq!(try_emulate(&img), Err(EmulationFailure::NetworkInitFailed));
    }

    #[test]
    fn failures_check_in_boot_order() {
        // With several problems, the bootstrap one surfaces first.
        let mut img = bootable();
        img.metadata.bootstrap = BootstrapKind::EncryptedLoader;
        img.metadata.peripherals.push(Peripheral::CustomAsic);
        img.files.clear();
        assert_eq!(try_emulate(&img), Err(EmulationFailure::CustomBootstrap));
    }
}
