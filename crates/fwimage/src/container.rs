//! The FWI firmware-image container.
//!
//! Plays the role of the vendor firmware blobs the paper crawled: a
//! header with device metadata (vendor, product, architecture, release
//! year, hardware inventory) followed by a packed file table — the root
//! filesystem. Images can be *encrypted* (body scrambled), which makes
//! extraction fail exactly like the >65% of real images Binwalk cannot
//! unpack (§VI).

use crate::{Error, Result};
use bytes::{Buf, BufMut};
use dtaint_fwbin::Arch;
use serde::{Deserialize, Serialize};

/// Magic bytes opening every FWI image.
pub const FWI_MAGIC: [u8; 4] = *b"FWI1";

/// A hardware component the firmware expects at boot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Peripheral {
    /// Standard wired network interface (emulators provide one).
    Ethernet,
    /// Standard wireless chip with mainline driver.
    Wifi,
    /// Camera sensor; proprietary ISPs block emulation.
    Camera {
        /// Needs a vendor-specific image pipeline.
        proprietary: bool,
    },
    /// A vendor-specific ASIC (crypto offload, DSL PHY, …).
    CustomAsic,
    /// A watchdog that reboots unless hardware responds in time.
    StrictWatchdog,
    /// DSL modem frontend.
    DslModem,
}

impl Peripheral {
    /// True when full-system emulators cannot provide the component —
    /// the dominant cause of FIRMADYNE boot failures (§II-A).
    pub fn blocks_emulation(self) -> bool {
        matches!(
            self,
            Peripheral::Camera { proprietary: true }
                | Peripheral::CustomAsic
                | Peripheral::StrictWatchdog
        )
    }
}

/// How the image boots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BootstrapKind {
    /// Stock U-Boot-like loader; emulators handle it.
    Standard,
    /// Vendor-patched loader poking undocumented registers.
    CustomLoader,
    /// Loader that decrypts the kernel with a fused key.
    EncryptedLoader,
}

/// Image metadata — what a crawler records from the vendor site plus
/// what the device expects from its hardware.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FwMetadata {
    /// Device manufacturer.
    pub vendor: String,
    /// Product/model string.
    pub product: String,
    /// Firmware version string.
    pub version: String,
    /// CPU architecture of the contained binaries.
    pub arch: Arch2,
    /// Release year (for the Figure 1 histogram).
    pub release_year: u16,
    /// Hardware the firmware probes at boot.
    pub peripherals: Vec<Peripheral>,
    /// True when boot requires populated NVRAM.
    pub nvram_required: bool,
    /// True when the image ships an NVRAM defaults file.
    pub nvram_defaults_present: bool,
    /// Boot chain kind.
    pub bootstrap: BootstrapKind,
}

/// Serializable architecture tag (mirror of [`Arch`], kept separate so
/// the metadata can derive serde without touching `dtaint-fwbin`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Arch2 {
    /// See [`Arch::Arm32e`].
    Arm,
    /// See [`Arch::Mips32e`].
    Mips,
}

impl From<Arch> for Arch2 {
    fn from(a: Arch) -> Self {
        match a {
            Arch::Arm32e => Arch2::Arm,
            Arch::Mips32e => Arch2::Mips,
        }
    }
}

impl From<Arch2> for Arch {
    fn from(a: Arch2) -> Self {
        match a {
            Arch2::Arm => Arch::Arm32e,
            Arch2::Mips => Arch::Mips32e,
        }
    }
}

/// One file of the packed root filesystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FwFile {
    /// Path within the filesystem (e.g. `bin/httpd`).
    pub path: String,
    /// Raw contents.
    pub data: Vec<u8>,
}

/// A firmware image: metadata plus root filesystem.
///
/// # Examples
///
/// ```
/// use dtaint_fwimage::{FwImage, FwMetadata, FwFile, Arch2, BootstrapKind};
///
/// let img = FwImage {
///     metadata: FwMetadata {
///         vendor: "Acme".into(),
///         product: "AC1200".into(),
///         version: "1.0".into(),
///         arch: Arch2::Mips,
///         release_year: 2015,
///         peripherals: vec![],
///         nvram_required: false,
///         nvram_defaults_present: true,
///         bootstrap: BootstrapKind::Standard,
///     },
///     files: vec![FwFile { path: "bin/httpd".into(), data: vec![1, 2, 3] }],
/// };
/// let packed = img.pack(false);
/// let back = FwImage::unpack(&packed)?;
/// assert_eq!(back, img);
/// # Ok::<(), dtaint_fwimage::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FwImage {
    /// Device and boot metadata.
    pub metadata: FwMetadata,
    /// Root filesystem contents.
    pub files: Vec<FwFile>,
}

/// Key used to scramble encrypted image bodies.
const SCRAMBLE_KEY: u8 = 0x5a;

impl FwImage {
    /// Packs the image. With `encrypted`, the body (everything after the
    /// magic and flag byte) is scrambled so [`FwImage::unpack`] fails —
    /// modelling vendor-encrypted images.
    pub fn pack(&self, encrypted: bool) -> Vec<u8> {
        let meta = serde_json::to_vec(&self.metadata).expect("metadata serialises");
        let mut body = Vec::new();
        body.put_u32_le(meta.len() as u32);
        body.put_slice(&meta);
        body.put_u32_le(self.files.len() as u32);
        for f in &self.files {
            body.put_u16_le(f.path.len() as u16);
            body.put_slice(f.path.as_bytes());
            body.put_u32_le(f.data.len() as u32);
            body.put_slice(&f.data);
        }
        if encrypted {
            for b in &mut body {
                *b ^= SCRAMBLE_KEY;
            }
        }
        let mut out = Vec::with_capacity(body.len() + 5);
        out.put_slice(&FWI_MAGIC);
        out.put_u8(encrypted as u8);
        out.put_slice(&body);
        out
    }

    /// Unpacks an image.
    ///
    /// # Errors
    ///
    /// * [`Error::BadMagic`] — not an FWI image.
    /// * [`Error::Encrypted`] — the body is vendor-encrypted.
    /// * [`Error::Corrupted`] — truncated or malformed contents.
    pub fn unpack(mut buf: &[u8]) -> Result<FwImage> {
        if buf.len() < 5 || buf[..4] != FWI_MAGIC {
            return Err(Error::BadMagic);
        }
        let encrypted = buf[4] != 0;
        if encrypted {
            return Err(Error::Encrypted);
        }
        buf = &buf[5..];
        let meta_len = get_u32(&mut buf)? as usize;
        if buf.remaining() < meta_len {
            return Err(Error::Corrupted("metadata truncated".into()));
        }
        let (meta_bytes, rest) = buf.split_at(meta_len);
        buf = rest;
        let metadata: FwMetadata = serde_json::from_slice(meta_bytes)
            .map_err(|e| Error::Corrupted(format!("metadata: {e}")))?;
        let n_files = get_u32(&mut buf)? as usize;
        // Each file entry takes at least 6 bytes (path length + data
        // length); a count the remaining body cannot hold is corrupt.
        if n_files > buf.remaining() / 6 {
            return Err(Error::Corrupted("file table overflows container".into()));
        }
        let mut files = Vec::with_capacity(n_files.min(4096));
        for _ in 0..n_files {
            let plen = get_u16(&mut buf)? as usize;
            if buf.remaining() < plen {
                return Err(Error::Corrupted("path truncated".into()));
            }
            let (pbytes, rest) = buf.split_at(plen);
            buf = rest;
            let path = String::from_utf8(pbytes.to_vec())
                .map_err(|_| Error::Corrupted("non-utf8 path".into()))?;
            let dlen = get_u32(&mut buf)? as usize;
            if buf.remaining() < dlen {
                return Err(Error::Corrupted("file truncated".into()));
            }
            let (dbytes, rest) = buf.split_at(dlen);
            buf = rest;
            files.push(FwFile { path, data: dbytes.to_vec() });
        }
        Ok(FwImage { metadata, files })
    }

    /// The file at `path`, if present.
    pub fn file(&self, path: &str) -> Option<&FwFile> {
        self.files.iter().find(|f| f.path == path)
    }

    /// Total packed payload size in bytes.
    pub fn total_file_bytes(&self) -> usize {
        self.files.iter().map(|f| f.data.len()).sum()
    }
}

fn get_u32(buf: &mut &[u8]) -> Result<u32> {
    if buf.remaining() < 4 {
        return Err(Error::Corrupted("unexpected end".into()));
    }
    Ok(buf.get_u32_le())
}

fn get_u16(buf: &mut &[u8]) -> Result<u16> {
    if buf.remaining() < 2 {
        return Err(Error::Corrupted("unexpected end".into()));
    }
    Ok(buf.get_u16_le())
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample() -> FwImage {
        FwImage {
            metadata: FwMetadata {
                vendor: "D-Link".into(),
                product: "DIR-645".into(),
                version: "1.03".into(),
                arch: Arch2::Mips,
                release_year: 2013,
                peripherals: vec![Peripheral::Ethernet, Peripheral::Wifi],
                nvram_required: true,
                nvram_defaults_present: true,
                bootstrap: BootstrapKind::Standard,
            },
            files: vec![
                FwFile { path: "bin/cgibin".into(), data: vec![0xde, 0xad] },
                FwFile { path: "etc/passwd".into(), data: b"root::0:0::/:/bin/sh\n".to_vec() },
            ],
        }
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let img = sample();
        assert_eq!(FwImage::unpack(&img.pack(false)).unwrap(), img);
    }

    #[test]
    fn encrypted_images_refuse_to_unpack() {
        let img = sample();
        assert_eq!(FwImage::unpack(&img.pack(true)).unwrap_err(), Error::Encrypted);
    }

    #[test]
    fn bad_magic_and_truncation_rejected() {
        assert_eq!(FwImage::unpack(b"NOPE").unwrap_err(), Error::BadMagic);
        let packed = sample().pack(false);
        for len in 5..packed.len() {
            assert!(FwImage::unpack(&packed[..len]).is_err(), "prefix {len}");
        }
    }

    #[test]
    fn file_lookup_and_sizes() {
        let img = sample();
        assert!(img.file("bin/cgibin").is_some());
        assert!(img.file("bin/missing").is_none());
        assert_eq!(img.total_file_bytes(), 2 + 21);
    }

    #[test]
    fn metadata_roundtrips_with_unusual_strings() {
        let mut img = sample();
        img.metadata.vendor = "Vendor \"quoted\" & <odd>".into();
        img.metadata.product = "产品-β".into();
        img.metadata.version = String::new();
        assert_eq!(FwImage::unpack(&img.pack(false)).unwrap(), img);
    }

    #[test]
    fn empty_filesystem_roundtrips() {
        let mut img = sample();
        img.files.clear();
        let back = FwImage::unpack(&img.pack(false)).unwrap();
        assert!(back.files.is_empty());
        assert_eq!(back.total_file_bytes(), 0);
    }

    #[test]
    fn proprietary_components_block_emulation() {
        assert!(Peripheral::CustomAsic.blocks_emulation());
        assert!(Peripheral::Camera { proprietary: true }.blocks_emulation());
        assert!(!Peripheral::Camera { proprietary: false }.blocks_emulation());
        assert!(!Peripheral::Ethernet.blocks_emulation());
    }
}
