//! Firmware images: the FWI container, Binwalk-style extraction, the
//! FIRMADYNE-style emulation-feasibility model, and a seeded corpus
//! generator.
//!
//! This crate is the substrate for the paper's §II empirical study and
//! §IV implementation front end:
//!
//! * [`container`] — the FWI image format (metadata + root filesystem),
//!   with vendor encryption modelled as an unpack failure,
//! * [`scan()`] — signature scanning and extraction of embedded FBF
//!   executables (the "custom-written extraction utility built around
//!   the Binwalk API"),
//! * [`emulate`] — deterministic boot feasibility over image metadata
//!   (proprietary peripherals, NVRAM, boot chains, network init),
//! * [`corpus`] — a seeded 6,529-image corpus whose triage reproduces
//!   Figure 1's shape (~10% emulation success, >65% unpack failures).
//!
//! # Examples
//!
//! ```
//! use dtaint_fwimage::corpus::{generate_corpus, triage, CorpusConfig};
//!
//! let corpus = generate_corpus(&CorpusConfig { n_images: 300, seed: 1, ..Default::default() });
//! let stats = triage(&corpus);
//! let emulated: usize = stats.values().map(|s| s.emulated).sum();
//! assert!(emulated < 60, "only a small fraction boots");
//! ```

pub mod container;
pub mod corpus;
pub mod emulate;
pub mod scan;

pub use container::{Arch2, BootstrapKind, FwFile, FwImage, FwMetadata, Peripheral, FWI_MAGIC};
pub use corpus::{generate_corpus, triage, CorpusConfig, CorpusEntry, YearStats};
pub use emulate::{try_emulate, EmulationFailure};
pub use scan::{extract_binaries, extract_image, scan, Signature, SignatureKind};

use std::fmt;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors from unpacking and extraction.
#[derive(Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The blob does not start with (or contain) an FWI image.
    BadMagic,
    /// No FWI signature found anywhere in the blob.
    NoImageFound,
    /// The image body is vendor-encrypted.
    Encrypted,
    /// The image is structurally damaged.
    Corrupted(String),
    /// An embedded executable failed to parse.
    BadBinary {
        /// Filesystem path of the executable.
        path: String,
        /// Underlying parse error.
        source: dtaint_fwbin::Error,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::BadMagic => f.write_str("not an fwi image"),
            Error::NoImageFound => f.write_str("no firmware image signature found"),
            Error::Encrypted => f.write_str("image body is encrypted"),
            Error::Corrupted(m) => write!(f, "corrupted image: {m}"),
            Error::BadBinary { path, source } => {
                write!(f, "embedded binary `{path}` failed to parse: {source}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::BadBinary { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        let e =
            Error::BadBinary { path: "bin/httpd".into(), source: dtaint_fwbin::Error::Truncated };
        assert!(e.to_string().contains("bin/httpd"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&Error::Encrypted).is_none());
    }
}
