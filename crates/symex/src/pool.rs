//! Hash-consed symbolic expressions in the paper's *variable description*.
//!
//! DTaint "uses the address expression of the memory to describe the
//! variable" (§III-B): indirect accesses become `deref(base + offset)`
//! terms over symbolic argument values `arg0..arg9`, per-call-site return
//! symbols `ret_{callsite}`, and the entry stack pointer. This module
//! implements that term language with:
//!
//! * **interning** — structurally equal expressions share one [`ExprId`],
//!   so equality (the backbone of alias recognition and definition-pair
//!   matching) is an integer compare,
//! * **normalisation** — constants fold, `x - c` becomes `x + (-c)`, and
//!   constant addends bubble to the right, giving every address a
//!   canonical `base + offset` spine,
//! * **substitution** — [`ExprPool::replace`] implements the `Replace`
//!   primitive used by the paper's Algorithm 1 (alias rewriting) and
//!   Algorithm 2 (formal→actual argument substitution).

use std::collections::HashMap;
use std::fmt;

/// An interned symbolic expression (index into an [`ExprPool`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(pub u32);

/// Comparison operators appearing in path constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
}

impl CmpOp {
    /// The operator testing the opposite outcome.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Ge => CmpOp::Lt,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
        }
    }

    /// Evaluates the comparison on two concrete values.
    pub fn eval(self, l: i64, r: i64) -> bool {
        match self {
            CmpOp::Eq => l == r,
            CmpOp::Ne => l != r,
            CmpOp::Lt => l < r,
            CmpOp::Ge => l >= r,
            CmpOp::Le => l <= r,
            CmpOp::Gt => l > r,
        }
    }

    /// True for `<`, `<=`, `>`, `>=` — the operators that can bound a
    /// tainted length (the paper's sanitisation check).
    pub fn is_bounding(self) -> bool {
        matches!(self, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge)
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Ge => ">=",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
        };
        f.write_str(s)
    }
}

/// The structure of one symbolic term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SymNode {
    /// A concrete 64-bit constant (addresses and immediates are
    /// sign-agnostic 32-bit values widened for arithmetic).
    Const(i64),
    /// The i-th formal argument of the function under analysis
    /// (`arg0..arg9`, §III-B).
    Arg(u8),
    /// The return value of the call at the given instruction address
    /// (`ret_{callsite}`).
    RetSym(u32),
    /// Data written by the library call at `callsite` through its
    /// `arg`-th pointer argument (e.g. the buffer `recv` fills).
    CallOut {
        /// Call-site instruction address.
        callsite: u32,
        /// Index of the pointer argument written through.
        arg: u8,
    },
    /// The unknown initial value of a register at function entry.
    InitReg(u8),
    /// The stack pointer at function entry.
    StackBase,
    /// A fresh opaque value (used when merging loop states).
    Unknown(u32),
    /// A memory read: `deref(addr)` with the access width in bytes.
    Deref {
        /// Address expression.
        addr: ExprId,
        /// Access width in bytes (1 or 4).
        width: u8,
    },
    /// Addition.
    Add(ExprId, ExprId),
    /// Multiplication.
    Mul(ExprId, ExprId),
    /// Bitwise and.
    And(ExprId, ExprId),
    /// Bitwise or.
    Or(ExprId, ExprId),
    /// Bitwise exclusive-or.
    Xor(ExprId, ExprId),
    /// Logical shift left.
    Shl(ExprId, ExprId),
    /// Logical shift right.
    Shr(ExprId, ExprId),
    /// A boolean-valued comparison (from `SLT`-style instructions).
    Cmp(CmpOp, ExprId, ExprId),
}

/// An interning arena of [`SymNode`]s.
///
/// # Examples
///
/// ```
/// use dtaint_symex::pool::ExprPool;
///
/// let mut p = ExprPool::new();
/// let arg0 = p.arg(0);
/// let addr = p.add_const(arg0, 0x4c);
/// let var = p.deref(addr, 4);
/// assert_eq!(p.display(var).to_string(), "deref(arg0 + 0x4c)");
/// // Structurally equal expressions intern to the same id.
/// let arg0_again = p.arg(0);
/// let addr_again = p.add_const(arg0_again, 0x4c);
/// let again = p.deref(addr_again, 4);
/// assert_eq!(var, again);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExprPool {
    nodes: Vec<SymNode>,
    dedup: HashMap<SymNode, ExprId>,
    next_unknown: u32,
}

impl ExprPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct interned expressions.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no expression has been interned.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node behind an id.
    ///
    /// # Panics
    ///
    /// Panics when `id` belongs to a different pool.
    pub fn node(&self, id: ExprId) -> SymNode {
        self.nodes[id.0 as usize]
    }

    /// Interns a node verbatim (no normalisation).
    pub fn intern(&mut self, node: SymNode) -> ExprId {
        if let Some(&id) = self.dedup.get(&node) {
            return id;
        }
        let id = ExprId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.dedup.insert(node, id);
        id
    }

    /// Interns a constant, normalised to sign-extended 32-bit two's
    /// complement — the guest is a 32-bit machine, so folded arithmetic
    /// must wrap exactly like the hardware (`(a - b) * c` overflowing 32
    /// bits must not keep 64-bit precision).
    pub fn constant(&mut self, v: i64) -> ExprId {
        self.intern(SymNode::Const(v as i32 as i64))
    }

    /// Interns `arg{i}`.
    pub fn arg(&mut self, i: u8) -> ExprId {
        self.intern(SymNode::Arg(i))
    }

    /// Interns `ret_{callsite}`.
    pub fn ret_sym(&mut self, callsite: u32) -> ExprId {
        self.intern(SymNode::RetSym(callsite))
    }

    /// Interns the output-data symbol for `callsite`'s `arg`-th pointer.
    pub fn call_out(&mut self, callsite: u32, arg: u8) -> ExprId {
        self.intern(SymNode::CallOut { callsite, arg })
    }

    /// Interns the initial value of register `r`.
    pub fn init_reg(&mut self, r: u8) -> ExprId {
        self.intern(SymNode::InitReg(r))
    }

    /// Interns the entry stack pointer.
    pub fn stack_base(&mut self) -> ExprId {
        self.intern(SymNode::StackBase)
    }

    /// Creates a fresh opaque unknown.
    pub fn fresh_unknown(&mut self) -> ExprId {
        let n = self.next_unknown;
        self.next_unknown += 1;
        self.intern(SymNode::Unknown(n))
    }

    /// The index the next [`Self::fresh_unknown`] will use.
    ///
    /// A pool forked (cloned) for a parallel worker starts from the same
    /// index as its master; recording the index before and after a
    /// worker's run delimits exactly the unknowns that run created, which
    /// the merge remaps onto the master's counter.
    pub fn next_unknown_index(&self) -> u32 {
        self.next_unknown
    }

    /// Interns `deref(addr)` with `width` bytes.
    pub fn deref(&mut self, addr: ExprId, width: u8) -> ExprId {
        self.intern(SymNode::Deref { addr, width })
    }

    /// Snapshots the pool so a failed analysis can be undone.
    ///
    /// Interning only ever appends, so a mark is two integers. Taken
    /// before running untrusted per-function analysis; if that analysis
    /// panics, [`Self::rollback`] erases every node (and unknown index)
    /// it interned, leaving the pool bit-identical to the snapshot —
    /// required so a caught panic cannot perturb expression ids or
    /// unknown numbering for the functions analysed afterwards.
    pub fn mark(&self) -> PoolMark {
        PoolMark { len: self.nodes.len(), next_unknown: self.next_unknown }
    }

    /// Reverts the pool to a [`Self::mark`] taken earlier.
    ///
    /// Cost is proportional to the nodes interned since the mark, not to
    /// the pool size.
    ///
    /// # Panics
    ///
    /// Panics when the mark does not come from this pool's past (the
    /// pool has fewer nodes than the mark records).
    pub fn rollback(&mut self, mark: PoolMark) {
        assert!(mark.len <= self.nodes.len(), "rollback mark is from the future");
        for node in self.nodes.drain(mark.len..) {
            self.dedup.remove(&node);
        }
        self.next_unknown = mark.next_unknown;
    }

    /// Interns a normalised addition: constants fold, and a constant
    /// addend bubbles to the right of the spine, keeping addresses in
    /// `base + offset` form.
    pub fn add(&mut self, a: ExprId, b: ExprId) -> ExprId {
        let (na, nb) = (self.node(a), self.node(b));
        match (na, nb) {
            (SymNode::Const(x), SymNode::Const(y)) => self.constant(x.wrapping_add(y)),
            (SymNode::Const(0), _) => b,
            (_, SymNode::Const(0)) => a,
            // (x + c1) + c2 → x + (c1+c2), collapsing a zero sum to x.
            (SymNode::Add(x, c1), SymNode::Const(c2)) => {
                if let SymNode::Const(c1v) = self.node(c1) {
                    let sum = c1v.wrapping_add(c2);
                    if sum == 0 {
                        return x;
                    }
                    let c = self.constant(sum);
                    return self.intern(SymNode::Add(x, c));
                }
                self.intern(SymNode::Add(a, b))
            }
            // c + x → x + c
            (SymNode::Const(_), _) => self.intern(SymNode::Add(b, a)),
            // (x + c) + y → (x + y) + c
            (SymNode::Add(x, c), _) => {
                if let SymNode::Const(_) = self.node(c) {
                    let xy = self.add(x, b);
                    return self.add(xy, c);
                }
                self.intern(SymNode::Add(a, b))
            }
            // x + (y + c) → (x + y) + c
            (_, SymNode::Add(y, c)) => {
                if let SymNode::Const(_) = self.node(c) {
                    let xy = self.add(a, y);
                    return self.add(xy, c);
                }
                self.intern(SymNode::Add(a, b))
            }
            _ => self.intern(SymNode::Add(a, b)),
        }
    }

    /// Interns `a + c`.
    pub fn add_const(&mut self, a: ExprId, c: i64) -> ExprId {
        let cc = self.constant(c);
        self.add(a, cc)
    }

    /// Interns a subtraction, normalised to `a + (-b)` for constant `b`.
    pub fn sub(&mut self, a: ExprId, b: ExprId) -> ExprId {
        match (self.node(a), self.node(b)) {
            (SymNode::Const(x), SymNode::Const(y)) => self.constant(x.wrapping_sub(y)),
            (_, SymNode::Const(c)) => self.add_const(a, -c),
            _ if a == b => self.constant(0),
            _ => {
                // Represent x - y as x + (-1)*y so address spines stay Add.
                let minus1 = self.constant(-1);
                let neg = self.mul(b, minus1);
                self.add(a, neg)
            }
        }
    }

    /// Interns a multiplication with constant folding.
    pub fn mul(&mut self, a: ExprId, b: ExprId) -> ExprId {
        match (self.node(a), self.node(b)) {
            (SymNode::Const(x), SymNode::Const(y)) => self.constant(x.wrapping_mul(y)),
            (SymNode::Const(0), _) | (_, SymNode::Const(0)) => self.constant(0),
            (SymNode::Const(1), _) => b,
            (_, SymNode::Const(1)) => a,
            (SymNode::Const(_), _) => self.intern(SymNode::Mul(b, a)),
            _ => self.intern(SymNode::Mul(a, b)),
        }
    }

    /// Interns `a & b` with constant folding and identities.
    pub fn and_op(&mut self, a: ExprId, b: ExprId) -> ExprId {
        match (self.node(a), self.node(b)) {
            (SymNode::Const(x), SymNode::Const(y)) => self.constant(x & y),
            (SymNode::Const(0), _) | (_, SymNode::Const(0)) => self.constant(0),
            _ if a == b => a,
            _ => self.intern(SymNode::And(a, b)),
        }
    }

    /// Interns `a | b` with constant folding and identities.
    pub fn or_op(&mut self, a: ExprId, b: ExprId) -> ExprId {
        match (self.node(a), self.node(b)) {
            (SymNode::Const(x), SymNode::Const(y)) => self.constant(x | y),
            (SymNode::Const(0), _) => b,
            (_, SymNode::Const(0)) => a,
            _ if a == b => a,
            _ => self.intern(SymNode::Or(a, b)),
        }
    }

    /// Interns `a ^ b` with constant folding and identities.
    pub fn xor_op(&mut self, a: ExprId, b: ExprId) -> ExprId {
        match (self.node(a), self.node(b)) {
            (SymNode::Const(x), SymNode::Const(y)) => self.constant(x ^ y),
            (SymNode::Const(0), _) => b,
            (_, SymNode::Const(0)) => a,
            _ if a == b => self.constant(0),
            _ => self.intern(SymNode::Xor(a, b)),
        }
    }

    /// Interns `a << b` (32-bit logical) with constant folding.
    pub fn shl_op(&mut self, a: ExprId, b: ExprId) -> ExprId {
        match (self.node(a), self.node(b)) {
            (SymNode::Const(x), SymNode::Const(y)) => {
                self.constant(((x as u32) << (y as u32 & 31)) as i64)
            }
            (_, SymNode::Const(0)) => a,
            _ => self.intern(SymNode::Shl(a, b)),
        }
    }

    /// Interns `a >> b` (32-bit logical) with constant folding.
    pub fn shr_op(&mut self, a: ExprId, b: ExprId) -> ExprId {
        match (self.node(a), self.node(b)) {
            (SymNode::Const(x), SymNode::Const(y)) => {
                self.constant(((x as u32) >> (y as u32 & 31)) as i64)
            }
            (_, SymNode::Const(0)) => a,
            _ => self.intern(SymNode::Shr(a, b)),
        }
    }

    /// Interns a comparison value, folding when both sides are constant.
    pub fn cmp(&mut self, op: CmpOp, a: ExprId, b: ExprId) -> ExprId {
        if let (SymNode::Const(x), SymNode::Const(y)) = (self.node(a), self.node(b)) {
            return self.constant(op.eval(x, y) as i64);
        }
        self.intern(SymNode::Cmp(op, a, b))
    }

    /// The constant value of `id` when it is a constant.
    pub fn as_const(&self, id: ExprId) -> Option<i64> {
        match self.node(id) {
            SymNode::Const(v) => Some(v),
            _ => None,
        }
    }

    /// Splits an address into `(base, constant offset)` along the
    /// normalised `Add` spine. A plain expression has offset 0.
    pub fn base_offset(&self, id: ExprId) -> (ExprId, i64) {
        if let SymNode::Add(x, c) = self.node(id) {
            if let SymNode::Const(cv) = self.node(c) {
                return (x, cv);
            }
        }
        (id, 0)
    }

    /// True when `sub` occurs anywhere inside `id` (including `id`
    /// itself).
    pub fn contains(&self, id: ExprId, sub: ExprId) -> bool {
        if id == sub {
            return true;
        }
        match self.node(id) {
            SymNode::Deref { addr, .. } => self.contains(addr, sub),
            SymNode::Add(a, b)
            | SymNode::Mul(a, b)
            | SymNode::And(a, b)
            | SymNode::Or(a, b)
            | SymNode::Xor(a, b)
            | SymNode::Shl(a, b)
            | SymNode::Shr(a, b)
            | SymNode::Cmp(_, a, b) => self.contains(a, sub) || self.contains(b, sub),
            _ => false,
        }
    }

    /// True when any node inside `id` satisfies the predicate.
    pub fn any_node(&self, id: ExprId, pred: &mut impl FnMut(SymNode) -> bool) -> bool {
        if pred(self.node(id)) {
            return true;
        }
        match self.node(id) {
            SymNode::Deref { addr, .. } => self.any_node(addr, pred),
            SymNode::Add(a, b)
            | SymNode::Mul(a, b)
            | SymNode::And(a, b)
            | SymNode::Or(a, b)
            | SymNode::Xor(a, b)
            | SymNode::Shl(a, b)
            | SymNode::Shr(a, b)
            | SymNode::Cmp(_, a, b) => self.any_node(a, pred) || self.any_node(b, pred),
            _ => false,
        }
    }

    /// All base pointers contained in `id` — the paper's `GetPtrInVar`.
    ///
    /// For `deref(deref(arg0 + 0x58) + 0xEC)` this returns
    /// `[deref(arg0 + 0x58), arg0]`: every expression used as the base of
    /// a memory access, outermost first.
    pub fn ptrs_in(&self, id: ExprId) -> Vec<ExprId> {
        let mut out = Vec::new();
        self.collect_ptrs(id, &mut out);
        out
    }

    /// [`Self::ptrs_in`] into a caller-owned scratch buffer, so hot
    /// loops can reuse one allocation across many expressions.
    pub fn ptrs_in_into(&self, id: ExprId, out: &mut Vec<ExprId>) {
        out.clear();
        self.collect_ptrs(id, out);
    }

    /// Maximum `Deref` nesting depth anywhere inside `id`; 0 when the
    /// expression touches no memory. `deref(deref(a+4)+8)` has depth 2.
    pub fn deref_depth(&self, id: ExprId) -> u32 {
        match self.node(id) {
            SymNode::Deref { addr, .. } => 1 + self.deref_depth(addr),
            SymNode::Add(a, b)
            | SymNode::Mul(a, b)
            | SymNode::And(a, b)
            | SymNode::Or(a, b)
            | SymNode::Xor(a, b)
            | SymNode::Shl(a, b)
            | SymNode::Shr(a, b)
            | SymNode::Cmp(_, a, b) => self.deref_depth(a).max(self.deref_depth(b)),
            _ => 0,
        }
    }

    fn collect_ptrs(&self, id: ExprId, out: &mut Vec<ExprId>) {
        match self.node(id) {
            SymNode::Deref { addr, .. } => {
                let (base, _) = self.base_offset(addr);
                if !out.contains(&base) {
                    out.push(base);
                }
                self.collect_ptrs(addr, out);
            }
            SymNode::Add(a, b)
            | SymNode::Mul(a, b)
            | SymNode::And(a, b)
            | SymNode::Or(a, b)
            | SymNode::Xor(a, b)
            | SymNode::Shl(a, b)
            | SymNode::Shr(a, b)
            | SymNode::Cmp(_, a, b) => {
                self.collect_ptrs(a, out);
                self.collect_ptrs(b, out);
            }
            _ => {}
        }
    }

    /// The innermost (root) pointer of `id`, when `id` is memory-shaped.
    ///
    /// For `deref(deref(arg0+0x4C) + 8)` the root pointer is `arg0` — the
    /// paper's `d.rootPtr` in Algorithm 2.
    pub fn root_ptr(&self, id: ExprId) -> Option<ExprId> {
        match self.node(id) {
            SymNode::Deref { addr, .. } => {
                let (base, _) = self.base_offset(addr);
                self.root_ptr(base).or(Some(base))
            }
            _ => None,
        }
    }

    /// Rewrites every occurrence of `from` inside `id` to `to`,
    /// re-normalising along the way — the `Replace` primitive of
    /// Algorithms 1 and 2.
    pub fn replace(&mut self, id: ExprId, from: ExprId, to: ExprId) -> ExprId {
        if id == from {
            return to;
        }
        match self.node(id) {
            SymNode::Deref { addr, width } => {
                let new_addr = self.replace(addr, from, to);
                if new_addr == addr {
                    id
                } else {
                    self.deref(new_addr, width)
                }
            }
            SymNode::Add(a, b) => {
                let (na, nb) = (self.replace(a, from, to), self.replace(b, from, to));
                if (na, nb) == (a, b) {
                    id
                } else {
                    self.add(na, nb)
                }
            }
            SymNode::Mul(a, b) => {
                let (na, nb) = (self.replace(a, from, to), self.replace(b, from, to));
                if (na, nb) == (a, b) {
                    id
                } else {
                    self.mul(na, nb)
                }
            }
            SymNode::And(a, b) => self.replace_bitop(id, SymNode::And, a, b, from, to),
            SymNode::Or(a, b) => self.replace_bitop(id, SymNode::Or, a, b, from, to),
            SymNode::Xor(a, b) => self.replace_bitop(id, SymNode::Xor, a, b, from, to),
            SymNode::Shl(a, b) => self.replace_bitop(id, SymNode::Shl, a, b, from, to),
            SymNode::Shr(a, b) => self.replace_bitop(id, SymNode::Shr, a, b, from, to),
            SymNode::Cmp(op, a, b) => {
                let (na, nb) = (self.replace(a, from, to), self.replace(b, from, to));
                if (na, nb) == (a, b) {
                    id
                } else {
                    self.cmp(op, na, nb)
                }
            }
            _ => id,
        }
    }

    fn replace_bitop(
        &mut self,
        id: ExprId,
        make: fn(ExprId, ExprId) -> SymNode,
        a: ExprId,
        b: ExprId,
        from: ExprId,
        to: ExprId,
    ) -> ExprId {
        let (na, nb) = (self.replace(a, from, to), self.replace(b, from, to));
        if (na, nb) == (a, b) {
            id
        } else {
            self.intern(make(na, nb))
        }
    }

    /// Rebuilds an expression bottom-up, letting `f` override any node.
    ///
    /// `f` is called on every node (leaves and interior); returning
    /// `Some(id)` replaces that whole subtree, returning `None` keeps the
    /// node and rewrites its children. Used by the interprocedural stage
    /// to map callee expressions into a caller's namespace
    /// (`arg_i → actual argument`, callee stack → fresh unknown).
    pub fn rewrite(
        &mut self,
        id: ExprId,
        f: &mut impl FnMut(&mut ExprPool, ExprId) -> Option<ExprId>,
    ) -> ExprId {
        if let Some(out) = f(self, id) {
            return out;
        }
        match self.node(id) {
            SymNode::Deref { addr, width } => {
                let a = self.rewrite(addr, f);
                if a == addr {
                    id
                } else {
                    self.deref(a, width)
                }
            }
            SymNode::Add(a, b) => {
                let (x, y) = (self.rewrite(a, f), self.rewrite(b, f));
                if (x, y) == (a, b) {
                    id
                } else {
                    self.add(x, y)
                }
            }
            SymNode::Mul(a, b) => {
                let (x, y) = (self.rewrite(a, f), self.rewrite(b, f));
                if (x, y) == (a, b) {
                    id
                } else {
                    self.mul(x, y)
                }
            }
            SymNode::And(a, b) => {
                let (x, y) = (self.rewrite(a, f), self.rewrite(b, f));
                if (x, y) == (a, b) {
                    id
                } else {
                    self.and_op(x, y)
                }
            }
            SymNode::Or(a, b) => {
                let (x, y) = (self.rewrite(a, f), self.rewrite(b, f));
                if (x, y) == (a, b) {
                    id
                } else {
                    self.or_op(x, y)
                }
            }
            SymNode::Xor(a, b) => {
                let (x, y) = (self.rewrite(a, f), self.rewrite(b, f));
                if (x, y) == (a, b) {
                    id
                } else {
                    self.xor_op(x, y)
                }
            }
            SymNode::Shl(a, b) => {
                let (x, y) = (self.rewrite(a, f), self.rewrite(b, f));
                if (x, y) == (a, b) {
                    id
                } else {
                    self.shl_op(x, y)
                }
            }
            SymNode::Shr(a, b) => {
                let (x, y) = (self.rewrite(a, f), self.rewrite(b, f));
                if (x, y) == (a, b) {
                    id
                } else {
                    self.shr_op(x, y)
                }
            }
            SymNode::Cmp(op, a, b) => {
                let (x, y) = (self.rewrite(a, f), self.rewrite(b, f));
                if (x, y) == (a, b) {
                    id
                } else {
                    self.cmp(op, x, y)
                }
            }
            _ => id,
        }
    }

    /// Re-interns an expression from another pool into this one.
    ///
    /// Used when merging per-function analysis results (computed in
    /// parallel with private pools) into the global pool of the
    /// interprocedural stage.
    pub fn translate(
        &mut self,
        src: &ExprPool,
        id: ExprId,
        memo: &mut HashMap<ExprId, ExprId>,
    ) -> ExprId {
        if let Some(&t) = memo.get(&id) {
            return t;
        }
        let out = match src.node(id) {
            n @ (SymNode::Const(_)
            | SymNode::Arg(_)
            | SymNode::RetSym(_)
            | SymNode::CallOut { .. }
            | SymNode::InitReg(_)
            | SymNode::StackBase
            | SymNode::Unknown(_)) => self.intern(n),
            SymNode::Deref { addr, width } => {
                let a = self.translate(src, addr, memo);
                self.deref(a, width)
            }
            SymNode::Add(a, b) => {
                let (x, y) = (self.translate(src, a, memo), self.translate(src, b, memo));
                self.add(x, y)
            }
            SymNode::Mul(a, b) => {
                let (x, y) = (self.translate(src, a, memo), self.translate(src, b, memo));
                self.mul(x, y)
            }
            SymNode::And(a, b) => {
                let (x, y) = (self.translate(src, a, memo), self.translate(src, b, memo));
                self.and_op(x, y)
            }
            SymNode::Or(a, b) => {
                let (x, y) = (self.translate(src, a, memo), self.translate(src, b, memo));
                self.or_op(x, y)
            }
            SymNode::Xor(a, b) => {
                let (x, y) = (self.translate(src, a, memo), self.translate(src, b, memo));
                self.xor_op(x, y)
            }
            SymNode::Shl(a, b) => {
                let (x, y) = (self.translate(src, a, memo), self.translate(src, b, memo));
                self.shl_op(x, y)
            }
            SymNode::Shr(a, b) => {
                let (x, y) = (self.translate(src, a, memo), self.translate(src, b, memo));
                self.shr_op(x, y)
            }
            SymNode::Cmp(op, a, b) => {
                let (x, y) = (self.translate(src, a, memo), self.translate(src, b, memo));
                self.cmp(op, x, y)
            }
        };
        memo.insert(id, out);
        out
    }

    /// [`Self::translate`] specialised for forks of this pool.
    ///
    /// `fork` must have been cloned from `self` when `self.len()` was
    /// `base`, with `self` only growing since: every id below `base`
    /// then denotes the same node in both pools and maps to itself
    /// with no work, so the cost is proportional to the nodes the
    /// fork *created*, not to the whole expression.
    pub fn translate_fork(
        &mut self,
        fork: &ExprPool,
        base: usize,
        id: ExprId,
        memo: &mut HashMap<ExprId, ExprId>,
    ) -> ExprId {
        if (id.0 as usize) < base {
            return id;
        }
        if let Some(&t) = memo.get(&id) {
            return t;
        }
        let out = match fork.node(id) {
            n @ (SymNode::Const(_)
            | SymNode::Arg(_)
            | SymNode::RetSym(_)
            | SymNode::CallOut { .. }
            | SymNode::InitReg(_)
            | SymNode::StackBase
            | SymNode::Unknown(_)) => self.intern(n),
            SymNode::Deref { addr, width } => {
                let a = self.translate_fork(fork, base, addr, memo);
                self.deref(a, width)
            }
            SymNode::Add(a, b) => {
                let x = self.translate_fork(fork, base, a, memo);
                let y = self.translate_fork(fork, base, b, memo);
                self.add(x, y)
            }
            SymNode::Mul(a, b) => {
                let x = self.translate_fork(fork, base, a, memo);
                let y = self.translate_fork(fork, base, b, memo);
                self.mul(x, y)
            }
            SymNode::And(a, b) => {
                let x = self.translate_fork(fork, base, a, memo);
                let y = self.translate_fork(fork, base, b, memo);
                self.and_op(x, y)
            }
            SymNode::Or(a, b) => {
                let x = self.translate_fork(fork, base, a, memo);
                let y = self.translate_fork(fork, base, b, memo);
                self.or_op(x, y)
            }
            SymNode::Xor(a, b) => {
                let x = self.translate_fork(fork, base, a, memo);
                let y = self.translate_fork(fork, base, b, memo);
                self.xor_op(x, y)
            }
            SymNode::Shl(a, b) => {
                let x = self.translate_fork(fork, base, a, memo);
                let y = self.translate_fork(fork, base, b, memo);
                self.shl_op(x, y)
            }
            SymNode::Shr(a, b) => {
                let x = self.translate_fork(fork, base, a, memo);
                let y = self.translate_fork(fork, base, b, memo);
                self.shr_op(x, y)
            }
            SymNode::Cmp(op, a, b) => {
                let x = self.translate_fork(fork, base, a, memo);
                let y = self.translate_fork(fork, base, b, memo);
                self.cmp(op, x, y)
            }
        };
        memo.insert(id, out);
        out
    }

    /// A displayable view of an expression in the paper's notation.
    pub fn display(&self, id: ExprId) -> DisplayExpr<'_> {
        DisplayExpr { pool: self, id }
    }
}

/// Snapshot token returned by [`ExprPool::mark`].
#[derive(Debug, Clone, Copy)]
pub struct PoolMark {
    len: usize,
    next_unknown: u32,
}

/// Helper returned by [`ExprPool::display`].
#[derive(Debug, Clone, Copy)]
pub struct DisplayExpr<'a> {
    pool: &'a ExprPool,
    id: ExprId,
}

impl fmt::Display for DisplayExpr<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = self.pool;
        match p.node(self.id) {
            SymNode::Const(v) => {
                if (-4096..4096).contains(&v) {
                    write!(f, "{v}")
                } else {
                    write!(f, "{v:#x}")
                }
            }
            SymNode::Arg(i) => write!(f, "arg{i}"),
            SymNode::RetSym(cs) => write!(f, "ret_{cs:#x}"),
            SymNode::CallOut { callsite, arg } => write!(f, "out_{callsite:#x}.{arg}"),
            SymNode::InitReg(r) => write!(f, "reg{r}_0"),
            SymNode::StackBase => write!(f, "sp0"),
            SymNode::Unknown(n) => write!(f, "unk{n}"),
            SymNode::Deref { addr, .. } => write!(f, "deref({})", p.display(addr)),
            SymNode::Add(a, b) => {
                if let SymNode::Const(c) = p.node(b) {
                    if c < 0 {
                        return write!(f, "{} - {:#x}", p.display(a), -c);
                    }
                    return write!(f, "{} + {:#x}", p.display(a), c);
                }
                write!(f, "{} + {}", p.display(a), p.display(b))
            }
            SymNode::Mul(a, b) => write!(f, "({} * {})", p.display(a), p.display(b)),
            SymNode::And(a, b) => write!(f, "({} & {})", p.display(a), p.display(b)),
            SymNode::Or(a, b) => write!(f, "({} | {})", p.display(a), p.display(b)),
            SymNode::Xor(a, b) => write!(f, "({} ^ {})", p.display(a), p.display(b)),
            SymNode::Shl(a, b) => write!(f, "({} << {})", p.display(a), p.display(b)),
            SymNode::Shr(a, b) => write!(f, "({} >> {})", p.display(a), p.display(b)),
            SymNode::Cmp(op, a, b) => {
                write!(f, "({} {op} {})", p.display(a), p.display(b))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn interning_gives_stable_ids() {
        let mut p = ExprPool::new();
        let a = p.arg(0);
        let b = p.arg(0);
        assert_eq!(a, b);
        let c = p.arg(1);
        assert_ne!(a, c);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn add_normalises_to_base_plus_offset() {
        let mut p = ExprPool::new();
        let arg = p.arg(0);
        // ((arg0 + 4) + 8) folds to arg0 + 12.
        let e1 = p.add_const(arg, 4);
        let e2 = p.add_const(e1, 8);
        assert_eq!(p.base_offset(e2), (arg, 12));
        // 4 + arg0 commutes to arg0 + 4.
        let four = p.constant(4);
        let e3 = p.add(four, arg);
        assert_eq!(p.base_offset(e3), (arg, 4));
        // (arg0 + 4) + arg1 re-associates to (arg0 + arg1) + 4.
        let arg1 = p.arg(1);
        let e4 = p.add(e1, arg1);
        let (base, off) = p.base_offset(e4);
        assert_eq!(off, 4);
        assert_eq!(p.node(base), SymNode::Add(arg, arg1));
    }

    #[test]
    fn sub_constant_becomes_negative_offset() {
        let mut p = ExprPool::new();
        let sp = p.stack_base();
        let c = p.constant(0x118);
        let e = p.sub(sp, c);
        assert_eq!(p.base_offset(e), (sp, -0x118));
        // x - x = 0
        assert_eq!(p.sub(sp, sp), p.constant(0));
    }

    #[test]
    fn constant_folding_everywhere() {
        let mut p = ExprPool::new();
        let a = p.constant(6);
        let b = p.constant(7);
        let m = p.mul(a, b);
        assert_eq!(p.as_const(m), Some(42));
        let s = p.add(a, b);
        assert_eq!(p.as_const(s), Some(13));
        let c = p.cmp(CmpOp::Lt, a, b);
        assert_eq!(p.as_const(c), Some(1));
        let x = p.arg(0);
        let zero = p.constant(0);
        assert_eq!(p.mul(x, zero), zero);
        let one = p.constant(1);
        assert_eq!(p.mul(x, one), x);
    }

    #[test]
    fn ptrs_in_matches_paper_example() {
        // deref(deref(arg0 + 0x58) + 0xEC) has base pointers
        // deref(arg0+0x58) and arg0.
        let mut p = ExprPool::new();
        let arg0 = p.arg(0);
        let inner_addr = p.add_const(arg0, 0x58);
        let inner = p.deref(inner_addr, 4);
        let outer_addr = p.add_const(inner, 0xec);
        let outer = p.deref(outer_addr, 4);
        let ptrs = p.ptrs_in(outer);
        assert_eq!(ptrs, vec![inner, arg0]);
        assert_eq!(p.root_ptr(outer), Some(arg0));
    }

    #[test]
    fn replace_rewrites_and_renormalises() {
        // Replace arg0 inside deref(arg0 + 0x4C) with (sp0 - 0x100):
        // deref(sp0 - 0x100 + 0x4C) = deref(sp0 - 0xB4).
        let mut p = ExprPool::new();
        let arg0 = p.arg(0);
        let addr = p.add_const(arg0, 0x4c);
        let var = p.deref(addr, 4);
        let sp = p.stack_base();
        let repl = p.add_const(sp, -0x100);
        let out = p.replace(var, arg0, repl);
        let SymNode::Deref { addr: na, .. } = p.node(out) else { panic!() };
        assert_eq!(p.base_offset(na), (sp, -0xb4));
    }

    #[test]
    fn replace_leaves_unrelated_expressions_alone() {
        let mut p = ExprPool::new();
        let a = p.arg(0);
        let b = p.arg(1);
        let e = p.add_const(b, 8);
        let sp = p.stack_base();
        assert_eq!(p.replace(e, a, sp), e);
    }

    #[test]
    fn contains_traverses_deref_chains() {
        let mut p = ExprPool::new();
        let arg0 = p.arg(0);
        let a1 = p.add_const(arg0, 0x4c);
        let d1 = p.deref(a1, 4);
        let d2 = p.deref(d1, 4);
        assert!(p.contains(d2, arg0));
        assert!(p.contains(d2, d1));
        let arg1 = p.arg(1);
        assert!(!p.contains(d2, arg1));
    }

    #[test]
    fn translate_between_pools_preserves_structure() {
        let mut src = ExprPool::new();
        let arg = src.arg(2);
        let addr = src.add_const(arg, 0x24);
        let var = src.deref(addr, 4);
        let mut dst = ExprPool::new();
        // Pre-populate dst so the ids diverge.
        dst.arg(7);
        dst.constant(99);
        let mut memo = HashMap::new();
        let t = dst.translate(&src, var, &mut memo);
        assert_eq!(dst.display(t).to_string(), src.display(var).to_string());
        // Translation is memoised and idempotent.
        let t2 = dst.translate(&src, var, &mut memo);
        assert_eq!(t, t2);
    }

    #[test]
    fn display_matches_paper_notation() {
        let mut p = ExprPool::new();
        let arg1 = p.arg(1);
        let addr = p.add_const(arg1, 0x24);
        let inner = p.deref(addr, 4);
        let outer = p.deref(inner, 1);
        assert_eq!(p.display(outer).to_string(), "deref(deref(arg1 + 0x24))");
        let sp = p.stack_base();
        let below = p.add_const(sp, -0x100);
        assert_eq!(p.display(below).to_string(), "sp0 - 0x100");
    }

    #[test]
    fn cmp_op_properties() {
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Ge, CmpOp::Le, CmpOp::Gt] {
            assert_eq!(op.negate().negate(), op);
            // negation flips evaluation on every input
            for (l, r) in [(1, 2), (2, 2), (3, 2)] {
                assert_ne!(op.eval(l, r), op.negate().eval(l, r));
            }
        }
        assert!(CmpOp::Lt.is_bounding());
        assert!(!CmpOp::Eq.is_bounding());
    }

    #[test]
    fn fresh_unknowns_are_distinct() {
        let mut p = ExprPool::new();
        assert_ne!(p.fresh_unknown(), p.fresh_unknown());
    }

    #[test]
    fn rollback_erases_everything_after_the_mark() {
        let mut p = ExprPool::new();
        let arg0 = p.arg(0);
        let kept = p.add_const(arg0, 4);
        let unk_before = p.next_unknown_index();
        let mark = p.mark();
        // Pollute the pool the way a panicking analysis would.
        let u = p.fresh_unknown();
        let junk = p.add(kept, u);
        p.deref(junk, 4);
        p.rollback(mark);
        assert_eq!(p.len(), mark.len);
        assert_eq!(p.next_unknown_index(), unk_before);
        // Old ids survive; re-interning after rollback reuses the same
        // ids a clean run would have produced.
        assert_eq!(p.add_const(arg0, 4), kept);
        let u2 = p.fresh_unknown();
        assert_eq!(p.node(u2), SymNode::Unknown(unk_before));
        assert_eq!(u2, u);
    }

    proptest! {
        #[test]
        fn add_chain_always_folds_to_single_offset(offs in proptest::collection::vec(-1000i64..1000, 1..8)) {
            let mut p = ExprPool::new();
            let base = p.arg(0);
            let mut e = base;
            let mut total = 0i64;
            for o in &offs {
                e = p.add_const(e, *o);
                total += o;
            }
            let (b, off) = p.base_offset(e);
            if total == 0 {
                prop_assert_eq!(e, base);
            } else {
                prop_assert_eq!(b, base);
                prop_assert_eq!(off, total);
            }
        }

        #[test]
        fn replace_is_identity_when_absent(x in 0u8..5, y in 5u8..10) {
            let mut p = ExprPool::new();
            let ax = p.arg(x);
            let addr = p.add_const(ax, 8);
            let e = p.deref(addr, 4);
            let ay = p.arg(y);
            let sp = p.stack_base();
            prop_assert_eq!(p.replace(e, ay, sp), e);
        }

        #[test]
        fn interning_is_injective_on_structure(c1 in -100i64..100, c2 in -100i64..100) {
            let mut p = ExprPool::new();
            let a = p.constant(c1);
            let b = p.constant(c2);
            prop_assert_eq!(a == b, c1 == c2);
        }
    }
}
