//! Per-function analysis results.

use crate::pool::{CmpOp, ExprId};
use crate::types::VType;
use std::collections::{BTreeSet, HashMap};

/// A definition pair `(d, u)`: location `d` was assigned value `u`
/// (§III-B, *Definition Pairs*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DefPair {
    /// The defined location, typically a `deref(…)` expression.
    pub d: ExprId,
    /// The assigned value expression.
    pub u: ExprId,
    /// Instruction address of the defining store.
    pub ins_addr: u32,
    /// Index of the explored path that produced the pair.
    pub path: u32,
}

/// What a call site calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CalleeRef {
    /// A defined function, by entry address.
    Direct(u32),
    /// An imported library function.
    Import(String),
    /// An indirect call through the given address expression (e.g.
    /// `deref(arg0 + 8)`), to be resolved by layout similarity.
    Indirect(ExprId),
}

/// One observed call, with symbolic arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallsiteInfo {
    /// Instruction address of the call.
    pub ins_addr: u32,
    /// The callee.
    pub callee: CalleeRef,
    /// Symbolic argument values (register args, then any stack args).
    pub args: Vec<ExprId>,
    /// The `ret_{callsite}` symbol bound to the return value.
    pub ret: ExprId,
    /// Index of the explored path that observed the call.
    pub path: u32,
}

/// A path constraint recorded at a conditional branch, in the direction
/// the path took.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Constraint {
    /// Comparison operator (already negated for the not-taken side).
    pub op: CmpOp,
    /// Left operand.
    pub lhs: ExprId,
    /// Right operand.
    pub rhs: ExprId,
    /// Instruction address of the branch.
    pub ins_addr: u32,
    /// Index of the explored path.
    pub path: u32,
}

/// A memory-to-memory copy statement inside a loop — the paper's
/// loop-copy sink pattern (§IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LoopCopy {
    /// Instruction address of the copying store.
    pub ins_addr: u32,
    /// Destination address expression.
    pub dst_addr: ExprId,
    /// Stored value expression (derived from a memory read).
    pub value: ExprId,
    /// Index of the explored path.
    pub path: u32,
}

/// The complete static-symbolic-analysis result for one function.
///
/// Produced by [`analyze_function`](crate::analyze_function); consumed by
/// the alias, layout and interprocedural stages in `dtaint-dataflow`.
#[derive(Debug, Clone, Default)]
pub struct FuncSummary {
    /// Function entry address.
    pub addr: u32,
    /// Function name.
    pub name: String,
    /// All definition pairs, deduplicated across paths.
    pub def_pairs: Vec<DefPair>,
    /// Definition pairs that reach a function exit and whose root pointer
    /// is a formal argument or returned pointer — the pairs Algorithm 2
    /// pushes to callers.
    pub escape_defs: Vec<DefPair>,
    /// Observed call sites.
    pub callsites: Vec<CallsiteInfo>,
    /// Path constraints.
    pub constraints: Vec<Constraint>,
    /// Return-value expressions, one per distinct returning path.
    pub ret_values: Vec<ExprId>,
    /// Loop-copy observations.
    pub loop_copies: Vec<LoopCopy>,
    /// Inferred types per expression.
    pub types: HashMap<ExprId, VType>,
    /// Formal arguments observed in use (`arg_i` indices).
    pub args_used: BTreeSet<u8>,
    /// Number of paths fully explored.
    pub paths_explored: u32,
    /// True when exploration stopped at the path cap.
    pub path_cap_hit: bool,
    /// True when exploration stopped because the per-function fuel
    /// budget ([`SymexConfig::max_fuel`]) ran out.
    ///
    /// [`SymexConfig::max_fuel`]: crate::exec::SymexConfig::max_fuel
    pub fuel_exhausted: bool,
    /// True when this summary comes from a degraded retry (reduced path
    /// budget after a fuel exhaustion); downstream stages skip optional
    /// refinements such as alias rewriting for degraded summaries.
    pub degraded: bool,
    /// Basic-block executions charged against the fuel budget, summed
    /// over every explored path — the symbolic stage's logical work
    /// counter. A pure step count (never wall-clock), identical across
    /// thread counts.
    pub blocks_executed: u32,
    /// Rewritten definition pairs appended by pointer-alias recognition
    /// (Algorithm 1) — the alias stage's logical work counter. Zero
    /// until `dtaint-dataflow` runs the alias pass over this summary.
    pub alias_rewrites: u32,
    /// Fixpoint rounds executed by SSE alias matching over this summary
    /// (local pass plus post-substitution refinement). Zero in store
    /// mode. A pure step count, identical across thread counts.
    pub sse_rounds: u32,
    /// Rewritten definition pairs appended specifically by the SSE
    /// fixpoint (a subset of [`alias_rewrites`](Self::alias_rewrites)).
    pub sse_rewrites: u32,
    /// Deepest deref nesting among SSE-rewritten definition names.
    pub sse_depth: u32,
    /// True when an SSE fixpoint pass still had pending rewrites when
    /// its round budget ran out (did not converge).
    pub sse_saturated: bool,
}

impl FuncSummary {
    /// Re-interns every expression of this summary from `src` into `dst`.
    ///
    /// Per-function analyses run in parallel with private pools; the
    /// interprocedural stage merges them into one global pool with this.
    pub fn translate_into(
        &self,
        src: &crate::pool::ExprPool,
        dst: &mut crate::pool::ExprPool,
    ) -> FuncSummary {
        let mut memo = HashMap::new();
        self.translate_into_with(src, dst, &mut memo)
    }

    /// [`Self::translate_into`] with a caller-provided memo.
    ///
    /// Pre-seeding the memo lets the caller pin translations — the
    /// parallel interprocedural stage maps a worker's fresh unknowns onto
    /// the master pool's counter this way — and reusing it afterwards
    /// keeps sibling data (sink observations) consistent with the
    /// summary's translation.
    pub fn translate_into_with(
        &self,
        src: &crate::pool::ExprPool,
        dst: &mut crate::pool::ExprPool,
        memo: &mut HashMap<ExprId, ExprId>,
    ) -> FuncSummary {
        self.translate_terms(dst, &mut |e, dst| dst.translate(src, e, memo))
    }

    /// [`Self::translate_into_with`] for a fork of `dst`: `src` was
    /// cloned from `dst` at length `base`, so only fork-created nodes
    /// are re-interned (see [`ExprPool::translate_fork`]).
    ///
    /// [`ExprPool::translate_fork`]: crate::pool::ExprPool::translate_fork
    pub fn translate_into_fork(
        &self,
        src: &crate::pool::ExprPool,
        base: usize,
        dst: &mut crate::pool::ExprPool,
        memo: &mut HashMap<ExprId, ExprId>,
    ) -> FuncSummary {
        self.translate_terms(dst, &mut |e, dst| dst.translate_fork(src, base, e, memo))
    }

    /// Rebuilds the summary with every expression mapped through `tr`.
    fn translate_terms(
        &self,
        dst: &mut crate::pool::ExprPool,
        tr: &mut dyn FnMut(ExprId, &mut crate::pool::ExprPool) -> ExprId,
    ) -> FuncSummary {
        let mut out = FuncSummary {
            addr: self.addr,
            name: self.name.clone(),
            args_used: self.args_used.clone(),
            paths_explored: self.paths_explored,
            path_cap_hit: self.path_cap_hit,
            fuel_exhausted: self.fuel_exhausted,
            degraded: self.degraded,
            blocks_executed: self.blocks_executed,
            alias_rewrites: self.alias_rewrites,
            sse_rounds: self.sse_rounds,
            sse_rewrites: self.sse_rewrites,
            sse_depth: self.sse_depth,
            sse_saturated: self.sse_saturated,
            ..FuncSummary::default()
        };
        for dp in &self.def_pairs {
            out.def_pairs.push(DefPair { d: tr(dp.d, dst), u: tr(dp.u, dst), ..*dp });
        }
        for dp in &self.escape_defs {
            out.escape_defs.push(DefPair { d: tr(dp.d, dst), u: tr(dp.u, dst), ..*dp });
        }
        for cs in &self.callsites {
            out.callsites.push(CallsiteInfo {
                ins_addr: cs.ins_addr,
                callee: match &cs.callee {
                    CalleeRef::Indirect(e) => CalleeRef::Indirect(tr(*e, dst)),
                    other => other.clone(),
                },
                args: cs.args.iter().map(|&a| tr(a, dst)).collect(),
                ret: tr(cs.ret, dst),
                path: cs.path,
            });
        }
        for c in &self.constraints {
            out.constraints.push(Constraint { lhs: tr(c.lhs, dst), rhs: tr(c.rhs, dst), ..*c });
        }
        for &r in &self.ret_values {
            let t = tr(r, dst);
            out.ret_values.push(t);
        }
        for lc in &self.loop_copies {
            out.loop_copies.push(LoopCopy {
                dst_addr: tr(lc.dst_addr, dst),
                value: tr(lc.value, dst),
                ..*lc
            });
        }
        for (&e, &t) in &self.types {
            let te = tr(e, dst);
            out.observe_type(te, t);
        }
        out
    }

    /// Records a type observation, joining with any existing one.
    pub fn observe_type(&mut self, e: ExprId, t: VType) {
        let entry = self.types.entry(e).or_default();
        *entry = entry.join(t);
    }

    /// The inferred type of an expression ([`VType::Unknown`] if never
    /// observed).
    pub fn type_of(&self, e: ExprId) -> VType {
        self.types.get(&e).copied().unwrap_or_default()
    }

    /// Call sites calling the given import, across all paths.
    pub fn calls_to_import(&self, name: &str) -> Vec<&CallsiteInfo> {
        self.callsites
            .iter()
            .filter(|c| matches!(&c.callee, CalleeRef::Import(n) if n == name))
            .collect()
    }

    /// Constraints recorded on the given path.
    pub fn constraints_on_path(&self, path: u32) -> Vec<&Constraint> {
        self.constraints.iter().filter(|c| c.path == path).collect()
    }

    /// Renders the summary in the paper's Figure 6 style: the symbolic
    /// call sites, definition pairs and constraints the static analysis
    /// derived for this function.
    pub fn render(&self, pool: &crate::pool::ExprPool) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "<{}(…)> @ {:#x}  ({} paths{})",
            self.name,
            self.addr,
            self.paths_explored,
            if self.path_cap_hit { ", capped" } else { "" }
        );
        if !self.callsites.is_empty() {
            let _ = writeln!(out, "  call sites:");
            for cs in &self.callsites {
                let callee = match &cs.callee {
                    CalleeRef::Direct(a) => format!("{a:#x}"),
                    CalleeRef::Import(n) => n.clone(),
                    CalleeRef::Indirect(e) => format!("*({})", pool.display(*e)),
                };
                let args: Vec<String> =
                    cs.args.iter().take(4).map(|&a| pool.display(a).to_string()).collect();
                let _ = writeln!(
                    out,
                    "    {:#x}: call {callee}({}), R0 = {}",
                    cs.ins_addr,
                    args.join(", "),
                    pool.display(cs.ret)
                );
            }
        }
        if !self.def_pairs.is_empty() {
            let _ = writeln!(out, "  definition pairs:");
            for dp in &self.def_pairs {
                let _ = writeln!(
                    out,
                    "    {:#x}: {} = {}",
                    dp.ins_addr,
                    pool.display(dp.d),
                    pool.display(dp.u)
                );
            }
        }
        if !self.constraints.is_empty() {
            let _ = writeln!(out, "  constraints:");
            for c in &self.constraints {
                let _ = writeln!(
                    out,
                    "    {:#x}: {} {} {}  (path {})",
                    c.ins_addr,
                    pool.display(c.lhs),
                    c.op,
                    pool.display(c.rhs),
                    c.path
                );
            }
        }
        if !self.ret_values.is_empty() {
            let rets: Vec<String> =
                self.ret_values.iter().map(|&r| pool.display(r).to_string()).collect();
            let _ = writeln!(out, "  returns: {}", rets.join(" | "));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_type_joins() {
        let mut s = FuncSummary::default();
        let e = ExprId(3);
        s.observe_type(e, VType::Ptr);
        s.observe_type(e, VType::CharPtr);
        assert_eq!(s.type_of(e), VType::CharPtr);
        assert_eq!(s.type_of(ExprId(9)), VType::Unknown);
    }

    #[test]
    fn calls_to_import_filters_by_name() {
        let mut s = FuncSummary::default();
        s.callsites.push(CallsiteInfo {
            ins_addr: 0x10,
            callee: CalleeRef::Import("recv".into()),
            args: vec![],
            ret: ExprId(0),
            path: 0,
        });
        s.callsites.push(CallsiteInfo {
            ins_addr: 0x20,
            callee: CalleeRef::Direct(0x8000),
            args: vec![],
            ret: ExprId(1),
            path: 0,
        });
        assert_eq!(s.calls_to_import("recv").len(), 1);
        assert!(s.calls_to_import("strcpy").is_empty());
    }
}
