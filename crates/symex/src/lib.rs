//! Static symbolic analysis — the *function analysis* component of DTaint.
//!
//! For every function, DTaint runs a path-sensitive symbolic execution
//! over its CFG (§III-B of the paper) and produces a [`FuncSummary`]:
//!
//! * **variable descriptions** — memory is described by its address
//!   expression, `deref(base + offset)`, interned in an [`ExprPool`],
//! * **definition pairs** `(d, u)` for every store,
//! * **call sites** with symbolic arguments and a `ret_{callsite}`
//!   return symbol,
//! * **path constraints** from conditional branches (used later by the
//!   sanitisation check),
//! * **data types** inferred from library signatures and machine
//!   instructions,
//! * **loop copies** (memory-to-memory stores inside loops — a sink
//!   pattern).
//!
//! Calling conventions are seeded exactly as the paper describes: the
//! first four arguments in registers (`R0..R3` / `$a0..$a3`) become
//! `arg0..arg3`, stack slots above the entry SP become `arg4..arg9`, and
//! every callee is "hooked" — its return register is bound to a unique
//! `ret_{callsite}` symbol and, for known library functions, its memory
//! side effects are applied (see [`libsig`]).
//!
//! # Examples
//!
//! Reproduce the paper's Figure 5/6 `woo` function: `recv` writes into a
//! buffer whose pointer was stored through `arg0 + 0x4C`, so
//! `deref(deref(arg0 + 0x4C))` becomes tainted data:
//!
//! ```
//! use dtaint_fwbin::arm::ArmIns;
//! use dtaint_fwbin::asm::Assembler;
//! use dtaint_fwbin::link::BinaryBuilder;
//! use dtaint_fwbin::{Arch, Reg};
//! use dtaint_cfg::build_function_cfg;
//! use dtaint_symex::{analyze_function, ExprPool, SymexConfig};
//!
//! let mut woo = Assembler::new(Arch::Arm32e);
//! // R5 = *(arg1 + 0x24); *(arg0 + 0x4C) = R5;
//! woo.arm(ArmIns::Ldr { rt: Reg(5), rn: Reg(1), off: 0x24 });
//! woo.arm(ArmIns::Str { rt: Reg(5), rn: Reg(0), off: 0x4c });
//! // recv(0, R5, 0x200, 0)
//! woo.arm(ArmIns::MovI { rd: Reg(0), imm: 0 });
//! woo.arm(ArmIns::MovI { rd: Reg(2), imm: 0x200 });
//! woo.arm(ArmIns::MovI { rd: Reg(3), imm: 0 });
//! woo.arm(ArmIns::MovR { rd: Reg(1), rm: Reg(5) });
//! woo.call("recv");
//! woo.ret();
//!
//! let mut b = BinaryBuilder::new(Arch::Arm32e);
//! b.add_function("woo", woo);
//! b.add_import("recv");
//! let bin = b.link()?;
//! let cfg = build_function_cfg(&bin, bin.function("woo").unwrap())?;
//! let mut pool = ExprPool::new();
//! let summary = analyze_function(&bin, &cfg, &mut pool, &SymexConfig::default());
//!
//! // The def pair deref(deref(arg1 + 0x24)) = out_<recv> exists.
//! let descriptions: Vec<String> = summary
//!     .def_pairs
//!     .iter()
//!     .map(|dp| pool.display(dp.d).to_string())
//!     .collect();
//! assert!(descriptions.iter().any(|d| d == "deref(deref(arg1 + 0x24))"));
//! # Ok::<(), dtaint_fwbin::Error>(())
//! ```

pub mod encode;
pub mod libsig;
pub mod pool;
pub mod summary;
pub mod types;

mod exec;

pub use encode::{canonical_encode, encode_summary, fnv64, Fnv64, SummaryDecoder, SummaryEncoder};
pub use exec::{analyze_function, SymexConfig};
pub use pool::{CmpOp, ExprId, ExprPool, PoolMark, SymNode};
pub use summary::{CalleeRef, CallsiteInfo, Constraint, DefPair, FuncSummary, LoopCopy};
pub use types::VType;

/// Pseudo argument index used in [`SymNode::CallOut`] when external data
/// arrives through a returned pointer (e.g. `getenv`).
pub const RET_PTR_ARG: u8 = 0xff;

#[cfg(test)]
mod tests {
    use super::*;
    use dtaint_cfg::build_function_cfg;
    use dtaint_fwbin::arm::{ArmIns, Cond};
    use dtaint_fwbin::asm::Assembler;
    use dtaint_fwbin::link::BinaryBuilder;
    use dtaint_fwbin::mips::MipsIns;
    use dtaint_fwbin::{Arch, Binary, Reg};

    fn analyze(
        arch: Arch,
        imports: &[&str],
        f: impl FnOnce(&mut Assembler),
    ) -> (Binary, ExprPool, FuncSummary) {
        let mut a = Assembler::new(arch);
        f(&mut a);
        let mut b = BinaryBuilder::new(arch);
        b.add_function("f", a);
        for i in imports {
            b.add_import(i);
        }
        let bin = b.link().unwrap();
        let cfg = build_function_cfg(&bin, bin.function("f").unwrap()).unwrap();
        let mut pool = ExprPool::new();
        let summary = analyze_function(&bin, &cfg, &mut pool, &SymexConfig::default());
        (bin, pool, summary)
    }

    #[test]
    fn arguments_seed_the_convention() {
        let (_, pool, s) = analyze(Arch::Arm32e, &[], |a| {
            // return arg2
            a.arm(ArmIns::MovR { rd: Reg(0), rm: Reg(2) });
            a.ret();
        });
        assert_eq!(s.ret_values.len(), 1);
        assert_eq!(pool.display(s.ret_values[0]).to_string(), "arg2");
        assert!(s.args_used.contains(&2));
    }

    #[test]
    fn mips_convention_returns_in_v0() {
        let (_, pool, s) = analyze(Arch::Mips32e, &[], |a| {
            a.mips(MipsIns::Addiu { rt: Reg(2), rs: Reg(5), imm: 4 });
            a.ret();
        });
        assert_eq!(pool.display(s.ret_values[0]).to_string(), "arg1 + 0x4");
    }

    #[test]
    fn stack_arguments_are_seeded() {
        let (_, pool, s) = analyze(Arch::Arm32e, &[], |a| {
            // return *(sp + 0) — i.e., arg4
            a.arm(ArmIns::Ldr { rt: Reg(0), rn: Reg::SP, off: 0 });
            a.ret();
        });
        assert_eq!(pool.display(s.ret_values[0]).to_string(), "arg4");
    }

    #[test]
    fn store_then_load_resolves_through_memory() {
        let (_, pool, s) = analyze(Arch::Arm32e, &[], |a| {
            // *(sp - 8) = arg1; return *(sp - 8);
            a.arm(ArmIns::Str { rt: Reg(1), rn: Reg::SP, off: -8 });
            a.arm(ArmIns::Ldr { rt: Reg(0), rn: Reg::SP, off: -8 });
            a.ret();
        });
        assert_eq!(pool.display(s.ret_values[0]).to_string(), "arg1");
    }

    #[test]
    fn callsite_binds_ret_symbol_and_args() {
        let (bin, pool, s) = analyze(Arch::Arm32e, &["malloc"], |a| {
            a.arm(ArmIns::MovI { rd: Reg(0), imm: 64 });
            a.call("malloc");
            a.ret();
        });
        let cs = &s.calls_to_import("malloc")[0];
        assert_eq!(pool.display(cs.args[0]).to_string(), "64");
        assert_eq!(s.ret_values[0], cs.ret);
        assert_eq!(cs.ins_addr, bin.function("f").unwrap().addr + 4);
    }

    #[test]
    fn recv_taints_buffer_memory() {
        let (_, pool, s) = analyze(Arch::Arm32e, &["recv"], |a| {
            // recv(arg0, sp-0x100, 0x200, 0); return *(sp-0x100)
            a.arm(ArmIns::SubI { rd: Reg(1), rn: Reg::SP, imm: 0x100 });
            a.arm(ArmIns::MovI { rd: Reg(2), imm: 0x200 });
            a.arm(ArmIns::MovI { rd: Reg(3), imm: 0 });
            a.call("recv");
            a.arm(ArmIns::SubI { rd: Reg(4), rn: Reg::SP, imm: 0x100 });
            a.arm(ArmIns::Ldr { rt: Reg(0), rn: Reg(4), off: 0 });
            a.ret();
        });
        // The loaded value is the recv output symbol.
        let rv = s.ret_values[0];
        assert!(
            pool.display(rv).to_string().starts_with("out_"),
            "expected recv output, got {}",
            pool.display(rv)
        );
    }

    #[test]
    fn strcpy_copies_tainted_data_between_buffers() {
        let (_, pool, s) = analyze(Arch::Arm32e, &["recv", "strcpy"], |a| {
            // recv(0, sp-0x200, 64, 0); strcpy(sp-0x40, sp-0x200);
            // return *(sp-0x40)
            a.arm(ArmIns::MovI { rd: Reg(0), imm: 0 });
            a.arm(ArmIns::SubI { rd: Reg(1), rn: Reg::SP, imm: 0x200 });
            a.arm(ArmIns::MovI { rd: Reg(2), imm: 64 });
            a.arm(ArmIns::MovI { rd: Reg(3), imm: 0 });
            a.call("recv");
            a.arm(ArmIns::SubI { rd: Reg(0), rn: Reg::SP, imm: 0x40 });
            a.arm(ArmIns::SubI { rd: Reg(1), rn: Reg::SP, imm: 0x200 });
            a.call("strcpy");
            a.arm(ArmIns::SubI { rd: Reg(4), rn: Reg::SP, imm: 0x40 });
            a.arm(ArmIns::Ldr { rt: Reg(0), rn: Reg(4), off: 0 });
            a.ret();
        });
        let rv = s.ret_values[0];
        // Taint flowed recv → buffer → strcpy → second buffer → return.
        assert!(
            pool.display(rv).to_string().starts_with("out_"),
            "strcpy must propagate the recv output, got {}",
            pool.display(rv)
        );
    }

    #[test]
    fn getenv_return_pointee_is_external() {
        let (_, pool, s) = analyze(Arch::Arm32e, &["getenv"], |a| {
            a.call("getenv");
            a.arm(ArmIns::Ldrb { rt: Reg(0), rn: Reg(0), off: 0 });
            a.ret();
        });
        let rv = s.ret_values[0];
        let shown = pool.display(rv).to_string();
        assert!(shown.starts_with("out_"), "getenv pointee external, got {shown}");
    }

    #[test]
    fn branches_fork_and_record_constraints() {
        let (_, pool, s) = analyze(Arch::Arm32e, &[], |a| {
            a.arm(ArmIns::CmpI { rn: Reg(2), imm: 64 });
            a.arm_b(Cond::Lt, "small");
            a.arm(ArmIns::MovI { rd: Reg(0), imm: 0 });
            a.ret();
            a.label("small");
            a.arm(ArmIns::MovI { rd: Reg(0), imm: 1 });
            a.ret();
        });
        assert_eq!(s.paths_explored, 2);
        assert_eq!(s.constraints.len(), 2);
        let shown: Vec<String> = s
            .constraints
            .iter()
            .map(|c| format!("{} {} {}", pool.display(c.lhs), c.op, pool.display(c.rhs)))
            .collect();
        assert!(shown.contains(&"arg2 < 64".to_string()), "{shown:?}");
        assert!(shown.contains(&"arg2 >= 64".to_string()), "{shown:?}");
        // Comparison against an immediate types arg2 as int.
        let arg2 = s.constraints[0].lhs;
        assert_eq!(s.type_of(arg2), VType::Int);
    }

    #[test]
    fn loops_are_analyzed_once_per_path() {
        let (_, _, s) = analyze(Arch::Arm32e, &[], |a| {
            a.arm(ArmIns::MovI { rd: Reg(2), imm: 10 });
            a.label("head");
            a.arm(ArmIns::CmpI { rn: Reg(2), imm: 0 });
            a.arm_b(Cond::Eq, "out");
            a.arm(ArmIns::SubI { rd: Reg(2), rn: Reg(2), imm: 1 });
            a.jump("head");
            a.label("out");
            a.ret();
        });
        // Terminates with a bounded number of paths despite the loop.
        assert!(s.paths_explored >= 1);
        assert!(s.paths_explored <= 4);
    }

    #[test]
    fn loop_copy_is_detected_as_sink_pattern() {
        let (_, _, s) = analyze(Arch::Arm32e, &["recv"], |a| {
            // recv(0, sp-0x200, 0x200, 0);
            a.arm(ArmIns::MovI { rd: Reg(0), imm: 0 });
            a.arm(ArmIns::SubI { rd: Reg(1), rn: Reg::SP, imm: 0x200 });
            a.arm(ArmIns::MovI { rd: Reg(2), imm: 0x200 });
            a.arm(ArmIns::MovI { rd: Reg(3), imm: 0 });
            a.call("recv");
            // copy loop: *(dst++) = *(src++) until byte is 0
            a.arm(ArmIns::SubI { rd: Reg(4), rn: Reg::SP, imm: 0x200 }); // src
            a.arm(ArmIns::SubI { rd: Reg(5), rn: Reg::SP, imm: 0x30 }); // dst
            a.label("loop");
            a.arm(ArmIns::Ldrb { rt: Reg(6), rn: Reg(4), off: 0 });
            a.arm(ArmIns::Strb { rt: Reg(6), rn: Reg(5), off: 0 });
            a.arm(ArmIns::AddI { rd: Reg(4), rn: Reg(4), imm: 1 });
            a.arm(ArmIns::AddI { rd: Reg(5), rn: Reg(5), imm: 1 });
            a.arm(ArmIns::CmpI { rn: Reg(6), imm: 0 });
            a.arm_b(Cond::Ne, "loop");
            a.ret();
        });
        assert!(!s.loop_copies.is_empty(), "loop copy store must be detected");
    }

    #[test]
    fn constant_branches_do_not_fork() {
        let (_, _, s) = analyze(Arch::Arm32e, &[], |a| {
            a.arm(ArmIns::MovI { rd: Reg(2), imm: 1 });
            a.arm(ArmIns::CmpI { rn: Reg(2), imm: 0 });
            a.arm_b(Cond::Eq, "dead");
            a.arm(ArmIns::MovI { rd: Reg(0), imm: 7 });
            a.ret();
            a.label("dead");
            a.arm(ArmIns::MovI { rd: Reg(0), imm: 9 });
            a.ret();
        });
        assert_eq!(s.paths_explored, 1, "statically-false branch is pruned");
        assert!(s.constraints.is_empty());
    }

    #[test]
    fn escape_defs_cover_argument_pointees() {
        // woo-style: *(arg0 + 0x4C) = *(arg1 + 0x24) reaches the exit.
        let (_, pool, s) = analyze(Arch::Arm32e, &[], |a| {
            a.arm(ArmIns::Ldr { rt: Reg(5), rn: Reg(1), off: 0x24 });
            a.arm(ArmIns::Str { rt: Reg(5), rn: Reg(0), off: 0x4c });
            a.ret();
        });
        let shown: Vec<(String, String)> = s
            .escape_defs
            .iter()
            .map(|dp| (pool.display(dp.d).to_string(), pool.display(dp.u).to_string()))
            .collect();
        assert!(
            shown.contains(&("deref(arg0 + 0x4c)".to_string(), "deref(arg1 + 0x24)".to_string())),
            "{shown:?}"
        );
    }

    #[test]
    fn function_pointer_loads_resolve_to_function_address() {
        // Store a function pointer in rodata-like .data and call through it.
        let arch = Arch::Arm32e;
        let mut f = Assembler::new(arch);
        f.load_addr(Reg(4), "table");
        f.arm(ArmIns::Ldr { rt: Reg(5), rn: Reg(4), off: 0 });
        f.arm(ArmIns::Blx { rm: Reg(5) });
        f.ret();
        let mut h = Assembler::new(arch);
        h.ret();
        let mut b = BinaryBuilder::new(arch);
        b.add_function("f", f);
        b.add_function("handler", h);
        // A data table that will be patched? Use bss placeholder then a
        // manual data table containing the handler address is easier via
        // rodata bytes after linking; instead reference via load_addr of
        // handler directly:
        b.add_data("table", vec![0; 4]);
        let bin = b.link().unwrap();
        let cfg = build_function_cfg(&bin, bin.function("f").unwrap()).unwrap();
        let mut pool = ExprPool::new();
        let s = analyze_function(&bin, &cfg, &mut pool, &SymexConfig::default());
        // The indirect callsite's target expression is the concrete load
        // result (zero here, since the table is zero-filled) — what matters
        // is that an Indirect callee was recorded.
        assert!(s.callsites.iter().any(|c| matches!(c.callee, CalleeRef::Indirect(_))));
    }

    #[test]
    fn path_cap_bounds_exponential_functions() {
        let (_, _, s) = analyze(Arch::Arm32e, &[], |a| {
            // 10 sequential diamonds → 1024 paths without a cap.
            for i in 0..10 {
                a.arm(ArmIns::CmpI { rn: Reg(2), imm: i });
                a.arm_b(Cond::Eq, &format!("t{i}"));
                a.arm(ArmIns::Nop);
                a.label(&format!("t{i}"));
            }
            a.ret();
        });
        assert!(s.path_cap_hit);
        assert_eq!(s.paths_explored, SymexConfig::default().max_paths);
    }
}
