//! Primitive data types and the paper's two inference rules.
//!
//! DTaint infers types "through two ways: (1) standard C/C++ library
//! function calls, and (2) a machine instruction defining the data type"
//! (§III-B). Rule (1) lives in [`crate::libsig`]; rule (2) is applied by
//! the executor: a register used as a load/store base must hold a
//! pointer, and a register compared against an immediate holds an
//! integer.

use std::fmt;

/// A primitive value type, following the paper's `int`/`char`/`int*`/
/// `char*` vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VType {
    /// Nothing known yet.
    #[default]
    Unknown,
    /// A 32-bit integer.
    Int,
    /// A single byte / character.
    Char,
    /// A pointer of unknown pointee.
    Ptr,
    /// A pointer to characters (C string).
    CharPtr,
    /// A pointer to integers.
    IntPtr,
}

impl VType {
    /// True for any pointer type.
    pub fn is_pointer(self) -> bool {
        matches!(self, VType::Ptr | VType::CharPtr | VType::IntPtr)
    }

    /// Merges two observations of the same value's type.
    ///
    /// More specific information wins; conflicting pointer flavours decay
    /// to the generic [`VType::Ptr`]; pointer-vs-integer conflicts keep
    /// the pointer (loads are stronger evidence than compares, which also
    /// legitimately apply to pointers).
    pub fn join(self, other: VType) -> VType {
        use VType::*;
        match (self, other) {
            (Unknown, x) | (x, Unknown) => x,
            (a, b) if a == b => a,
            (CharPtr, IntPtr) | (IntPtr, CharPtr) => Ptr,
            (Ptr, p) | (p, Ptr) if p.is_pointer() => p,
            (p, _) | (_, p) if p.is_pointer() => p,
            (Char, Int) | (Int, Char) => Int,
            (a, _) => a,
        }
    }
}

impl fmt::Display for VType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VType::Unknown => "?",
            VType::Int => "int",
            VType::Char => "char",
            VType::Ptr => "void*",
            VType::CharPtr => "char*",
            VType::IntPtr => "int*",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_prefers_specific_information() {
        assert_eq!(VType::Unknown.join(VType::CharPtr), VType::CharPtr);
        assert_eq!(VType::Ptr.join(VType::CharPtr), VType::CharPtr);
        assert_eq!(VType::CharPtr.join(VType::IntPtr), VType::Ptr);
        assert_eq!(VType::Int.join(VType::Ptr), VType::Ptr);
        assert_eq!(VType::Char.join(VType::Int), VType::Int);
        assert_eq!(VType::Int.join(VType::Int), VType::Int);
    }

    #[test]
    fn join_is_commutative_on_samples() {
        let all =
            [VType::Unknown, VType::Int, VType::Char, VType::Ptr, VType::CharPtr, VType::IntPtr];
        for a in all {
            for b in all {
                assert_eq!(a.join(b), b.join(a), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn pointer_classification() {
        assert!(VType::CharPtr.is_pointer());
        assert!(VType::Ptr.is_pointer());
        assert!(!VType::Int.is_pointer());
        assert!(!VType::Unknown.is_pointer());
    }
}
