//! Pool-independent summary encoding for the incremental cache.
//!
//! A [`FuncSummary`] holds [`ExprId`]s, which are indices into one
//! particular [`ExprPool`] — meaningless in any other pool or process.
//! The cache needs two pool-free artefacts instead:
//!
//! * a **canonical byte string** of a summary, used as hash input for
//!   content keys — identical regardless of how the pool happens to be
//!   laid out (interleaved functions, fork merges, thread counts);
//! * a **rehydratable blob**: the same byte string, decodable into any
//!   pool by re-interning every node, with [`SymNode::Unknown`] indices
//!   renumbered onto the destination pool's counter — the same
//!   discipline [`ExprPool::translate_fork`] applies at merge time.
//!
//! Both come from one encoder. Expressions serialise as a memoised
//! post-order node table (children precede parents, each node written
//! once), followed by a body that references nodes by table index. The
//! sole pool-dependent leaf, `Unknown(n)`, goes through a caller-supplied
//! mapper turning the absolute index into an `(owner_addr, rel)` pair
//! relative to the owning function's first unknown; the decoder maps the
//! pair back through the destination pool's ownership table. Canonical
//! (hash-input) encoding uses a mapper that refuses every unknown, so a
//! summary whose content depends on pool-global counters simply has no
//! canonical form and is never content-keyed.

use crate::pool::{CmpOp, ExprId, ExprPool, SymNode};
use crate::summary::{CalleeRef, CallsiteInfo, Constraint, DefPair, FuncSummary, LoopCopy};
use crate::types::VType;
use std::collections::HashMap;

/// FNV-1a 64-bit, the content hash of the cache keys. Stable across
/// platforms and runs; no dependency, no randomised state.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64(Self::OFFSET)
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Absorbs one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    /// Absorbs a little-endian u32.
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a little-endian u64.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a length-prefixed string (prefix keeps `"ab","c"` and
    /// `"a","bc"` distinct).
    pub fn write_str(&mut self, s: &str) {
        self.write_u32(s.len() as u32);
        self.write(s.as_bytes());
    }

    /// The digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Convenience: hash one byte slice.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

// Node tags. The numbering is part of the on-disk format; never reorder.
const TAG_CONST: u8 = 0;
const TAG_ARG: u8 = 1;
const TAG_RETSYM: u8 = 2;
const TAG_CALLOUT: u8 = 3;
const TAG_INITREG: u8 = 4;
const TAG_STACKBASE: u8 = 5;
const TAG_UNKNOWN: u8 = 6;
const TAG_DEREF: u8 = 7;
const TAG_ADD: u8 = 8;
const TAG_MUL: u8 = 9;
const TAG_AND: u8 = 10;
const TAG_OR: u8 = 11;
const TAG_XOR: u8 = 12;
const TAG_SHL: u8 = 13;
const TAG_SHR: u8 = 14;
const TAG_CMP: u8 = 15;

fn cmp_tag(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Ge => 3,
        CmpOp::Le => 4,
        CmpOp::Gt => 5,
    }
}

fn cmp_untag(t: u8) -> Option<CmpOp> {
    Some(match t {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Ge,
        4 => CmpOp::Le,
        5 => CmpOp::Gt,
        _ => return None,
    })
}

fn vtype_tag(t: VType) -> u8 {
    match t {
        VType::Unknown => 0,
        VType::Int => 1,
        VType::Char => 2,
        VType::Ptr => 3,
        VType::CharPtr => 4,
        VType::IntPtr => 5,
    }
}

fn vtype_untag(t: u8) -> Option<VType> {
    Some(match t {
        0 => VType::Unknown,
        1 => VType::Int,
        2 => VType::Char,
        3 => VType::Ptr,
        4 => VType::CharPtr,
        5 => VType::IntPtr,
        _ => return None,
    })
}

/// Maps an absolute `Unknown` index to its pool-free `(owner_addr, rel)`
/// form; `None` marks the summary as unencodable (see module docs).
pub type UnknownMapper<'m> = &'m mut dyn FnMut(u32) -> Option<(u32, u32)>;

/// Serialises expressions and summaries from one pool into the pool-free
/// wire form. One encoder produces one blob; the memoised node table is
/// shared by everything encoded through it.
pub struct SummaryEncoder<'p, 'm> {
    pool: &'p ExprPool,
    map_unknown: UnknownMapper<'m>,
    memo: HashMap<u32, u32>,
    table: Vec<u8>,
    count: u32,
    failed: bool,
    body: Vec<u8>,
}

impl<'p, 'm> SummaryEncoder<'p, 'm> {
    /// An encoder over `pool` with the given unknown mapper.
    pub fn new(pool: &'p ExprPool, map_unknown: UnknownMapper<'m>) -> Self {
        SummaryEncoder {
            pool,
            map_unknown,
            memo: HashMap::new(),
            table: Vec::new(),
            count: 0,
            failed: false,
            body: Vec::new(),
        }
    }

    /// True once any unknown failed to map; the blob is void.
    pub fn failed(&self) -> bool {
        self.failed
    }

    fn node_index(&mut self, id: ExprId) -> u32 {
        if let Some(&ix) = self.memo.get(&id.0) {
            return ix;
        }
        // Children first: the record may only reference earlier indices.
        let node = self.pool.node(id);
        let rec: (u8, Vec<u8>) = match node {
            SymNode::Const(v) => (TAG_CONST, v.to_le_bytes().to_vec()),
            SymNode::Arg(i) => (TAG_ARG, vec![i]),
            SymNode::RetSym(cs) => (TAG_RETSYM, cs.to_le_bytes().to_vec()),
            SymNode::CallOut { callsite, arg } => {
                let mut f = callsite.to_le_bytes().to_vec();
                f.push(arg);
                (TAG_CALLOUT, f)
            }
            SymNode::InitReg(r) => (TAG_INITREG, vec![r]),
            SymNode::StackBase => (TAG_STACKBASE, vec![]),
            SymNode::Unknown(n) => match (self.map_unknown)(n) {
                Some((owner, rel)) => {
                    let mut f = owner.to_le_bytes().to_vec();
                    f.extend_from_slice(&rel.to_le_bytes());
                    (TAG_UNKNOWN, f)
                }
                None => {
                    self.failed = true;
                    (TAG_UNKNOWN, vec![0; 8])
                }
            },
            SymNode::Deref { addr, width } => {
                let a = self.node_index(addr);
                let mut f = a.to_le_bytes().to_vec();
                f.push(width);
                (TAG_DEREF, f)
            }
            SymNode::Add(a, b) => (TAG_ADD, two(self.node_index(a), self.node_index(b))),
            SymNode::Mul(a, b) => (TAG_MUL, two(self.node_index(a), self.node_index(b))),
            SymNode::And(a, b) => (TAG_AND, two(self.node_index(a), self.node_index(b))),
            SymNode::Or(a, b) => (TAG_OR, two(self.node_index(a), self.node_index(b))),
            SymNode::Xor(a, b) => (TAG_XOR, two(self.node_index(a), self.node_index(b))),
            SymNode::Shl(a, b) => (TAG_SHL, two(self.node_index(a), self.node_index(b))),
            SymNode::Shr(a, b) => (TAG_SHR, two(self.node_index(a), self.node_index(b))),
            SymNode::Cmp(op, a, b) => {
                let mut f = vec![cmp_tag(op)];
                f.extend_from_slice(&two(self.node_index(a), self.node_index(b)));
                (TAG_CMP, f)
            }
        };
        // A child encode may have interned this id meanwhile? No — ids are
        // acyclic and children are strictly distinct from the parent, but
        // re-check to keep the memo single-assignment regardless.
        if let Some(&ix) = self.memo.get(&id.0) {
            return ix;
        }
        let ix = self.count;
        self.count += 1;
        self.table.push(rec.0);
        self.table.extend_from_slice(&rec.1);
        self.memo.insert(id.0, ix);
        ix
    }

    /// Writes an expression reference into the body.
    pub fn expr(&mut self, id: ExprId) {
        let ix = self.node_index(id);
        self.body.extend_from_slice(&ix.to_le_bytes());
    }

    /// Writes one byte into the body.
    pub fn u8(&mut self, v: u8) {
        self.body.push(v);
    }

    /// Writes a little-endian u32 into the body.
    pub fn u32(&mut self, v: u32) {
        self.body.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian u64 into the body.
    pub fn u64(&mut self, v: u64) {
        self.body.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a length-prefixed string into the body.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.body.extend_from_slice(s.as_bytes());
    }

    /// Encodes a whole summary into the body, fields in declaration
    /// order. The `types` map iterates in hash order, so its entries are
    /// sorted by their own standalone encodings first — a pool-free,
    /// layout-invariant order.
    pub fn summary(&mut self, s: &FuncSummary) {
        self.u32(s.addr);
        self.str(&s.name);
        self.def_pairs(&s.def_pairs);
        self.def_pairs(&s.escape_defs);
        self.u32(s.callsites.len() as u32);
        for cs in &s.callsites {
            self.u32(cs.ins_addr);
            match &cs.callee {
                CalleeRef::Direct(a) => {
                    self.u8(0);
                    self.u32(*a);
                }
                CalleeRef::Import(n) => {
                    self.u8(1);
                    self.str(n);
                }
                CalleeRef::Indirect(e) => {
                    self.u8(2);
                    self.expr(*e);
                }
            }
            self.u32(cs.args.len() as u32);
            for &a in &cs.args {
                self.expr(a);
            }
            self.expr(cs.ret);
            self.u32(cs.path);
        }
        self.u32(s.constraints.len() as u32);
        for c in &s.constraints {
            self.u8(cmp_tag(c.op));
            self.expr(c.lhs);
            self.expr(c.rhs);
            self.u32(c.ins_addr);
            self.u32(c.path);
        }
        self.u32(s.ret_values.len() as u32);
        for &r in &s.ret_values {
            self.expr(r);
        }
        self.u32(s.loop_copies.len() as u32);
        for lc in &s.loop_copies {
            self.u32(lc.ins_addr);
            self.expr(lc.dst_addr);
            self.expr(lc.value);
            self.u32(lc.path);
        }
        let mut typed: Vec<(Vec<u8>, ExprId, VType)> = Vec::with_capacity(s.types.len());
        for (&e, &t) in &s.types {
            match encode_expr_standalone(self.pool, &mut *self.map_unknown, e) {
                Some(key) => typed.push((key, e, t)),
                None => {
                    self.failed = true;
                    typed.push((Vec::new(), e, t));
                }
            }
        }
        typed.sort_by(|a, b| a.0.cmp(&b.0).then(vtype_tag(a.2).cmp(&vtype_tag(b.2))));
        self.u32(typed.len() as u32);
        for (_, e, t) in typed {
            self.expr(e);
            self.u8(vtype_tag(t));
        }
        self.u32(s.args_used.len() as u32);
        for &a in &s.args_used {
            self.u8(a);
        }
        self.u32(s.paths_explored);
        self.u8(s.path_cap_hit as u8);
        self.u8(s.fuel_exhausted as u8);
        self.u8(s.degraded as u8);
        self.u32(s.blocks_executed);
        self.u32(s.alias_rewrites);
        self.u32(s.sse_rounds);
        self.u32(s.sse_rewrites);
        self.u32(s.sse_depth);
        self.u8(s.sse_saturated as u8);
    }

    fn def_pairs(&mut self, pairs: &[DefPair]) {
        self.u32(pairs.len() as u32);
        for dp in pairs {
            self.expr(dp.d);
            self.expr(dp.u);
            self.u32(dp.ins_addr);
            self.u32(dp.path);
        }
    }

    /// Final blob: `[u32 node_count][node records][body]`, or `None` when
    /// any unknown refused to map.
    pub fn finish(self) -> Option<Vec<u8>> {
        if self.failed {
            return None;
        }
        let mut out = Vec::with_capacity(4 + self.table.len() + self.body.len());
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&self.table);
        out.extend_from_slice(&self.body);
        Some(out)
    }
}

fn two(a: u32, b: u32) -> Vec<u8> {
    let mut f = a.to_le_bytes().to_vec();
    f.extend_from_slice(&b.to_le_bytes());
    f
}

/// One expression encoded alone (its own node table + body); used as a
/// pool-free sort key for the `types` map.
fn encode_expr_standalone(
    pool: &ExprPool,
    map_unknown: &mut dyn FnMut(u32) -> Option<(u32, u32)>,
    id: ExprId,
) -> Option<Vec<u8>> {
    let mut enc = SummaryEncoder::new(pool, map_unknown);
    enc.expr(id);
    enc.finish()
}

/// Encodes one summary into a standalone blob.
pub fn encode_summary(
    pool: &ExprPool,
    s: &FuncSummary,
    map_unknown: UnknownMapper<'_>,
) -> Option<Vec<u8>> {
    let mut enc = SummaryEncoder::new(pool, map_unknown);
    enc.summary(s);
    enc.finish()
}

/// Canonical (hash-input) encoding: refuses any summary containing an
/// [`SymNode::Unknown`], whose index is a pool-global counter artefact.
pub fn canonical_encode(pool: &ExprPool, s: &FuncSummary) -> Option<Vec<u8>> {
    encode_summary(pool, s, &mut |_| None)
}

/// Maps a wire-form `(owner_addr, rel)` unknown back to an absolute
/// index in the destination pool; `None` aborts the decode (unknown
/// owner — the cache entry is unusable in this scan).
pub type UnknownUnmapper<'m> = &'m mut dyn FnMut(u32, u32) -> Option<u32>;

/// Decodes blobs produced by [`SummaryEncoder`], re-interning every node
/// into a destination pool. Interning is verbatim (`ExprPool::intern`,
/// no normalising constructors) so the decoded structure is bit-equal to
/// what the encoder saw.
pub struct SummaryDecoder {
    exprs: Vec<ExprId>,
    body: Vec<u8>,
    pos: usize,
}

impl SummaryDecoder {
    /// Parses the node table of `blob` into `pool`. Returns `None` on any
    /// malformed record or unmappable unknown.
    pub fn new(blob: &[u8], pool: &mut ExprPool, unmap: UnknownUnmapper<'_>) -> Option<Self> {
        let mut pos = 0usize;
        let count = read_u32(blob, &mut pos)?;
        let mut exprs: Vec<ExprId> = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let tag = read_u8(blob, &mut pos)?;
            let node = match tag {
                TAG_CONST => SymNode::Const(read_i64(blob, &mut pos)?),
                TAG_ARG => SymNode::Arg(read_u8(blob, &mut pos)?),
                TAG_RETSYM => SymNode::RetSym(read_u32(blob, &mut pos)?),
                TAG_CALLOUT => SymNode::CallOut {
                    callsite: read_u32(blob, &mut pos)?,
                    arg: read_u8(blob, &mut pos)?,
                },
                TAG_INITREG => SymNode::InitReg(read_u8(blob, &mut pos)?),
                TAG_STACKBASE => SymNode::StackBase,
                TAG_UNKNOWN => {
                    let owner = read_u32(blob, &mut pos)?;
                    let rel = read_u32(blob, &mut pos)?;
                    SymNode::Unknown(unmap(owner, rel)?)
                }
                TAG_DEREF => {
                    let addr = *exprs.get(read_u32(blob, &mut pos)? as usize)?;
                    SymNode::Deref { addr, width: read_u8(blob, &mut pos)? }
                }
                TAG_ADD | TAG_MUL | TAG_AND | TAG_OR | TAG_XOR | TAG_SHL | TAG_SHR => {
                    let a = *exprs.get(read_u32(blob, &mut pos)? as usize)?;
                    let b = *exprs.get(read_u32(blob, &mut pos)? as usize)?;
                    match tag {
                        TAG_ADD => SymNode::Add(a, b),
                        TAG_MUL => SymNode::Mul(a, b),
                        TAG_AND => SymNode::And(a, b),
                        TAG_OR => SymNode::Or(a, b),
                        TAG_XOR => SymNode::Xor(a, b),
                        TAG_SHL => SymNode::Shl(a, b),
                        _ => SymNode::Shr(a, b),
                    }
                }
                TAG_CMP => {
                    let op = cmp_untag(read_u8(blob, &mut pos)?)?;
                    let a = *exprs.get(read_u32(blob, &mut pos)? as usize)?;
                    let b = *exprs.get(read_u32(blob, &mut pos)? as usize)?;
                    SymNode::Cmp(op, a, b)
                }
                _ => return None,
            };
            exprs.push(pool.intern(node));
        }
        Some(SummaryDecoder { exprs, body: blob[pos..].to_vec(), pos: 0 })
    }

    /// Reads one byte from the body.
    pub fn u8(&mut self) -> Option<u8> {
        read_u8(&self.body, &mut self.pos)
    }

    /// Reads a little-endian u32 from the body.
    pub fn u32(&mut self) -> Option<u32> {
        read_u32(&self.body, &mut self.pos)
    }

    /// Reads a little-endian u64 from the body.
    pub fn u64(&mut self) -> Option<u64> {
        read_u64(&self.body, &mut self.pos)
    }

    /// Reads a length-prefixed string from the body.
    pub fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        if self.pos + len > self.body.len() {
            return None;
        }
        let s = String::from_utf8(self.body[self.pos..self.pos + len].to_vec()).ok()?;
        self.pos += len;
        Some(s)
    }

    /// Reads an expression reference from the body.
    pub fn expr(&mut self) -> Option<ExprId> {
        let ix = self.u32()? as usize;
        self.exprs.get(ix).copied()
    }

    /// True when the whole body was consumed.
    pub fn at_end(&self) -> bool {
        self.pos == self.body.len()
    }

    /// Decodes a summary written by [`SummaryEncoder::summary`].
    pub fn summary(&mut self) -> Option<FuncSummary> {
        let mut s = FuncSummary { addr: self.u32()?, name: self.str()?, ..FuncSummary::default() };
        s.def_pairs = self.def_pair_list()?;
        s.escape_defs = self.def_pair_list()?;
        for _ in 0..self.u32()? {
            let ins_addr = self.u32()?;
            let callee = match self.u8()? {
                0 => CalleeRef::Direct(self.u32()?),
                1 => CalleeRef::Import(self.str()?),
                2 => CalleeRef::Indirect(self.expr()?),
                _ => return None,
            };
            let mut args = Vec::new();
            for _ in 0..self.u32()? {
                args.push(self.expr()?);
            }
            let ret = self.expr()?;
            let path = self.u32()?;
            s.callsites.push(CallsiteInfo { ins_addr, callee, args, ret, path });
        }
        for _ in 0..self.u32()? {
            let op = cmp_untag(self.u8()?)?;
            let lhs = self.expr()?;
            let rhs = self.expr()?;
            let ins_addr = self.u32()?;
            let path = self.u32()?;
            s.constraints.push(Constraint { op, lhs, rhs, ins_addr, path });
        }
        for _ in 0..self.u32()? {
            let r = self.expr()?;
            s.ret_values.push(r);
        }
        for _ in 0..self.u32()? {
            let ins_addr = self.u32()?;
            let dst_addr = self.expr()?;
            let value = self.expr()?;
            let path = self.u32()?;
            s.loop_copies.push(LoopCopy { ins_addr, dst_addr, value, path });
        }
        for _ in 0..self.u32()? {
            let e = self.expr()?;
            let t = vtype_untag(self.u8()?)?;
            s.types.insert(e, t);
        }
        for _ in 0..self.u32()? {
            s.args_used.insert(self.u8()?);
        }
        s.paths_explored = self.u32()?;
        s.path_cap_hit = self.u8()? != 0;
        s.fuel_exhausted = self.u8()? != 0;
        s.degraded = self.u8()? != 0;
        s.blocks_executed = self.u32()?;
        s.alias_rewrites = self.u32()?;
        s.sse_rounds = self.u32()?;
        s.sse_rewrites = self.u32()?;
        s.sse_depth = self.u32()?;
        s.sse_saturated = self.u8()? != 0;
        Some(s)
    }

    fn def_pair_list(&mut self) -> Option<Vec<DefPair>> {
        let n = self.u32()?;
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let d = self.expr()?;
            let u = self.expr()?;
            let ins_addr = self.u32()?;
            let path = self.u32()?;
            out.push(DefPair { d, u, ins_addr, path });
        }
        Some(out)
    }
}

fn read_u8(buf: &[u8], pos: &mut usize) -> Option<u8> {
    let v = *buf.get(*pos)?;
    *pos += 1;
    Some(v)
}

fn read_u32(buf: &[u8], pos: &mut usize) -> Option<u32> {
    let b = buf.get(*pos..*pos + 4)?;
    *pos += 4;
    Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

fn read_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let b = buf.get(*pos..*pos + 8)?;
    *pos += 8;
    Some(u64::from_le_bytes(b.try_into().ok()?))
}

fn read_i64(buf: &[u8], pos: &mut usize) -> Option<i64> {
    read_u64(buf, pos).map(|v| v as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::DefPair;

    fn sample_summary(pool: &mut ExprPool) -> FuncSummary {
        let a0 = pool.arg(0);
        let addr = pool.add_const(a0, 0x4c);
        let var = pool.deref(addr, 4);
        let ret = pool.ret_sym(0x1010);
        let c = pool.constant(64);
        let mut s = FuncSummary {
            addr: 0x8000,
            name: "frob".into(),
            paths_explored: 3,
            blocks_executed: 17,
            alias_rewrites: 5,
            sse_rounds: 2,
            sse_rewrites: 4,
            sse_depth: 3,
            sse_saturated: true,
            ..FuncSummary::default()
        };
        s.def_pairs.push(DefPair { d: var, u: ret, ins_addr: 0x1014, path: 0 });
        s.escape_defs.push(DefPair { d: var, u: ret, ins_addr: 0x1014, path: 0 });
        s.callsites.push(CallsiteInfo {
            ins_addr: 0x1010,
            callee: CalleeRef::Import("recv".into()),
            args: vec![a0, c],
            ret,
            path: 0,
        });
        s.constraints.push(Constraint {
            op: CmpOp::Lt,
            lhs: ret,
            rhs: c,
            ins_addr: 0x1020,
            path: 1,
        });
        s.ret_values.push(ret);
        s.loop_copies.push(LoopCopy { ins_addr: 0x1030, dst_addr: addr, value: var, path: 2 });
        s.observe_type(a0, VType::CharPtr);
        s.observe_type(ret, VType::Int);
        s.args_used.insert(0);
        s
    }

    /// Structural equality of two summaries across different pools.
    fn assert_same_shape(a: &FuncSummary, pa: &ExprPool, b: &FuncSummary, pb: &ExprPool) {
        assert_eq!(a.render(pa), b.render(pb));
        assert_eq!(a.def_pairs.len(), b.def_pairs.len());
        assert_eq!(a.escape_defs.len(), b.escape_defs.len());
        assert_eq!(a.types.len(), b.types.len());
        assert_eq!(a.args_used, b.args_used);
        assert_eq!(a.alias_rewrites, b.alias_rewrites);
        assert_eq!(a.sse_rounds, b.sse_rounds);
        assert_eq!(a.sse_rewrites, b.sse_rewrites);
        assert_eq!(a.sse_depth, b.sse_depth);
        assert_eq!(a.sse_saturated, b.sse_saturated);
    }

    #[test]
    fn roundtrip_into_fresh_pool() {
        let mut pool = ExprPool::new();
        let s = sample_summary(&mut pool);
        let blob = canonical_encode(&pool, &s).expect("unknown-free summary encodes");
        let mut dst = ExprPool::new();
        // Intern noise first: decode must not depend on pool layout.
        dst.arg(7);
        dst.constant(0x1234);
        let mut dec = SummaryDecoder::new(&blob, &mut dst, &mut |_, _| None).expect("table parses");
        let back = dec.summary().expect("summary decodes");
        assert!(dec.at_end(), "no trailing bytes");
        assert_same_shape(&s, &pool, &back, &dst);
    }

    #[test]
    fn canonical_encoding_is_pool_layout_invariant() {
        let mut p1 = ExprPool::new();
        let s1 = sample_summary(&mut p1);
        let b1 = canonical_encode(&p1, &s1).unwrap();
        // Same summary content, pool pre-polluted with unrelated nodes so
        // every ExprId differs.
        let mut p2 = ExprPool::new();
        for i in 0..40 {
            p2.constant(1000 + i);
        }
        let s2 = sample_summary(&mut p2);
        let b2 = canonical_encode(&p2, &s2).unwrap();
        assert_eq!(b1, b2, "bytes must not depend on pool layout");
    }

    #[test]
    fn canonical_encoding_refuses_unknowns() {
        let mut pool = ExprPool::new();
        let mut s = sample_summary(&mut pool);
        let u = pool.fresh_unknown();
        s.ret_values.push(u);
        assert!(canonical_encode(&pool, &s).is_none());
    }

    #[test]
    fn unknowns_renumber_through_ownership_pairs() {
        let mut pool = ExprPool::new();
        let base = pool.next_unknown_index();
        let u0 = pool.fresh_unknown();
        let u1 = pool.fresh_unknown();
        let mut s = sample_summary(&mut pool);
        s.ret_values.push(u1);
        s.ret_values.push(u0);
        let owner = s.addr;
        let blob = encode_summary(&pool, &s, &mut |n| Some((owner, n - base))).expect("maps all");
        // Destination pool already burned three unknowns; rehydration
        // allocates a fresh base and maps (owner, rel) onto it.
        let mut dst = ExprPool::new();
        dst.fresh_unknown();
        dst.fresh_unknown();
        dst.fresh_unknown();
        let dst_base = dst.next_unknown_index();
        dst.fresh_unknown();
        dst.fresh_unknown();
        let mut dec = SummaryDecoder::new(&blob, &mut dst, &mut |o, rel| {
            (o == owner).then_some(dst_base + rel)
        })
        .expect("table parses");
        let back = dec.summary().expect("decodes");
        let n = back.ret_values.len();
        assert_eq!(dst.node(back.ret_values[n - 2]), SymNode::Unknown(dst_base + 1));
        assert_eq!(dst.node(back.ret_values[n - 1]), SymNode::Unknown(dst_base));
    }

    #[test]
    fn decode_rejects_unknown_owner() {
        let mut pool = ExprPool::new();
        let base = pool.next_unknown_index();
        let u = pool.fresh_unknown();
        let mut s = sample_summary(&mut pool);
        s.ret_values.push(u);
        let blob = encode_summary(&pool, &s, &mut |n| Some((0xdead, n - base))).unwrap();
        let mut dst = ExprPool::new();
        assert!(SummaryDecoder::new(&blob, &mut dst, &mut |_, _| None).is_none());
    }

    #[test]
    fn truncated_blobs_never_panic() {
        let mut pool = ExprPool::new();
        let s = sample_summary(&mut pool);
        let blob = canonical_encode(&pool, &s).unwrap();
        for len in 0..blob.len() {
            let mut dst = ExprPool::new();
            if let Some(mut dec) = SummaryDecoder::new(&blob[..len], &mut dst, &mut |_, _| None) {
                let _ = dec.summary();
            }
        }
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hash_changes_when_content_changes() {
        let mut pool = ExprPool::new();
        let s = sample_summary(&mut pool);
        let h1 = fnv64(&canonical_encode(&pool, &s).unwrap());
        let mut s2 = s.clone();
        s2.blocks_executed += 1;
        let h2 = fnv64(&canonical_encode(&pool, &s2).unwrap());
        assert_ne!(h1, h2);
    }
}
