//! The per-function static symbolic executor.
//!
//! Follows §III-B of the paper: every function is analyzed separately,
//! seeded with unique symbolic values for its calling convention
//! (`arg0..arg3` in registers, `arg4..arg9` on the stack), exploring both
//! directions of each conditional branch with the heuristic that *blocks
//! in the same loop are only analyzed once* (per path), and binding a
//! fresh `ret_{callsite}` symbol at every call.

use crate::libsig::{lib_sig, WriteEffect};
use crate::pool::{CmpOp, ExprId, ExprPool, SymNode};
use crate::summary::{CalleeRef, CallsiteInfo, Constraint, DefPair, FuncSummary, LoopCopy};
use crate::types::VType;
use dtaint_cfg::FunctionCfg;
use dtaint_fwbin::{Binary, Reg};
use dtaint_ir::{BinOp, IrExpr, IrStmt, JumpKind, Width};
use std::collections::{HashMap, HashSet};

/// Tuning knobs for path exploration.
#[derive(Debug, Clone, Copy)]
pub struct SymexConfig {
    /// Maximum number of fully explored paths per function.
    pub max_paths: u32,
    /// Maximum blocks executed along a single path.
    pub max_blocks_per_path: u32,
    /// Number of stack-passed arguments to seed (`arg4..`).
    pub stack_args: u8,
    /// Total block executions allowed per function, summed over every
    /// path. Fuel is a deterministic step count — never wall-clock — so
    /// the set of functions that exhaust it is identical run-to-run and
    /// thread-count-to-thread-count. The default is well above the
    /// worst case of `max_paths * max_blocks_per_path`, so it only
    /// binds when lowered explicitly.
    pub max_fuel: u32,
    /// Fault-injection drill: panic on entry when analyzing the function
    /// at this address. Exercises the pipeline's `catch_unwind` isolation
    /// in tests; `None` in production.
    pub panic_on: Option<u32>,
}

impl Default for SymexConfig {
    fn default() -> Self {
        SymexConfig {
            max_paths: 64,
            max_blocks_per_path: 512,
            stack_args: 6,
            max_fuel: 1 << 20,
            panic_on: None,
        }
    }
}

impl SymexConfig {
    /// The degraded retry profile: quarter of the path budget (at least
    /// one path) under the same fuel, used for one retry after a
    /// function exhausts its fuel at full strength.
    pub fn degraded(&self) -> SymexConfig {
        SymexConfig { max_paths: (self.max_paths / 4).max(1), ..*self }
    }
}

/// One path's machine state.
#[derive(Debug, Clone, Default)]
struct SymState {
    regs: HashMap<u8, ExprId>,
    mem: HashMap<ExprId, ExprId>,
}

/// Work item: a path positioned at the start of `block`.
#[derive(Debug, Clone)]
struct PathItem {
    block: u32,
    state: SymState,
    visited: HashSet<u32>,
    steps: u32,
    def_pairs: Vec<DefPair>,
    constraints: Vec<Constraint>,
    callsites: Vec<CallsiteInfo>,
    loop_copies: Vec<LoopCopy>,
}

/// Analyzes one function, producing its [`FuncSummary`].
///
/// `pool` receives every symbolic expression the function mentions; pass
/// a per-function pool when analyzing functions in parallel and merge
/// with [`ExprPool::translate`].
pub fn analyze_function(
    bin: &Binary,
    cfg: &FunctionCfg,
    pool: &mut ExprPool,
    config: &SymexConfig,
) -> FuncSummary {
    if config.panic_on == Some(cfg.addr) {
        panic!("injected fault: symex panic drill at {:#x}", cfg.addr);
    }
    Executor {
        bin,
        cfg,
        pool,
        config,
        loop_blocks: cfg.loop_blocks(),
        escape_seen: HashSet::new(),
        fuel_used: 0,
    }
    .run()
}

struct Executor<'a> {
    bin: &'a Binary,
    cfg: &'a FunctionCfg,
    pool: &'a mut ExprPool,
    config: &'a SymexConfig,
    loop_blocks: HashSet<u32>,
    escape_seen: HashSet<(ExprId, ExprId)>,
    fuel_used: u32,
}

impl Executor<'_> {
    fn run(mut self) -> FuncSummary {
        let mut summary = FuncSummary {
            addr: self.cfg.addr,
            name: self.cfg.name.clone(),
            ..FuncSummary::default()
        };
        if self.cfg.blocks.is_empty() {
            return summary;
        }
        let mut stack = vec![PathItem {
            block: self.cfg.addr,
            state: self.initial_state(),
            visited: HashSet::new(),
            steps: 0,
            def_pairs: Vec::new(),
            constraints: Vec::new(),
            callsites: Vec::new(),
            loop_copies: Vec::new(),
        }];
        let mut def_seen: HashSet<(ExprId, ExprId, u32)> = HashSet::new();
        let mut call_seen: HashSet<(u32, Vec<ExprId>)> = HashSet::new();
        let mut con_seen: HashSet<(CmpOp, ExprId, ExprId, u32)> = HashSet::new();
        let mut copy_seen: HashSet<(u32, ExprId, ExprId)> = HashSet::new();
        let mut ret_seen: HashSet<ExprId> = HashSet::new();

        while let Some(mut item) = stack.pop() {
            if summary.paths_explored >= self.config.max_paths {
                summary.path_cap_hit = true;
                break;
            }
            if self.fuel_used >= self.config.max_fuel {
                summary.fuel_exhausted = true;
                break;
            }
            // Execute blocks until the path ends or forks.
            let ended = loop {
                if item.steps >= self.config.max_blocks_per_path {
                    break true;
                }
                if self.fuel_used >= self.config.max_fuel {
                    summary.fuel_exhausted = true;
                    break true;
                }
                self.fuel_used += 1;
                item.steps += 1;
                item.visited.insert(item.block);
                let Some(block) = self.cfg.blocks.get(&item.block) else { break true };
                let block = block.clone();
                let in_loop = self.loop_blocks.contains(&item.block);
                let mut exit: Option<(ExprId, CmpOp, ExprId, u32, u32)> = None;
                let mut ins_addr = block.addr;
                for stmt in &block.stmts {
                    match stmt {
                        IrStmt::Imark { addr, .. } => ins_addr = *addr,
                        IrStmt::Put { reg, value } => {
                            let v = self.eval(&mut item, &mut summary, value, ins_addr);
                            item.state.regs.insert(reg.0, v);
                        }
                        IrStmt::Store { addr, value, width } => {
                            let a = self.eval(&mut item, &mut summary, addr, ins_addr);
                            let v = self.eval(&mut item, &mut summary, value, ins_addr);
                            self.note_pointer_base(&mut summary, a);
                            item.state.mem.insert(a, v);
                            let w = width.bytes() as u8;
                            let d = self.pool.deref(a, w);
                            item.def_pairs.push(DefPair { d, u: v, ins_addr, path: 0 });
                            if in_loop && self.derived_from_memory(v) {
                                item.loop_copies.push(LoopCopy {
                                    ins_addr,
                                    dst_addr: a,
                                    value: v,
                                    path: 0,
                                });
                            }
                        }
                        IrStmt::Exit { cond, target } => {
                            if let IrExpr::Binop { op, lhs, rhs } = cond {
                                let l = self.eval(&mut item, &mut summary, lhs, ins_addr);
                                let r = self.eval(&mut item, &mut summary, rhs, ins_addr);
                                let cmp = cmp_of(*op);
                                let (cmp, l, r) = normalize_cond(self.pool, cmp, l, r);
                                // Machine-instruction type rule: a value
                                // compared against an immediate is an int.
                                if self.pool.as_const(r).is_some() {
                                    summary.observe_type(l, VType::Int);
                                }
                                exit = Some((l, cmp, r, *target, ins_addr));
                            }
                        }
                    }
                }

                match block.jumpkind {
                    JumpKind::Ret => {
                        let ret_reg = self.bin.arch.ret_reg();
                        let rv = self.read_reg(&mut item.state, ret_reg);
                        if ret_seen.insert(rv) {
                            summary.ret_values.push(rv);
                        }
                        self.collect_escapes(&item, &mut summary);
                        break true;
                    }
                    JumpKind::Call { return_to } => {
                        self.handle_call(&mut item, &mut summary, &block, return_to);
                        if self.cfg.blocks.contains_key(&return_to) {
                            item.block = return_to;
                            continue;
                        }
                        break true;
                    }
                    JumpKind::Boring => {
                        if let Some((l, op, r, target, at)) = exit {
                            // Statically decided branches follow one side.
                            if let (Some(lc), Some(rc)) =
                                (self.pool.as_const(l), self.pool.as_const(r))
                            {
                                let next =
                                    if op.eval(lc, rc) { Some(target) } else { block.next_const() };
                                match next.filter(|n| self.may_enter(&item, *n)) {
                                    Some(n) => {
                                        item.block = n;
                                        continue;
                                    }
                                    None => break true,
                                }
                            }
                            // Fork: taken side pushed as a new path.
                            let fall = block.next_const();
                            let mut taken = item.clone();
                            taken.constraints.push(Constraint {
                                op,
                                lhs: l,
                                rhs: r,
                                ins_addr: at,
                                path: 0,
                            });
                            let taken_ok = self.may_enter(&taken, target);
                            if taken_ok {
                                taken.block = target;
                                stack.push(taken);
                            }
                            item.constraints.push(Constraint {
                                op: op.negate(),
                                lhs: l,
                                rhs: r,
                                ins_addr: at,
                                path: 0,
                            });
                            match fall.filter(|n| self.may_enter(&item, *n)) {
                                Some(n) => {
                                    item.block = n;
                                    continue;
                                }
                                None => break true,
                            }
                        }
                        match block.next_const().filter(|n| self.may_enter(&item, *n)) {
                            Some(n) => {
                                item.block = n;
                                continue;
                            }
                            None => break true,
                        }
                    }
                }
            };
            if ended {
                // Finalize this path into the summary, deduplicating.
                let pid = summary.paths_explored;
                summary.paths_explored += 1;
                for mut dp in item.def_pairs {
                    if def_seen.insert((dp.d, dp.u, dp.ins_addr)) {
                        dp.path = pid;
                        summary.def_pairs.push(dp);
                    }
                }
                for mut c in item.constraints {
                    if con_seen.insert((c.op, c.lhs, c.rhs, c.ins_addr)) {
                        c.path = pid;
                        summary.constraints.push(c);
                    }
                }
                for mut cs in item.callsites {
                    if call_seen.insert((cs.ins_addr, cs.args.clone())) {
                        cs.path = pid;
                        summary.callsites.push(cs);
                    }
                }
                for mut lc in item.loop_copies {
                    if copy_seen.insert((lc.ins_addr, lc.dst_addr, lc.value)) {
                        lc.path = pid;
                        summary.loop_copies.push(lc);
                    }
                }
            }
        }
        summary.blocks_executed = self.fuel_used;
        summary
    }

    /// Loop-once heuristic: a path never re-enters a block it already
    /// executed.
    fn may_enter(&self, item: &PathItem, block: u32) -> bool {
        self.cfg.blocks.contains_key(&block) && !item.visited.contains(&block)
    }

    fn initial_state(&mut self) -> SymState {
        let arch = self.bin.arch;
        let mut state = SymState::default();
        for (i, r) in arch.arg_regs().into_iter().enumerate() {
            let a = self.pool.arg(i as u8);
            state.regs.insert(r.0, a);
        }
        let sp0 = self.pool.stack_base();
        state.regs.insert(arch.sp().0, sp0);
        // Stack-passed arguments live just above the entry SP.
        for k in 0..self.config.stack_args {
            let slot = self.pool.add_const(sp0, 4 * k as i64);
            let a = self.pool.arg(4 + k);
            state.mem.insert(slot, a);
        }
        state
    }

    fn read_reg(&mut self, state: &mut SymState, r: Reg) -> ExprId {
        if let Some(&v) = state.regs.get(&r.0) {
            return v;
        }
        let v = self.pool.init_reg(r.0);
        state.regs.insert(r.0, v);
        v
    }

    #[allow(clippy::only_used_in_recursion)] // kept for future per-use records
    fn eval(
        &mut self,
        item: &mut PathItem,
        summary: &mut FuncSummary,
        e: &IrExpr,
        ins_addr: u32,
    ) -> ExprId {
        match e {
            IrExpr::Const(v) => self.pool.constant(*v as i32 as i64),
            IrExpr::Get(r) => {
                let v = self.read_reg(&mut item.state, *r);
                if let SymNode::Arg(i) = self.pool.node(v) {
                    summary.args_used.insert(i);
                }
                v
            }
            IrExpr::Load { addr, width } => {
                let a = self.eval(item, summary, addr, ins_addr);
                self.note_pointer_base(summary, a);
                if let Some(i) = self.arg_index(a) {
                    summary.args_used.insert(i);
                }
                if let Some(&v) = item.state.mem.get(&a) {
                    return v;
                }
                // Concrete addresses in *immutable* sections read through
                // the loaded image — this is how function pointers and
                // string literals surface. Writable globals (.data/.bss)
                // stay symbolic: their runtime contents are not the
                // load-time bytes.
                if let Some(c) = self.pool.as_const(a) {
                    let caddr = c as u32;
                    if self.bin.is_immutable_addr(caddr) {
                        let loaded = match width {
                            Width::W32 => self.bin.read_u32(caddr),
                            Width::W16 => self
                                .bin
                                .bytes_at(caddr, 2)
                                .map(|b| u16::from_le_bytes([b[0], b[1]]) as u32),
                            Width::W8 => self.bin.bytes_at(caddr, 1).map(|b| b[0] as u32),
                        };
                        if let Some(v) = loaded {
                            return self.pool.constant(v as i64);
                        }
                    }
                }
                self.pool.deref(a, width.bytes() as u8)
            }
            IrExpr::Binop { op, lhs, rhs } => {
                let a = self.eval(item, summary, lhs, ins_addr);
                let b = self.eval(item, summary, rhs, ins_addr);
                match op {
                    BinOp::Add => self.pool.add(a, b),
                    BinOp::Sub => self.pool.sub(a, b),
                    BinOp::Mul => self.pool.mul(a, b),
                    BinOp::And => self.pool.and_op(a, b),
                    BinOp::Or => self.pool.or_op(a, b),
                    BinOp::Xor => self.pool.xor_op(a, b),
                    BinOp::Shl => self.pool.shl_op(a, b),
                    BinOp::Shr => self.pool.shr_op(a, b),
                    cmp => {
                        let c = cmp_of(*cmp);
                        self.pool.cmp(c, a, b)
                    }
                }
            }
        }
    }

    /// The machine-instruction typing rule: the base of an indirect
    /// access holds a pointer.
    fn note_pointer_base(&mut self, summary: &mut FuncSummary, addr: ExprId) {
        let (base, _) = self.pool.base_offset(addr);
        summary.observe_type(base, VType::Ptr);
    }

    fn arg_index(&self, e: ExprId) -> Option<u8> {
        let (base, _) = self.pool.base_offset(e);
        match self.pool.node(base) {
            SymNode::Arg(i) => Some(i),
            _ => None,
        }
    }

    /// True when a stored value is memory-derived (for loop-copy sinks).
    fn derived_from_memory(&self, v: ExprId) -> bool {
        self.pool.any_node(v, &mut |n| matches!(n, SymNode::Deref { .. } | SymNode::CallOut { .. }))
    }

    fn handle_call(
        &mut self,
        item: &mut PathItem,
        summary: &mut FuncSummary,
        block: &dtaint_ir::IrBlock,
        _return_to: u32,
    ) {
        let arch = self.bin.arch;
        let cs_addr = block.end() - dtaint_fwbin::INS_SIZE;
        // Register arguments.
        let mut args: Vec<ExprId> =
            arch.arg_regs().iter().map(|r| self.read_reg(&mut item.state, *r)).collect();
        // Stack arguments present in the symbolic store.
        let sp = self.read_reg(&mut item.state, arch.sp());
        for k in 0..self.config.stack_args {
            let slot = self.pool.add_const(sp, 4 * k as i64);
            match item.state.mem.get(&slot) {
                Some(&v) => args.push(v),
                None => break,
            }
        }
        let callee = match block.next_const() {
            Some(t) => {
                if let Some(imp) = self.bin.import_at(t) {
                    CalleeRef::Import(imp.name.clone())
                } else if self.bin.function_at(t).is_some() {
                    CalleeRef::Direct(t)
                } else {
                    let c = self.pool.constant(t as i64);
                    CalleeRef::Indirect(c)
                }
            }
            None => {
                // Re-evaluate the indirect target expression.
                let t = self.eval(item, summary, &block.next, cs_addr);
                CalleeRef::Indirect(t)
            }
        };
        let ret = self.pool.ret_sym(cs_addr);
        if let CalleeRef::Import(name) = &callee {
            if let Some(sig) = lib_sig(name) {
                for (i, t) in sig.arg_types.iter().enumerate() {
                    if let Some(&a) = args.get(i) {
                        summary.observe_type(a, *t);
                    }
                }
                summary.observe_type(ret, sig.ret_type);
                for eff in sig.effects {
                    match *eff {
                        WriteEffect::Fills { dst } => {
                            if let Some(&p) = args.get(dst) {
                                let out = self.pool.call_out(cs_addr, dst as u8);
                                item.state.mem.insert(p, out);
                                let d = self.pool.deref(p, 1);
                                item.def_pairs.push(DefPair {
                                    d,
                                    u: out,
                                    ins_addr: cs_addr,
                                    path: 0,
                                });
                            }
                        }
                        WriteEffect::Copies { dst, src } => {
                            if let (Some(&pd), Some(&ps)) = (args.get(dst), args.get(src)) {
                                let data = match item.state.mem.get(&ps) {
                                    Some(&v) => v,
                                    None => self.pool.deref(ps, 1),
                                };
                                item.state.mem.insert(pd, data);
                                let d = self.pool.deref(pd, 1);
                                item.def_pairs.push(DefPair {
                                    d,
                                    u: data,
                                    ins_addr: cs_addr,
                                    path: 0,
                                });
                            }
                        }
                    }
                }
                if sig.ret_points_to_external {
                    let out = self.pool.call_out(cs_addr, crate::RET_PTR_ARG);
                    item.state.mem.insert(ret, out);
                    let d = self.pool.deref(ret, 1);
                    item.def_pairs.push(DefPair { d, u: out, ins_addr: cs_addr, path: 0 });
                }
            }
        }
        item.state.regs.insert(arch.ret_reg().0, ret);
        item.callsites.push(CallsiteInfo { ins_addr: cs_addr, callee, args, ret, path: 0 });
    }

    /// Records the definition pairs that reach this exit and whose root
    /// pointer is a formal argument or a returned pointer — the set
    /// Algorithm 2 forwards to callers.
    fn collect_escapes(&mut self, item: &PathItem, summary: &mut FuncSummary) {
        for (&addr, &val) in &item.state.mem {
            let w = 4;
            let d = self.pool.deref(addr, w);
            let Some(root) = self.pool.root_ptr(d) else { continue };
            // Argument/return-pointer pointees escape (Algorithm 2), and
            // so do writable globals — their contents persist across the
            // call boundary.
            let escapes = match self.pool.node(root) {
                SymNode::Arg(_) | SymNode::RetSym(_) => true,
                SymNode::Const(c) => {
                    let addr = c as u32;
                    self.bin.section_at(addr).is_some() && !self.bin.is_immutable_addr(addr)
                }
                _ => false,
            };
            if escapes && self.escape_seen.insert((d, val)) {
                // Skip the seeded stack-arg slots themselves.
                if matches!(self.pool.node(val), SymNode::Arg(_))
                    && self.pool.base_offset(addr).0 == self.pool.stack_base()
                {
                    continue;
                }
                summary.escape_defs.push(DefPair {
                    d,
                    u: val,
                    ins_addr: self.cfg.addr,
                    path: summary.paths_explored,
                });
            }
        }
    }
}

/// Unfolds the MIPS `SLT`-then-branch idiom: a boolean comparison value
/// tested against 0/1 becomes the inner comparison (possibly negated),
/// so `beq (a < b), 0` records the constraint `a >= b` rather than an
/// opaque equality on a boolean.
fn normalize_cond(pool: &ExprPool, op: CmpOp, l: ExprId, r: ExprId) -> (CmpOp, ExprId, ExprId) {
    let (boolean, konst, outer) = if let Some(c) = pool.as_const(r) {
        (l, c, op)
    } else if let Some(c) = pool.as_const(l) {
        // Keep the boolean on the left for uniform handling.
        (r, c, op)
    } else {
        return (op, l, r);
    };
    let SymNode::Cmp(inner, a, b) = pool.node(boolean) else {
        return (op, l, r);
    };
    match (outer, konst) {
        (CmpOp::Eq, 0) | (CmpOp::Ne, 1) => (inner.negate(), a, b),
        (CmpOp::Ne, 0) | (CmpOp::Eq, 1) => (inner, a, b),
        _ => (op, l, r),
    }
}

fn cmp_of(op: BinOp) -> CmpOp {
    match op {
        BinOp::CmpEq => CmpOp::Eq,
        BinOp::CmpNe => CmpOp::Ne,
        BinOp::CmpLt => CmpOp::Lt,
        BinOp::CmpGe => CmpOp::Ge,
        BinOp::CmpLe => CmpOp::Le,
        BinOp::CmpGt => CmpOp::Gt,
        other => unreachable!("{other:?} is not a comparison"),
    }
}
