//! Signatures and side-effect models for standard library functions.
//!
//! This is the paper's type-inference rule (1) — "in the most standard
//! library calls, the parameters are specified data types" (§III-B) —
//! plus the memory side effects the executor applies at import call
//! sites, which is how taint enters and propagates through memory:
//!
//! * a *fills* effect writes fresh external data through a pointer
//!   argument (`recv` filling its buffer),
//! * a *copies* effect writes data derived from another argument's
//!   pointee (`strcpy` copying `src` into `dst`),
//! * a *returns-external* effect makes the returned pointer's pointee
//!   fresh external data (`getenv`).

use crate::types::VType;

/// Memory side effect of a library call on one pointer argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteEffect {
    /// The pointee of argument `dst` receives fresh external data.
    Fills {
        /// Destination pointer argument index.
        dst: usize,
    },
    /// The pointee of argument `dst` receives data derived from the
    /// pointee of argument `src`.
    Copies {
        /// Destination pointer argument index.
        dst: usize,
        /// Source pointer argument index.
        src: usize,
    },
}

/// Signature and effects of one library function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LibSig {
    /// Function name as it appears in the import table.
    pub name: &'static str,
    /// Argument types (fixed part; varargs omitted).
    pub arg_types: &'static [VType],
    /// Return type.
    pub ret_type: VType,
    /// Memory side effects.
    pub effects: &'static [WriteEffect],
    /// True when the returned pointer's pointee is fresh external data.
    pub ret_points_to_external: bool,
}

use VType::{CharPtr, Int, Ptr};

/// The built-in signature table, covering every source and sink of the
/// paper's Table I plus the helpers the generated firmware uses.
pub const LIB_SIGS: &[LibSig] = &[
    // ---- sinks (Table I) ----
    LibSig {
        name: "strcpy",
        arg_types: &[CharPtr, CharPtr],
        ret_type: CharPtr,
        effects: &[WriteEffect::Copies { dst: 0, src: 1 }],
        ret_points_to_external: false,
    },
    LibSig {
        name: "strncpy",
        arg_types: &[CharPtr, CharPtr, Int],
        ret_type: CharPtr,
        effects: &[WriteEffect::Copies { dst: 0, src: 1 }],
        ret_points_to_external: false,
    },
    LibSig {
        name: "sprintf",
        arg_types: &[CharPtr, CharPtr],
        ret_type: Int,
        effects: &[WriteEffect::Copies { dst: 0, src: 2 }],
        ret_points_to_external: false,
    },
    LibSig {
        name: "memcpy",
        arg_types: &[Ptr, Ptr, Int],
        ret_type: Ptr,
        effects: &[WriteEffect::Copies { dst: 0, src: 1 }],
        ret_points_to_external: false,
    },
    LibSig {
        name: "strcat",
        arg_types: &[CharPtr, CharPtr],
        ret_type: CharPtr,
        effects: &[WriteEffect::Copies { dst: 0, src: 1 }],
        ret_points_to_external: false,
    },
    LibSig {
        name: "sscanf",
        arg_types: &[CharPtr, CharPtr, Ptr],
        ret_type: Int,
        effects: &[WriteEffect::Copies { dst: 2, src: 0 }],
        ret_points_to_external: false,
    },
    LibSig {
        name: "system",
        arg_types: &[CharPtr],
        ret_type: Int,
        effects: &[],
        ret_points_to_external: false,
    },
    LibSig {
        name: "popen",
        arg_types: &[CharPtr, CharPtr],
        ret_type: Ptr,
        effects: &[],
        ret_points_to_external: false,
    },
    // ---- sources (Table I) ----
    LibSig {
        name: "read",
        arg_types: &[Int, Ptr, Int],
        ret_type: Int,
        effects: &[WriteEffect::Fills { dst: 1 }],
        ret_points_to_external: false,
    },
    LibSig {
        name: "recv",
        arg_types: &[Int, Ptr, Int, Int],
        ret_type: Int,
        effects: &[WriteEffect::Fills { dst: 1 }],
        ret_points_to_external: false,
    },
    LibSig {
        name: "recvfrom",
        arg_types: &[Int, Ptr, Int, Int],
        ret_type: Int,
        effects: &[WriteEffect::Fills { dst: 1 }],
        ret_points_to_external: false,
    },
    LibSig {
        name: "recvmsg",
        arg_types: &[Int, Ptr, Int],
        ret_type: Int,
        effects: &[WriteEffect::Fills { dst: 1 }],
        ret_points_to_external: false,
    },
    LibSig {
        name: "getenv",
        arg_types: &[CharPtr],
        ret_type: CharPtr,
        effects: &[],
        ret_points_to_external: true,
    },
    LibSig {
        name: "fgets",
        arg_types: &[CharPtr, Int, Ptr],
        ret_type: CharPtr,
        effects: &[WriteEffect::Fills { dst: 0 }],
        ret_points_to_external: false,
    },
    LibSig {
        name: "websGetVar",
        arg_types: &[Ptr, CharPtr, CharPtr],
        ret_type: CharPtr,
        effects: &[],
        ret_points_to_external: true,
    },
    LibSig {
        name: "find_var",
        arg_types: &[Ptr, CharPtr],
        ret_type: CharPtr,
        effects: &[],
        ret_points_to_external: true,
    },
    // ---- common helpers ----
    LibSig {
        name: "malloc",
        arg_types: &[Int],
        ret_type: Ptr,
        effects: &[],
        ret_points_to_external: false,
    },
    LibSig {
        name: "free",
        arg_types: &[Ptr],
        ret_type: VType::Unknown,
        effects: &[],
        ret_points_to_external: false,
    },
    LibSig {
        name: "strlen",
        arg_types: &[CharPtr],
        ret_type: Int,
        effects: &[],
        ret_points_to_external: false,
    },
    LibSig {
        name: "strchr",
        arg_types: &[CharPtr, Int],
        ret_type: CharPtr,
        effects: &[],
        ret_points_to_external: false,
    },
    LibSig {
        name: "strcmp",
        arg_types: &[CharPtr, CharPtr],
        ret_type: Int,
        effects: &[],
        ret_points_to_external: false,
    },
    LibSig {
        name: "atoi",
        arg_types: &[CharPtr],
        ret_type: Int,
        effects: &[],
        ret_points_to_external: false,
    },
    LibSig {
        name: "printf",
        arg_types: &[CharPtr],
        ret_type: Int,
        effects: &[],
        ret_points_to_external: false,
    },
    LibSig {
        name: "memset",
        arg_types: &[Ptr, Int, Int],
        ret_type: Ptr,
        effects: &[],
        ret_points_to_external: false,
    },
    LibSig {
        name: "socket",
        arg_types: &[Int, Int, Int],
        ret_type: Int,
        effects: &[],
        ret_points_to_external: false,
    },
    LibSig {
        name: "close",
        arg_types: &[Int],
        ret_type: Int,
        effects: &[],
        ret_points_to_external: false,
    },
    LibSig {
        name: "snprintf",
        arg_types: &[CharPtr, Int, CharPtr],
        ret_type: Int,
        effects: &[WriteEffect::Copies { dst: 0, src: 3 }],
        ret_points_to_external: false,
    },
    LibSig {
        name: "BIO_read",
        arg_types: &[Ptr, Ptr, Int],
        ret_type: Int,
        effects: &[WriteEffect::Fills { dst: 1 }],
        ret_points_to_external: false,
    },
];

/// Looks up the signature of a library function by import name.
pub fn lib_sig(name: &str) -> Option<&'static LibSig> {
    LIB_SIGS.iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_sinks_and_sources_are_present() {
        for name in [
            "strcpy",
            "strncpy",
            "sprintf",
            "memcpy",
            "strcat",
            "sscanf",
            "system",
            "popen",
            "read",
            "recv",
            "recvfrom",
            "recvmsg",
            "getenv",
            "fgets",
            "websGetVar",
            "find_var",
        ] {
            assert!(lib_sig(name).is_some(), "missing Table I entry {name}");
        }
    }

    #[test]
    fn unknown_function_returns_none() {
        assert!(lib_sig("frobnicate").is_none());
    }

    #[test]
    fn copy_sinks_copy_and_sources_fill() {
        let strcpy = lib_sig("strcpy").unwrap();
        assert_eq!(strcpy.effects, &[WriteEffect::Copies { dst: 0, src: 1 }]);
        let recv = lib_sig("recv").unwrap();
        assert_eq!(recv.effects, &[WriteEffect::Fills { dst: 1 }]);
        let getenv = lib_sig("getenv").unwrap();
        assert!(getenv.ret_points_to_external);
        assert!(getenv.effects.is_empty());
    }

    #[test]
    fn effect_indices_are_within_reasonable_bounds() {
        for sig in LIB_SIGS {
            for e in sig.effects {
                let (WriteEffect::Fills { dst } | WriteEffect::Copies { dst, .. }) = e;
                assert!(*dst < 10, "{}: dst index {dst} out of range", sig.name);
                if let WriteEffect::Copies { src, .. } = e {
                    assert!(*src < 10, "{}: src index {src} out of range", sig.name);
                }
            }
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = LIB_SIGS.iter().map(|s| s.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }
}
