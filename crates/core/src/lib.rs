//! DTaint — detecting taint-style vulnerabilities in embedded firmware
//! binaries, reproduced from the DSN 2018 paper.
//!
//! A taint-style vulnerability has three parts: an attacker-controlled
//! **source** (`recv`, `getenv`, …), a **data propagation path**, and a
//! sensitive **sink** (`strcpy`, `memcpy`, `system`, …). This crate wires
//! together the whole pipeline of the paper's Figure 4:
//!
//! 1. lift the binary to IR and build CFGs ([`dtaint_ir`],
//!    [`dtaint_cfg`]),
//! 2. run a per-function static symbolic analysis producing definition
//!    pairs over `deref(base + offset)` variable descriptions
//!    ([`dtaint_symex`]),
//! 3. recover pointer aliases, resolve indirect calls by data-structure
//!    layout similarity, and propagate data flow bottom-up over the call
//!    graph ([`dtaint_dataflow`]),
//! 4. match sinks against sources and check sanitisation constraints
//!    ([`taint`], [`sinks`]), yielding an [`AnalysisReport`].
//!
//! # Examples
//!
//! Detect a command injection (`getenv → system`, the shape of
//! CVE-2015-2051) in a freshly assembled binary:
//!
//! ```
//! use dtaint_core::{Dtaint, VulnKindRepr};
//! use dtaint_fwbin::asm::Assembler;
//! use dtaint_fwbin::link::BinaryBuilder;
//! use dtaint_fwbin::{Arch, Reg};
//!
//! let mut f = Assembler::new(Arch::Arm32e);
//! f.load_addr(Reg(0), "soap_action");
//! f.call("getenv");
//! f.call("system"); // system(getenv("SOAPAction")) — unchecked
//! f.ret();
//!
//! let mut b = BinaryBuilder::new(Arch::Arm32e);
//! b.add_function("cgi_handler", f);
//! b.add_import("getenv");
//! b.add_import("system");
//! b.add_cstring("soap_action", "SOAPAction");
//! let bin = b.link()?;
//!
//! let report = Dtaint::new().analyze(&bin, "cgibin")?;
//! assert_eq!(report.vulnerabilities(), 1);
//! let f = &report.vulnerable_paths()[0];
//! assert_eq!(f.kind, VulnKindRepr::CommandInjection);
//! assert_eq!(f.sources[0].name, "getenv");
//! # Ok::<(), dtaint_fwbin::Error>(())
//! ```

pub mod evidence;
pub mod report;
pub mod sarif;
pub mod score;
pub mod sinks;
pub mod taint;

mod pipeline;

pub use dtaint_dataflow::{
    AliasConfig, AliasMode, CacheFormat, CacheLoadReport, CacheRef, CacheTotals, ScanStats,
    SummaryCache,
};
pub use evidence::{EvidenceStep, SanitizeVerdict};
pub use pipeline::{Dtaint, DtaintConfig};
pub use report::{
    AnalysisReport, Finding, FnCost, FunctionOutcome, FunctionRecord, SourceRef, StageTimings,
    TelemetrySection, VulnKindRepr,
};
pub use sarif::to_sarif;
pub use score::{score, GroundTruthFlow, Score};
pub use sinks::{
    default_sink_names, default_sources, sink_spec, SinkSpec, TaintedVar, VulnKind, CMD_SEPARATORS,
    SINK_SPECS, SOURCE_NAMES,
};
pub use taint::{BoundsMode, TaintOutcome};

#[cfg(test)]
mod tests {
    use super::*;
    use dtaint_fwbin::arm::{ArmIns, Cond};
    use dtaint_fwbin::asm::Assembler;
    use dtaint_fwbin::link::BinaryBuilder;
    use dtaint_fwbin::mips::MipsIns;
    use dtaint_fwbin::{Arch, Binary, Reg};

    fn analyze(bin: &Binary) -> AnalysisReport {
        Dtaint::new().analyze(bin, "test").unwrap()
    }

    /// recv → memcpy with no length check: one buffer-overflow vuln.
    #[test]
    fn unchecked_memcpy_length_is_vulnerable() {
        let arch = Arch::Arm32e;
        let mut f = Assembler::new(arch);
        f.arm(ArmIns::SubI { rd: Reg::SP, rn: Reg::SP, imm: 0x200 });
        f.arm(ArmIns::MovI { rd: Reg(0), imm: 0 });
        f.arm(ArmIns::AddI { rd: Reg(1), rn: Reg::SP, imm: 0x100 });
        f.arm(ArmIns::MovI { rd: Reg(2), imm: 0x100 });
        f.arm(ArmIns::MovI { rd: Reg(3), imm: 0 });
        f.call("recv");
        f.arm(ArmIns::MovR { rd: Reg(2), rm: Reg(0) }); // n = recv ret
        f.arm(ArmIns::AddI { rd: Reg(1), rn: Reg::SP, imm: 0x100 });
        f.arm(ArmIns::AddI { rd: Reg(0), rn: Reg::SP, imm: 0x20 });
        f.call("memcpy");
        f.arm(ArmIns::AddI { rd: Reg::SP, rn: Reg::SP, imm: 0x200 });
        f.ret();
        let mut b = BinaryBuilder::new(arch);
        b.add_function("handle", f);
        b.add_import("recv");
        b.add_import("memcpy");
        let bin = b.link().unwrap();

        let r = analyze(&bin);
        assert_eq!(r.vulnerabilities(), 1);
        let v = &r.vulnerable_paths()[0];
        assert_eq!(v.kind, VulnKindRepr::BufferOverflow);
        assert_eq!(v.sink, "memcpy");
        assert_eq!(v.sources[0].name, "recv");
        // Every finding carries a typed provenance chain: at least the
        // source observation, terminated by the sanitization verdict.
        assert!(!v.fingerprint.is_empty());
        assert!(v.evidence.iter().any(|s| matches!(s, EvidenceStep::Source { .. })));
        assert!(matches!(
            v.evidence.last(),
            Some(EvidenceStep::Verdict(SanitizeVerdict::UncheckedFlow))
        ));
    }

    /// The same flow guarded by `if (n < 64)`: sanitized, no vuln.
    #[test]
    fn bounded_memcpy_length_is_sanitized() {
        let arch = Arch::Arm32e;
        let mut f = Assembler::new(arch);
        f.arm(ArmIns::SubI { rd: Reg::SP, rn: Reg::SP, imm: 0x200 });
        f.arm(ArmIns::MovI { rd: Reg(0), imm: 0 });
        f.arm(ArmIns::AddI { rd: Reg(1), rn: Reg::SP, imm: 0x100 });
        f.arm(ArmIns::MovI { rd: Reg(2), imm: 0x100 });
        f.arm(ArmIns::MovI { rd: Reg(3), imm: 0 });
        f.call("recv");
        f.arm(ArmIns::CmpI { rn: Reg(0), imm: 64 });
        f.arm_b(Cond::Ge, "out");
        f.arm(ArmIns::MovR { rd: Reg(2), rm: Reg(0) });
        f.arm(ArmIns::AddI { rd: Reg(1), rn: Reg::SP, imm: 0x100 });
        f.arm(ArmIns::AddI { rd: Reg(0), rn: Reg::SP, imm: 0x20 });
        f.call("memcpy");
        f.label("out");
        f.arm(ArmIns::AddI { rd: Reg::SP, rn: Reg::SP, imm: 0x200 });
        f.ret();
        let mut b = BinaryBuilder::new(arch);
        b.add_function("handle", f);
        b.add_import("recv");
        b.add_import("memcpy");
        let bin = b.link().unwrap();

        let r = analyze(&bin);
        assert_eq!(r.vulnerabilities(), 0, "guarded path is not a vulnerability");
        // The path is still found, but judged sanitized — by a typed
        // constant-bound verdict carrying the guard's numbers.
        let sane = r.findings.iter().find(|f| f.sanitized()).expect("sanitized finding");
        assert!(
            matches!(sane.verdict, SanitizeVerdict::ConstGuard { bound: 64, fits: true, .. }),
            "expected a const-guard verdict, got {:?}",
            sane.verdict
        );
    }

    /// getenv → strcpy: the Table IV CVE-2016-5681 shape.
    #[test]
    fn getenv_strcpy_overflow_detected() {
        let arch = Arch::Arm32e;
        let mut f = Assembler::new(arch);
        f.arm(ArmIns::SubI { rd: Reg::SP, rn: Reg::SP, imm: 0x100 });
        f.load_addr(Reg(0), "cookie_name");
        f.call("getenv");
        f.arm(ArmIns::MovR { rd: Reg(1), rm: Reg(0) }); // src = env value
        f.arm(ArmIns::AddI { rd: Reg(0), rn: Reg::SP, imm: 8 }); // dst: stack
        f.call("strcpy");
        f.arm(ArmIns::AddI { rd: Reg::SP, rn: Reg::SP, imm: 0x100 });
        f.ret();
        let mut b = BinaryBuilder::new(arch);
        b.add_function("session", f);
        b.add_import("getenv");
        b.add_import("strcpy");
        b.add_cstring("cookie_name", "uid");
        let bin = b.link().unwrap();

        let r = analyze(&bin);
        assert_eq!(r.vulnerabilities(), 1);
        let v = &r.vulnerable_paths()[0];
        assert_eq!(v.sink, "strcpy");
        assert_eq!(v.sources[0].name, "getenv");
    }

    /// Command injection guarded by a semicolon check is sanitized.
    #[test]
    fn semicolon_check_sanitizes_command_injection() {
        let arch = Arch::Arm32e;
        let mut f = Assembler::new(arch);
        f.load_addr(Reg(0), "env_name");
        f.call("getenv");
        f.arm(ArmIns::MovR { rd: Reg(4), rm: Reg(0) });
        // if (cmd[0] == ';') return;
        f.arm(ArmIns::Ldrb { rt: Reg(5), rn: Reg(4), off: 0 });
        f.arm(ArmIns::CmpI { rn: Reg(5), imm: b';' as i16 });
        f.arm_b(Cond::Eq, "reject");
        f.arm(ArmIns::MovR { rd: Reg(0), rm: Reg(4) });
        f.call("system");
        f.label("reject");
        f.ret();
        let mut b = BinaryBuilder::new(arch);
        b.add_function("runner", f);
        b.add_import("getenv");
        b.add_import("system");
        b.add_cstring("env_name", "CMD");
        let bin = b.link().unwrap();

        let r = analyze(&bin);
        assert_eq!(r.vulnerabilities(), 0);
        let sane = r
            .findings
            .iter()
            .find(|f| f.sanitized() && f.kind == VulnKindRepr::CommandInjection)
            .expect("the guarded injection path must be found and judged sanitized");
        assert!(
            matches!(&sane.verdict, SanitizeVerdict::SeparatorCheck { chars } if chars.contains(';')),
            "expected a separator-check verdict, got {:?}",
            sane.verdict
        );
    }

    /// A MIPS websGetVar → system flow (the CVE-2017-6077 shape).
    #[test]
    fn mips_websgetvar_system_injection() {
        let arch = Arch::Mips32e;
        let mut f = Assembler::new(arch);
        f.mips(MipsIns::Addiu { rt: Reg(29), rs: Reg(29), imm: -32 });
        f.load_addr(Reg(5), "param"); // name
        f.load_addr(Reg(6), "empty"); // default
        f.call("websGetVar"); // a0 = wp (arg0 passthrough)
        f.mips(MipsIns::Or { rd: Reg(4), rs: Reg(2), rt: Reg::ZERO });
        f.call("system");
        f.mips(MipsIns::Addiu { rt: Reg(29), rs: Reg(29), imm: 32 });
        f.ret();
        let mut b = BinaryBuilder::new(arch);
        b.add_function("ping_handler", f);
        b.add_import("websGetVar");
        b.add_import("system");
        b.add_cstring("param", "ping_IPAddr");
        b.add_cstring("empty", "");
        let bin = b.link().unwrap();

        let r = analyze(&bin);
        assert_eq!(r.vulnerabilities(), 1);
        let v = &r.vulnerable_paths()[0];
        assert_eq!(v.kind, VulnKindRepr::CommandInjection);
        assert_eq!(v.sources[0].name, "websGetVar");
    }

    /// Interprocedural: source in caller, sink in callee.
    #[test]
    fn cross_function_flow_detected() {
        let arch = Arch::Arm32e;
        let mut do_copy = Assembler::new(arch);
        do_copy.arm(ArmIns::SubI { rd: Reg::SP, rn: Reg::SP, imm: 0x40 });
        do_copy.arm(ArmIns::MovR { rd: Reg(1), rm: Reg(0) });
        do_copy.arm(ArmIns::AddI { rd: Reg(0), rn: Reg::SP, imm: 4 });
        do_copy.call("strcpy");
        do_copy.arm(ArmIns::AddI { rd: Reg::SP, rn: Reg::SP, imm: 0x40 });
        do_copy.ret();
        let mut main = Assembler::new(arch);
        main.load_addr(Reg(0), "key");
        main.call("getenv");
        main.call("do_copy");
        main.ret();
        let mut b = BinaryBuilder::new(arch);
        b.add_function("main", main);
        b.add_function("do_copy", do_copy);
        b.add_import("getenv");
        b.add_import("strcpy");
        b.add_cstring("key", "QUERY_STRING");
        let bin = b.link().unwrap();

        let r = analyze(&bin);
        assert_eq!(r.vulnerabilities(), 1);
        let v = &r.vulnerable_paths()[0];
        assert_eq!(v.sink_fn, "do_copy");
        assert_eq!(v.observed_in, "main");
        assert_eq!(v.call_chain.len(), 1);
        // The interprocedural hop shows up as a typed callsite
        // substitution naming both ends.
        assert!(
            v.evidence.iter().any(|s| matches!(
                s,
                EvidenceStep::CallsiteSubstitution { caller, callee, .. }
                    if caller == "main" && callee == "do_copy"
            )),
            "missing callsite evidence: {:?}",
            v.evidence
        );
        assert!(v.to_string().contains("[chain: main →("), "{v}");
    }

    /// No sources at all → no findings, even with sinks present.
    #[test]
    fn sink_without_source_is_silent() {
        let arch = Arch::Arm32e;
        let mut f = Assembler::new(arch);
        f.load_addr(Reg(1), "lit");
        f.arm(ArmIns::AddI { rd: Reg(0), rn: Reg::SP, imm: -64 });
        f.call("strcpy"); // copies a constant string
        f.ret();
        let mut b = BinaryBuilder::new(arch);
        b.add_function("f", f);
        b.add_import("strcpy");
        b.add_cstring("lit", "hello");
        let bin = b.link().unwrap();
        let r = analyze(&bin);
        assert!(r.findings.is_empty());
        assert_eq!(r.vulnerabilities(), 0);
        assert!(r.sinks_count >= 1, "the sink itself is still counted");
    }

    #[test]
    fn report_counts_match_structure() {
        let arch = Arch::Mips32e;
        let mut f = Assembler::new(arch);
        f.ret();
        let mut g = Assembler::new(arch);
        g.call("f");
        g.ret();
        let mut b = BinaryBuilder::new(arch);
        b.add_function("f", f);
        b.add_function("g", g);
        let bin = b.link().unwrap();
        let r = analyze(&bin);
        assert_eq!(r.functions, 2);
        assert_eq!(r.call_graph_edges, 1);
        assert_eq!(r.arch, "mips32e");
        assert!(r.timings.total() > std::time::Duration::ZERO);
    }

    #[test]
    fn function_filter_restricts_scope() {
        let arch = Arch::Arm32e;
        let mut vuln = Assembler::new(arch);
        vuln.load_addr(Reg(0), "name");
        vuln.call("getenv");
        vuln.call("system");
        vuln.ret();
        let mut other = Assembler::new(arch);
        other.ret();
        let mut b = BinaryBuilder::new(arch);
        b.add_function("http_cgi", vuln);
        b.add_function("boring", other);
        b.add_import("getenv");
        b.add_import("system");
        b.add_cstring("name", "X");
        let bin = b.link().unwrap();

        let config =
            DtaintConfig { function_filter: Some(vec!["boring".into()]), ..Default::default() };
        let r = Dtaint::with_config(config).analyze(&bin, "t").unwrap();
        assert_eq!(r.functions, 1);
        assert_eq!(r.vulnerabilities(), 0);

        let config =
            DtaintConfig { function_filter: Some(vec!["http".into()]), ..Default::default() };
        let r = Dtaint::with_config(config).analyze(&bin, "t").unwrap();
        assert_eq!(r.vulnerabilities(), 1);
    }
}
