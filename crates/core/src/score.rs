//! Scoring analysis reports against planted ground truth.
//!
//! The paper validated findings by hand on real devices; generated
//! firmware carries machine-readable ground truth instead, so precision
//! and recall are computed, not estimated. A *plant* is matched by its
//! `(source, sink)` pair; a reported vulnerable sink that matches no
//! vulnerable plant is a false positive, and a guarded twin reported as
//! vulnerable is too.

use crate::report::AnalysisReport;
use serde::{Deserialize, Serialize};

/// Minimal view of one planted flow (mirrors
/// `dtaint_fwgen::PlantedVuln` without the crate dependency).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroundTruthFlow {
    /// Plant identifier.
    pub id: String,
    /// Source import name.
    pub source: String,
    /// Sink name (`loop-copy` for the structural sink).
    pub sink: String,
    /// True for guarded twins (must NOT be reported).
    pub sanitized: bool,
}

/// Precision/recall outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Score {
    /// Vulnerable plants detected.
    pub true_positives: usize,
    /// Vulnerable plants missed.
    pub false_negatives: usize,
    /// Reported vulnerabilities matching no vulnerable plant (includes
    /// guarded twins reported as vulnerable).
    pub false_positives: usize,
    /// Ids of missed plants.
    pub missed: Vec<String>,
}

impl Score {
    /// `tp / (tp + fp)`; 1.0 when nothing was reported.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// `tp / (tp + fn)`; 1.0 when nothing was planted.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// True when every plant is found and nothing else is reported.
    pub fn is_perfect(&self) -> bool {
        self.false_negatives == 0 && self.false_positives == 0
    }
}

/// Scores a report against ground truth.
///
/// Matching is by `(source, sink)` pair: a vulnerable plant counts as
/// detected when some vulnerable finding carries its sink name and one
/// of its sources; each *distinct vulnerable sink site* that matches no
/// vulnerable plant pair counts as one false positive.
pub fn score(report: &AnalysisReport, truth: &[GroundTruthFlow]) -> Score {
    let vulnerable_plants: Vec<&GroundTruthFlow> = truth.iter().filter(|g| !g.sanitized).collect();
    let findings = report.vulnerable_paths();

    let mut true_positives = 0;
    let mut missed = Vec::new();
    for g in &vulnerable_plants {
        let hit = findings
            .iter()
            .any(|f| f.sink == g.sink && f.sources.iter().any(|s| s.name == g.source));
        if hit {
            true_positives += 1;
        } else {
            missed.push(g.id.clone());
        }
    }

    // Distinct vulnerable sink sites whose (source, sink) matches no
    // vulnerable plant.
    let mut fp_sites = std::collections::BTreeSet::new();
    for f in &findings {
        let matches_plant = vulnerable_plants
            .iter()
            .any(|g| f.sink == g.sink && f.sources.iter().any(|s| s.name == g.source));
        if !matches_plant {
            fp_sites.insert(f.sink_ins);
        }
    }

    Score { true_positives, false_negatives: missed.len(), false_positives: fp_sites.len(), missed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{Finding, SourceRef, StageTimings, VulnKindRepr};

    fn finding(sink: &str, source: &str, sink_ins: u32, sanitized: bool) -> Finding {
        Finding {
            kind: VulnKindRepr::BufferOverflow,
            sink: sink.into(),
            sink_ins,
            sink_fn: "f".into(),
            observed_in: "main".into(),
            sources: vec![SourceRef { name: source.into(), ins_addr: 1 }],
            call_chain: vec![],
            tainted_expr: String::new(),
            fingerprint: String::new(),
            verdict: if sanitized {
                crate::evidence::SanitizeVerdict::ConstGuard {
                    bound: 64,
                    capacity: None,
                    fits: true,
                }
            } else {
                crate::evidence::SanitizeVerdict::UncheckedFlow
            },
            evidence: vec![],
        }
    }

    fn report(findings: Vec<Finding>) -> AnalysisReport {
        AnalysisReport {
            binary_name: "t".into(),
            arch: "arm32e".into(),
            functions: 1,
            blocks: 1,
            call_graph_edges: 0,
            sinks_count: 1,
            resolved_indirect: 0,
            findings,
            infeasible_suppressed: 0,
            timings: StageTimings::default(),
            functions_analyzed: 1,
            functions_skipped: 0,
            functions_retried: 0,
            loop_copy_sinks: 0,
            skipped_functions: vec![],
            telemetry: Default::default(),
        }
    }

    fn plant(id: &str, source: &str, sink: &str, sanitized: bool) -> GroundTruthFlow {
        GroundTruthFlow { id: id.into(), source: source.into(), sink: sink.into(), sanitized }
    }

    #[test]
    fn perfect_detection_scores_perfect() {
        let r = report(vec![finding("memcpy", "recv", 0x10, false)]);
        let t = vec![plant("a", "recv", "memcpy", false), plant("b", "recv", "memcpy", true)];
        let s = score(&r, &t);
        assert!(s.is_perfect());
        assert_eq!(s.precision(), 1.0);
        assert_eq!(s.recall(), 1.0);
    }

    #[test]
    fn missed_plant_is_a_false_negative() {
        let r = report(vec![]);
        let t = vec![plant("a", "recv", "memcpy", false)];
        let s = score(&r, &t);
        assert_eq!(s.false_negatives, 1);
        assert_eq!(s.missed, vec!["a".to_string()]);
        assert_eq!(s.recall(), 0.0);
        assert_eq!(s.precision(), 1.0, "nothing reported → vacuous precision");
    }

    #[test]
    fn unmatched_report_is_a_false_positive() {
        let r = report(vec![
            finding("system", "getenv", 0x20, false),
            finding("system", "getenv", 0x20, false), // same site twice
        ]);
        let t = vec![plant("a", "recv", "memcpy", false)];
        let s = score(&r, &t);
        assert_eq!(s.false_positives, 1, "dedup by sink site");
        assert_eq!(s.false_negatives, 1);
        assert_eq!(s.precision(), 0.0);
    }

    #[test]
    fn sanitized_findings_do_not_count_either_way() {
        let r = report(vec![finding("memcpy", "recv", 0x10, true)]);
        let t = vec![plant("a", "recv", "memcpy", false)];
        let s = score(&r, &t);
        assert_eq!(s.true_positives, 0);
        assert_eq!(s.false_positives, 0);
        assert_eq!(s.false_negatives, 1);
    }
}
