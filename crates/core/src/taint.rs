//! Taint judgement: turning sink observations into findings.
//!
//! For every `(source, path, sink)` tuple the data-flow stage surfaced,
//! this module decides (§IV):
//!
//! 1. **Is the sink's sensitive variable tainted?** The variable (chosen
//!    per sink by [`TaintedVar`]) must carry data originating at an
//!    attacker-controlled source. Taint is tracked at two granularities,
//!    matching the paper's buffer semantics:
//!    * *value* taint — the expression contains a `ret_{cs}`/`out_{cs}`
//!      symbol of a source call;
//!    * *object* taint — the expression reads memory (`deref(base+k)`)
//!      from a buffer `base` that a definition pair shows was filled
//!      with source data at any offset (a `recv` into `buf` taints
//!      `buf[1]`, `buf[2]`, … — the Heartbleed `n2s` pattern).
//! 2. **Is the path sanitised?** Buffer overflows are guarded by a
//!    bounding constraint on the tainted data (`n < 64`, `n < y`);
//!    command injections by a comparison of a tainted byte against a
//!    shell separator ([`CMD_SEPARATORS`]). An unguarded tainted path
//!    is a vulnerability.
//!
//! The judgement of bounding guards comes in three [`BoundsMode`]s: the
//! paper's syntactic check, the strict-bounds extension (constant guards
//! must fit the destination), and the interval extension (guards are
//! evaluated over an interval abstract domain, so symbolic guards are
//! judged too and contradictory paths are suppressed).

use crate::evidence::{self, EvidenceStep, SanitizeVerdict};
use crate::report::{Finding, SourceRef};
use crate::sinks::{sink_spec, TaintedVar, VulnKind, CMD_SEPARATORS};
use dtaint_absint::IntervalAnalysis;
use dtaint_dataflow::{FinalSummary, ProgramDataflow, SinkKind, SinkObservation, TraceStep};
use dtaint_fwbin::{Binary, SymbolKind};
use dtaint_symex::pool::{CmpOp, SymNode};
use dtaint_symex::{ExprId, ExprPool};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::time::{Duration, Instant};

/// ASCII code of the classic command separator (the first entry of
/// [`CMD_SEPARATORS`], kept for backward compatibility).
pub const SEMICOLON: i64 = b';' as i64;

/// How bounding guards on buffer-overflow paths are judged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BoundsMode {
    /// The paper's syntactic judgement: any bounding constraint on the
    /// tainted data sanitises the copy.
    #[default]
    Paper,
    /// Constant guards must fit the destination's stack capacity;
    /// symbolic guards and non-stack destinations fall back to the
    /// syntactic judgement.
    Strict,
    /// Interval abstract interpretation: a guard sanitises only when the
    /// inferred range of the copied length provably fits the
    /// destination's capacity (stack *or* named writable global), and
    /// observations whose path constraints are contradictory are
    /// suppressed outright. Subsumes [`BoundsMode::Strict`].
    Interval,
}

/// The complete result of one taint-judgement pass.
#[derive(Debug, Clone, Default)]
pub struct TaintOutcome {
    /// Every judged `(source, path, sink)` tuple.
    pub findings: Vec<Finding>,
    /// Tainted observations dropped because their path constraints are
    /// contradictory ([`BoundsMode::Interval`] only; zero otherwise).
    pub infeasible_suppressed: usize,
    /// CPU time spent in the interval solver.
    pub absint: Duration,
    /// Interval-solver passes run across all observations — a
    /// deterministic step count (unlike `absint`, which is wall-clock).
    pub absint_passes: u64,
    /// Observing functions whose judgement panicked and was caught —
    /// their sink observations yielded no findings. Sorted by address.
    pub failed_holders: Vec<u32>,
    /// Candidate findings dropped by cross-holder deduplication (same
    /// sink instruction, call chain, source set and sink name observed
    /// from more than one holder).
    pub duplicates_suppressed: usize,
}

/// Object-granular taint knowledge for one observing function.
struct TaintIndex<'a> {
    df: &'a ProgramDataflow,
    sources: &'a HashSet<String>,
    /// Buffer base → sources whose data was stored into the buffer.
    tainted_bases: HashMap<ExprId, BTreeSet<SourceRef>>,
}

impl<'a> TaintIndex<'a> {
    fn build(df: &'a ProgramDataflow, holder: &FinalSummary, sources: &'a HashSet<String>) -> Self {
        let mut tainted_bases: HashMap<ExprId, BTreeSet<SourceRef>> = HashMap::new();
        for dp in &holder.summary.def_pairs {
            let mut atoms = BTreeSet::new();
            direct_atoms(df, sources, dp.u, &mut atoms);
            if atoms.is_empty() {
                continue;
            }
            if let SymNode::Deref { addr, .. } = df.pool.node(dp.d) {
                let (base, _) = df.pool.base_offset(addr);
                tainted_bases.entry(base).or_default().extend(atoms);
            }
        }
        // Alias closure: a memory name holding a pointer *to* a tainted
        // buffer is itself a tainted base — reading through
        // `deref(ctx + 0x10)` reaches the buffer the field points at.
        for _ in 0..8 {
            let mut changed = false;
            for dp in &holder.summary.def_pairs {
                let (ubase, _) = df.pool.base_offset(dp.u);
                let Some(atoms) = tainted_bases.get(&ubase).cloned() else { continue };
                if matches!(df.pool.node(dp.d), SymNode::Deref { .. }) {
                    let entry = tainted_bases.entry(dp.d).or_default();
                    let before = entry.len();
                    entry.extend(atoms);
                    changed |= entry.len() != before;
                }
            }
            if !changed {
                break;
            }
        }
        TaintIndex { df, sources, tainted_bases }
    }

    /// All source references carried by an expression (value taint plus
    /// object taint through memory reads).
    fn atoms_in(&self, e: ExprId) -> BTreeSet<SourceRef> {
        let mut out = BTreeSet::new();
        direct_atoms(self.df, self.sources, e, &mut out);
        // Object taint: any deref whose base was filled with source data.
        self.df.pool.any_node(e, &mut |n| {
            if let SymNode::Deref { addr, .. } = n {
                let (base, _) = self.df.pool.base_offset(addr);
                if let Some(atoms) = self.tainted_bases.get(&base) {
                    out.extend(atoms.iter().cloned());
                }
            }
            false // keep walking
        });
        out
    }

    /// Taint of the *pointee* of a pointer-valued expression: the buffer
    /// the pointer designates, resolved through the definition pairs.
    fn pointee_atoms(&self, holder_fn: u32, ptr: ExprId) -> BTreeSet<SourceRef> {
        let mut out = BTreeSet::new();
        // The pointer value itself may be a source (getenv's return).
        out.extend(self.atoms_in(ptr));
        // Values the pointer resolves to, plus what memory holds there.
        let mut vals = vec![ptr];
        for v in self.df.pointee_values(holder_fn, ptr) {
            out.extend(self.atoms_in(v));
            if !vals.contains(&v) {
                vals.push(v);
            }
        }
        // Object taint at the pointed-to buffer, at any offset.
        for v in vals {
            let (base, _) = self.df.pool.base_offset(v);
            if let Some(atoms) = self.tainted_bases.get(&base) {
                out.extend(atoms.iter().cloned());
            }
        }
        out
    }
}

fn direct_atoms(
    df: &ProgramDataflow,
    sources: &HashSet<String>,
    e: ExprId,
    out: &mut BTreeSet<SourceRef>,
) {
    df.pool.any_node(e, &mut |n| {
        let cs = match n {
            SymNode::RetSym(cs) => Some(cs),
            SymNode::CallOut { callsite, .. } => Some(callsite),
            _ => None,
        };
        if let Some(cs) = cs {
            if let Some(name) = df.import_sites.get(&cs) {
                if sources.contains(name) {
                    out.insert(SourceRef { name: name.clone(), ins_addr: cs });
                }
            }
        }
        false // keep walking
    });
}

/// Runs the taint judgement over every sink observation.
///
/// `sources` is the set of import names treated as attacker-controlled
/// inputs; `fn_names` maps function entry addresses to names for
/// reporting.
pub fn detect(
    df: &ProgramDataflow,
    sources: &HashSet<String>,
    fn_names: &HashMap<u32, String>,
) -> Vec<Finding> {
    detect_full(df, None, sources, fn_names, BoundsMode::Paper).findings
}

/// [`detect`] with the *strict bounds* extension: a bounding constraint
/// sanitises a copy only when its constant actually fits the destination
/// buffer's stack capacity — `if (n < 1024) memcpy(dst256, src, n)` stays
/// a vulnerability. The capacity of a stack destination `sp0 - K` is the
/// distance to the saved-return slot (`K - 8`); non-stack destinations
/// fall back to the paper's syntactic check.
pub fn detect_with(
    df: &ProgramDataflow,
    sources: &HashSet<String>,
    fn_names: &HashMap<u32, String>,
    strict_bounds: bool,
) -> Vec<Finding> {
    let mode = if strict_bounds { BoundsMode::Strict } else { BoundsMode::Paper };
    detect_full(df, None, sources, fn_names, mode).findings
}

/// The full judgement with an explicit [`BoundsMode`] and, optionally,
/// the binary (for global-destination capacities in interval mode).
///
/// In [`BoundsMode::Interval`] every holder function gets one
/// [`IntervalAnalysis`] seeded from its definition pairs; each tainted
/// observation clones it, assumes the observation's path constraints,
/// and solves. A contradictory path suppresses the observation; an
/// otherwise-guarded copy is sanitised only when the solved range of the
/// length fits the destination capacity.
pub fn detect_full(
    df: &ProgramDataflow,
    bin: Option<&Binary>,
    sources: &HashSet<String>,
    fn_names: &HashMap<u32, String>,
    mode: BoundsMode,
) -> TaintOutcome {
    let mut findings = Vec::new();
    let mut infeasible_suppressed = 0usize;
    let mut duplicates_suppressed = 0usize;
    let mut absint = Duration::ZERO;
    let mut absint_passes = 0u64;
    let mut seen: HashSet<(u32, Vec<u32>, Vec<SourceRef>, String)> = HashSet::new();
    let mut failed_holders: Vec<u32> = Vec::new();
    let mut holders: Vec<&FinalSummary> = df.finals.values().collect();
    holders.sort_by_key(|f| f.summary.addr);
    // Caller/callee names per call instruction, shared by every
    // holder's evidence assembly.
    let callsites = df.callsite_index();
    for holder in holders {
        // Judge each observing function behind a panic boundary: the
        // pool is only read here, so a caught panic loses that holder's
        // findings and nothing else. Cross-holder deduplication stays
        // out here, applied in the same holder order as a clean run.
        let judged = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            judge_holder(df, bin, sources, fn_names, mode, holder, &callsites)
        }));
        let Ok(judged) = judged else {
            failed_holders.push(holder.summary.addr);
            continue;
        };
        infeasible_suppressed += judged.suppressed;
        absint += judged.absint;
        absint_passes += judged.absint_passes;
        for f in judged.candidates {
            let key = (f.sink_ins, f.call_chain.clone(), f.sources.clone(), f.sink.clone());
            if seen.insert(key) {
                findings.push(f);
            } else {
                duplicates_suppressed += 1;
            }
        }
    }
    crate::report::sort_findings(&mut findings);
    TaintOutcome {
        findings,
        infeasible_suppressed,
        absint,
        absint_passes,
        failed_holders,
        duplicates_suppressed,
    }
}

/// Per-holder result of [`judge_holder`], before cross-holder
/// deduplication.
struct HolderJudgement {
    candidates: Vec<Finding>,
    suppressed: usize,
    absint: Duration,
    absint_passes: u64,
}

/// Judges every sink observation of one observing function. Pure reader
/// of the data-flow result — it never mutates the pool — so it can run
/// behind `catch_unwind` without poisoning shared state.
fn judge_holder(
    df: &ProgramDataflow,
    bin: Option<&Binary>,
    sources: &HashSet<String>,
    fn_names: &HashMap<u32, String>,
    mode: BoundsMode,
    holder: &FinalSummary,
    callsites: &HashMap<u32, (String, String)>,
) -> HolderJudgement {
    let mut findings = Vec::new();
    let mut infeasible_suppressed = 0usize;
    let mut absint = Duration::ZERO;
    let mut absint_passes = 0u64;
    {
        // One object-taint index per observing function, shared by all
        // of its sink observations.
        let index = TaintIndex::build(df, holder, sources);
        // Interval mode: one definition-seeded base environment per
        // holder, cloned and specialised per observation below.
        let base_absint = (mode == BoundsMode::Interval).then(|| {
            let mut a = IntervalAnalysis::new(&df.pool);
            for dp in &holder.summary.def_pairs {
                a.seed_def(dp.d, dp.u);
            }
            a
        });
        for obs in &holder.sinks {
            let (kind, sink_name) = match &obs.kind {
                SinkKind::Import(name) => {
                    let Some(spec) = sink_spec(name) else { continue };
                    (spec.kind, name.clone())
                }
                SinkKind::LoopCopy => (VulnKind::BufferOverflow, "loop-copy".to_owned()),
            };

            // 1. Taint on the sink's sensitive variable.
            let mut source_refs: BTreeSet<SourceRef> = BTreeSet::new();
            let mut tainted_rendered: Option<ExprId> = None;
            let mut note_taint = |e: ExprId, atoms: BTreeSet<SourceRef>| {
                if !atoms.is_empty() {
                    source_refs.extend(atoms);
                    tainted_rendered.get_or_insert(e);
                }
            };
            match &obs.kind {
                SinkKind::LoopCopy => {
                    if let Some(&value) = obs.args.get(1) {
                        note_taint(value, index.atoms_in(value));
                    }
                }
                SinkKind::Import(name) => {
                    let spec = sink_spec(name).expect("checked above");
                    match spec.tainted {
                        TaintedVar::Arg(i) => {
                            if let Some(&a) = obs.args.get(i) {
                                note_taint(a, index.atoms_in(a));
                            }
                        }
                        TaintedVar::Pointee(i) => {
                            if let Some(&p) = obs.args.get(i) {
                                note_taint(p, index.pointee_atoms(holder.summary.addr, p));
                            }
                        }
                        TaintedVar::PointeesFrom(i) => {
                            for &p in obs.args.iter().skip(i) {
                                note_taint(p, index.pointee_atoms(holder.summary.addr, p));
                            }
                        }
                    }
                }
            }
            if source_refs.is_empty() {
                continue;
            }

            // 2. Interval feasibility and per-path ranges. Infeasibility
            // comes from the path constraints alone (never from the
            // flow-insensitive definition seeds): a contradiction there
            // means no input reaches the sink with these guards taken.
            let mut ranges: Option<IntervalAnalysis> = None;
            if let Some(base) = &base_absint {
                let t = Instant::now();
                let feasible = dtaint_absint::path_feasible(&df.pool, &obs.constraints);
                if feasible {
                    let mut a = base.clone();
                    a.assume_all(&obs.constraints);
                    a.solve();
                    absint_passes += u64::from(a.passes_run());
                    ranges = Some(a);
                }
                absint += t.elapsed();
                if !feasible {
                    infeasible_suppressed += 1;
                    continue;
                }
            }

            // 3. Sanitisation.
            let capacity = match mode {
                BoundsMode::Paper => None,
                // Strict mode keeps its documented stack-only scope;
                // only interval mode rates named global destinations.
                BoundsMode::Strict => obs.args.first().and_then(|&d| stack_capacity(&df.pool, d)),
                BoundsMode::Interval => dest_capacity(df, bin, obs),
            };
            let verdict = match kind {
                VulnKind::BufferOverflow => match &obs.kind {
                    SinkKind::LoopCopy => loop_copy_verdict(df, obs, capacity, mode),
                    SinkKind::Import(name) => {
                        let spec = sink_spec(name).expect("checked above");
                        match (&ranges, spec.tainted) {
                            (Some(a), TaintedVar::Arg(i)) => obs
                                .args
                                .get(i)
                                .map(|&len| interval_upper_bound(&index, a, obs, len, capacity))
                                .unwrap_or_default(),
                            _ => upper_bound_verdict(&index, obs, capacity),
                        }
                    }
                },
                VulnKind::CommandInjection => separator_verdict(df, &index, obs),
            };

            let srcs: Vec<SourceRef> = source_refs.into_iter().collect();
            let unknown = "<unknown>".to_owned();
            let observed_name = fn_names.get(&holder.summary.addr).unwrap_or(&unknown).clone();
            let sink_fn_name = fn_names.get(&obs.sink_fn).unwrap_or(&unknown).clone();

            // Typed provenance chain, source-first: the backward DDG
            // walk, then the transformations that carried the
            // observation (alias rewrites, callsite substitutions), the
            // interval refinement when it ran, and the verdict last.
            let mut chain: Vec<EvidenceStep> = Vec::new();
            if let Some(e) = tainted_rendered {
                for step in dtaint_dataflow::backward_trace(df, holder.summary.addr, e, sources, 12)
                {
                    match step {
                        TraceStep::Source { name, ins_addr } => {
                            chain.push(EvidenceStep::Source { name, ins_addr });
                        }
                        TraceStep::Def { ins_addr, location, value } => {
                            chain.push(EvidenceStep::DefUse {
                                ins_addr,
                                location,
                                value,
                                function: observed_name.clone(),
                            });
                        }
                        // The finding itself records the sink; the
                        // chain ends at the verdict instead.
                        TraceStep::Sink { .. } => {}
                    }
                }
            }
            // Object-granular taint can have no single def chain; the
            // source set is still known, so lead with it.
            if !chain.iter().any(|s| matches!(s, EvidenceStep::Source { .. })) {
                let mut pre: Vec<EvidenceStep> = srcs
                    .iter()
                    .map(|s| EvidenceStep::Source { name: s.name.clone(), ins_addr: s.ins_addr })
                    .collect();
                pre.append(&mut chain);
                chain = pre;
            }
            if holder.summary.alias_rewrites > 0 {
                chain.push(EvidenceStep::AliasRewrite {
                    function: observed_name.clone(),
                    rewrites: u64::from(holder.summary.alias_rewrites),
                    rounds: u64::from(holder.summary.sse_rounds),
                    depth: u64::from(holder.summary.sse_depth),
                });
            }
            for &cs in &obs.call_chain {
                let (caller, callee) = callsites
                    .get(&cs)
                    .cloned()
                    .unwrap_or_else(|| (observed_name.clone(), sink_fn_name.clone()));
                chain.push(EvidenceStep::CallsiteSubstitution { ins_addr: cs, caller, callee });
            }
            if kind == VulnKind::BufferOverflow {
                if let (Some(a), SinkKind::Import(name)) = (&ranges, &obs.kind) {
                    let spec = sink_spec(name).expect("checked above");
                    if let TaintedVar::Arg(i) = spec.tainted {
                        if let Some(&len) = obs.args.get(i) {
                            let r = a.range_of(len);
                            chain.push(EvidenceStep::IntervalGuard {
                                expr: df.pool.display(len).to_string(),
                                lower: r.lower(),
                                upper: r.upper(),
                            });
                        }
                    }
                }
            }
            chain.push(EvidenceStep::Verdict(verdict.clone()));

            let tainted_expr =
                tainted_rendered.map(|e| df.pool.display(e).to_string()).unwrap_or_default();
            let fingerprint =
                evidence::fingerprint(kind.into(), &sink_name, &sink_fn_name, &tainted_expr, &srcs);
            findings.push(Finding {
                kind: kind.into(),
                sink: sink_name,
                sink_ins: obs.sink_ins,
                sink_fn: sink_fn_name,
                observed_in: observed_name,
                sources: srcs,
                call_chain: obs.call_chain.clone(),
                tainted_expr,
                fingerprint,
                verdict,
                evidence: chain,
            });
        }
    }
    HolderJudgement {
        candidates: findings,
        suppressed: infeasible_suppressed,
        absint,
        absint_passes,
    }
}

/// Judges bounding constraints covering the tainted data:
/// `T < c` / `T <= y` (taken), or `c > T` style checks. When `capacity`
/// is known (strict mode, stack destination), a constant bound must
/// actually fit it. Returns the first sanitising guard as its typed
/// verdict; when every covering guard is a too-large constant, the
/// first such failed guard is reported (so the finding shows *which*
/// bound was insufficient); with no covering guard at all the flow is
/// unchecked.
fn upper_bound_verdict(
    index: &TaintIndex<'_>,
    obs: &SinkObservation,
    capacity: Option<i64>,
) -> SanitizeVerdict {
    let mut failed: Option<SanitizeVerdict> = None;
    for (op, l, r) in &obs.constraints {
        let (tainted_side, bound_side) = match op {
            CmpOp::Lt | CmpOp::Le => (*l, *r),
            CmpOp::Gt | CmpOp::Ge => (*r, *l),
            _ => continue,
        };
        if index.atoms_in(tainted_side).is_empty() {
            continue;
        }
        match (capacity, index.df.pool.as_const(bound_side)) {
            (Some(cap), Some(bound)) => {
                let effective = if matches!(op, CmpOp::Le | CmpOp::Ge) { bound + 1 } else { bound };
                let v = SanitizeVerdict::ConstGuard {
                    bound,
                    capacity: Some(cap),
                    fits: effective <= cap,
                };
                if effective <= cap {
                    return v;
                }
                failed.get_or_insert(v);
            }
            // Constant bound, unknown capacity: the paper's syntactic
            // judgement accepts it.
            (None, Some(bound)) => {
                return SanitizeVerdict::ConstGuard { bound, capacity: None, fits: true };
            }
            // Symbolic bound: syntactic judgement accepts it too (the
            // interval mode is where symbolic bounds get resolved).
            (_, None) => {
                return SanitizeVerdict::SymbolicGuard {
                    expr: index.df.pool.display(bound_side).to_string(),
                    resolved_upper: None,
                    capacity,
                    fits: true,
                };
            }
        }
    }
    failed.unwrap_or(SanitizeVerdict::UncheckedFlow)
}

/// Interval-mode bound judgement for a length argument. A bounding
/// constraint must cover the tainted data (some explicit guard exists —
/// a structural range alone, like a byte load's `[0, 255]`, is not a
/// sanitiser), and the solver's range for the copied length must fit
/// the destination when its capacity is known. This is where a symbolic
/// guard `n < y` is decided: the seeded solver resolves `y` through the
/// definition pairs, so `y = 200` sanitises a 256-byte copy while
/// `y = 1024` — or an unresolvable `y` — does not.
fn interval_upper_bound(
    index: &TaintIndex<'_>,
    analysis: &IntervalAnalysis<'_>,
    obs: &SinkObservation,
    len: ExprId,
    capacity: Option<i64>,
) -> SanitizeVerdict {
    let guarded = obs.constraints.iter().any(|(op, l, r)| {
        let tainted_side = match op {
            CmpOp::Lt | CmpOp::Le => *l,
            CmpOp::Gt | CmpOp::Ge => *r,
            _ => return false,
        };
        !index.atoms_in(tainted_side).is_empty()
    });
    if !guarded {
        return SanitizeVerdict::UncheckedFlow;
    }
    let resolved_upper = analysis.range_of(len).upper();
    let fits = match (resolved_upper, capacity) {
        (Some(hi), Some(cap)) => hi <= cap,
        // Unknown capacity: a provably finite length is the best
        // obtainable judgement (matches the strict-mode fallback).
        (Some(_), None) => true,
        // Guarded, but the bound never resolves to a finite range:
        // refuse to trust the guard.
        (None, _) => false,
    };
    SanitizeVerdict::SymbolicGuard {
        expr: index.df.pool.display(len).to_string(),
        resolved_upper,
        capacity,
        fits,
    }
}

/// The destination's writable capacity: either the distance from a stack
/// buffer to the saved-return slot, or the distance from a writable
/// global to the end of its covering `Object` symbol. `None` when the
/// destination is symbolic (heap pointers, unresolved arguments).
fn dest_capacity(df: &ProgramDataflow, bin: Option<&Binary>, obs: &SinkObservation) -> Option<i64> {
    let dst = *obs.args.first()?;
    if let Some(cap) = stack_capacity(&df.pool, dst) {
        return Some(cap);
    }
    let bin = bin?;
    let (base, off) = deep_base_offset(&df.pool, dst);
    let addr = u32::try_from(df.pool.as_const(base)? + off).ok()?;
    if bin.is_immutable_addr(addr) {
        return None;
    }
    let sym = bin
        .symbols
        .iter()
        .filter(|s| s.kind == SymbolKind::Object && s.size > 0)
        .find(|s| addr >= s.addr && addr < s.addr + s.size)?;
    Some(i64::from(sym.addr + sym.size - addr))
}

/// [`ExprPool::base_offset`] applied down the whole `Add` spine:
/// `(sp0 - 0x858) + 0x400` resolves to `(sp0, -0x458)` instead of
/// stopping at the outer addition.
fn deep_base_offset(pool: &ExprPool, mut e: ExprId) -> (ExprId, i64) {
    let mut off = 0i64;
    loop {
        let (b, o) = pool.base_offset(e);
        if b == e {
            return (e, off);
        }
        off += o;
        e = b;
    }
}

/// The byte distance from a stack destination `sp0 - K` to the saved
/// return slot (`K - 8`). `None` for non-stack bases and for
/// non-negative offsets (caller-frame or unresolved pointers).
pub(crate) fn stack_capacity(pool: &ExprPool, dst: ExprId) -> Option<i64> {
    let (base, off) = pool.base_offset(dst);
    if !matches!(pool.node(base), SymNode::StackBase) || off >= 0 {
        return None;
    }
    Some((-off - 8).max(0))
}

/// Loop-copy judgement. A counted loop carries a bounding constraint
/// (`p < src + n`); a "copy until NUL" loop does not. In strict and
/// interval modes a counted loop's *trip count* — the constant distance
/// between the two compared pointers when they share a base — must
/// additionally fit the destination's capacity, so an oversized counted
/// copy is judged exactly like a weak constant `memcpy` bound.
fn loop_copy_verdict(
    df: &ProgramDataflow,
    obs: &SinkObservation,
    capacity: Option<i64>,
    mode: BoundsMode,
) -> SanitizeVerdict {
    let bounding: Vec<&(CmpOp, ExprId, ExprId)> =
        obs.constraints.iter().filter(|(op, _, _)| op.is_bounding()).collect();
    if bounding.is_empty() {
        return SanitizeVerdict::UncheckedFlow;
    }
    if mode == BoundsMode::Paper {
        return SanitizeVerdict::LoopTripCount { trips: None, capacity: None, fits: true };
    }
    let Some(cap) = capacity else {
        return SanitizeVerdict::LoopTripCount { trips: None, capacity: None, fits: true };
    };
    let trips: Vec<i64> = bounding
        .iter()
        .filter_map(|(_, l, r)| {
            let (bl, ol) = deep_base_offset(&df.pool, *l);
            let (br, orr) = deep_base_offset(&df.pool, *r);
            (bl == br).then(|| (orr - ol).abs())
        })
        .collect();
    // Symbolic loop bound (no extractable trip count): syntactic verdict.
    match trips.iter().min() {
        None => SanitizeVerdict::LoopTripCount { trips: None, capacity: Some(cap), fits: true },
        Some(&best) => SanitizeVerdict::LoopTripCount {
            trips: Some(best),
            capacity: Some(cap),
            fits: best <= cap,
        },
    }
}

/// Judges separator checks on command-injection paths: the path must
/// compare a tainted byte against one of the shell separators in
/// [`CMD_SEPARATORS`]. The verdict collects every separator character
/// actually checked.
fn separator_verdict(
    df: &ProgramDataflow,
    index: &TaintIndex<'_>,
    obs: &SinkObservation,
) -> SanitizeVerdict {
    let sep_const = |e: ExprId| df.pool.as_const(e).filter(|c| CMD_SEPARATORS.contains(c));
    let mut chars: BTreeSet<char> = BTreeSet::new();
    for (op, l, r) in &obs.constraints {
        if !matches!(op, CmpOp::Eq | CmpOp::Ne) {
            continue;
        }
        let (data, sep) = if let Some(c) = sep_const(*r) {
            (*l, c)
        } else if let Some(c) = sep_const(*l) {
            (*r, c)
        } else {
            continue;
        };
        if !index.atoms_in(data).is_empty() {
            if let Ok(b) = u8::try_from(sep) {
                chars.insert(char::from(b));
            }
        }
    }
    if chars.is_empty() {
        SanitizeVerdict::UncheckedFlow
    } else {
        SanitizeVerdict::SeparatorCheck { chars: chars.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_capacity_measures_distance_to_saved_return() {
        let mut p = ExprPool::new();
        let sp = p.intern(SymNode::StackBase);
        let dst = p.add_const(sp, -264);
        assert_eq!(stack_capacity(&p, dst), Some(256));
    }

    #[test]
    fn stack_capacity_rejects_non_stack_base() {
        let mut p = ExprPool::new();
        let g = p.constant(0x30000);
        let dst = p.add_const(g, -64);
        assert_eq!(stack_capacity(&p, dst), None);
        let a = p.arg(0);
        assert_eq!(stack_capacity(&p, a), None);
    }

    #[test]
    fn stack_capacity_rejects_non_negative_offsets() {
        let mut p = ExprPool::new();
        let sp = p.intern(SymNode::StackBase);
        assert_eq!(stack_capacity(&p, sp), None, "offset 0 is the caller frame");
        let above = p.add_const(sp, 16);
        assert_eq!(stack_capacity(&p, above), None);
    }

    #[test]
    fn stack_capacity_at_saved_return_slot_is_zero() {
        let mut p = ExprPool::new();
        let sp = p.intern(SymNode::StackBase);
        let dst = p.add_const(sp, -8);
        assert_eq!(stack_capacity(&p, dst), Some(0), "writes at sp0-8 hit the return address");
        let dst4 = p.add_const(sp, -4);
        assert_eq!(stack_capacity(&p, dst4), Some(0), "clamped, never negative");
    }
}
