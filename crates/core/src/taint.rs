//! Taint judgement: turning sink observations into findings.
//!
//! For every `(source, path, sink)` tuple the data-flow stage surfaced,
//! this module decides (§IV):
//!
//! 1. **Is the sink's sensitive variable tainted?** The variable (chosen
//!    per sink by [`TaintedVar`]) must carry data originating at an
//!    attacker-controlled source. Taint is tracked at two granularities,
//!    matching the paper's buffer semantics:
//!    * *value* taint — the expression contains a `ret_{cs}`/`out_{cs}`
//!      symbol of a source call;
//!    * *object* taint — the expression reads memory (`deref(base+k)`)
//!      from a buffer `base` that a definition pair shows was filled
//!      with source data at any offset (a `recv` into `buf` taints
//!      `buf[1]`, `buf[2]`, … — the Heartbleed `n2s` pattern).
//! 2. **Is the path sanitised?** Buffer overflows are guarded by a
//!    bounding constraint on the tainted data (`n < 64`, `n < y`);
//!    command injections by a comparison of a tainted byte against the
//!    separator `';'` (0x3B). An unguarded tainted path is a
//!    vulnerability.

use crate::report::{Finding, SourceRef};
use crate::sinks::{sink_spec, TaintedVar, VulnKind};
use dtaint_dataflow::{FinalSummary, ProgramDataflow, SinkKind, SinkObservation};
use dtaint_symex::pool::{CmpOp, SymNode};
use dtaint_symex::ExprId;
use std::collections::{BTreeSet, HashMap, HashSet};

/// ASCII code of the command separator checked by sanitised command
/// paths.
pub const SEMICOLON: i64 = b';' as i64;

/// Object-granular taint knowledge for one observing function.
struct TaintIndex<'a> {
    df: &'a ProgramDataflow,
    sources: &'a HashSet<String>,
    /// Buffer base → sources whose data was stored into the buffer.
    tainted_bases: HashMap<ExprId, BTreeSet<SourceRef>>,
}

impl<'a> TaintIndex<'a> {
    fn build(df: &'a ProgramDataflow, holder: &FinalSummary, sources: &'a HashSet<String>) -> Self {
        let mut tainted_bases: HashMap<ExprId, BTreeSet<SourceRef>> = HashMap::new();
        for dp in &holder.summary.def_pairs {
            let mut atoms = BTreeSet::new();
            direct_atoms(df, sources, dp.u, &mut atoms);
            if atoms.is_empty() {
                continue;
            }
            if let SymNode::Deref { addr, .. } = df.pool.node(dp.d) {
                let (base, _) = df.pool.base_offset(addr);
                tainted_bases.entry(base).or_default().extend(atoms);
            }
        }
        // Alias closure: a memory name holding a pointer *to* a tainted
        // buffer is itself a tainted base — reading through
        // `deref(ctx + 0x10)` reaches the buffer the field points at.
        for _ in 0..8 {
            let mut changed = false;
            for dp in &holder.summary.def_pairs {
                let (ubase, _) = df.pool.base_offset(dp.u);
                let Some(atoms) = tainted_bases.get(&ubase).cloned() else { continue };
                if matches!(df.pool.node(dp.d), SymNode::Deref { .. }) {
                    let entry = tainted_bases.entry(dp.d).or_default();
                    let before = entry.len();
                    entry.extend(atoms);
                    changed |= entry.len() != before;
                }
            }
            if !changed {
                break;
            }
        }
        TaintIndex { df, sources, tainted_bases }
    }

    /// All source references carried by an expression (value taint plus
    /// object taint through memory reads).
    fn atoms_in(&self, e: ExprId) -> BTreeSet<SourceRef> {
        let mut out = BTreeSet::new();
        direct_atoms(self.df, self.sources, e, &mut out);
        // Object taint: any deref whose base was filled with source data.
        self.df.pool.any_node(e, &mut |n| {
            if let SymNode::Deref { addr, .. } = n {
                let (base, _) = self.df.pool.base_offset(addr);
                if let Some(atoms) = self.tainted_bases.get(&base) {
                    out.extend(atoms.iter().cloned());
                }
            }
            false // keep walking
        });
        out
    }

    /// Taint of the *pointee* of a pointer-valued expression: the buffer
    /// the pointer designates, resolved through the definition pairs.
    fn pointee_atoms(&self, holder_fn: u32, ptr: ExprId) -> BTreeSet<SourceRef> {
        let mut out = BTreeSet::new();
        // The pointer value itself may be a source (getenv's return).
        out.extend(self.atoms_in(ptr));
        // Values the pointer resolves to, plus what memory holds there.
        let mut vals = vec![ptr];
        for v in self.df.pointee_values(holder_fn, ptr) {
            out.extend(self.atoms_in(v));
            if !vals.contains(&v) {
                vals.push(v);
            }
        }
        // Object taint at the pointed-to buffer, at any offset.
        for v in vals {
            let (base, _) = self.df.pool.base_offset(v);
            if let Some(atoms) = self.tainted_bases.get(&base) {
                out.extend(atoms.iter().cloned());
            }
        }
        out
    }
}

fn direct_atoms(
    df: &ProgramDataflow,
    sources: &HashSet<String>,
    e: ExprId,
    out: &mut BTreeSet<SourceRef>,
) {
    df.pool.any_node(e, &mut |n| {
        let cs = match n {
            SymNode::RetSym(cs) => Some(cs),
            SymNode::CallOut { callsite, .. } => Some(callsite),
            _ => None,
        };
        if let Some(cs) = cs {
            if let Some(name) = df.import_sites.get(&cs) {
                if sources.contains(name) {
                    out.insert(SourceRef { name: name.clone(), ins_addr: cs });
                }
            }
        }
        false // keep walking
    });
}

/// Runs the taint judgement over every sink observation.
///
/// `sources` is the set of import names treated as attacker-controlled
/// inputs; `fn_names` maps function entry addresses to names for
/// reporting.
pub fn detect(
    df: &ProgramDataflow,
    sources: &HashSet<String>,
    fn_names: &HashMap<u32, String>,
) -> Vec<Finding> {
    detect_with(df, sources, fn_names, false)
}

/// [`detect`] with the *strict bounds* extension: a bounding constraint
/// sanitises a copy only when its constant actually fits the destination
/// buffer's stack capacity — `if (n < 1024) memcpy(dst256, src, n)` stays
/// a vulnerability. The capacity of a stack destination `sp0 - K` is the
/// distance to the saved-return slot (`K - 8`); non-stack destinations
/// fall back to the paper's syntactic check.
pub fn detect_with(
    df: &ProgramDataflow,
    sources: &HashSet<String>,
    fn_names: &HashMap<u32, String>,
    strict_bounds: bool,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut seen: HashSet<(u32, Vec<u32>, Vec<SourceRef>, String)> = HashSet::new();
    let mut holders: Vec<&FinalSummary> = df.finals.values().collect();
    holders.sort_by_key(|f| f.summary.addr);
    for holder in holders {
        // One object-taint index per observing function, shared by all
        // of its sink observations.
        let index = TaintIndex::build(df, holder, sources);
        for obs in &holder.sinks {
            let (kind, sink_name) = match &obs.kind {
                SinkKind::Import(name) => {
                    let Some(spec) = sink_spec(name) else { continue };
                    (spec.kind, name.clone())
                }
                SinkKind::LoopCopy => (VulnKind::BufferOverflow, "loop-copy".to_owned()),
            };

            // 1. Taint on the sink's sensitive variable.
            let mut source_refs: BTreeSet<SourceRef> = BTreeSet::new();
            let mut tainted_rendered: Option<ExprId> = None;
            let mut note_taint = |e: ExprId, atoms: BTreeSet<SourceRef>| {
                if !atoms.is_empty() {
                    source_refs.extend(atoms);
                    tainted_rendered.get_or_insert(e);
                }
            };
            match &obs.kind {
                SinkKind::LoopCopy => {
                    if let Some(&value) = obs.args.get(1) {
                        note_taint(value, index.atoms_in(value));
                    }
                    if let Some(&dst) = obs.args.first() {
                        let _ = dst;
                    }
                }
                SinkKind::Import(name) => {
                    let spec = sink_spec(name).expect("checked above");
                    match spec.tainted {
                        TaintedVar::Arg(i) => {
                            if let Some(&a) = obs.args.get(i) {
                                note_taint(a, index.atoms_in(a));
                            }
                        }
                        TaintedVar::Pointee(i) => {
                            if let Some(&p) = obs.args.get(i) {
                                note_taint(p, index.pointee_atoms(holder.summary.addr, p));
                            }
                        }
                        TaintedVar::PointeesFrom(i) => {
                            for &p in obs.args.iter().skip(i) {
                                note_taint(p, index.pointee_atoms(holder.summary.addr, p));
                            }
                        }
                    }
                }
            }
            if source_refs.is_empty() {
                continue;
            }

            // 2. Sanitisation.
            let capacity = if strict_bounds { stack_capacity(df, obs) } else { None };
            let sanitized = match kind {
                VulnKind::BufferOverflow => {
                    if obs.kind == SinkKind::LoopCopy {
                        // A counted loop carries a bounding constraint; a
                        // "copy until NUL" loop does not.
                        obs.constraints.iter().any(|(op, _, _)| op.is_bounding())
                    } else {
                        has_upper_bound(&index, obs, capacity)
                    }
                }
                VulnKind::CommandInjection => has_separator_check(df, &index, obs),
            };

            let srcs: Vec<SourceRef> = source_refs.into_iter().collect();
            let key = (obs.sink_ins, obs.call_chain.clone(), srcs.clone(), sink_name.clone());
            if !seen.insert(key) {
                continue;
            }
            // Backward DFS over the dependency graph for a printable trace.
            let trace: Vec<String> = tainted_rendered
                .map(|e| {
                    dtaint_dataflow::backward_trace(df, holder.summary.addr, e, sources, 12)
                        .iter()
                        .map(|s| s.to_string())
                        .collect()
                })
                .unwrap_or_default();
            let unknown = "<unknown>".to_owned();
            findings.push(Finding {
                kind: kind.into(),
                sink: sink_name,
                sink_ins: obs.sink_ins,
                sink_fn: fn_names.get(&obs.sink_fn).unwrap_or(&unknown).clone(),
                observed_in: fn_names.get(&holder.summary.addr).unwrap_or(&unknown).clone(),
                sources: srcs,
                call_chain: obs.call_chain.clone(),
                tainted_expr: tainted_rendered
                    .map(|e| df.pool.display(e).to_string())
                    .unwrap_or_default(),
                sanitized,
                trace,
            });
        }
    }
    findings.sort_by(|a, b| {
        (a.sink_ins, &a.observed_in, &a.sources).cmp(&(b.sink_ins, &b.observed_in, &b.sources))
    });
    findings
}

/// True when a bounding constraint covers the tainted data:
/// `T < c` / `T <= y` (taken), or `c > T` style checks. When `capacity`
/// is known (strict mode, stack destination), a constant bound must
/// actually fit it.
fn has_upper_bound(index: &TaintIndex<'_>, obs: &SinkObservation, capacity: Option<i64>) -> bool {
    obs.constraints.iter().any(|(op, l, r)| {
        let (tainted_side, bound_side) = match op {
            CmpOp::Lt | CmpOp::Le => (*l, *r),
            CmpOp::Gt | CmpOp::Ge => (*r, *l),
            _ => return false,
        };
        if index.atoms_in(tainted_side).is_empty() {
            return false;
        }
        match (capacity, index.df.pool.as_const(bound_side)) {
            (Some(cap), Some(bound)) => {
                let effective = if matches!(op, CmpOp::Le | CmpOp::Ge) { bound + 1 } else { bound };
                effective <= cap
            }
            // Symbolic bound or unknown capacity: the paper's syntactic
            // judgement.
            _ => true,
        }
    })
}

/// The byte distance from a stack destination to the saved-return slot,
/// when the sink's destination pointer is `sp0 - K` in the observing
/// frame.
fn stack_capacity(df: &ProgramDataflow, obs: &SinkObservation) -> Option<i64> {
    let dst = *obs.args.first()?;
    let (base, off) = df.pool.base_offset(dst);
    if !matches!(df.pool.node(base), SymNode::StackBase) || off >= 0 {
        return None;
    }
    Some((-off - 8).max(0))
}

/// True when the path compares a tainted byte against `';'`.
fn has_separator_check(
    df: &ProgramDataflow,
    index: &TaintIndex<'_>,
    obs: &SinkObservation,
) -> bool {
    obs.constraints.iter().any(|(op, l, r)| {
        if !matches!(op, CmpOp::Eq | CmpOp::Ne) {
            return false;
        }
        let data = if df.pool.as_const(*r) == Some(SEMICOLON) {
            *l
        } else if df.pool.as_const(*l) == Some(SEMICOLON) {
            *r
        } else {
            return false;
        };
        !index.atoms_in(data).is_empty()
    })
}
