//! Sources and sinks — the paper's Table I, plus per-sink taint rules.

use std::collections::HashSet;

/// The class of weakness a sink can trigger (§IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VulnKind {
    /// Insufficient validation of a length/content reaching a copy.
    BufferOverflow,
    /// Unsanitised data reaching a command interpreter.
    CommandInjection,
}

impl std::fmt::Display for VulnKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VulnKind::BufferOverflow => f.write_str("buffer overflow"),
            VulnKind::CommandInjection => f.write_str("command injection"),
        }
    }
}

/// Which sink argument carries the attacker-relevant (tainted) variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaintedVar {
    /// The argument value itself (e.g. `memcpy`'s length, arg 2).
    Arg(usize),
    /// The data the argument points at (e.g. `strcpy`'s source string).
    Pointee(usize),
    /// The pointees of this argument and everything after it
    /// (`sprintf`'s varargs).
    PointeesFrom(usize),
}

/// One sensitive sink: name, weakness class, and taint rule.
#[derive(Debug, Clone, Copy)]
pub struct SinkSpec {
    /// Import name.
    pub name: &'static str,
    /// Weakness class the sink triggers.
    pub kind: VulnKind,
    /// Where the tainted variable sits.
    pub tainted: TaintedVar,
}

/// The sensitive sinks of Table I (the loop-copy sink is structural and
/// handled separately).
pub const SINK_SPECS: &[SinkSpec] = &[
    SinkSpec { name: "strcpy", kind: VulnKind::BufferOverflow, tainted: TaintedVar::Pointee(1) },
    SinkSpec { name: "strncpy", kind: VulnKind::BufferOverflow, tainted: TaintedVar::Arg(2) },
    SinkSpec {
        name: "sprintf",
        kind: VulnKind::BufferOverflow,
        tainted: TaintedVar::PointeesFrom(2),
    },
    SinkSpec { name: "memcpy", kind: VulnKind::BufferOverflow, tainted: TaintedVar::Arg(2) },
    SinkSpec { name: "strcat", kind: VulnKind::BufferOverflow, tainted: TaintedVar::Pointee(1) },
    SinkSpec { name: "sscanf", kind: VulnKind::BufferOverflow, tainted: TaintedVar::Pointee(0) },
    SinkSpec { name: "system", kind: VulnKind::CommandInjection, tainted: TaintedVar::Pointee(0) },
    SinkSpec { name: "popen", kind: VulnKind::CommandInjection, tainted: TaintedVar::Pointee(0) },
];

/// Shell metacharacters whose comparison against tainted data counts as
/// command-injection sanitisation. `;`, `|`, and `&` chain or terminate
/// a command under `sh -c`; a backtick opens a command substitution.
/// Firmware input validators typically reject any one of these, so a
/// path guarded by such a comparison is treated as filtered.
pub const CMD_SEPARATORS: &[i64] = &[b';' as i64, b'|' as i64, b'&' as i64, b'`' as i64];

/// The input sources of Table I.
pub const SOURCE_NAMES: &[&str] = &[
    "read",
    "recv",
    "recvfrom",
    "recvmsg",
    "getenv",
    "fgets",
    "websGetVar",
    "find_var",
    // Used by the OpenSSL-shaped workload (ssl3_read_n reads via BIO).
    "BIO_read",
];

/// Looks up the sink specification for an import name.
pub fn sink_spec(name: &str) -> Option<&'static SinkSpec> {
    SINK_SPECS.iter().find(|s| s.name == name)
}

/// The default source-name set.
pub fn default_sources() -> HashSet<String> {
    SOURCE_NAMES.iter().map(|s| s.to_string()).collect()
}

/// The default sink-name set.
pub fn default_sink_names() -> HashSet<String> {
    SINK_SPECS.iter().map(|s| s.name.to_owned()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_is_complete() {
        assert_eq!(SINK_SPECS.len(), 8);
        assert!(SOURCE_NAMES.len() >= 8);
        assert!(sink_spec("system").is_some());
        assert!(sink_spec("recv").is_none(), "sources are not sinks");
    }

    #[test]
    fn length_sinks_use_arg_rules() {
        assert_eq!(sink_spec("memcpy").unwrap().tainted, TaintedVar::Arg(2));
        assert_eq!(sink_spec("strcpy").unwrap().tainted, TaintedVar::Pointee(1));
        assert_eq!(sink_spec("sprintf").unwrap().tainted, TaintedVar::PointeesFrom(2));
    }

    #[test]
    fn command_sinks_are_injection_kind() {
        for name in ["system", "popen"] {
            assert_eq!(sink_spec(name).unwrap().kind, VulnKind::CommandInjection);
        }
    }

    #[test]
    fn separator_list_covers_shell_metacharacters() {
        for b in [b';', b'|', b'&', b'`'] {
            assert!(CMD_SEPARATORS.contains(&i64::from(b)), "{} missing", b as char);
        }
        assert!(!CMD_SEPARATORS.contains(&i64::from(b'a')));
    }
}
