//! The end-to-end DTaint pipeline (Figure 4 of the paper).
//!
//! `binary → IR/CFG → per-function symbolic analysis (parallel) →
//! pointer aliasing → layout similarity → bottom-up data flow →
//! sink/source matching → findings`.

use crate::report;
use crate::report::{
    AnalysisReport, FnCost, FunctionOutcome, FunctionRecord, StageTimings, TelemetrySection,
};
use crate::sinks::{default_sink_names, default_sources};
use crate::taint;
use dtaint_cfg::{build_function_cfg, CallGraph, FunctionCfg};
use dtaint_dataflow::cache::{env_digest, function_content_hash, sym_salt, Level};
use dtaint_dataflow::{build_dataflow, CacheRef, DataflowConfig, SinkKind};
use dtaint_fwbin::Binary;
use dtaint_symex::{analyze_function, canonical_encode, SummaryDecoder};
use dtaint_symex::{ExprPool, FuncSummary, SymexConfig};
use dtaint_telemetry::{Collector, MetricsRegistry, SpanEvent, TraceBuffer, TraceSpec};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Configuration of the whole pipeline.
#[derive(Debug, Clone)]
pub struct DtaintConfig {
    /// Per-function symbolic execution settings.
    pub symex: SymexConfig,
    /// Data-flow stage settings (alias/indirect switches, sink names).
    pub dataflow: DataflowConfig,
    /// Import names treated as attacker-controlled sources.
    pub sources: HashSet<String>,
    /// Worker threads for the per-function analysis (0 = all cores).
    pub threads: usize,
    /// Enable the strict-bounds extension: constant length guards must
    /// fit the destination's stack capacity to count as sanitisation
    /// (see [`crate::taint::detect_with`]).
    pub strict_bounds: bool,
    /// Enable the interval abstract-interpretation extension
    /// ([`crate::taint::BoundsMode::Interval`]): path constraints are
    /// evaluated over an interval domain, so symbolic guards are judged
    /// against the destination capacity and contradictory (infeasible)
    /// paths are suppressed during both propagation and detection.
    /// Subsumes `strict_bounds`.
    pub interval_guards: bool,
    /// When set, only functions whose name passes the filter are
    /// analyzed — the paper does this for the large Uniview/Hikvision
    /// images ("we manually extract 430 functions that are used to
    /// process RTSP and HTTP", §V-A).
    pub function_filter: Option<Vec<String>>,
    /// Abort the scan on the first function that cannot be lifted or
    /// that panics, instead of downgrading it to an opaque summary and
    /// carrying on. `false` (keep-going) is the production default for
    /// whole-image scans; `true` is the old behaviour, useful when a
    /// clean corpus is expected and any failure is a bug.
    pub fail_fast: bool,
    /// Incremental summary cache: when set, per-function symbolic
    /// summaries and final DDG summaries are keyed by content hash and
    /// reused across scans (see [`dtaint_dataflow::cache`]). Findings
    /// and all report fields except wall-clock timings are identical
    /// with or without it; hit/miss counters land in the *collector's*
    /// metrics, never in the report. `None` (the default) scans cold.
    pub cache: Option<CacheRef>,
}

impl Default for DtaintConfig {
    fn default() -> Self {
        DtaintConfig {
            symex: SymexConfig::default(),
            dataflow: DataflowConfig { sink_names: default_sink_names(), ..Default::default() },
            sources: default_sources(),
            threads: 0,
            strict_bounds: false,
            interval_guards: false,
            function_filter: None,
            fail_fast: false,
            cache: None,
        }
    }
}

/// The DTaint analyzer.
///
/// # Examples
///
/// See the crate-level example ([`crate`]) for an end-to-end run on an
/// assembled binary.
#[derive(Debug, Clone, Default)]
pub struct Dtaint {
    config: DtaintConfig,
}

impl Dtaint {
    /// Creates an analyzer with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an analyzer with explicit configuration.
    pub fn with_config(config: DtaintConfig) -> Self {
        Dtaint { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &DtaintConfig {
        &self.config
    }

    /// Analyzes one binary end-to-end.
    ///
    /// In the default keep-going mode a function that cannot be lifted,
    /// exhausts its analysis budget, or panics is downgraded — never
    /// aborting the scan — and recorded in
    /// [`AnalysisReport::skipped_functions`]. With
    /// [`DtaintConfig::fail_fast`] the first lift failure or caught
    /// panic aborts instead.
    ///
    /// # Errors
    ///
    /// In fail-fast mode only: propagates lifting failures (undecodable
    /// instruction words, unmapped reads) from CFG construction, and
    /// converts caught analysis panics into
    /// [`dtaint_fwbin::Error::BadFormat`].
    pub fn analyze(&self, bin: &Binary, name: &str) -> dtaint_fwbin::Result<AnalysisReport> {
        let mut tel = Collector::disabled();
        self.analyze_traced(bin, name, &mut tel)
    }

    /// [`Dtaint::analyze`] with telemetry: hierarchical spans (scan →
    /// function → stage) are recorded into `tel` when it is enabled, and
    /// the metrics registry is populated either way (metrics are logical
    /// counters — free to keep, and bit-identical across thread counts).
    ///
    /// Spans carry wall-clock durations *and* logical work counters; the
    /// two are kept strictly separate, and nothing the analysis computes
    /// ever reads a duration, so findings and all logical counters are
    /// identical whether `tel` is enabled or not, at any thread count.
    ///
    /// # Errors
    ///
    /// Same as [`Dtaint::analyze`].
    pub fn analyze_traced(
        &self,
        bin: &Binary,
        name: &str,
        tel: &mut Collector,
    ) -> dtaint_fwbin::Result<AnalysisReport> {
        let scan_t0 = tel.start();
        // Only events this scan appends matter for the per-function
        // duration lookup below (one collector may span many binaries).
        let watermark = tel.events().len();
        if let Some(cref) = &self.config.cache {
            cref.cache.begin_scan(&cref.scan);
        }
        // Per-function outcome records, keyed by entry address; only
        // non-Analyzed outcomes are stored, and a later stage may
        // overwrite with a more severe outcome.
        let mut records: BTreeMap<u32, FunctionRecord> = BTreeMap::new();

        // Stage 1: lift + CFGs + call graph. Each function lifts behind
        // its own error and panic boundary; failures downgrade that one
        // function to an opaque (absent) summary.
        let stage_t0 = tel.start();
        let t = Instant::now();
        let mut syms: Vec<&dtaint_fwbin::Symbol> = bin.functions();
        if let Some(filter) = &self.config.function_filter {
            syms.retain(|s| filter.iter().any(|f| s.name.contains(f.as_str())));
        }
        let total_functions = syms.len();
        let mut cfgs: Vec<FunctionCfg> = Vec::with_capacity(syms.len());
        for s in &syms {
            match catch_unwind(AssertUnwindSafe(|| build_function_cfg(bin, s))) {
                Ok(Ok(cfg)) => cfgs.push(cfg),
                Ok(Err(e)) => {
                    if self.config.fail_fast {
                        return Err(e);
                    }
                    record(
                        &mut records,
                        s.addr,
                        &s.name,
                        FunctionOutcome::LiftFailed,
                        e.to_string(),
                    );
                }
                Err(_) => {
                    if self.config.fail_fast {
                        return Err(dtaint_fwbin::Error::BadFormat(format!(
                            "panic while lifting `{}`",
                            s.name
                        )));
                    }
                    record(
                        &mut records,
                        s.addr,
                        &s.name,
                        FunctionOutcome::Panicked,
                        "panic during lift/CFG construction".into(),
                    );
                }
            }
        }
        let mut callgraph = CallGraph::build(bin, &cfgs);
        let lift_cfg = t.elapsed();
        tel.record("lift_cfg", "stage", stage_t0, BTreeMap::new());

        // Stage 2: per-function static symbolic analysis, in parallel
        // with private pools, merged afterwards. A panicking function is
        // rolled back out of its pool and downgraded to an opaque
        // summary; a fuel-exhausted one is retried once degraded.
        let stage_t0 = tel.start();
        let t = Instant::now();
        let sym_cache = self.config.cache.as_ref().map(|cref| SymexCacheCtx {
            cref: cref.clone(),
            salt: sym_salt(env_digest(bin), &self.config.symex),
        });
        let stage = self.run_symex(bin, &cfgs, tel, sym_cache.as_ref());
        let SymexStage { summaries, pool, records: symex_records, retried, retry_time } = stage;
        for (addr, name, outcome, detail) in symex_records {
            if self.config.fail_fast && outcome == FunctionOutcome::Panicked {
                return Err(dtaint_fwbin::Error::BadFormat(format!(
                    "panic while analyzing `{name}`"
                )));
            }
            record(&mut records, addr, &name, outcome, detail);
        }
        let ssa = t.elapsed();
        tel.record("ssa", "stage", stage_t0, BTreeMap::new());

        // Stage 3: alias + layout similarity + bottom-up propagation.
        // The propagation walk shares the session thread count with the
        // symbolic stage; results are identical for every value.
        let stage_t0 = tel.start();
        let t = Instant::now();
        let mut df_config = self.config.dataflow.clone();
        df_config.threads = self.effective_threads(cfgs.len());
        df_config.interval_guards |= self.config.interval_guards;
        df_config.trace = tel.is_enabled().then(|| TraceSpec { clock: tel.clock(), base_lane: 1 });
        // Quarantine every function with a non-Analyzed outcome so far
        // (lift failures, symex panics/degradations): the DDG stage must
        // never store their summaries — a faulted artefact in the cache
        // would masquerade as a healthy one on the next scan.
        df_config.cache = self.config.cache.as_ref().map(|cref| CacheRef {
            cache: cref.cache.clone(),
            scan: cref.scan.clone(),
            uncacheable: std::sync::Arc::new(
                cref.uncacheable
                    .iter()
                    .copied()
                    .chain(
                        records
                            .values()
                            .filter(|r| r.outcome != FunctionOutcome::Analyzed)
                            .map(|r| r.addr),
                    )
                    .collect(),
            ),
        });
        let mut df = build_dataflow(bin, &mut callgraph, summaries, pool, &df_config);
        tel.absorb(std::mem::take(&mut df.trace_events));
        let df = df;
        let fn_name_of = |addr: u32| {
            df.finals
                .get(&addr)
                .map(|f| f.summary.name.clone())
                .unwrap_or_else(|| format!("{addr:#x}"))
        };
        for &addr in &df.alias_panics {
            record(
                &mut records,
                addr,
                &fn_name_of(addr),
                FunctionOutcome::Degraded,
                "alias stage panicked; alias rewriting skipped".into(),
            );
        }
        for f in df.finals.values() {
            if f.panicked {
                record(
                    &mut records,
                    f.summary.addr,
                    &f.summary.name,
                    FunctionOutcome::Panicked,
                    "panic during data-flow propagation".into(),
                );
            } else if f.budget_exhausted {
                record(
                    &mut records,
                    f.summary.addr,
                    &f.summary.name,
                    FunctionOutcome::BudgetExceeded,
                    format!("data-flow fuel exhausted (max_fuel = {})", df_config.max_fuel),
                );
            }
        }
        if self.config.fail_fast {
            if let Some(r) = records.values().find(|r| r.outcome == FunctionOutcome::Panicked) {
                return Err(dtaint_fwbin::Error::BadFormat(format!(
                    "panic while analyzing `{}`",
                    r.name
                )));
            }
        }
        let ddg = t.elapsed();
        tel.record("ddg", "stage", stage_t0, BTreeMap::new());
        // The DDG sub-stages run back-to-back inside `build_dataflow`,
        // so their spans can be reconstructed from its timing breakdown
        // at the stage's start offset without plumbing a clock through.
        if tel.is_enabled() {
            let mut off = stage_t0;
            for (nm, d) in [
                ("ddg_alias", df.timings.alias),
                ("ddg_indirect", df.timings.indirect),
                ("ddg_propagate", df.timings.propagate),
            ] {
                let dur = d.as_micros() as u64;
                tel.push(SpanEvent {
                    name: nm.to_owned(),
                    cat: "stage".to_owned(),
                    lane: 0,
                    start_us: off,
                    dur_us: dur,
                    args: BTreeMap::new(),
                });
                off += dur;
            }
        }

        // Stage 4: taint judgement.
        let stage_t0 = tel.start();
        let t = Instant::now();
        let fn_names: HashMap<u32, String> =
            cfgs.iter().map(|c| (c.addr, c.name.clone())).collect();
        let mode = if self.config.interval_guards {
            taint::BoundsMode::Interval
        } else if self.config.strict_bounds {
            taint::BoundsMode::Strict
        } else {
            taint::BoundsMode::Paper
        };
        let mut outcome = taint::detect_full(&df, Some(bin), &self.config.sources, &fn_names, mode);
        // Insert-time dedup: detect_full already collapses same-path
        // observations from different holders; this catches findings
        // that are identical in every field (usually zero). Both counts
        // feed the `detect.duplicates_suppressed` counter.
        let duplicates_suppressed =
            outcome.duplicates_suppressed + report::dedup_findings(&mut outcome.findings);
        for &addr in &outcome.failed_holders {
            if self.config.fail_fast {
                return Err(dtaint_fwbin::Error::BadFormat(format!(
                    "panic while judging `{}`",
                    fn_name_of(addr)
                )));
            }
            record(
                &mut records,
                addr,
                &fn_name_of(addr),
                FunctionOutcome::Panicked,
                "panic during taint judgement".into(),
            );
        }
        let detect = t.elapsed();
        tel.record("detect", "stage", stage_t0, BTreeMap::new());

        let sinks_count = df
            .finals
            .values()
            .flat_map(|f| f.sinks.iter())
            .filter(|s| s.call_chain.is_empty())
            .count();
        let loop_copy_sinks = df
            .finals
            .values()
            .flat_map(|f| f.sinks.iter())
            .filter(|s| s.kind == SinkKind::LoopCopy && s.call_chain.is_empty())
            .count();

        let functions_skipped = records
            .values()
            .filter(|r| {
                matches!(r.outcome, FunctionOutcome::LiftFailed | FunctionOutcome::Panicked)
            })
            .count();

        // Per-function wall-clock, looked up from the spans this scan
        // recorded (empty maps when the collector is disabled). These
        // feed only the `*_us` display fields of `FnCost`.
        let mut symex_us: HashMap<u32, u64> = HashMap::new();
        let mut ddg_us: HashMap<u32, u64> = HashMap::new();
        for ev in &tel.events()[watermark..] {
            if let Some(&addr) = ev.args.get("addr") {
                match ev.cat.as_str() {
                    "symex_fn" => {
                        symex_us.insert(addr as u32, ev.dur_us);
                    }
                    "ddg_fn" => {
                        ddg_us.insert(addr as u32, ev.dur_us);
                    }
                    _ => {}
                }
            }
        }
        let fn_costs: Vec<FnCost> = df
            .finals
            .values()
            .map(|f| FnCost {
                addr: f.summary.addr,
                name: f.summary.name.clone(),
                blocks_executed: u64::from(f.summary.blocks_executed),
                paths_explored: u64::from(f.summary.paths_explored),
                alias_rewrites: u64::from(f.summary.alias_rewrites),
                ddg_fuel: f.fuel_used,
                sinks: f.sinks.len() as u64,
                symex_us: symex_us.get(&f.summary.addr).copied().unwrap_or(0),
                ddg_us: ddg_us.get(&f.summary.addr).copied().unwrap_or(0),
            })
            .collect();

        // The metrics registry: every value here is a deterministic
        // logical count or size — never wall-clock — so the whole
        // registry is bit-identical across thread counts.
        let mut metrics = MetricsRegistry::default();
        let stats = bin.stats();
        metrics.set_gauge("image.sections", stats.sections as u64);
        metrics.set_gauge("image.symbols", stats.symbols as u64);
        metrics.set_gauge("image.imports", stats.imports as u64);
        metrics.set_gauge("image.code_bytes", stats.code_bytes);
        metrics.set_gauge("image.functions", cfgs.len() as u64);
        metrics.set_gauge("image.blocks", cfgs.iter().map(|c| c.block_count() as u64).sum());
        metrics.set_gauge("image.cfg_edges", cfgs.iter().map(|c| c.edge_count() as u64).sum());
        metrics.set_gauge("image.call_graph_edges", callgraph.edge_count() as u64);
        metrics.set_gauge("image.sinks", sinks_count as u64);
        metrics.set_gauge("image.resolved_indirect", df.resolved_indirect.len() as u64);
        for f in &fn_costs {
            metrics.inc("symex.blocks_executed", f.blocks_executed);
            metrics.inc("symex.paths_explored", f.paths_explored);
            metrics.inc("ddg.alias_rewrites", f.alias_rewrites);
            metrics.inc("ddg.fuel_spent", f.ddg_fuel);
            metrics.observe("symex.blocks_per_fn", f.blocks_executed);
            metrics.observe("ddg.fuel_per_fn", f.ddg_fuel);
            metrics.observe("fn.sinks", f.sinks);
        }
        for f in df.finals.values() {
            metrics.inc("ddg.alias_sse_rounds", u64::from(f.summary.sse_rounds));
            metrics.inc("ddg.alias_sse_rewrites", u64::from(f.summary.sse_rewrites));
            metrics.inc("ddg.alias_sse_saturated", u64::from(f.summary.sse_saturated));
        }
        metrics.inc("symex.functions_retried", retried as u64);
        metrics.inc("ddg.pruned_infeasible", df.pruned_infeasible as u64);
        metrics.inc("detect.infeasible_suppressed", outcome.infeasible_suppressed as u64);
        metrics.inc("absint.solver_passes", outcome.absint_passes);
        metrics.inc("detect.findings", outcome.findings.len() as u64);
        metrics.inc("detect.duplicates_suppressed", duplicates_suppressed as u64);
        tel.metrics.merge(&metrics);
        // Cache traffic is a property of the *session* (what was warm),
        // not of the analysis result, so it goes only into the
        // collector's registry — after the merge above — keeping the
        // report itself byte-identical between cold and warm scans.
        if let Some(cref) = &self.config.cache {
            let st = cref.cache.scan_stats(&cref.scan);
            tel.metrics.inc("cache.symex.hits", st.sym_hits);
            tel.metrics.inc("cache.symex.misses", st.sym_misses);
            tel.metrics.inc("cache.ddg.hits", st.ddg_hits);
            tel.metrics.inc("cache.ddg.misses", st.ddg_misses);
            tel.metrics.inc("cache.invalidations", st.invalidations);
            tel.metrics.inc("cache.stores", st.stores);
        }

        // Root span last: it closes after everything it contains. The
        // pool size rides here rather than in the registry: the parallel
        // merge translates only summary-reachable nodes into the master
        // pool while the sequential path interns intermediates directly,
        // so it is an allocation statistic, not a thread-invariant
        // logical count.
        let mut root_args = BTreeMap::new();
        root_args.insert("functions".to_owned(), cfgs.len() as u64);
        root_args.insert("findings".to_owned(), outcome.findings.len() as u64);
        root_args.insert("pool_nodes".to_owned(), df.pool.len() as u64);
        tel.record(name, "scan", scan_t0, root_args);

        let timings = StageTimings {
            lift_cfg,
            ssa,
            ddg,
            detect,
            ddg_alias: df.timings.alias,
            ddg_indirect: df.timings.indirect,
            ddg_propagate: df.timings.propagate,
            ddg_absint: df.timings.absint,
            detect_absint: outcome.absint,
            ssa_retry: retry_time,
        };
        debug_assert!(
            timings.consistency_error(Duration::from_millis(50)).is_none(),
            "stage timing drift: {:?}",
            timings.consistency_error(Duration::from_millis(50))
        );

        Ok(AnalysisReport {
            binary_name: name.to_owned(),
            arch: bin.arch.to_string(),
            functions: cfgs.len(),
            blocks: cfgs.iter().map(|c| c.block_count()).sum(),
            call_graph_edges: callgraph.edge_count(),
            sinks_count,
            resolved_indirect: df.resolved_indirect.len(),
            findings: outcome.findings,
            infeasible_suppressed: outcome.infeasible_suppressed + df.pruned_infeasible,
            functions_analyzed: total_functions - functions_skipped,
            functions_skipped,
            functions_retried: retried,
            loop_copy_sinks,
            skipped_functions: records.into_values().collect(),
            timings,
            telemetry: TelemetrySection { metrics, functions: fn_costs },
        })
    }

    /// Resolves the session thread count (0 = all cores) against the
    /// number of work items.
    fn effective_threads(&self, work_items: usize) -> usize {
        let threads = if self.config.threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.config.threads
        };
        threads.clamp(1, work_items.max(1))
    }

    /// Runs the per-function symbolic analysis, parallelised with
    /// crossbeam scoped threads; each worker interns into a private pool
    /// that is translated into the global pool at the end. Per-function
    /// panics are caught and rolled back out of the pool; fuel
    /// exhaustion triggers one degraded retry (see [`symex_one`]).
    fn run_symex(
        &self,
        bin: &Binary,
        cfgs: &[FunctionCfg],
        tel: &mut Collector,
        cache: Option<&SymexCacheCtx>,
    ) -> SymexStage {
        let threads = self.effective_threads(cfgs.len());
        let mut stage = SymexStage {
            summaries: Vec::with_capacity(cfgs.len()),
            pool: ExprPool::new(),
            records: Vec::new(),
            retried: 0,
            retry_time: Duration::ZERO,
        };
        // One span per function, carrying its logical counters as args.
        // Recording is a worker-local append guarded by the enabled
        // flag, so the disabled path costs one branch per function.
        let span = |buf: &mut TraceBuffer, c: &FunctionCfg, one: &SymexOne, t0: u64| {
            if buf.is_enabled() {
                let mut args = BTreeMap::new();
                args.insert("addr".to_owned(), u64::from(c.addr));
                args.insert("blocks".to_owned(), u64::from(one.summary.blocks_executed));
                args.insert("paths".to_owned(), u64::from(one.summary.paths_explored));
                buf.record(&c.name, "symex_fn", t0, args);
            }
        };
        if threads <= 1 || cfgs.len() < 8 {
            let mut buf = tel.buffer(1);
            for c in cfgs {
                let t0 = buf.start();
                let key = cache.and_then(|cc| cc.key(bin, c));
                let hit = match (cache, key) {
                    (Some(cc), Some(k)) => cc.probe(k, &mut stage.pool),
                    _ => None,
                };
                let was_hit = hit.is_some();
                let one = match hit {
                    Some(summary) => SymexOne {
                        summary,
                        record: None,
                        retried: false,
                        retry_time: Duration::ZERO,
                    },
                    None => symex_one(bin, c, &mut stage.pool, &self.config.symex),
                };
                span(&mut buf, c, &one, t0);
                if let Some(cc) = cache {
                    cc.settle(&stage.pool, &one, key, was_hit);
                }
                stage.absorb(one, None);
            }
            tel.absorb(buf.into_events());
            return stage;
        }
        let chunk = cfgs.len().div_ceil(threads);
        let clock = tel.clock();
        let on = tel.is_enabled();
        type SymexItem = (SymexOne, Option<u64>, bool);
        let parts: Vec<(Vec<SymexItem>, ExprPool, Vec<SpanEvent>)> =
            crossbeam::thread::scope(|scope| {
                let mut handles = Vec::new();
                for (widx, slice) in cfgs.chunks(chunk).enumerate() {
                    let symex = self.config.symex;
                    handles.push(scope.spawn(move |_| {
                        let mut pool = ExprPool::new();
                        let mut buf = TraceBuffer::new(clock, 1 + widx as u32, on);
                        let out: Vec<SymexItem> = slice
                            .iter()
                            .map(|c| {
                                let t0 = buf.start();
                                // Cache probe in the private pool; local
                                // summaries are unknown-free, so decoded
                                // ids translate like any cold result.
                                let key = cache.and_then(|cc| cc.key(bin, c));
                                let hit = match (cache, key) {
                                    (Some(cc), Some(k)) => cc.probe(k, &mut pool),
                                    _ => None,
                                };
                                let was_hit = hit.is_some();
                                let one = match hit {
                                    Some(summary) => SymexOne {
                                        summary,
                                        record: None,
                                        retried: false,
                                        retry_time: Duration::ZERO,
                                    },
                                    None => symex_one(bin, c, &mut pool, &symex),
                                };
                                span(&mut buf, c, &one, t0);
                                (one, key, was_hit)
                            })
                            .collect();
                        (out, pool, buf.into_events())
                    }));
                }
                handles.into_iter().map(|h| h.join().expect("symex worker panicked")).collect()
            })
            .expect("crossbeam scope");
        // Absorbed in chunk (spawn) order, so the merged event stream is
        // deterministic for a given thread count. Cache stats and stores
        // settle here, master-side, for the same reason; the canonical
        // encoding is pool-independent, so encoding from the worker's
        // pool stores byte-identical blobs to a sequential run.
        for (ones, local, events) in parts {
            tel.absorb(events);
            for (one, key, was_hit) in ones {
                if let Some(cc) = cache {
                    cc.settle(&local, &one, key, was_hit);
                }
                stage.absorb(one, Some(&local));
            }
        }
        stage
    }
}

/// Per-scan context for the symex-level summary cache: the config salt
/// plus the shared store handle.
struct SymexCacheCtx {
    cref: CacheRef,
    salt: u64,
}

impl SymexCacheCtx {
    /// Content key for one function: salt + address + name + raw bytes.
    fn key(&self, bin: &Binary, cfg: &FunctionCfg) -> Option<u64> {
        let sym = bin.function_at(cfg.addr)?;
        let bytes = bin.bytes_at(sym.addr, sym.size)?;
        Some(function_content_hash(self.salt, cfg.addr, &cfg.name, &bytes))
    }

    /// Attempts to rehydrate a cached local summary into `pool`. Local
    /// summaries never contain unknowns (only the DDG stage mints
    /// them), so the unknown-unmapper refuses everything; a malformed
    /// blob rolls the pool back and falls through to a cold run.
    fn probe(&self, key: u64, pool: &mut ExprPool) -> Option<FuncSummary> {
        let blob = self.cref.cache.lookup_blob(Level::Symex, key)?;
        let mark = pool.mark();
        let r = (|| {
            let mut dec = SummaryDecoder::new(&blob, pool, &mut |_, _| None)?;
            let s = dec.summary()?;
            dec.at_end().then_some(s)
        })();
        if r.is_none() {
            pool.rollback(mark);
        }
        r
    }

    /// Hit/miss bookkeeping plus the store on an eligible miss: only
    /// cleanly analyzed summaries (no outcome record, not degraded, no
    /// fuel exhaustion) are cached.
    fn settle(&self, pool: &ExprPool, one: &SymexOne, key: Option<u64>, was_hit: bool) {
        let s = &one.summary;
        if was_hit {
            if let Some(k) = key {
                self.cref.cache.note_hit(Level::Symex, &self.cref.scan, s.addr, k);
            }
            return;
        }
        self.cref.cache.note_miss(Level::Symex, &self.cref.scan, &s.name, s.addr, key);
        let Some(k) = key else { return };
        if one.record.is_some() || s.degraded || s.fuel_exhausted {
            return;
        }
        if let Some(blob) = canonical_encode(pool, s) {
            self.cref.cache.store(Level::Symex, &self.cref.scan, k, blob);
        }
    }
}

/// Result of the symbolic-execution stage.
struct SymexStage {
    summaries: Vec<FuncSummary>,
    pool: ExprPool,
    /// `(addr, name, outcome, detail)` for every non-Analyzed function.
    records: Vec<(u32, String, FunctionOutcome, String)>,
    retried: usize,
    retry_time: Duration,
}

impl SymexStage {
    /// Folds one function's result in, translating its summary from the
    /// worker's private pool when one is given.
    fn absorb(&mut self, one: SymexOne, local: Option<&ExprPool>) {
        let summary = match local {
            Some(local) => one.summary.translate_into(local, &mut self.pool),
            None => one.summary,
        };
        if let Some((outcome, detail)) = one.record {
            self.records.push((summary.addr, summary.name.clone(), outcome, detail));
        }
        if one.retried {
            self.retried += 1;
            self.retry_time += one.retry_time;
        }
        self.summaries.push(summary);
    }
}

/// One function's symbolic-execution result.
struct SymexOne {
    summary: FuncSummary,
    record: Option<(FunctionOutcome, String)>,
    retried: bool,
    retry_time: Duration,
}

/// Analyzes one function behind a panic boundary with fuel-exhaustion
/// retry.
///
/// * A panic rolls the pool back to its pre-function state — erasing
///   every node and unknown index the failed run interned, so the
///   functions analyzed after it see bit-identical pool state whether
///   this function panicked or never existed — and yields an opaque
///   summary flagged [`FunctionOutcome::Panicked`].
/// * Fuel exhaustion rolls back and retries once under
///   [`SymexConfig::degraded`]; success is [`FunctionOutcome::Degraded`],
///   a second exhaustion keeps the partial degraded summary as
///   [`FunctionOutcome::BudgetExceeded`].
fn symex_one(
    bin: &Binary,
    cfg: &FunctionCfg,
    pool: &mut ExprPool,
    config: &SymexConfig,
) -> SymexOne {
    let mark = pool.mark();
    let full = catch_unwind(AssertUnwindSafe(|| analyze_function(bin, cfg, pool, config)));
    match full {
        Err(_) => {
            pool.rollback(mark);
            SymexOne {
                summary: opaque_summary(cfg),
                record: Some((FunctionOutcome::Panicked, "panic during symbolic execution".into())),
                retried: false,
                retry_time: Duration::ZERO,
            }
        }
        Ok(summary) if summary.fuel_exhausted => {
            let t = Instant::now();
            pool.rollback(mark);
            let degraded_config = config.degraded();
            let retry = catch_unwind(AssertUnwindSafe(|| {
                analyze_function(bin, cfg, pool, &degraded_config)
            }));
            match retry {
                Err(_) => {
                    pool.rollback(mark);
                    SymexOne {
                        summary: opaque_summary(cfg),
                        record: Some((
                            FunctionOutcome::Panicked,
                            "panic during degraded symbolic execution".into(),
                        )),
                        retried: true,
                        retry_time: t.elapsed(),
                    }
                }
                Ok(mut summary) => {
                    summary.degraded = true;
                    let record = if summary.fuel_exhausted {
                        (
                            FunctionOutcome::BudgetExceeded,
                            format!(
                                "fuel exhausted at full and degraded strength (max_fuel = {})",
                                config.max_fuel
                            ),
                        )
                    } else {
                        (
                            FunctionOutcome::Degraded,
                            format!(
                                "retried degraded after fuel exhaustion (max_fuel = {})",
                                config.max_fuel
                            ),
                        )
                    };
                    SymexOne {
                        summary,
                        record: Some(record),
                        retried: true,
                        retry_time: t.elapsed(),
                    }
                }
            }
        }
        Ok(summary) => {
            SymexOne { summary, record: None, retried: false, retry_time: Duration::ZERO }
        }
    }
}

/// The opaque summary a failed function downgrades to: no defs, no
/// callsites, no constraints — callers treat its calls like unknown
/// imports (`ret_{cs}` stays symbolic), a conservative pass-through.
fn opaque_summary(cfg: &FunctionCfg) -> FuncSummary {
    FuncSummary { addr: cfg.addr, name: cfg.name.clone(), ..FuncSummary::default() }
}

/// Inserts or upgrades a per-function outcome record, keeping the more
/// severe outcome when one exists (severity follows the lattice:
/// analyzed < degraded < budget-exceeded < lift-failed/panicked).
fn record(
    records: &mut BTreeMap<u32, FunctionRecord>,
    addr: u32,
    name: &str,
    outcome: FunctionOutcome,
    detail: String,
) {
    let severity = |o: FunctionOutcome| match o {
        FunctionOutcome::Analyzed => 0,
        FunctionOutcome::Degraded => 1,
        FunctionOutcome::BudgetExceeded => 2,
        FunctionOutcome::LiftFailed => 3,
        FunctionOutcome::Panicked => 4,
    };
    let new = FunctionRecord { addr, name: name.to_owned(), outcome, detail };
    match records.get_mut(&addr) {
        Some(old) if severity(old.outcome) >= severity(new.outcome) => {}
        Some(old) => *old = new,
        None => {
            records.insert(addr, new);
        }
    }
}
