//! The end-to-end DTaint pipeline (Figure 4 of the paper).
//!
//! `binary → IR/CFG → per-function symbolic analysis (parallel) →
//! pointer aliasing → layout similarity → bottom-up data flow →
//! sink/source matching → findings`.

use crate::report::{AnalysisReport, FunctionOutcome, FunctionRecord, StageTimings};
use crate::sinks::{default_sink_names, default_sources};
use crate::taint;
use dtaint_cfg::{build_function_cfg, CallGraph, FunctionCfg};
use dtaint_dataflow::{build_dataflow, DataflowConfig, SinkKind};
use dtaint_fwbin::Binary;
use dtaint_symex::{analyze_function, ExprPool, FuncSummary, SymexConfig};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Configuration of the whole pipeline.
#[derive(Debug, Clone)]
pub struct DtaintConfig {
    /// Per-function symbolic execution settings.
    pub symex: SymexConfig,
    /// Data-flow stage settings (alias/indirect switches, sink names).
    pub dataflow: DataflowConfig,
    /// Import names treated as attacker-controlled sources.
    pub sources: HashSet<String>,
    /// Worker threads for the per-function analysis (0 = all cores).
    pub threads: usize,
    /// Enable the strict-bounds extension: constant length guards must
    /// fit the destination's stack capacity to count as sanitisation
    /// (see [`crate::taint::detect_with`]).
    pub strict_bounds: bool,
    /// Enable the interval abstract-interpretation extension
    /// ([`crate::taint::BoundsMode::Interval`]): path constraints are
    /// evaluated over an interval domain, so symbolic guards are judged
    /// against the destination capacity and contradictory (infeasible)
    /// paths are suppressed during both propagation and detection.
    /// Subsumes `strict_bounds`.
    pub interval_guards: bool,
    /// When set, only functions whose name passes the filter are
    /// analyzed — the paper does this for the large Uniview/Hikvision
    /// images ("we manually extract 430 functions that are used to
    /// process RTSP and HTTP", §V-A).
    pub function_filter: Option<Vec<String>>,
    /// Abort the scan on the first function that cannot be lifted or
    /// that panics, instead of downgrading it to an opaque summary and
    /// carrying on. `false` (keep-going) is the production default for
    /// whole-image scans; `true` is the old behaviour, useful when a
    /// clean corpus is expected and any failure is a bug.
    pub fail_fast: bool,
}

impl Default for DtaintConfig {
    fn default() -> Self {
        DtaintConfig {
            symex: SymexConfig::default(),
            dataflow: DataflowConfig { sink_names: default_sink_names(), ..Default::default() },
            sources: default_sources(),
            threads: 0,
            strict_bounds: false,
            interval_guards: false,
            function_filter: None,
            fail_fast: false,
        }
    }
}

/// The DTaint analyzer.
///
/// # Examples
///
/// See the crate-level example ([`crate`]) for an end-to-end run on an
/// assembled binary.
#[derive(Debug, Clone, Default)]
pub struct Dtaint {
    config: DtaintConfig,
}

impl Dtaint {
    /// Creates an analyzer with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an analyzer with explicit configuration.
    pub fn with_config(config: DtaintConfig) -> Self {
        Dtaint { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &DtaintConfig {
        &self.config
    }

    /// Analyzes one binary end-to-end.
    ///
    /// In the default keep-going mode a function that cannot be lifted,
    /// exhausts its analysis budget, or panics is downgraded — never
    /// aborting the scan — and recorded in
    /// [`AnalysisReport::skipped_functions`]. With
    /// [`DtaintConfig::fail_fast`] the first lift failure or caught
    /// panic aborts instead.
    ///
    /// # Errors
    ///
    /// In fail-fast mode only: propagates lifting failures (undecodable
    /// instruction words, unmapped reads) from CFG construction, and
    /// converts caught analysis panics into
    /// [`dtaint_fwbin::Error::BadFormat`].
    pub fn analyze(&self, bin: &Binary, name: &str) -> dtaint_fwbin::Result<AnalysisReport> {
        // Per-function outcome records, keyed by entry address; only
        // non-Analyzed outcomes are stored, and a later stage may
        // overwrite with a more severe outcome.
        let mut records: BTreeMap<u32, FunctionRecord> = BTreeMap::new();

        // Stage 1: lift + CFGs + call graph. Each function lifts behind
        // its own error and panic boundary; failures downgrade that one
        // function to an opaque (absent) summary.
        let t = Instant::now();
        let mut syms: Vec<&dtaint_fwbin::Symbol> = bin.functions();
        if let Some(filter) = &self.config.function_filter {
            syms.retain(|s| filter.iter().any(|f| s.name.contains(f.as_str())));
        }
        let total_functions = syms.len();
        let mut cfgs: Vec<FunctionCfg> = Vec::with_capacity(syms.len());
        for s in &syms {
            match catch_unwind(AssertUnwindSafe(|| build_function_cfg(bin, s))) {
                Ok(Ok(cfg)) => cfgs.push(cfg),
                Ok(Err(e)) => {
                    if self.config.fail_fast {
                        return Err(e);
                    }
                    record(
                        &mut records,
                        s.addr,
                        &s.name,
                        FunctionOutcome::LiftFailed,
                        e.to_string(),
                    );
                }
                Err(_) => {
                    if self.config.fail_fast {
                        return Err(dtaint_fwbin::Error::BadFormat(format!(
                            "panic while lifting `{}`",
                            s.name
                        )));
                    }
                    record(
                        &mut records,
                        s.addr,
                        &s.name,
                        FunctionOutcome::Panicked,
                        "panic during lift/CFG construction".into(),
                    );
                }
            }
        }
        let mut callgraph = CallGraph::build(bin, &cfgs);
        let lift_cfg = t.elapsed();

        // Stage 2: per-function static symbolic analysis, in parallel
        // with private pools, merged afterwards. A panicking function is
        // rolled back out of its pool and downgraded to an opaque
        // summary; a fuel-exhausted one is retried once degraded.
        let t = Instant::now();
        let stage = self.run_symex(bin, &cfgs);
        let SymexStage { summaries, pool, records: symex_records, retried, retry_time } = stage;
        for (addr, name, outcome, detail) in symex_records {
            if self.config.fail_fast && outcome == FunctionOutcome::Panicked {
                return Err(dtaint_fwbin::Error::BadFormat(format!(
                    "panic while analyzing `{name}`"
                )));
            }
            record(&mut records, addr, &name, outcome, detail);
        }
        let ssa = t.elapsed();

        // Stage 3: alias + layout similarity + bottom-up propagation.
        // The propagation walk shares the session thread count with the
        // symbolic stage; results are identical for every value.
        let t = Instant::now();
        let mut df_config = self.config.dataflow.clone();
        df_config.threads = self.effective_threads(cfgs.len());
        df_config.interval_guards |= self.config.interval_guards;
        let df = build_dataflow(bin, &mut callgraph, summaries, pool, &df_config);
        let fn_name_of = |addr: u32| {
            df.finals
                .get(&addr)
                .map(|f| f.summary.name.clone())
                .unwrap_or_else(|| format!("{addr:#x}"))
        };
        for &addr in &df.alias_panics {
            record(
                &mut records,
                addr,
                &fn_name_of(addr),
                FunctionOutcome::Degraded,
                "alias stage panicked; alias rewriting skipped".into(),
            );
        }
        for f in df.finals.values() {
            if f.panicked {
                record(
                    &mut records,
                    f.summary.addr,
                    &f.summary.name,
                    FunctionOutcome::Panicked,
                    "panic during data-flow propagation".into(),
                );
            } else if f.budget_exhausted {
                record(
                    &mut records,
                    f.summary.addr,
                    &f.summary.name,
                    FunctionOutcome::BudgetExceeded,
                    format!("data-flow fuel exhausted (max_fuel = {})", df_config.max_fuel),
                );
            }
        }
        if self.config.fail_fast {
            if let Some(r) = records.values().find(|r| r.outcome == FunctionOutcome::Panicked) {
                return Err(dtaint_fwbin::Error::BadFormat(format!(
                    "panic while analyzing `{}`",
                    r.name
                )));
            }
        }
        let ddg = t.elapsed();

        // Stage 4: taint judgement.
        let t = Instant::now();
        let fn_names: HashMap<u32, String> =
            cfgs.iter().map(|c| (c.addr, c.name.clone())).collect();
        let mode = if self.config.interval_guards {
            taint::BoundsMode::Interval
        } else if self.config.strict_bounds {
            taint::BoundsMode::Strict
        } else {
            taint::BoundsMode::Paper
        };
        let outcome = taint::detect_full(&df, Some(bin), &self.config.sources, &fn_names, mode);
        for &addr in &outcome.failed_holders {
            if self.config.fail_fast {
                return Err(dtaint_fwbin::Error::BadFormat(format!(
                    "panic while judging `{}`",
                    fn_name_of(addr)
                )));
            }
            record(
                &mut records,
                addr,
                &fn_name_of(addr),
                FunctionOutcome::Panicked,
                "panic during taint judgement".into(),
            );
        }
        let detect = t.elapsed();

        let sinks_count = df
            .finals
            .values()
            .flat_map(|f| f.sinks.iter())
            .filter(|s| s.call_chain.is_empty())
            .count();
        let loop_copy_sinks = df
            .finals
            .values()
            .flat_map(|f| f.sinks.iter())
            .filter(|s| s.kind == SinkKind::LoopCopy && s.call_chain.is_empty())
            .count();

        let functions_skipped = records
            .values()
            .filter(|r| {
                matches!(r.outcome, FunctionOutcome::LiftFailed | FunctionOutcome::Panicked)
            })
            .count();
        Ok(AnalysisReport {
            binary_name: name.to_owned(),
            arch: bin.arch.to_string(),
            functions: cfgs.len(),
            blocks: cfgs.iter().map(|c| c.block_count()).sum(),
            call_graph_edges: callgraph.edge_count(),
            sinks_count,
            resolved_indirect: df.resolved_indirect.len(),
            findings: outcome.findings,
            infeasible_suppressed: outcome.infeasible_suppressed + df.pruned_infeasible,
            functions_analyzed: total_functions - functions_skipped,
            functions_skipped,
            functions_retried: retried,
            loop_copy_sinks,
            skipped_functions: records.into_values().collect(),
            timings: StageTimings {
                lift_cfg,
                ssa,
                ddg,
                detect,
                ddg_alias: df.timings.alias,
                ddg_indirect: df.timings.indirect,
                ddg_propagate: df.timings.propagate,
                ddg_absint: df.timings.absint,
                detect_absint: outcome.absint,
                ssa_retry: retry_time,
            },
        })
    }

    /// Resolves the session thread count (0 = all cores) against the
    /// number of work items.
    fn effective_threads(&self, work_items: usize) -> usize {
        let threads = if self.config.threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.config.threads
        };
        threads.clamp(1, work_items.max(1))
    }

    /// Runs the per-function symbolic analysis, parallelised with
    /// crossbeam scoped threads; each worker interns into a private pool
    /// that is translated into the global pool at the end. Per-function
    /// panics are caught and rolled back out of the pool; fuel
    /// exhaustion triggers one degraded retry (see [`symex_one`]).
    fn run_symex(&self, bin: &Binary, cfgs: &[FunctionCfg]) -> SymexStage {
        let threads = self.effective_threads(cfgs.len());
        let mut stage = SymexStage {
            summaries: Vec::with_capacity(cfgs.len()),
            pool: ExprPool::new(),
            records: Vec::new(),
            retried: 0,
            retry_time: Duration::ZERO,
        };
        if threads <= 1 || cfgs.len() < 8 {
            for c in cfgs {
                let one = symex_one(bin, c, &mut stage.pool, &self.config.symex);
                stage.absorb(one, None);
            }
            return stage;
        }
        let chunk = cfgs.len().div_ceil(threads);
        let parts: Vec<(Vec<SymexOne>, ExprPool)> = crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for slice in cfgs.chunks(chunk) {
                let symex = self.config.symex;
                handles.push(scope.spawn(move |_| {
                    let mut pool = ExprPool::new();
                    let out: Vec<SymexOne> =
                        slice.iter().map(|c| symex_one(bin, c, &mut pool, &symex)).collect();
                    (out, pool)
                }));
            }
            handles.into_iter().map(|h| h.join().expect("symex worker panicked")).collect()
        })
        .expect("crossbeam scope");
        for (ones, local) in parts {
            for one in ones {
                stage.absorb(one, Some(&local));
            }
        }
        stage
    }
}

/// Result of the symbolic-execution stage.
struct SymexStage {
    summaries: Vec<FuncSummary>,
    pool: ExprPool,
    /// `(addr, name, outcome, detail)` for every non-Analyzed function.
    records: Vec<(u32, String, FunctionOutcome, String)>,
    retried: usize,
    retry_time: Duration,
}

impl SymexStage {
    /// Folds one function's result in, translating its summary from the
    /// worker's private pool when one is given.
    fn absorb(&mut self, one: SymexOne, local: Option<&ExprPool>) {
        let summary = match local {
            Some(local) => one.summary.translate_into(local, &mut self.pool),
            None => one.summary,
        };
        if let Some((outcome, detail)) = one.record {
            self.records.push((summary.addr, summary.name.clone(), outcome, detail));
        }
        if one.retried {
            self.retried += 1;
            self.retry_time += one.retry_time;
        }
        self.summaries.push(summary);
    }
}

/// One function's symbolic-execution result.
struct SymexOne {
    summary: FuncSummary,
    record: Option<(FunctionOutcome, String)>,
    retried: bool,
    retry_time: Duration,
}

/// Analyzes one function behind a panic boundary with fuel-exhaustion
/// retry.
///
/// * A panic rolls the pool back to its pre-function state — erasing
///   every node and unknown index the failed run interned, so the
///   functions analyzed after it see bit-identical pool state whether
///   this function panicked or never existed — and yields an opaque
///   summary flagged [`FunctionOutcome::Panicked`].
/// * Fuel exhaustion rolls back and retries once under
///   [`SymexConfig::degraded`]; success is [`FunctionOutcome::Degraded`],
///   a second exhaustion keeps the partial degraded summary as
///   [`FunctionOutcome::BudgetExceeded`].
fn symex_one(
    bin: &Binary,
    cfg: &FunctionCfg,
    pool: &mut ExprPool,
    config: &SymexConfig,
) -> SymexOne {
    let mark = pool.mark();
    let full = catch_unwind(AssertUnwindSafe(|| analyze_function(bin, cfg, pool, config)));
    match full {
        Err(_) => {
            pool.rollback(mark);
            SymexOne {
                summary: opaque_summary(cfg),
                record: Some((FunctionOutcome::Panicked, "panic during symbolic execution".into())),
                retried: false,
                retry_time: Duration::ZERO,
            }
        }
        Ok(summary) if summary.fuel_exhausted => {
            let t = Instant::now();
            pool.rollback(mark);
            let degraded_config = config.degraded();
            let retry = catch_unwind(AssertUnwindSafe(|| {
                analyze_function(bin, cfg, pool, &degraded_config)
            }));
            match retry {
                Err(_) => {
                    pool.rollback(mark);
                    SymexOne {
                        summary: opaque_summary(cfg),
                        record: Some((
                            FunctionOutcome::Panicked,
                            "panic during degraded symbolic execution".into(),
                        )),
                        retried: true,
                        retry_time: t.elapsed(),
                    }
                }
                Ok(mut summary) => {
                    summary.degraded = true;
                    let record = if summary.fuel_exhausted {
                        (
                            FunctionOutcome::BudgetExceeded,
                            format!(
                                "fuel exhausted at full and degraded strength (max_fuel = {})",
                                config.max_fuel
                            ),
                        )
                    } else {
                        (
                            FunctionOutcome::Degraded,
                            format!(
                                "retried degraded after fuel exhaustion (max_fuel = {})",
                                config.max_fuel
                            ),
                        )
                    };
                    SymexOne {
                        summary,
                        record: Some(record),
                        retried: true,
                        retry_time: t.elapsed(),
                    }
                }
            }
        }
        Ok(summary) => {
            SymexOne { summary, record: None, retried: false, retry_time: Duration::ZERO }
        }
    }
}

/// The opaque summary a failed function downgrades to: no defs, no
/// callsites, no constraints — callers treat its calls like unknown
/// imports (`ret_{cs}` stays symbolic), a conservative pass-through.
fn opaque_summary(cfg: &FunctionCfg) -> FuncSummary {
    FuncSummary { addr: cfg.addr, name: cfg.name.clone(), ..FuncSummary::default() }
}

/// Inserts or upgrades a per-function outcome record, keeping the more
/// severe outcome when one exists (severity follows the lattice:
/// analyzed < degraded < budget-exceeded < lift-failed/panicked).
fn record(
    records: &mut BTreeMap<u32, FunctionRecord>,
    addr: u32,
    name: &str,
    outcome: FunctionOutcome,
    detail: String,
) {
    let severity = |o: FunctionOutcome| match o {
        FunctionOutcome::Analyzed => 0,
        FunctionOutcome::Degraded => 1,
        FunctionOutcome::BudgetExceeded => 2,
        FunctionOutcome::LiftFailed => 3,
        FunctionOutcome::Panicked => 4,
    };
    let new = FunctionRecord { addr, name: name.to_owned(), outcome, detail };
    match records.get_mut(&addr) {
        Some(old) if severity(old.outcome) >= severity(new.outcome) => {}
        Some(old) => *old = new,
        None => {
            records.insert(addr, new);
        }
    }
}
