//! The end-to-end DTaint pipeline (Figure 4 of the paper).
//!
//! `binary → IR/CFG → per-function symbolic analysis (parallel) →
//! pointer aliasing → layout similarity → bottom-up data flow →
//! sink/source matching → findings`.

use crate::report::{AnalysisReport, StageTimings};
use crate::sinks::{default_sink_names, default_sources};
use crate::taint;
use dtaint_cfg::{build_function_cfg, CallGraph, FunctionCfg};
use dtaint_dataflow::{build_dataflow, DataflowConfig, SinkKind};
use dtaint_fwbin::Binary;
use dtaint_symex::{analyze_function, ExprPool, FuncSummary, SymexConfig};
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// Configuration of the whole pipeline.
#[derive(Debug, Clone)]
pub struct DtaintConfig {
    /// Per-function symbolic execution settings.
    pub symex: SymexConfig,
    /// Data-flow stage settings (alias/indirect switches, sink names).
    pub dataflow: DataflowConfig,
    /// Import names treated as attacker-controlled sources.
    pub sources: HashSet<String>,
    /// Worker threads for the per-function analysis (0 = all cores).
    pub threads: usize,
    /// Enable the strict-bounds extension: constant length guards must
    /// fit the destination's stack capacity to count as sanitisation
    /// (see [`crate::taint::detect_with`]).
    pub strict_bounds: bool,
    /// Enable the interval abstract-interpretation extension
    /// ([`crate::taint::BoundsMode::Interval`]): path constraints are
    /// evaluated over an interval domain, so symbolic guards are judged
    /// against the destination capacity and contradictory (infeasible)
    /// paths are suppressed during both propagation and detection.
    /// Subsumes `strict_bounds`.
    pub interval_guards: bool,
    /// When set, only functions whose name passes the filter are
    /// analyzed — the paper does this for the large Uniview/Hikvision
    /// images ("we manually extract 430 functions that are used to
    /// process RTSP and HTTP", §V-A).
    pub function_filter: Option<Vec<String>>,
}

impl Default for DtaintConfig {
    fn default() -> Self {
        DtaintConfig {
            symex: SymexConfig::default(),
            dataflow: DataflowConfig { sink_names: default_sink_names(), ..Default::default() },
            sources: default_sources(),
            threads: 0,
            strict_bounds: false,
            interval_guards: false,
            function_filter: None,
        }
    }
}

/// The DTaint analyzer.
///
/// # Examples
///
/// See the crate-level example ([`crate`]) for an end-to-end run on an
/// assembled binary.
#[derive(Debug, Clone, Default)]
pub struct Dtaint {
    config: DtaintConfig,
}

impl Dtaint {
    /// Creates an analyzer with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an analyzer with explicit configuration.
    pub fn with_config(config: DtaintConfig) -> Self {
        Dtaint { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &DtaintConfig {
        &self.config
    }

    /// Analyzes one binary end-to-end.
    ///
    /// # Errors
    ///
    /// Propagates lifting failures (undecodable instruction words,
    /// unmapped reads) from CFG construction.
    pub fn analyze(&self, bin: &Binary, name: &str) -> dtaint_fwbin::Result<AnalysisReport> {
        // Stage 1: lift + CFGs + call graph.
        let t = Instant::now();
        let mut syms: Vec<&dtaint_fwbin::Symbol> = bin.functions();
        if let Some(filter) = &self.config.function_filter {
            syms.retain(|s| filter.iter().any(|f| s.name.contains(f.as_str())));
        }
        let cfgs: Vec<FunctionCfg> =
            syms.iter().map(|s| build_function_cfg(bin, s)).collect::<dtaint_fwbin::Result<_>>()?;
        let mut callgraph = CallGraph::build(bin, &cfgs);
        let lift_cfg = t.elapsed();

        // Stage 2: per-function static symbolic analysis, in parallel
        // with private pools, merged afterwards.
        let t = Instant::now();
        let (summaries, pool) = self.run_symex(bin, &cfgs);
        let ssa = t.elapsed();

        // Stage 3: alias + layout similarity + bottom-up propagation.
        // The propagation walk shares the session thread count with the
        // symbolic stage; results are identical for every value.
        let t = Instant::now();
        let mut df_config = self.config.dataflow.clone();
        df_config.threads = self.effective_threads(cfgs.len());
        df_config.interval_guards |= self.config.interval_guards;
        let df = build_dataflow(bin, &mut callgraph, summaries, pool, &df_config);
        let ddg = t.elapsed();

        // Stage 4: taint judgement.
        let t = Instant::now();
        let fn_names: HashMap<u32, String> =
            cfgs.iter().map(|c| (c.addr, c.name.clone())).collect();
        let mode = if self.config.interval_guards {
            taint::BoundsMode::Interval
        } else if self.config.strict_bounds {
            taint::BoundsMode::Strict
        } else {
            taint::BoundsMode::Paper
        };
        let outcome = taint::detect_full(&df, Some(bin), &self.config.sources, &fn_names, mode);
        let detect = t.elapsed();

        let sinks_count = df
            .finals
            .values()
            .flat_map(|f| f.sinks.iter())
            .filter(|s| s.call_chain.is_empty())
            .count();
        let loop_copy_sinks = df
            .finals
            .values()
            .flat_map(|f| f.sinks.iter())
            .filter(|s| s.kind == SinkKind::LoopCopy && s.call_chain.is_empty())
            .count();
        let _ = loop_copy_sinks;

        Ok(AnalysisReport {
            binary_name: name.to_owned(),
            arch: bin.arch.to_string(),
            functions: cfgs.len(),
            blocks: cfgs.iter().map(|c| c.block_count()).sum(),
            call_graph_edges: callgraph.edge_count(),
            sinks_count,
            resolved_indirect: df.resolved_indirect.len(),
            findings: outcome.findings,
            infeasible_suppressed: outcome.infeasible_suppressed + df.pruned_infeasible,
            timings: StageTimings {
                lift_cfg,
                ssa,
                ddg,
                detect,
                ddg_alias: df.timings.alias,
                ddg_indirect: df.timings.indirect,
                ddg_propagate: df.timings.propagate,
                ddg_absint: df.timings.absint,
                detect_absint: outcome.absint,
            },
        })
    }

    /// Resolves the session thread count (0 = all cores) against the
    /// number of work items.
    fn effective_threads(&self, work_items: usize) -> usize {
        let threads = if self.config.threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.config.threads
        };
        threads.clamp(1, work_items.max(1))
    }

    /// Runs the per-function symbolic analysis, parallelised with
    /// crossbeam scoped threads; each worker interns into a private pool
    /// that is translated into the global pool at the end.
    fn run_symex(&self, bin: &Binary, cfgs: &[FunctionCfg]) -> (Vec<FuncSummary>, ExprPool) {
        let threads = self.effective_threads(cfgs.len());
        let mut global = ExprPool::new();
        let mut merged: Vec<FuncSummary> = Vec::with_capacity(cfgs.len());
        if threads <= 1 || cfgs.len() < 8 {
            for c in cfgs {
                let s = analyze_function(bin, c, &mut global, &self.config.symex);
                merged.push(s);
            }
            return (merged, global);
        }
        let chunk = cfgs.len().div_ceil(threads);
        let parts: Vec<(Vec<FuncSummary>, ExprPool)> = crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for slice in cfgs.chunks(chunk) {
                let symex = self.config.symex;
                handles.push(scope.spawn(move |_| {
                    let mut pool = ExprPool::new();
                    let out: Vec<FuncSummary> =
                        slice.iter().map(|c| analyze_function(bin, c, &mut pool, &symex)).collect();
                    (out, pool)
                }));
            }
            handles.into_iter().map(|h| h.join().expect("symex worker panicked")).collect()
        })
        .expect("crossbeam scope");
        for (summaries, local) in parts {
            for s in summaries {
                merged.push(s.translate_into(&local, &mut global));
            }
        }
        (merged, global)
    }
}
