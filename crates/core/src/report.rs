//! Findings and analysis reports.

use crate::sinks::VulnKind;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;
use std::time::Duration;

/// A source that contributed tainted data to a finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SourceRef {
    /// Library function name (`recv`, `getenv`, …).
    pub name: String,
    /// Instruction address of the source call.
    pub ins_addr: u32,
}

/// One `(source, path, sink)` tuple the detector judged.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Finding {
    /// Weakness class.
    pub kind: VulnKindRepr,
    /// Sink name (`memcpy`, `system`, or `loop-copy`).
    pub sink: String,
    /// Instruction address of the sink.
    pub sink_ins: u32,
    /// Name of the function containing the sink.
    pub sink_fn: String,
    /// Name of the function the flow was observed from (where argument
    /// substitution bottomed out).
    pub observed_in: String,
    /// Sources feeding the tainted variable.
    pub sources: Vec<SourceRef>,
    /// Call-site chain from the observing function down to the sink.
    pub call_chain: Vec<u32>,
    /// The tainted variable, rendered in the paper's notation.
    pub tainted_expr: String,
    /// True when a sanitising constraint guards the path — a guarded
    /// finding is *not* reported as a vulnerability.
    pub sanitized: bool,
    /// The backward sink-to-source trace over the data-dependency graph,
    /// rendered source-first (may be empty for object-granular taint
    /// with no single def chain).
    #[serde(default)]
    pub trace: Vec<String>,
}

/// Serializable mirror of [`VulnKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VulnKindRepr {
    /// See [`VulnKind::BufferOverflow`].
    BufferOverflow,
    /// See [`VulnKind::CommandInjection`].
    CommandInjection,
}

impl From<VulnKind> for VulnKindRepr {
    fn from(k: VulnKind) -> Self {
        match k {
            VulnKind::BufferOverflow => VulnKindRepr::BufferOverflow,
            VulnKind::CommandInjection => VulnKindRepr::CommandInjection,
        }
    }
}

impl fmt::Display for VulnKindRepr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VulnKindRepr::BufferOverflow => f.write_str("buffer overflow"),
            VulnKindRepr::CommandInjection => f.write_str("command injection"),
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let status = if self.sanitized { "sanitized" } else { "VULNERABLE" };
        write!(
            f,
            "[{status}] {} via {} at {:#x} in {} (sources: {}; tainted: {})",
            self.kind,
            self.sink,
            self.sink_ins,
            self.sink_fn,
            self.sources
                .iter()
                .map(|s| format!("{}@{:#x}", s.name, s.ins_addr))
                .collect::<Vec<_>>()
                .join(", "),
            self.tainted_expr,
        )
    }
}

/// How the pipeline fared on one function — the fault-tolerance
/// lattice, ordered from full success to total loss.
///
/// Everything except [`FunctionOutcome::LiftFailed`] and
/// [`FunctionOutcome::Panicked`] still contributes results to the
/// report; those two downgrade the function to an opaque summary (no
/// defs, conservative pass-through for callers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FunctionOutcome {
    /// Fully analyzed at full strength.
    Analyzed,
    /// Analyzed under the degraded profile (reduced path budget and/or
    /// alias rewriting off) after exhausting its fuel at full strength.
    Degraded,
    /// Even the degraded retry exhausted its fuel; partial results kept.
    BudgetExceeded,
    /// The function could not be lifted to a CFG (undecodable word,
    /// unmapped read, impossible symbol range); downgraded to opaque.
    LiftFailed,
    /// Analysis panicked and was caught; downgraded to opaque with the
    /// expression pool rolled back to its pre-function state.
    Panicked,
}

impl fmt::Display for FunctionOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FunctionOutcome::Analyzed => "analyzed",
            FunctionOutcome::Degraded => "degraded",
            FunctionOutcome::BudgetExceeded => "budget-exceeded",
            FunctionOutcome::LiftFailed => "lift-failed",
            FunctionOutcome::Panicked => "panicked",
        })
    }
}

/// Per-function outcome record for every function that did not come
/// through [`FunctionOutcome::Analyzed`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionRecord {
    /// Function entry address.
    pub addr: u32,
    /// Function name.
    pub name: String,
    /// How far the analysis got.
    pub outcome: FunctionOutcome,
    /// Human-readable reason (the lift error, the exhausted budget, the
    /// panic stage).
    pub detail: String,
}

/// Wall-clock cost of each pipeline stage.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct StageTimings {
    /// Lifting + CFG + call-graph construction.
    pub lift_cfg: Duration,
    /// Static symbolic analysis over all functions (Table VII "SSA").
    pub ssa: Duration,
    /// Alias + layout + bottom-up propagation (Table VII "DDG").
    pub ddg: Duration,
    /// Sink/source matching and sanitisation checks.
    pub detect: Duration,
    /// DDG sub-stage: pointer-alias resolution.
    #[serde(default)]
    pub ddg_alias: Duration,
    /// DDG sub-stage: indirect-call resolution by layout similarity.
    #[serde(default)]
    pub ddg_indirect: Duration,
    /// DDG sub-stage: bottom-up summary propagation (Algorithm 2) —
    /// the part parallelised by [`DtaintConfig::threads`].
    ///
    /// [`DtaintConfig::threads`]: crate::DtaintConfig
    #[serde(default)]
    pub ddg_propagate: Duration,
    /// Interval-solver time spent pruning infeasible observations during
    /// propagation (interval-guards mode; zero otherwise). Summed across
    /// workers, so it can exceed the wall-clock share of `ddg`.
    #[serde(default)]
    pub ddg_absint: Duration,
    /// Interval-solver time spent judging guards during detection
    /// (interval-guards mode; zero otherwise).
    #[serde(default)]
    pub detect_absint: Duration,
    /// Time spent re-running fuel-exhausted functions under the
    /// degraded symbolic-execution profile (part of `ssa` wall-clock).
    #[serde(default)]
    pub ssa_retry: Duration,
}

impl StageTimings {
    /// Total across all stages.
    pub fn total(&self) -> Duration {
        self.lift_cfg + self.ssa + self.ddg + self.detect
    }
}

/// The complete result of analyzing one binary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// Name used for reporting (binary or firmware component).
    pub binary_name: String,
    /// Guest architecture.
    pub arch: String,
    /// Number of functions analyzed.
    pub functions: usize,
    /// Total basic blocks.
    pub blocks: usize,
    /// Call-graph edges (Table II).
    pub call_graph_edges: usize,
    /// Number of sensitive sink call sites found (Table III "Sinks").
    pub sinks_count: usize,
    /// Indirect calls resolved by layout similarity.
    pub resolved_indirect: usize,
    /// Every judged `(source, path, sink)` tuple.
    pub findings: Vec<Finding>,
    /// Tainted sink observations suppressed because their path
    /// constraints are contradictory (interval-guards mode only).
    #[serde(default)]
    pub infeasible_suppressed: usize,
    /// Functions that produced results — [`FunctionOutcome::Analyzed`],
    /// [`FunctionOutcome::Degraded`] or
    /// [`FunctionOutcome::BudgetExceeded`].
    #[serde(default)]
    pub functions_analyzed: usize,
    /// Functions downgraded to opaque summaries
    /// ([`FunctionOutcome::LiftFailed`] or
    /// [`FunctionOutcome::Panicked`]).
    #[serde(default)]
    pub functions_skipped: usize,
    /// Functions re-run under the degraded profile after exhausting
    /// their fuel at full strength.
    #[serde(default)]
    pub functions_retried: usize,
    /// Loop-copy sink observations carried by the data-flow stage
    /// (the paper's memory-copies-in-loops heuristic, §III-F).
    #[serde(default)]
    pub loop_copy_sinks: usize,
    /// One record per function that did not come through fully analyzed,
    /// in address order — the skip table `dtaint scan` prints.
    #[serde(default)]
    pub skipped_functions: Vec<FunctionRecord>,
    /// Stage timings.
    pub timings: StageTimings,
}

impl AnalysisReport {
    /// Unsafe paths: findings with taint and no sanitisation
    /// (Table III "Vulnerable paths").
    pub fn vulnerable_paths(&self) -> Vec<&Finding> {
        self.findings.iter().filter(|f| !f.sanitized).collect()
    }

    /// Distinct vulnerable sink sites (Table III "Vulnerability").
    pub fn vulnerabilities(&self) -> usize {
        self.vulnerable_paths().iter().map(|f| f.sink_ins).collect::<BTreeSet<_>>().len()
    }

    /// Vulnerable findings of one kind.
    pub fn findings_of_kind(&self, kind: VulnKindRepr) -> Vec<&Finding> {
        self.vulnerable_paths().into_iter().filter(|f| f.kind == kind).collect()
    }

    /// True when no function was downgraded to an opaque summary — the
    /// report covers every function the binary declares.
    pub fn coverage_complete(&self) -> bool {
        self.functions_skipped == 0
    }

    /// Plain-text table of every function that did not come through
    /// fully analyzed (empty string when coverage is clean).
    pub fn skip_table(&self) -> String {
        use std::fmt::Write as _;
        if self.skipped_functions.is_empty() {
            return String::new();
        }
        let mut out = String::new();
        let _ = writeln!(out, "degraded/skipped functions:");
        let _ = writeln!(out, "  {:<10} {:<24} {:<16} detail", "address", "function", "outcome");
        for r in &self.skipped_functions {
            let _ = writeln!(
                out,
                "  {:<#10x} {:<24} {:<16} {}",
                r.addr,
                r.name,
                r.outcome.to_string(),
                r.detail
            );
        }
        out
    }

    /// Renders the report as pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates serialisation failures (practically impossible for
    /// this type).
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a report back from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying parse error for malformed input.
    pub fn from_json(s: &str) -> serde_json::Result<AnalysisReport> {
        serde_json::from_str(s)
    }

    /// Renders the report as a Markdown document (summary table,
    /// vulnerable findings with traces, then suppressed/sanitised paths).
    pub fn to_markdown(&self) -> String {
        use std::fmt::Write as _;
        let mut md = String::new();
        let _ = writeln!(md, "# DTaint report: `{}`\n", self.binary_name);
        let _ = writeln!(md, "| metric | value |");
        let _ = writeln!(md, "|---|---|");
        let _ = writeln!(md, "| architecture | {} |", self.arch);
        let _ = writeln!(md, "| functions analyzed | {} |", self.functions);
        let _ = writeln!(md, "| basic blocks | {} |", self.blocks);
        let _ = writeln!(md, "| call-graph edges | {} |", self.call_graph_edges);
        let _ = writeln!(md, "| sensitive sinks | {} |", self.sinks_count);
        let _ = writeln!(md, "| indirect calls resolved | {} |", self.resolved_indirect);
        let _ = writeln!(md, "| vulnerable paths | {} |", self.vulnerable_paths().len());
        if self.infeasible_suppressed > 0 {
            let _ =
                writeln!(md, "| infeasible paths suppressed | {} |", self.infeasible_suppressed);
        }
        if self.loop_copy_sinks > 0 {
            let _ = writeln!(md, "| loop-copy sinks | {} |", self.loop_copy_sinks);
        }
        if !self.coverage_complete() || self.functions_retried > 0 {
            let _ = writeln!(md, "| functions skipped | {} |", self.functions_skipped);
            let _ = writeln!(md, "| functions retried (degraded) | {} |", self.functions_retried);
        }
        let _ = writeln!(md, "| **vulnerabilities** | **{}** |", self.vulnerabilities());
        let _ = writeln!(md, "| analysis time | {:.2?} |", self.timings.total());
        let vulnerable = self.vulnerable_paths();
        if !vulnerable.is_empty() {
            let _ = writeln!(md, "\n## Vulnerabilities\n");
            for f in &vulnerable {
                let _ = writeln!(
                    md,
                    "### {} via `{}` at `{:#x}` (in `{}`)\n",
                    f.kind, f.sink, f.sink_ins, f.sink_fn
                );
                let srcs: Vec<String> =
                    f.sources.iter().map(|s| format!("`{}@{:#x}`", s.name, s.ins_addr)).collect();
                let _ = writeln!(md, "- sources: {}", srcs.join(", "));
                let _ = writeln!(md, "- tainted variable: `{}`", f.tainted_expr);
                let _ = writeln!(md, "- observed from: `{}`", f.observed_in);
                if !f.trace.is_empty() {
                    let _ = writeln!(md, "- data-flow trace:");
                    for step in &f.trace {
                        let _ = writeln!(md, "  - {step}");
                    }
                }
                let _ = writeln!(md);
            }
        }
        let sanitized: Vec<&Finding> = self.findings.iter().filter(|f| f.sanitized).collect();
        if !sanitized.is_empty() {
            let _ = writeln!(md, "## Sanitised paths (not reported)\n");
            for f in sanitized {
                let _ = writeln!(
                    md,
                    "- {} via `{}` at `{:#x}` — guarded by a path constraint",
                    f.kind, f.sink, f.sink_ins
                );
            }
        }
        if !self.skipped_functions.is_empty() {
            let _ = writeln!(md, "\n## Degraded / skipped functions\n");
            let _ = writeln!(md, "| address | function | outcome | detail |");
            let _ = writeln!(md, "|---|---|---|---|");
            for r in &self.skipped_functions {
                let _ = writeln!(
                    md,
                    "| `{:#x}` | `{}` | {} | {} |",
                    r.addr, r.name, r.outcome, r.detail
                );
            }
        }
        md
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(sink_ins: u32, sanitized: bool) -> Finding {
        Finding {
            kind: VulnKindRepr::BufferOverflow,
            sink: "memcpy".into(),
            sink_ins,
            sink_fn: "f".into(),
            observed_in: "main".into(),
            sources: vec![SourceRef { name: "recv".into(), ins_addr: 0x100 }],
            call_chain: vec![0x200],
            tainted_expr: "ret_0x100".into(),
            sanitized,
            trace: vec!["source recv@0x100".into()],
        }
    }

    fn report() -> AnalysisReport {
        AnalysisReport {
            binary_name: "t".into(),
            arch: "arm32e".into(),
            functions: 2,
            blocks: 5,
            call_graph_edges: 3,
            sinks_count: 2,
            resolved_indirect: 0,
            findings: vec![finding(0x10, false), finding(0x10, false), finding(0x20, true)],
            infeasible_suppressed: 0,
            functions_analyzed: 2,
            functions_skipped: 0,
            functions_retried: 0,
            loop_copy_sinks: 0,
            skipped_functions: Vec::new(),
            timings: StageTimings::default(),
        }
    }

    #[test]
    fn vulnerable_paths_exclude_sanitized() {
        let r = report();
        assert_eq!(r.vulnerable_paths().len(), 2);
        assert_eq!(r.vulnerabilities(), 1, "same sink site counted once");
    }

    #[test]
    fn json_roundtrip() {
        let r = report();
        let s = r.to_json().unwrap();
        let back = AnalysisReport::from_json(&s).unwrap();
        assert_eq!(back.findings.len(), 3);
        assert_eq!(back.binary_name, "t");
    }

    #[test]
    fn markdown_renders_summary_and_findings() {
        let md = report().to_markdown();
        assert!(md.contains("# DTaint report"));
        assert!(md.contains("**vulnerabilities** | **1**"));
        assert!(md.contains("## Vulnerabilities"));
        assert!(md.contains("Sanitised paths"));
        assert!(md.contains("source recv@0x100"));
    }

    #[test]
    fn skip_table_lists_non_analyzed_functions() {
        let mut r = report();
        assert!(r.coverage_complete());
        assert_eq!(r.skip_table(), "");
        r.functions_skipped = 1;
        r.skipped_functions.push(FunctionRecord {
            addr: 0x8000,
            name: "broken".into(),
            outcome: FunctionOutcome::LiftFailed,
            detail: "undecodable instruction word".into(),
        });
        assert!(!r.coverage_complete());
        let table = r.skip_table();
        assert!(table.contains("0x8000"));
        assert!(table.contains("broken"));
        assert!(table.contains("lift-failed"));
        let md = r.to_markdown();
        assert!(md.contains("Degraded / skipped functions"));
        // Round-trips through JSON, and old reports without the new
        // fields still parse.
        let back = AnalysisReport::from_json(&r.to_json().unwrap()).unwrap();
        assert_eq!(back.skipped_functions, r.skipped_functions);
    }

    #[test]
    fn display_flags_vulnerable_findings() {
        let s = finding(0x10, false).to_string();
        assert!(s.contains("VULNERABLE"));
        assert!(s.contains("recv@0x100"));
        let s = finding(0x10, true).to_string();
        assert!(s.contains("sanitized"));
    }
}
