//! Findings and analysis reports.

use crate::evidence::{EvidenceStep, SanitizeVerdict};
use crate::sinks::VulnKind;
use dtaint_telemetry::MetricsRegistry;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;
use std::time::Duration;

/// A source that contributed tainted data to a finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SourceRef {
    /// Library function name (`recv`, `getenv`, …).
    pub name: String,
    /// Instruction address of the source call.
    pub ins_addr: u32,
}

/// One `(source, path, sink)` tuple the detector judged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Finding {
    /// Weakness class.
    pub kind: VulnKindRepr,
    /// Sink name (`memcpy`, `system`, or `loop-copy`).
    pub sink: String,
    /// Instruction address of the sink.
    pub sink_ins: u32,
    /// Name of the function containing the sink.
    pub sink_fn: String,
    /// Name of the function the flow was observed from (where argument
    /// substitution bottomed out).
    pub observed_in: String,
    /// Sources feeding the tainted variable.
    pub sources: Vec<SourceRef>,
    /// Call-site chain from the observing function down to the sink.
    pub call_chain: Vec<u32>,
    /// The tainted variable, rendered in the paper's notation.
    pub tainted_expr: String,
    /// Content-addressed identity: a hash of the finding's semantics
    /// (kind, sink, sink function, address-normalized tainted
    /// expression, source names) that is stable across relinks and
    /// verdict changes. See [`crate::evidence::fingerprint`].
    #[serde(default)]
    pub fingerprint: String,
    /// The typed sanitization decision. A sanitised finding is *not*
    /// reported as a vulnerability; see [`Finding::sanitized`].
    #[serde(default)]
    pub verdict: SanitizeVerdict,
    /// The typed provenance chain, rendered source-first and terminated
    /// by an [`EvidenceStep::Verdict`] (empty only in hand-built or
    /// legacy reports).
    #[serde(default)]
    pub evidence: Vec<EvidenceStep>,
}

impl Finding {
    /// True when a sanitising constraint guards the path — the derived
    /// view of [`Finding::verdict`] that replaces the old stored bool.
    pub fn sanitized(&self) -> bool {
        self.verdict.sanitized()
    }

    /// Renders the interprocedural call chain as
    /// `f1 →(0xADDR) f2 →(0xADDR) sink_fn`, preferring the callee names
    /// recorded in [`EvidenceStep::CallsiteSubstitution`] evidence and
    /// falling back to raw addresses between `observed_in` and
    /// `sink_fn` when the chain carries no evidence. Empty when the
    /// flow never crossed a call site.
    pub fn call_chain_display(&self) -> String {
        if self.call_chain.is_empty() {
            return String::new();
        }
        let subs: Vec<(&u32, &str, &str)> = self
            .evidence
            .iter()
            .filter_map(|s| match s {
                EvidenceStep::CallsiteSubstitution { ins_addr, caller, callee } => {
                    Some((ins_addr, caller.as_str(), callee.as_str()))
                }
                _ => None,
            })
            .collect();
        let mut parts: Vec<String> = Vec::new();
        if subs.len() == self.call_chain.len() {
            parts.push(subs[0].1.to_owned());
            for (addr, _, callee) in subs {
                parts.push(format!("→({addr:#x})"));
                parts.push(callee.to_owned());
            }
        } else {
            parts.push(self.observed_in.clone());
            for addr in &self.call_chain {
                parts.push(format!("→({addr:#x})"));
            }
            parts.push(self.sink_fn.clone());
        }
        parts.join(" ")
    }
}

/// Serializable mirror of [`VulnKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum VulnKindRepr {
    /// See [`VulnKind::BufferOverflow`].
    BufferOverflow,
    /// See [`VulnKind::CommandInjection`].
    CommandInjection,
}

impl From<VulnKind> for VulnKindRepr {
    fn from(k: VulnKind) -> Self {
        match k {
            VulnKind::BufferOverflow => VulnKindRepr::BufferOverflow,
            VulnKind::CommandInjection => VulnKindRepr::CommandInjection,
        }
    }
}

impl fmt::Display for VulnKindRepr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VulnKindRepr::BufferOverflow => f.write_str("buffer overflow"),
            VulnKindRepr::CommandInjection => f.write_str("command injection"),
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let status = if self.sanitized() { "sanitized" } else { "VULNERABLE" };
        write!(
            f,
            "[{status}] {} via {} at {:#x} in {} (sources: {}; tainted: {})",
            self.kind,
            self.sink,
            self.sink_ins,
            self.sink_fn,
            self.sources
                .iter()
                .map(|s| format!("{}@{:#x}", s.name, s.ins_addr))
                .collect::<Vec<_>>()
                .join(", "),
            self.tainted_expr,
        )?;
        let chain = self.call_chain_display();
        if !chain.is_empty() {
            write!(f, " [chain: {chain}]")?;
        }
        Ok(())
    }
}

/// Sorts findings into the canonical report order: vulnerable before
/// sanitised, then by kind, fingerprint, and the remaining identity
/// fields as tie-breakers. The key is a pure function of deterministic
/// finding fields, so the order is stable across runs and thread
/// counts.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        a.sanitized()
            .cmp(&b.sanitized())
            .then_with(|| a.kind.cmp(&b.kind))
            .then_with(|| a.fingerprint.cmp(&b.fingerprint))
            .then_with(|| a.sink_ins.cmp(&b.sink_ins))
            .then_with(|| a.observed_in.cmp(&b.observed_in))
            .then_with(|| a.call_chain.cmp(&b.call_chain))
            .then_with(|| a.sources.cmp(&b.sources))
    });
}

/// Drops findings that are identical in *every* field (full structural
/// equality, not just the fingerprint), returning how many were
/// suppressed. Expects the canonically sorted order produced by
/// [`sort_findings`], under which identical findings are adjacent.
pub fn dedup_findings(findings: &mut Vec<Finding>) -> usize {
    let before = findings.len();
    findings.dedup();
    before - findings.len()
}

/// How the pipeline fared on one function — the fault-tolerance
/// lattice, ordered from full success to total loss.
///
/// Everything except [`FunctionOutcome::LiftFailed`] and
/// [`FunctionOutcome::Panicked`] still contributes results to the
/// report; those two downgrade the function to an opaque summary (no
/// defs, conservative pass-through for callers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FunctionOutcome {
    /// Fully analyzed at full strength.
    Analyzed,
    /// Analyzed under the degraded profile (reduced path budget and/or
    /// alias rewriting off) after exhausting its fuel at full strength.
    Degraded,
    /// Even the degraded retry exhausted its fuel; partial results kept.
    BudgetExceeded,
    /// The function could not be lifted to a CFG (undecodable word,
    /// unmapped read, impossible symbol range); downgraded to opaque.
    LiftFailed,
    /// Analysis panicked and was caught; downgraded to opaque with the
    /// expression pool rolled back to its pre-function state.
    Panicked,
}

impl fmt::Display for FunctionOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FunctionOutcome::Analyzed => "analyzed",
            FunctionOutcome::Degraded => "degraded",
            FunctionOutcome::BudgetExceeded => "budget-exceeded",
            FunctionOutcome::LiftFailed => "lift-failed",
            FunctionOutcome::Panicked => "panicked",
        })
    }
}

/// Per-function outcome record for every function that did not come
/// through [`FunctionOutcome::Analyzed`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionRecord {
    /// Function entry address.
    pub addr: u32,
    /// Function name.
    pub name: String,
    /// How far the analysis got.
    pub outcome: FunctionOutcome,
    /// Human-readable reason (the lift error, the exhausted budget, the
    /// panic stage).
    pub detail: String,
}

/// Wall-clock cost of each pipeline stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageTimings {
    /// Lifting + CFG + call-graph construction.
    pub lift_cfg: Duration,
    /// Static symbolic analysis over all functions (Table VII "SSA").
    pub ssa: Duration,
    /// Alias + layout + bottom-up propagation (Table VII "DDG").
    pub ddg: Duration,
    /// Sink/source matching and sanitisation checks.
    pub detect: Duration,
    /// DDG sub-stage: pointer-alias resolution.
    #[serde(default)]
    pub ddg_alias: Duration,
    /// DDG sub-stage: indirect-call resolution by layout similarity.
    #[serde(default)]
    pub ddg_indirect: Duration,
    /// DDG sub-stage: bottom-up summary propagation (Algorithm 2) —
    /// the part parallelised by [`DtaintConfig::threads`].
    ///
    /// [`DtaintConfig::threads`]: crate::DtaintConfig
    #[serde(default)]
    pub ddg_propagate: Duration,
    /// Interval-solver time spent pruning infeasible observations during
    /// propagation (interval-guards mode; zero otherwise). Summed across
    /// workers, so it can exceed the wall-clock share of `ddg`.
    #[serde(default)]
    pub ddg_absint: Duration,
    /// Interval-solver time spent judging guards during detection
    /// (interval-guards mode; zero otherwise).
    #[serde(default)]
    pub detect_absint: Duration,
    /// Time spent re-running fuel-exhausted functions under the
    /// degraded symbolic-execution profile (part of `ssa` wall-clock).
    #[serde(default)]
    pub ssa_retry: Duration,
}

impl StageTimings {
    /// Total across all stages.
    pub fn total(&self) -> Duration {
        self.lift_cfg + self.ssa + self.ddg + self.detect
    }

    /// Checks the internal accounting invariants: each recorded
    /// sub-stage must fit inside its parent stage's wall-clock (within
    /// `tolerance`, to absorb timer granularity). Returns a description
    /// of the first violation, or `None` when the timings are coherent.
    ///
    /// `ddg_absint` and `ssa_retry` are exempt: both are summed across
    /// workers (CPU time), so they legitimately exceed their parent's
    /// wall-clock share under parallelism.
    pub fn consistency_error(&self, tolerance: Duration) -> Option<String> {
        let ddg_subs = self.ddg_alias + self.ddg_indirect + self.ddg_propagate;
        if ddg_subs > self.ddg + tolerance {
            return Some(format!(
                "ddg sub-stages ({ddg_subs:?}) exceed ddg wall-clock ({:?})",
                self.ddg
            ));
        }
        if self.detect_absint > self.detect + tolerance {
            return Some(format!(
                "detect_absint ({:?}) exceeds detect wall-clock ({:?})",
                self.detect_absint, self.detect
            ));
        }
        let total = self.total();
        let parts = self.lift_cfg + self.ssa + self.ddg + self.detect;
        if total + tolerance < parts || parts + tolerance < total {
            return Some(format!("total ({total:?}) drifted from stage sum ({parts:?})"));
        }
        None
    }
}

/// Logical cost profile of one function, aggregated across pipeline
/// stages. Every field except the `*_us` durations is a deterministic
/// work counter — bit-identical across thread counts — and only those
/// logical fields ever feed reports or comparisons. The durations exist
/// for trace export and `--profile` display only.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FnCost {
    /// Function entry address.
    pub addr: u32,
    /// Function name.
    pub name: String,
    /// Basic blocks executed during symbolic exploration (the symex
    /// fuel spent; counts re-executions across paths).
    pub blocks_executed: u64,
    /// Execution paths explored by symex.
    pub paths_explored: u64,
    /// Definition pairs rewritten by alias recognition (Algorithm 1).
    pub alias_rewrites: u64,
    /// Fuel units spent by bottom-up propagation (Algorithm 2).
    pub ddg_fuel: u64,
    /// Sink observations visible from this function.
    pub sinks: u64,
    /// Wall-clock spent in symex for this function, in microseconds.
    /// Never deterministic; excluded from all logical comparisons.
    #[serde(default)]
    pub symex_us: u64,
    /// Wall-clock spent propagating this function, in microseconds.
    /// Never deterministic; excluded from all logical comparisons.
    #[serde(default)]
    pub ddg_us: u64,
}

impl FnCost {
    /// Logical work score used to rank hotspots: a pure function of the
    /// deterministic counters, so the ranking is identical across
    /// thread counts.
    pub fn work(&self) -> u64 {
        self.blocks_executed + self.ddg_fuel + self.alias_rewrites
    }
}

/// The observability section of a report: the per-image metrics
/// registry plus per-function cost profiles.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySection {
    /// Counters, gauges and histograms aggregated over the whole image.
    #[serde(default)]
    pub metrics: MetricsRegistry,
    /// Per-function cost profiles, in address order.
    #[serde(default)]
    pub functions: Vec<FnCost>,
}

impl TelemetrySection {
    /// The `n` most expensive functions by logical work, descending
    /// (ties broken by address, ascending). Zero-work functions are
    /// omitted.
    pub fn hotspots(&self, n: usize) -> Vec<&FnCost> {
        let mut v: Vec<&FnCost> = self.functions.iter().filter(|f| f.work() > 0).collect();
        v.sort_by(|a, b| b.work().cmp(&a.work()).then(a.addr.cmp(&b.addr)));
        v.truncate(n);
        v
    }
}

/// The complete result of analyzing one binary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// Name used for reporting (binary or firmware component).
    pub binary_name: String,
    /// Guest architecture.
    pub arch: String,
    /// Number of functions analyzed.
    pub functions: usize,
    /// Total basic blocks.
    pub blocks: usize,
    /// Call-graph edges (Table II).
    pub call_graph_edges: usize,
    /// Number of sensitive sink call sites found (Table III "Sinks").
    pub sinks_count: usize,
    /// Indirect calls resolved by layout similarity.
    pub resolved_indirect: usize,
    /// Every judged `(source, path, sink)` tuple.
    pub findings: Vec<Finding>,
    /// Tainted sink observations suppressed because their path
    /// constraints are contradictory (interval-guards mode only).
    #[serde(default)]
    pub infeasible_suppressed: usize,
    /// Functions that produced results — [`FunctionOutcome::Analyzed`],
    /// [`FunctionOutcome::Degraded`] or
    /// [`FunctionOutcome::BudgetExceeded`].
    #[serde(default)]
    pub functions_analyzed: usize,
    /// Functions downgraded to opaque summaries
    /// ([`FunctionOutcome::LiftFailed`] or
    /// [`FunctionOutcome::Panicked`]).
    #[serde(default)]
    pub functions_skipped: usize,
    /// Functions re-run under the degraded profile after exhausting
    /// their fuel at full strength.
    #[serde(default)]
    pub functions_retried: usize,
    /// Loop-copy sink observations carried by the data-flow stage
    /// (the paper's memory-copies-in-loops heuristic, §III-F).
    #[serde(default)]
    pub loop_copy_sinks: usize,
    /// One record per function that did not come through fully analyzed,
    /// in address order — the skip table `dtaint scan` prints.
    #[serde(default)]
    pub skipped_functions: Vec<FunctionRecord>,
    /// Stage timings.
    pub timings: StageTimings,
    /// Logical metrics and per-function cost profiles. The counters in
    /// here are deterministic (bit-identical across thread counts);
    /// wall-clock only appears in fields documented as such.
    #[serde(default)]
    pub telemetry: TelemetrySection,
}

impl AnalysisReport {
    /// Unsafe paths: findings with taint and no sanitisation
    /// (Table III "Vulnerable paths").
    pub fn vulnerable_paths(&self) -> Vec<&Finding> {
        self.findings.iter().filter(|f| !f.sanitized()).collect()
    }

    /// The report with every wall-clock field zeroed: stage timings and
    /// the per-function `symex_us`/`ddg_us` display costs. Everything
    /// left is a deterministic logical quantity, so two reports of the
    /// same image compare equal under `==` regardless of machine load,
    /// thread count, or whether an incremental cache served the scan —
    /// the comparison the differential cold-vs-warm harness performs.
    #[must_use]
    pub fn with_zeroed_wall_clock(mut self) -> AnalysisReport {
        self.timings = StageTimings::default();
        for f in &mut self.telemetry.functions {
            f.symex_us = 0;
            f.ddg_us = 0;
        }
        self
    }

    /// Distinct vulnerable sink sites (Table III "Vulnerability").
    pub fn vulnerabilities(&self) -> usize {
        self.vulnerable_paths().iter().map(|f| f.sink_ins).collect::<BTreeSet<_>>().len()
    }

    /// Vulnerable findings of one kind.
    pub fn findings_of_kind(&self, kind: VulnKindRepr) -> Vec<&Finding> {
        self.vulnerable_paths().into_iter().filter(|f| f.kind == kind).collect()
    }

    /// True when no function was downgraded to an opaque summary — the
    /// report covers every function the binary declares.
    pub fn coverage_complete(&self) -> bool {
        self.functions_skipped == 0
    }

    /// Plain-text table of every function that did not come through
    /// fully analyzed (empty string when coverage is clean).
    pub fn skip_table(&self) -> String {
        use std::fmt::Write as _;
        if self.skipped_functions.is_empty() {
            return String::new();
        }
        let mut out = String::new();
        let _ = writeln!(out, "degraded/skipped functions:");
        let _ = writeln!(out, "  {:<10} {:<24} {:<16} detail", "address", "function", "outcome");
        for r in &self.skipped_functions {
            let _ = writeln!(
                out,
                "  {:<#10x} {:<24} {:<16} {}",
                r.addr,
                r.name,
                r.outcome.to_string(),
                r.detail
            );
        }
        out
    }

    /// Renders the report as pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates serialisation failures (practically impossible for
    /// this type).
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a report back from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying parse error for malformed input.
    pub fn from_json(s: &str) -> serde_json::Result<AnalysisReport> {
        serde_json::from_str(s)
    }

    /// Renders the report as a Markdown document (summary table,
    /// vulnerable findings with traces, then suppressed/sanitised paths).
    pub fn to_markdown(&self) -> String {
        use std::fmt::Write as _;
        let mut md = String::new();
        let _ = writeln!(md, "# DTaint report: `{}`\n", self.binary_name);
        let _ = writeln!(md, "| metric | value |");
        let _ = writeln!(md, "|---|---|");
        let _ = writeln!(md, "| architecture | {} |", self.arch);
        let _ = writeln!(md, "| functions analyzed | {} |", self.functions);
        let _ = writeln!(md, "| basic blocks | {} |", self.blocks);
        let _ = writeln!(md, "| call-graph edges | {} |", self.call_graph_edges);
        let _ = writeln!(md, "| sensitive sinks | {} |", self.sinks_count);
        let _ = writeln!(md, "| indirect calls resolved | {} |", self.resolved_indirect);
        let _ = writeln!(md, "| vulnerable paths | {} |", self.vulnerable_paths().len());
        if self.infeasible_suppressed > 0 {
            let _ =
                writeln!(md, "| infeasible paths suppressed | {} |", self.infeasible_suppressed);
        }
        if self.loop_copy_sinks > 0 {
            let _ = writeln!(md, "| loop-copy sinks | {} |", self.loop_copy_sinks);
        }
        if !self.coverage_complete() || self.functions_retried > 0 {
            let _ = writeln!(md, "| functions skipped | {} |", self.functions_skipped);
            let _ = writeln!(md, "| functions retried (degraded) | {} |", self.functions_retried);
        }
        let _ = writeln!(md, "| **vulnerabilities** | **{}** |", self.vulnerabilities());
        let _ = writeln!(md, "| analysis time | {:.2?} |", self.timings.total());
        let vulnerable = self.vulnerable_paths();
        if !vulnerable.is_empty() {
            let _ = writeln!(md, "\n## Vulnerabilities\n");
            for f in &vulnerable {
                let _ = writeln!(
                    md,
                    "### {} via `{}` at `{:#x}` (in `{}`)\n",
                    f.kind, f.sink, f.sink_ins, f.sink_fn
                );
                let srcs: Vec<String> =
                    f.sources.iter().map(|s| format!("`{}@{:#x}`", s.name, s.ins_addr)).collect();
                let _ = writeln!(md, "- sources: {}", srcs.join(", "));
                let _ = writeln!(md, "- tainted variable: `{}`", f.tainted_expr);
                let _ = writeln!(md, "- observed from: `{}`", f.observed_in);
                if !f.fingerprint.is_empty() {
                    let _ = writeln!(md, "- fingerprint: `{}`", f.fingerprint);
                }
                let chain = f.call_chain_display();
                if !chain.is_empty() {
                    let _ = writeln!(md, "- call chain: {chain}");
                }
                if !f.evidence.is_empty() {
                    let _ = writeln!(md, "- evidence:");
                    for step in &f.evidence {
                        let _ = writeln!(md, "  - {step}");
                    }
                }
                let _ = writeln!(md);
            }
        }
        let sanitized: Vec<&Finding> = self.findings.iter().filter(|f| f.sanitized()).collect();
        if !sanitized.is_empty() {
            let _ = writeln!(md, "## Sanitised paths (not reported)\n");
            for f in sanitized {
                let _ = writeln!(
                    md,
                    "- {} via `{}` at `{:#x}` — {}",
                    f.kind, f.sink, f.sink_ins, f.verdict
                );
            }
        }
        if !self.skipped_functions.is_empty() {
            let _ = writeln!(md, "\n## Degraded / skipped functions\n");
            let _ = writeln!(md, "| address | function | outcome | detail |");
            let _ = writeln!(md, "|---|---|---|---|");
            for r in &self.skipped_functions {
                let _ = writeln!(
                    md,
                    "| `{:#x}` | `{}` | {} | {} |",
                    r.addr, r.name, r.outcome, r.detail
                );
            }
        }
        // Hotspots rank by the deterministic work score only, so this
        // table is bit-identical across thread counts.
        let hot = self.telemetry.hotspots(10);
        if !hot.is_empty() {
            let _ = writeln!(md, "\n## Hotspots (top {} by logical work)\n", hot.len());
            let _ =
                writeln!(md, "| address | function | blocks | paths | alias | ddg fuel | sinks |");
            let _ = writeln!(md, "|---|---|---|---|---|---|---|");
            for f in hot {
                let _ = writeln!(
                    md,
                    "| `{:#x}` | `{}` | {} | {} | {} | {} | {} |",
                    f.addr,
                    f.name,
                    f.blocks_executed,
                    f.paths_explored,
                    f.alias_rewrites,
                    f.ddg_fuel,
                    f.sinks
                );
            }
        }
        md
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(sink_ins: u32, sanitized: bool) -> Finding {
        let verdict = if sanitized {
            SanitizeVerdict::ConstGuard { bound: 64, capacity: Some(256), fits: true }
        } else {
            SanitizeVerdict::UncheckedFlow
        };
        let sources = vec![SourceRef { name: "recv".into(), ins_addr: 0x100 }];
        Finding {
            kind: VulnKindRepr::BufferOverflow,
            sink: "memcpy".into(),
            sink_ins,
            sink_fn: "f".into(),
            observed_in: "main".into(),
            fingerprint: crate::evidence::fingerprint(
                VulnKindRepr::BufferOverflow,
                "memcpy",
                "f",
                "ret_0x100",
                &sources,
            ),
            evidence: vec![
                EvidenceStep::Source { name: "recv".into(), ins_addr: 0x100 },
                EvidenceStep::CallsiteSubstitution {
                    ins_addr: 0x200,
                    caller: "main".into(),
                    callee: "f".into(),
                },
                EvidenceStep::Verdict(verdict.clone()),
            ],
            sources,
            call_chain: vec![0x200],
            tainted_expr: "ret_0x100".into(),
            verdict,
        }
    }

    fn report() -> AnalysisReport {
        AnalysisReport {
            binary_name: "t".into(),
            arch: "arm32e".into(),
            functions: 2,
            blocks: 5,
            call_graph_edges: 3,
            sinks_count: 2,
            resolved_indirect: 0,
            findings: vec![finding(0x10, false), finding(0x10, false), finding(0x20, true)],
            infeasible_suppressed: 0,
            functions_analyzed: 2,
            functions_skipped: 0,
            functions_retried: 0,
            loop_copy_sinks: 0,
            skipped_functions: Vec::new(),
            timings: StageTimings::default(),
            telemetry: TelemetrySection::default(),
        }
    }

    #[test]
    fn vulnerable_paths_exclude_sanitized() {
        let r = report();
        assert_eq!(r.vulnerable_paths().len(), 2);
        assert_eq!(r.vulnerabilities(), 1, "same sink site counted once");
    }

    #[test]
    fn json_roundtrip() {
        let r = report();
        let s = r.to_json().unwrap();
        let back = AnalysisReport::from_json(&s).unwrap();
        assert_eq!(back.findings.len(), 3);
        assert_eq!(back.binary_name, "t");
        assert_eq!(back, r, "round-trip must preserve every field");
    }

    #[test]
    fn legacy_json_without_provenance_fields_still_parses() {
        // A PR-4-era finding: `sanitized`/`trace` instead of
        // `verdict`/`evidence`/`fingerprint`. Unknown members are
        // ignored; the new fields default (verdict = UncheckedFlow).
        let legacy = r#"{
            "kind": "BufferOverflow", "sink": "memcpy", "sink_ins": 16,
            "sink_fn": "f", "observed_in": "main",
            "sources": [{"name": "recv", "ins_addr": 256}],
            "call_chain": [], "tainted_expr": "ret_0x100",
            "sanitized": true, "trace": ["source recv@0x100"]
        }"#;
        let f: Finding = serde_json::from_str(legacy).unwrap();
        assert!(!f.sanitized(), "legacy bool is not carried over; verdict defaults unchecked");
        assert!(f.evidence.is_empty());
        assert!(f.fingerprint.is_empty());
    }

    #[test]
    fn markdown_renders_summary_and_findings() {
        let md = report().to_markdown();
        assert!(md.contains("# DTaint report"));
        assert!(md.contains("**vulnerabilities** | **1**"));
        assert!(md.contains("## Vulnerabilities"));
        assert!(md.contains("Sanitised paths"));
        assert!(md.contains("source recv@0x100"));
    }

    #[test]
    fn skip_table_lists_non_analyzed_functions() {
        let mut r = report();
        assert!(r.coverage_complete());
        assert_eq!(r.skip_table(), "");
        r.functions_skipped = 1;
        r.skipped_functions.push(FunctionRecord {
            addr: 0x8000,
            name: "broken".into(),
            outcome: FunctionOutcome::LiftFailed,
            detail: "undecodable instruction word".into(),
        });
        assert!(!r.coverage_complete());
        let table = r.skip_table();
        assert!(table.contains("0x8000"));
        assert!(table.contains("broken"));
        assert!(table.contains("lift-failed"));
        let md = r.to_markdown();
        assert!(md.contains("Degraded / skipped functions"));
        // Round-trips through JSON, and old reports without the new
        // fields still parse.
        let back = AnalysisReport::from_json(&r.to_json().unwrap()).unwrap();
        assert_eq!(back.skipped_functions, r.skipped_functions);
    }

    #[test]
    fn stage_timings_consistency() {
        let mut t = StageTimings::default();
        assert!(t.consistency_error(Duration::ZERO).is_none());
        t.lift_cfg = Duration::from_millis(10);
        t.ssa = Duration::from_millis(20);
        t.ddg = Duration::from_millis(30);
        t.detect = Duration::from_millis(5);
        t.ddg_alias = Duration::from_millis(10);
        t.ddg_indirect = Duration::from_millis(5);
        t.ddg_propagate = Duration::from_millis(14);
        t.detect_absint = Duration::from_millis(4);
        assert!(t.consistency_error(Duration::from_millis(1)).is_none());
        // Sub-stages exceeding their parent is flagged…
        t.ddg_propagate = Duration::from_millis(40);
        let err = t.consistency_error(Duration::from_millis(1)).unwrap();
        assert!(err.contains("ddg sub-stages"), "{err}");
        t.ddg_propagate = Duration::from_millis(14);
        t.detect_absint = Duration::from_millis(50);
        let err = t.consistency_error(Duration::from_millis(1)).unwrap();
        assert!(err.contains("detect_absint"), "{err}");
        // …but the CPU-summed fields are exempt by design.
        t.detect_absint = Duration::ZERO;
        t.ddg_absint = Duration::from_secs(100);
        t.ssa_retry = Duration::from_secs(100);
        assert!(t.consistency_error(Duration::from_millis(1)).is_none());
    }

    #[test]
    fn hotspots_rank_by_logical_work() {
        let mut r = report();
        r.telemetry.functions = vec![
            FnCost { addr: 0x100, name: "cold".into(), ..FnCost::default() },
            FnCost {
                addr: 0x200,
                name: "warm".into(),
                blocks_executed: 10,
                ddg_fuel: 5,
                ..FnCost::default()
            },
            FnCost {
                addr: 0x300,
                name: "hot".into(),
                blocks_executed: 100,
                alias_rewrites: 3,
                symex_us: 1, // durations must not affect the ranking
                ..FnCost::default()
            },
        ];
        let hot = r.telemetry.hotspots(10);
        assert_eq!(hot.len(), 2, "zero-work functions are omitted");
        assert_eq!(hot[0].name, "hot");
        assert_eq!(hot[1].name, "warm");
        let md = r.to_markdown();
        assert!(md.contains("## Hotspots"));
        assert!(md.contains("| `0x300` | `hot` | 100 |"));
        assert!(!md.contains("cold"));
        // And the whole section round-trips through JSON.
        let back = AnalysisReport::from_json(&r.to_json().unwrap()).unwrap();
        assert_eq!(back.telemetry.functions, r.telemetry.functions);
    }

    #[test]
    fn display_flags_vulnerable_findings() {
        let s = finding(0x10, false).to_string();
        assert!(s.contains("VULNERABLE"));
        assert!(s.contains("recv@0x100"));
        let s = finding(0x10, true).to_string();
        assert!(s.contains("sanitized"));
    }

    #[test]
    fn display_renders_call_chain_from_evidence() {
        let s = finding(0x10, false).to_string();
        assert!(s.contains("[chain: main →(0x200) f]"), "{s}");
        // Without callsite evidence the chain falls back to raw
        // addresses between the observing function and the sink.
        let mut f = finding(0x10, false);
        f.evidence.clear();
        assert_eq!(f.call_chain_display(), "main →(0x200) f");
        f.call_chain.clear();
        assert_eq!(f.call_chain_display(), "");
        assert!(!f.to_string().contains("[chain:"));
    }

    #[test]
    fn findings_sort_canonically_and_dedup_counts_duplicates() {
        let mut sane = finding(0x30, true);
        sane.fingerprint = "ffff".into();
        let mut vuln_b = finding(0x20, false);
        vuln_b.fingerprint = "bbbb".into();
        let mut vuln_a = finding(0x10, false);
        vuln_a.fingerprint = "aaaa".into();
        let mut v = vec![sane.clone(), vuln_b.clone(), vuln_a.clone(), vuln_a.clone()];
        sort_findings(&mut v);
        // Vulnerable first, then fingerprint order; identical findings
        // are adjacent and collapse in dedup.
        assert_eq!(
            v.iter().map(|f| f.fingerprint.as_str()).collect::<Vec<_>>(),
            ["aaaa", "aaaa", "bbbb", "ffff"]
        );
        assert_eq!(dedup_findings(&mut v), 1);
        assert_eq!(v.len(), 3);
        assert!(!v[0].sanitized() && v[2].sanitized());
    }
}
