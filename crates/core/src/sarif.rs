//! SARIF 2.1.0 export for analysis reports.
//!
//! Emits one `run` per [`AnalysisReport`], with:
//!
//! * `tool.driver.rules` — one rule per [`VulnKindRepr`];
//! * one `result` per finding, `level` = `"error"` for vulnerable paths
//!   and `"note"` for sanitised ones, a stable
//!   `partialFingerprints["dtaint/findingIdentity/v1"]` from the
//!   finding's content-addressed fingerprint, and binary locations
//!   (`physicalLocation.address.absoluteAddress` = the sink
//!   instruction, `logicalLocations` = the sink function);
//! * `codeFlows` rebuilt from the typed evidence chain, one
//!   `threadFlow` location per [`EvidenceStep`].
//!
//! The output is consumable by any SARIF viewer (VS Code's SARIF
//! Viewer extension, GitHub code scanning).

use crate::evidence::EvidenceStep;
use crate::report::{AnalysisReport, Finding, VulnKindRepr};
use serde_json::Value;

/// The SARIF schema location stamped into every document.
pub const SARIF_SCHEMA: &str =
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json";

/// The partial-fingerprint key carrying the content-addressed finding
/// identity (versioned, per the SARIF convention).
pub const FINGERPRINT_KEY: &str = "dtaint/findingIdentity/v1";

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn s(v: impl Into<String>) -> Value {
    Value::Str(v.into())
}

fn rule_id(kind: VulnKindRepr) -> &'static str {
    match kind {
        VulnKindRepr::BufferOverflow => "DTAINT-BUFFER-OVERFLOW",
        VulnKindRepr::CommandInjection => "DTAINT-COMMAND-INJECTION",
    }
}

fn rules() -> Value {
    let rule = |kind: VulnKindRepr, desc: &str| {
        obj(vec![
            ("id", s(rule_id(kind))),
            ("name", s(format!("{kind}"))),
            ("shortDescription", obj(vec![("text", s(desc))])),
        ])
    };
    Value::Arr(vec![
        rule(
            VulnKindRepr::BufferOverflow,
            "Attacker-controlled data reaches a memory copy without a sufficient bound",
        ),
        rule(
            VulnKindRepr::CommandInjection,
            "Attacker-controlled data reaches a command interpreter without separator checks",
        ),
    ])
}

/// A binary location: physical address plus the containing function as
/// a logical location.
fn location(address: u32, function: &str, message: Option<String>) -> Value {
    let mut pairs = vec![
        (
            "physicalLocation",
            obj(vec![("address", obj(vec![("absoluteAddress", Value::Int(i64::from(address)))]))]),
        ),
        (
            "logicalLocations",
            Value::Arr(vec![obj(vec![("name", s(function)), ("kind", s("function"))])]),
        ),
    ];
    if let Some(m) = message {
        pairs.push(("message", obj(vec![("text", s(m))])));
    }
    obj(pairs)
}

/// One threadFlow location per evidence step, each annotated with the
/// step's rendered narrative. Steps without their own address anchor on
/// the sink instruction.
fn code_flow(f: &Finding) -> Value {
    let locations: Vec<Value> = f
        .evidence
        .iter()
        .map(|step| {
            let (addr, function) = match step {
                EvidenceStep::Source { ins_addr, .. } => (*ins_addr, f.observed_in.as_str()),
                EvidenceStep::DefUse { ins_addr, function, .. } => (*ins_addr, function.as_str()),
                EvidenceStep::CallsiteSubstitution { ins_addr, caller, .. } => {
                    (*ins_addr, caller.as_str())
                }
                EvidenceStep::AliasRewrite { function, .. } => (f.sink_ins, function.as_str()),
                EvidenceStep::IntervalGuard { .. } | EvidenceStep::Verdict(_) => {
                    (f.sink_ins, f.sink_fn.as_str())
                }
            };
            obj(vec![("location", location(addr, function, Some(step.to_string())))])
        })
        .collect();
    obj(vec![("threadFlows", Value::Arr(vec![obj(vec![("locations", Value::Arr(locations))])]))])
}

fn result(f: &Finding) -> Value {
    let level = if f.sanitized() { "note" } else { "error" };
    let mut pairs = vec![
        ("ruleId", s(rule_id(f.kind))),
        ("level", s(level)),
        ("message", obj(vec![("text", s(f.to_string()))])),
        ("locations", Value::Arr(vec![location(f.sink_ins, &f.sink_fn, None)])),
        ("partialFingerprints", obj(vec![(FINGERPRINT_KEY, s(f.fingerprint.clone()))])),
    ];
    if !f.evidence.is_empty() {
        pairs.push(("codeFlows", Value::Arr(vec![code_flow(f)])));
    }
    obj(pairs)
}

fn run(report: &AnalysisReport) -> Value {
    obj(vec![
        (
            "tool",
            obj(vec![(
                "driver",
                obj(vec![
                    ("name", s("dtaint")),
                    ("informationUri", s("https://doi.org/10.1109/DSN.2018.00052")),
                    ("rules", rules()),
                ]),
            )]),
        ),
        (
            "artifacts",
            Value::Arr(vec![obj(vec![(
                "location",
                obj(vec![("uri", s(report.binary_name.clone()))]),
            )])]),
        ),
        ("results", Value::Arr(report.findings.iter().map(result).collect())),
    ])
}

/// Renders one SARIF document covering the given reports (one SARIF
/// `run` each — a whole-image scan passes one report per scanned
/// binary).
pub fn to_sarif(reports: &[AnalysisReport]) -> Value {
    obj(vec![
        ("$schema", s(SARIF_SCHEMA)),
        ("version", s("2.1.0")),
        ("runs", Value::Arr(reports.iter().map(run).collect())),
    ])
}

/// [`to_sarif`], rendered as pretty JSON.
pub fn to_sarif_string(reports: &[AnalysisReport]) -> String {
    serde_json::to_string_pretty(&to_sarif(reports)).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evidence::SanitizeVerdict;
    use crate::report::{SourceRef, StageTimings, TelemetrySection};

    fn sample_report() -> AnalysisReport {
        let sources = vec![SourceRef { name: "recv".into(), ins_addr: 0x100 }];
        let finding = Finding {
            kind: VulnKindRepr::BufferOverflow,
            sink: "memcpy".into(),
            sink_ins: 0x140,
            sink_fn: "handle".into(),
            observed_in: "handle".into(),
            fingerprint: "00deadbeef00cafe".into(),
            evidence: vec![
                EvidenceStep::Source { name: "recv".into(), ins_addr: 0x100 },
                EvidenceStep::DefUse {
                    ins_addr: 0x104,
                    location: "r2".into(),
                    value: "ret_0x100".into(),
                    function: "handle".into(),
                },
                EvidenceStep::Verdict(SanitizeVerdict::UncheckedFlow),
            ],
            sources,
            call_chain: Vec::new(),
            tainted_expr: "ret_0x100".into(),
            verdict: SanitizeVerdict::UncheckedFlow,
        };
        let mut sanitized = finding.clone();
        sanitized.verdict =
            SanitizeVerdict::ConstGuard { bound: 64, capacity: Some(256), fits: true };
        sanitized.evidence = vec![EvidenceStep::Verdict(sanitized.verdict.clone())];
        AnalysisReport {
            binary_name: "httpd".into(),
            arch: "arm32e".into(),
            functions: 1,
            blocks: 1,
            call_graph_edges: 0,
            sinks_count: 1,
            resolved_indirect: 0,
            findings: vec![finding, sanitized],
            infeasible_suppressed: 0,
            functions_analyzed: 1,
            functions_skipped: 0,
            functions_retried: 0,
            loop_copy_sinks: 0,
            skipped_functions: Vec::new(),
            timings: StageTimings::default(),
            telemetry: TelemetrySection::default(),
        }
    }

    #[test]
    fn sarif_has_schema_version_and_runs() {
        let doc = to_sarif(&[sample_report()]);
        assert_eq!(doc.get("$schema"), Some(&Value::Str(SARIF_SCHEMA.into())));
        assert_eq!(doc.get("version"), Some(&Value::Str("2.1.0".into())));
        let Some(Value::Arr(runs)) = doc.get("runs") else { panic!("runs array") };
        assert_eq!(runs.len(), 1);
        let driver = runs[0].get("tool").and_then(|t| t.get("driver")).expect("driver");
        assert_eq!(driver.get("name"), Some(&Value::Str("dtaint".into())));
        let Some(Value::Arr(rules)) = driver.get("rules") else { panic!("rules array") };
        assert_eq!(rules.len(), 2);
    }

    #[test]
    fn results_carry_level_fingerprint_and_code_flows() {
        let doc = to_sarif(&[sample_report()]);
        let Some(Value::Arr(runs)) = doc.get("runs") else { panic!() };
        let Some(Value::Arr(results)) = runs[0].get("results") else { panic!("results array") };
        assert_eq!(results.len(), 2);

        let vuln = &results[0];
        assert_eq!(vuln.get("ruleId"), Some(&Value::Str("DTAINT-BUFFER-OVERFLOW".into())));
        assert_eq!(vuln.get("level"), Some(&Value::Str("error".into())));
        let fp = vuln
            .get("partialFingerprints")
            .and_then(|p| p.get(FINGERPRINT_KEY))
            .expect("fingerprint");
        assert_eq!(fp, &Value::Str("00deadbeef00cafe".into()));

        // The code flow mirrors the evidence chain step-for-step.
        let Some(Value::Arr(flows)) = vuln.get("codeFlows") else { panic!("codeFlows") };
        let locations = flows[0]
            .get("threadFlows")
            .and_then(|tf| match tf {
                Value::Arr(v) => v.first(),
                _ => None,
            })
            .and_then(|tf| tf.get("locations"))
            .expect("threadFlow locations");
        let Value::Arr(locations) = locations else { panic!("locations array") };
        assert_eq!(locations.len(), 3, "one per evidence step");
        let first_addr = locations[0]
            .get("location")
            .and_then(|l| l.get("physicalLocation"))
            .and_then(|p| p.get("address"))
            .and_then(|a| a.get("absoluteAddress"))
            .expect("address");
        assert_eq!(first_addr, &Value::Int(0x100));

        // The sanitised twin downgrades to a note.
        assert_eq!(results[1].get("level"), Some(&Value::Str("note".into())));
    }

    #[test]
    fn sarif_string_parses_back() {
        let text = to_sarif_string(&[sample_report()]);
        let v: Value = serde_json::from_str(&text).unwrap();
        assert!(v.get("runs").is_some());
    }
}
