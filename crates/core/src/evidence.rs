//! Typed finding provenance: evidence chains and sanitization verdicts.
//!
//! Every [`Finding`](crate::report::Finding) carries a chain of
//! [`EvidenceStep`]s — the replayable record of *why* the detector
//! believes the flow exists — terminated by a [`SanitizeVerdict`], the
//! typed replacement for the old `sanitized: bool`. The chain covers:
//!
//! * the source call the attacker data enters at,
//! * every DDG def-use hop the backward trace walked,
//! * alias rewrites that renamed definitions in the observing function,
//! * interprocedural argument substitutions along the call chain,
//! * the interval-guard evaluation that fed the verdict (interval mode),
//! * the final sanitization decision, with its numbers.
//!
//! This module also defines the content-addressed **fingerprint** used
//! by `dtaint diff` and the SARIF exporter: a stable hash of the
//! finding's semantic identity (kind + sink + sink function + the
//! tainted expression with raw addresses normalized out + source names)
//! that survives benign relinking, where every raw address shifts.

use crate::report::VulnKindRepr;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// The sanitization decision for one finding, with the evidence behind
/// it. [`SanitizeVerdict::sanitized`] collapses it back to the old
/// boolean: a sanitized finding is *not* reported as a vulnerability.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SanitizeVerdict {
    /// No sanitising guard covers the tainted data — a vulnerability.
    #[default]
    UncheckedFlow,
    /// A constant bound guards the tainted length (`n < 64`).
    ConstGuard {
        /// The guard's constant, as written (exclusive-bound adjusted
        /// semantics are folded into `fits`).
        bound: i64,
        /// Destination capacity in bytes, when the mode resolves one.
        capacity: Option<i64>,
        /// True when the bound actually fits the capacity (or no
        /// capacity is known and the syntactic judgement applies).
        fits: bool,
    },
    /// A symbolic bound guards the tainted length (`n < y`), optionally
    /// resolved to a concrete upper bound by the interval solver.
    SymbolicGuard {
        /// Rendered guarded expression (the copied length).
        expr: String,
        /// The interval solver's upper bound for the length, when it
        /// resolved one.
        resolved_upper: Option<i64>,
        /// Destination capacity in bytes, when known.
        capacity: Option<i64>,
        /// True when the resolved bound fits (or capacity is unknown
        /// and a finite bound exists).
        fits: bool,
    },
    /// A tainted byte is compared against shell separator(s) before a
    /// command sink — sanitises command injections.
    SeparatorCheck {
        /// The separator characters checked (`";|&"` …).
        chars: String,
    },
    /// A counted copy loop: the trip count is judged against the
    /// destination capacity (strict/interval modes).
    LoopTripCount {
        /// Extracted constant trip count, when the compared pointers
        /// share a base.
        trips: Option<i64>,
        /// Destination capacity in bytes, when known.
        capacity: Option<i64>,
        /// True when the trip count fits (or is symbolic/uncapacitated
        /// and the syntactic judgement applies).
        fits: bool,
    },
}

impl SanitizeVerdict {
    /// The old boolean: does this verdict sanitise the path?
    pub fn sanitized(&self) -> bool {
        match self {
            SanitizeVerdict::UncheckedFlow => false,
            SanitizeVerdict::SeparatorCheck { .. } => true,
            SanitizeVerdict::ConstGuard { fits, .. }
            | SanitizeVerdict::SymbolicGuard { fits, .. }
            | SanitizeVerdict::LoopTripCount { fits, .. } => *fits,
        }
    }
}

/// `Some(n)` as `n`, `None` as `?`.
fn opt(v: Option<i64>) -> String {
    v.map_or_else(|| "?".to_owned(), |n| n.to_string())
}

impl fmt::Display for SanitizeVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SanitizeVerdict::UncheckedFlow => {
                f.write_str("unchecked flow (no sanitising guard covers the tainted data)")
            }
            SanitizeVerdict::ConstGuard { bound, capacity, fits } => write!(
                f,
                "constant guard {bound} vs capacity {}: {}",
                opt(*capacity),
                if *fits { "fits" } else { "overflows" }
            ),
            SanitizeVerdict::SymbolicGuard { expr, resolved_upper, capacity, fits } => write!(
                f,
                "symbolic guard on {expr} (resolved upper {}) vs capacity {}: {}",
                opt(*resolved_upper),
                opt(*capacity),
                if *fits { "fits" } else { "overflows" }
            ),
            SanitizeVerdict::SeparatorCheck { chars } => {
                write!(f, "separator check on `{chars}`")
            }
            SanitizeVerdict::LoopTripCount { trips, capacity, fits } => write!(
                f,
                "loop trip count {} vs capacity {}: {}",
                opt(*trips),
                opt(*capacity),
                if *fits { "fits" } else { "overflows" }
            ),
        }
    }
}

/// One typed step of a finding's provenance chain, rendered
/// source-first; the last step is always [`EvidenceStep::Verdict`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvidenceStep {
    /// Attacker data enters at this source call site.
    Source {
        /// Import name (`recv`, `getenv`, …).
        name: String,
        /// Call-site instruction address.
        ins_addr: u32,
    },
    /// A DDG def-use hop: a definition propagates the data.
    DefUse {
        /// Instruction address of the defining store/call.
        ins_addr: u32,
        /// Rendered location expression (`deref(arg0 + 0x4c)`).
        location: String,
        /// Rendered value expression.
        value: String,
        /// Function the definition lives in.
        function: String,
    },
    /// Alias recognition rewrote definitions in the observing function
    /// before the trace was taken (Algorithm 1).
    AliasRewrite {
        /// The function whose definitions were rewritten.
        function: String,
        /// Number of definition pairs rewritten.
        rewrites: u64,
        /// Fixpoint rounds the SSE pass ran in this function (0 when the
        /// store-based single pass produced the rewrites).
        #[serde(default)]
        rounds: u64,
        /// Deepest dereference chain connected by the rewrites.
        #[serde(default)]
        depth: u64,
    },
    /// Interprocedural argument substitution at a call site carried the
    /// observation across a function boundary (Algorithm 2).
    CallsiteSubstitution {
        /// Instruction address of the call.
        ins_addr: u32,
        /// The calling function.
        caller: String,
        /// The called function (next hop towards the sink).
        callee: String,
    },
    /// The interval solver's refined range for the judged expression
    /// (interval-guards mode only).
    IntervalGuard {
        /// Rendered judged expression (the copied length).
        expr: String,
        /// Solved lower bound, when finite.
        lower: Option<i64>,
        /// Solved upper bound, when finite.
        upper: Option<i64>,
    },
    /// The final sanitization decision.
    Verdict(SanitizeVerdict),
}

impl fmt::Display for EvidenceStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvidenceStep::Source { name, ins_addr } => write!(f, "source {name}@{ins_addr:#x}"),
            EvidenceStep::DefUse { ins_addr, location, value, function } => {
                write!(f, "def @{ins_addr:#x}: {location} = {value} (in {function})")
            }
            EvidenceStep::AliasRewrite { function, rewrites, rounds, depth } => {
                if *rounds > 0 {
                    write!(
                        f,
                        "alias rewrite: {rewrites} definition pair(s) renamed in {function} \
                         (sse fixpoint: {rounds} round(s), deref depth {depth})"
                    )
                } else {
                    write!(f, "alias rewrite: {rewrites} definition pair(s) renamed in {function}")
                }
            }
            EvidenceStep::CallsiteSubstitution { ins_addr, caller, callee } => {
                write!(f, "call @{ins_addr:#x}: {caller} -> {callee} (argument substitution)")
            }
            EvidenceStep::IntervalGuard { expr, lower, upper } => {
                write!(f, "interval guard: {expr} in [{}, {}]", opt(*lower), opt(*upper))
            }
            EvidenceStep::Verdict(v) => write!(f, "verdict: {v}"),
        }
    }
}

/// Computes a finding's content-addressed fingerprint: a 64-bit FNV-1a
/// hash, rendered as 16 hex digits, over the semantic identity only.
/// Raw addresses are deliberately excluded (every `0x…` literal in the
/// tainted expression is normalized to `0xN`) so a benign relink that
/// shifts the image layout does not churn fingerprints; the verdict is
/// excluded so `dtaint diff` can report a changed verdict for the
/// *same* finding.
pub fn fingerprint(
    kind: VulnKindRepr,
    sink: &str,
    sink_fn: &str,
    tainted_expr: &str,
    sources: &[crate::report::SourceRef],
) -> String {
    let names: BTreeSet<&str> = sources.iter().map(|s| s.name.as_str()).collect();
    let mut h = Fnv::new();
    h.eat(match kind {
        VulnKindRepr::BufferOverflow => "BufferOverflow",
        VulnKindRepr::CommandInjection => "CommandInjection",
    });
    h.eat(sink);
    h.eat(sink_fn);
    h.eat(&normalize_addresses(tainted_expr));
    for n in names {
        h.eat(n);
    }
    format!("{:016x}", h.0)
}

/// Replaces every `0x` hex literal with the placeholder `0xN` (so two
/// renderings of the same expression that differ only in raw addresses
/// — e.g. `ret_0x8124` vs `ret_0x8224` after a relink — normalize
/// identically) and every pool unknown `unk<i>` with `unkN` (the global
/// unknown numbering shifts whenever an earlier function joins or
/// leaves the analysis scope, which is equally non-semantic).
pub fn normalize_addresses(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'0' && i + 1 < bytes.len() && bytes[i + 1] == b'x' {
            let mut j = i + 2;
            while j < bytes.len() && bytes[j].is_ascii_hexdigit() {
                j += 1;
            }
            if j > i + 2 {
                out.push_str("0xN");
                i = j;
                continue;
            }
        }
        if bytes[i..].starts_with(b"unk") {
            let mut j = i + 3;
            while j < bytes.len() && bytes[j].is_ascii_digit() {
                j += 1;
            }
            if j > i + 3 {
                out.push_str("unkN");
                i = j;
                continue;
            }
        }
        out.push(bytes[i] as char);
        i += 1;
    }
    out
}

/// 64-bit FNV-1a, inlined to keep the workspace dependency-free. Each
/// field is terminated with a `0x1f` unit separator so field boundaries
/// cannot alias (`("ab","c")` never collides with `("a","bc")`).
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn eat(&mut self, s: &str) {
        for b in s.bytes().chain(std::iter::once(0x1f)) {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::SourceRef;

    #[test]
    fn verdict_sanitized_accessor_matches_semantics() {
        assert!(!SanitizeVerdict::UncheckedFlow.sanitized());
        assert!(SanitizeVerdict::SeparatorCheck { chars: ";".into() }.sanitized());
        assert!(
            SanitizeVerdict::ConstGuard { bound: 64, capacity: Some(256), fits: true }.sanitized()
        );
        assert!(!SanitizeVerdict::ConstGuard { bound: 1024, capacity: Some(256), fits: false }
            .sanitized());
        assert!(!SanitizeVerdict::LoopTripCount {
            trips: Some(400),
            capacity: Some(64),
            fits: false
        }
        .sanitized());
    }

    #[test]
    fn address_normalization_collapses_hex_literals() {
        assert_eq!(normalize_addresses("ret_0x8124"), "ret_0xN");
        assert_eq!(normalize_addresses("deref(arg0 + 0x4c) + 0xFF"), "deref(arg0 + 0xN) + 0xN");
        assert_eq!(normalize_addresses("no hex here"), "no hex here");
        assert_eq!(normalize_addresses("0x"), "0x", "bare prefix untouched");
        assert_eq!(normalize_addresses("deref(unk12 + 8)"), "deref(unkN + 8)");
        assert_eq!(normalize_addresses("unk"), "unk", "bare unknown prefix untouched");
    }

    #[test]
    fn fingerprint_is_stable_under_relink_but_not_under_identity_change() {
        let src = |addr| vec![SourceRef { name: "recv".into(), ins_addr: addr }];
        let a = fingerprint(VulnKindRepr::BufferOverflow, "memcpy", "f", "ret_0x100", &src(0x100));
        // Same flow after a relink: every raw address shifted.
        let b = fingerprint(VulnKindRepr::BufferOverflow, "memcpy", "f", "ret_0x180", &src(0x180));
        assert_eq!(a, b, "addresses must not feed the fingerprint");
        assert_eq!(a.len(), 16);
        // Changing the sink function, sink, kind, or source set churns.
        let c = fingerprint(VulnKindRepr::BufferOverflow, "memcpy", "g", "ret_0x100", &src(0x100));
        assert_ne!(a, c);
        let d =
            fingerprint(VulnKindRepr::CommandInjection, "memcpy", "f", "ret_0x100", &src(0x100));
        assert_ne!(a, d);
        let e = fingerprint(VulnKindRepr::BufferOverflow, "strcpy", "f", "ret_0x100", &src(0x100));
        assert_ne!(a, e);
    }

    #[test]
    fn evidence_steps_render_stably() {
        let s = EvidenceStep::Source { name: "recv".into(), ins_addr: 0x100 };
        assert_eq!(s.to_string(), "source recv@0x100");
        let d = EvidenceStep::DefUse {
            ins_addr: 0x104,
            location: "r2".into(),
            value: "ret_0x100".into(),
            function: "handle".into(),
        };
        assert_eq!(d.to_string(), "def @0x104: r2 = ret_0x100 (in handle)");
        let c = EvidenceStep::CallsiteSubstitution {
            ins_addr: 0x200,
            caller: "main".into(),
            callee: "do_copy".into(),
        };
        assert_eq!(c.to_string(), "call @0x200: main -> do_copy (argument substitution)");
        let v = EvidenceStep::Verdict(SanitizeVerdict::UncheckedFlow);
        assert!(v.to_string().starts_with("verdict: unchecked flow"));
        let g = EvidenceStep::IntervalGuard { expr: "n".into(), lower: Some(0), upper: None };
        assert_eq!(g.to_string(), "interval guard: n in [0, ?]");
    }

    #[test]
    fn verdicts_serde_round_trip() {
        for v in [
            SanitizeVerdict::UncheckedFlow,
            SanitizeVerdict::ConstGuard { bound: 64, capacity: Some(256), fits: true },
            SanitizeVerdict::SymbolicGuard {
                expr: "y".into(),
                resolved_upper: Some(200),
                capacity: None,
                fits: true,
            },
            SanitizeVerdict::SeparatorCheck { chars: ";|".into() },
            SanitizeVerdict::LoopTripCount { trips: None, capacity: Some(64), fits: true },
        ] {
            let s = serde_json::to_string(&v).unwrap();
            let back: SanitizeVerdict = serde_json::from_str(&s).unwrap();
            assert_eq!(back, v, "{s}");
        }
    }
}
