//! Table VI — "CPU, memory and time usage of prototype software":
//! peak memory and CPU time of the static-symbolic-analysis module vs
//! the data-flow-generation module.
//!
//! Memory is tracked with a counting global allocator (peak live bytes
//! per stage); CPU usage is reported as stage time over wall time —
//! the pipeline is run single-threaded here so the split is exact.
//!
//! ```sh
//! cargo run --release -p dtaint-bench --bin table6_resources
//! ```

use dtaint_bench::{human_bytes, render_table, scaled, CountingAlloc};
use dtaint_cfg::{build_all_cfgs, CallGraph};
use dtaint_dataflow::{build_dataflow, DataflowConfig};
use dtaint_fwgen::{build_firmware, table2_profiles};
use dtaint_symex::{analyze_function, ExprPool, SymexConfig};
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn main() {
    // The paper measured the prototype on the DGN2200 httpd-class
    // binaries; use the Table II row 4 profile.
    let profile = scaled(table2_profiles().remove(3));
    println!(
        "Table VI: resource usage (subject: {} {}, scale {})",
        profile.manufacturer,
        profile.firmware_version,
        dtaint_bench::scale()
    );
    let fw = build_firmware(&profile);
    let cfgs = build_all_cfgs(&fw.binary).expect("lifts");
    let mut cg = CallGraph::build(&fw.binary, &cfgs);
    let wall = Instant::now();

    // Stage 1: static symbolic analysis.
    CountingAlloc::reset();
    let t = Instant::now();
    let mut pool = ExprPool::new();
    let summaries: Vec<_> = cfgs
        .iter()
        .map(|c| analyze_function(&fw.binary, c, &mut pool, &SymexConfig::default()))
        .collect();
    let ssa_time = t.elapsed();
    let ssa_peak = CountingAlloc::peak();

    // Stage 2: data-flow generation.
    CountingAlloc::reset();
    let t = Instant::now();
    let df = build_dataflow(&fw.binary, &mut cg, summaries, pool, &DataflowConfig::default());
    let ddg_time = t.elapsed();
    let ddg_peak = CountingAlloc::peak();
    let wall = wall.elapsed();

    let rows = vec![
        vec![
            "Static symbolic analysis".to_owned(),
            format!("{:.0}%", 100.0 * ssa_time.as_secs_f64() / wall.as_secs_f64()),
            human_bytes(ssa_peak),
            format!("{ssa_time:.2?}"),
        ],
        vec![
            "Data flow generation".to_owned(),
            format!("{:.0}%", 100.0 * ddg_time.as_secs_f64() / wall.as_secs_f64()),
            human_bytes(ddg_peak),
            format!("{ddg_time:.2?}"),
        ],
    ];
    println!();
    print!("{}", render_table(&["Module", "CPU share", "Peak memory", "Time"], &rows));
    println!();
    println!("sinks observed: {}", df.finals.values().map(|f| f.sinks.len()).sum::<usize>());
    println!();
    println!("paper reference: SSA 25% CPU / 15.3GB; DDG 10% CPU / 208.9MB —");
    println!("the shape to reproduce: SSA dominates both CPU and memory.");
}
