//! Table V — "Zero-day vulnerabilities discovered using our tool":
//! type and count of previously-unknown flows per firmware.
//!
//! ```sh
//! cargo run --release -p dtaint-bench --bin table5_zerodays
//! ```

use dtaint_bench::{analyze_profile, render_table, scaled};
use dtaint_fwgen::table2_profiles;
use std::collections::BTreeMap;

/// Plant ids that correspond to Table IV's previously-reported flows
/// (everything else vulnerable is a zero-day shape).
const KNOWN_IDS: &[&str] = &[
    "cve_2013_7389a",
    "cve_2013_7389b",
    "cve_2015_2051",
    "cve_2015_2051v",
    "cve_2016_5681",
    "edb_43055",
    "cve_2017_6334",
    "cve_2017_6077",
];

fn main() {
    println!("Table V: zero-day vulnerabilities discovered");
    println!();
    let mut rows = Vec::new();
    let mut total = 0usize;
    for profile in table2_profiles() {
        let profile = scaled(profile);
        let (fw, report) = analyze_profile(&profile);
        // Group the zero-day plants by weakness type and count detections.
        let mut by_type: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
        for gt in fw.ground_truth.iter().filter(|g| !g.sanitized) {
            if KNOWN_IDS.contains(&gt.id.as_str()) {
                continue;
            }
            let ty = if gt.kind.is_injection() { "Command Injection" } else { "Buffer Overflow" };
            let slot = by_type.entry(ty).or_default();
            slot.0 += 1;
            let detected = report
                .vulnerable_paths()
                .iter()
                .any(|f| f.sink == gt.sink && f.sources.iter().any(|s| s.name == gt.source));
            if detected {
                slot.1 += 1;
            }
        }
        for (ty, (planted, detected)) in by_type {
            total += detected;
            rows.push(vec![
                format!("{} {}", profile.manufacturer, profile.firmware_version),
                ty.to_owned(),
                planted.to_string(),
                detected.to_string(),
            ]);
        }
    }
    print!("{}", render_table(&["Firmware", "Type", "Planted", "Detected"], &rows));
    println!();
    println!("total zero-day detections: {total} (paper: 13)");
    println!();
    println!("paper reference:");
    println!("  Hikvision DS-2CD6233F  Buffer Overflow    6");
    println!("  Uniview IPC_6201       Buffer Overflow    1");
    println!("  DIR-645                Command Injection  1");
    println!("  Netgear DGN1000        Command Injection  4+1, Buffer Overflow 1");
}
