//! Differential validation: static findings vs. concrete execution.
//!
//! The paper verified its 21 findings on real devices. This harness is
//! the reproducible equivalent: for every planted flow of every Table II
//! profile, it compares
//!
//! * the **static verdict** — did DTaint report the flow as vulnerable,
//! * the **dynamic verdict** — does the flow's entry function, run in
//!   the concrete emulator under attack probes, actually corrupt memory
//!   or deliver an injected command?
//!
//! Agreement on all rows (vulnerable plants confirmed, guarded twins
//! surviving) is the end-to-end soundness check of the whole workspace.
//!
//! ```sh
//! cargo run --release -p dtaint-bench --bin validation_differential
//! ```

use dtaint_bench::{analyze_profile, render_table, scaled};
use dtaint_emu::{poison_all_rodata_names, validate, AttackConfig, Verdict};
use dtaint_fwgen::table2_profiles;

fn main() {
    println!("differential validation: static DTaint vs concrete execution");
    println!("(scale factor {})", dtaint_bench::scale());
    println!();
    let mut rows = Vec::new();
    let mut agree = 0usize;
    let mut total = 0usize;
    for profile in table2_profiles() {
        let profile = scaled(profile);
        let (fw, report) = analyze_profile(&profile);
        for gt in &fw.ground_truth {
            total += 1;
            // Plant-precise matching: the sink lives either in the
            // plant's entry or in a helper suffixed with its id
            // (`run_<id>`, `copy_<id>`, `handle_<id>`), so two plants
            // with the same source→sink pair stay distinguishable.
            let suffix = format!("_{}", gt.id);
            let statically_vulnerable = report.vulnerable_paths().iter().any(|f| {
                f.sink == gt.sink
                    && f.sources.iter().any(|s| s.name == gt.source)
                    && (f.sink_fn == gt.entry_fn || f.sink_fn.ends_with(&suffix))
            });

            let mut attack = AttackConfig::default();
            poison_all_rodata_names(&fw.binary, &mut attack);
            let verdict = validate(&fw.binary, &gt.entry_fn, &attack);
            let dynamically_vulnerable =
                matches!(verdict, Verdict::MemoryCorruption(_) | Verdict::CommandInjected(_));

            // The static verdict on a sanitized twin is "not vulnerable";
            // on a vulnerable plant it must be "vulnerable". Dynamic ditto.
            let expected = !gt.sanitized;
            let ok = statically_vulnerable == expected && dynamically_vulnerable == expected;
            if ok {
                agree += 1;
            }
            rows.push(vec![
                format!("{} {}", profile.manufacturer, gt.id),
                format!("{} → {}", gt.source, gt.sink),
                if gt.sanitized { "guarded" } else { "vulnerable" }.to_owned(),
                if statically_vulnerable { "FLAGGED" } else { "clean" }.to_owned(),
                match &verdict {
                    Verdict::MemoryCorruption(f) => format!("crash: {f}"),
                    Verdict::CommandInjected(_) => "command injected".to_owned(),
                    Verdict::NoEffect => "survived".to_owned(),
                    Verdict::Hang => "hang".to_owned(),
                },
                if ok { "AGREE" } else { "DISAGREE" }.to_owned(),
            ]);
        }
    }
    print!(
        "{}",
        render_table(&["Plant", "Flow", "Ground truth", "Static", "Dynamic", "Verdicts"], &rows)
    );
    println!();
    println!("agreement: {agree}/{total} plants");
    if agree == total {
        println!("static analysis, concrete execution and ground truth fully agree.");
    }
}
