//! Figure 1 — "The number of firmware can be successfully emulated."
//!
//! Generates the 6,529-image corpus (12 manufacturers, 2009–2016),
//! triages every image through unpack → emulate, and prints the per-year
//! histogram: total images (grey bars in the paper) vs successfully
//! emulated (red portion).
//!
//! ```sh
//! cargo run --release -p dtaint-bench --bin fig1_emulation
//! ```

use dtaint_fwimage::{generate_corpus, triage, CorpusConfig};

fn main() {
    let config = CorpusConfig::default();
    println!("generating corpus: {} images, seed {:#x}", config.n_images, config.seed);
    let corpus = generate_corpus(&config);
    let stats = triage(&corpus);

    println!();
    println!("Figure 1: firmware emulation feasibility by release year");
    println!();
    let max = stats.values().map(|s| s.total).max().unwrap_or(1);
    for (year, s) in &stats {
        let bar_total = "█".repeat((s.total * 50 / max).max(1));
        println!("{year} │{bar_total} {}", s.total);
        let bar_ok = "▓".repeat((s.emulated * 50 / max).max(usize::from(s.emulated > 0)));
        println!("     │{bar_ok} {} emulated", s.emulated);
    }

    let total: usize = stats.values().map(|s| s.total).sum();
    let unpacked: usize = stats.values().map(|s| s.unpacked).sum();
    let emulated: usize = stats.values().map(|s| s.emulated).sum();
    println!();
    println!("totals:   {total} collected");
    println!(
        "unpacked: {unpacked} ({:.1}%) — paper: >65% of images cannot be unpacked",
        100.0 * unpacked as f64 / total as f64
    );
    println!(
        "emulated: {emulated} ({:.1}%) — paper: <670 of 6,529 (~10%) can be emulated",
        100.0 * emulated as f64 / total as f64
    );
    println!("not emulatable: {} — paper: 5,859", total - emulated);
}
