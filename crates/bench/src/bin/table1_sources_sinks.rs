//! Table I — "Sources and Sinks": the library-function configuration
//! the detector ships with, printed in the paper's layout.
//!
//! ```sh
//! cargo run -p dtaint-bench --bin table1_sources_sinks
//! ```

use dtaint_bench::render_table;
use dtaint_core::{SINK_SPECS, SOURCE_NAMES};

fn main() {
    println!("Table I: Sources and Sinks");
    println!();
    let sinks: Vec<String> = SINK_SPECS
        .iter()
        .map(|s| format!("{} ({}; tainted var: {:?})", s.name, s.kind, s.tainted))
        .collect();
    let rows = vec![
        vec![
            "Sensitive sinks".to_owned(),
            SINK_SPECS.iter().map(|s| s.name).collect::<Vec<_>>().join(", ") + ", loop",
        ],
        vec!["Input sources".to_owned(), SOURCE_NAMES.join(", ")],
    ];
    print!("{}", render_table(&["", "Library functions"], &rows));
    println!();
    println!("sink details:");
    for s in sinks {
        println!("  {s}");
    }
    println!("  loop-copy (structural: copy statements in loops, §IV)");
}
