//! Incremental-cache payoff — wall time of a cold corpus scan vs a warm
//! re-scan after a one-function edit, over a three-image Table II corpus.
//! The warm pass re-analyzes only the edited function and its transitive
//! callers; everything else is served from the summary cache.
//!
//! Every warm report is checked byte-for-byte (modulo wall clock)
//! against a cold scan of the same image before any number is reported,
//! so the speedup is measured on provably identical output.
//!
//! Prints the comparison and records the measurements in
//! `results/BENCH_incremental.json` (relative to the working directory,
//! normally the workspace root).
//!
//! ```sh
//! cargo run --release -p dtaint-bench --bin incremental_cache
//! ```
//!
//! `DTAINT_REPS` (default 3) sets the repetitions; the best (minimum)
//! wall time of each pass is reported.

use dtaint_bench::render_table;
use dtaint_core::{CacheRef, Dtaint, DtaintConfig, SummaryCache};
use dtaint_fwgen::{build_firmware, build_version_pair, table2_profiles, GeneratedFirmware};
use serde_json::Value;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Corpus profiles (Table II indices) with the function count capped so
/// the bench finishes in seconds; the edit lands in the last image.
const PROFILES: [usize; 3] = [0, 1, 2];
const CAP: usize = 400;
const EDIT_SEED: u64 = 11;
const EDITS: usize = 1;

fn scan(fw: &GeneratedFirmware, label: &str, cache: Option<&Arc<SummaryCache>>) -> Duration {
    let config = DtaintConfig {
        cache: cache.map(|c| CacheRef::new(c.clone(), label)),
        ..Default::default()
    };
    let start = Instant::now();
    Dtaint::with_config(config).analyze(&fw.binary, label).expect("scan succeeds");
    start.elapsed()
}

fn main() {
    let reps: usize = std::env::var("DTAINT_REPS").ok().and_then(|v| v.parse().ok()).unwrap_or(3);

    // Base corpus, and an updated build of the last image with EDITS
    // function bodies changed (size-preservingly, via a version pair).
    let mut base = Vec::new();
    for &index in &PROFILES {
        let mut p = table2_profiles().remove(index);
        p.total_functions = p.total_functions.min(CAP);
        base.push(build_firmware(&p));
    }
    let mut edited_profile = table2_profiles().remove(*PROFILES.last().unwrap());
    edited_profile.total_functions = edited_profile.total_functions.min(CAP);
    let pair = build_version_pair(&edited_profile, EDIT_SEED, EDITS);
    let mut updated: Vec<&GeneratedFirmware> = base.iter().take(PROFILES.len() - 1).collect();
    updated.push(&pair.updated);

    let total_functions: usize = base.iter().map(|fw| fw.profile.total_functions).sum();
    println!(
        "incremental cache payoff: {} image(s), {} functions total, {} edited, best of {reps} reps",
        base.len(),
        total_functions,
        pair.changed.len()
    );
    println!();

    // Reference: cold scans of the *updated* corpus, for the
    // differential check below.
    let reference: Vec<_> = updated
        .iter()
        .enumerate()
        .map(|(i, fw)| {
            let config = DtaintConfig::default();
            Dtaint::with_config(config)
                .analyze(&fw.binary, &format!("img{i}"))
                .expect("reference scan succeeds")
                .with_zeroed_wall_clock()
        })
        .collect();

    let mut cold_best = Duration::MAX;
    let mut warm_best = Duration::MAX;
    let mut hits = 0u64;
    let mut misses = 0u64;
    for _ in 0..reps {
        let cache = Arc::new(SummaryCache::new());
        // Cold pass: populate the cache from the base corpus.
        let cold: Duration =
            base.iter().enumerate().map(|(i, fw)| scan(fw, &format!("img{i}"), Some(&cache))).sum();
        cold_best = cold_best.min(cold);
        // Warm pass: re-scan with one image updated.
        let mut warm = Duration::ZERO;
        for (i, fw) in updated.iter().enumerate() {
            let label = format!("img{i}");
            let config = DtaintConfig {
                cache: Some(CacheRef::new(cache.clone(), &label)),
                ..Default::default()
            };
            let start = Instant::now();
            let report = Dtaint::with_config(config).analyze(&fw.binary, &label).expect("scan");
            warm += start.elapsed();
            assert_eq!(
                report.with_zeroed_wall_clock(),
                reference[i],
                "img{i}: warm report diverged from the cold reference"
            );
        }
        warm_best = warm_best.min(warm);
        // Counters are deterministic — read them once, from the last rep.
        hits = 0;
        misses = 0;
        for i in 0..updated.len() {
            let st = cache.scan_stats(&format!("img{i}"));
            hits += st.sym_hits + st.ddg_hits;
            misses += st.sym_misses + st.ddg_misses;
        }
    }

    let speedup = cold_best.as_secs_f64() / warm_best.as_secs_f64().max(1e-9);
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    let rows = vec![
        vec!["cold (populate)".into(), format!("{:.1}", cold_best.as_secs_f64() * 1e3)],
        vec!["warm (1 fn edited)".into(), format!("{:.1}", warm_best.as_secs_f64() * 1e3)],
        vec!["speedup".into(), format!("{speedup:.2}x")],
        vec!["warm hit rate".into(), format!("{:.1}%", hit_rate * 100.0)],
    ];
    print!("{}", render_table(&["Pass", "Wall time (ms)"], &rows));
    println!();
    println!("warm reports matched the cold reference on every image");

    let doc = Value::Obj(vec![
        ("bench".into(), Value::Str("incremental".into())),
        ("images".into(), Value::Int(base.len() as i64)),
        ("functions".into(), Value::Int(total_functions as i64)),
        ("changed_functions".into(), Value::Int(pair.changed.len() as i64)),
        ("reps".into(), Value::Int(reps as i64)),
        ("cold_ms".into(), Value::Float(cold_best.as_secs_f64() * 1e3)),
        ("warm_ms".into(), Value::Float(warm_best.as_secs_f64() * 1e3)),
        ("speedup".into(), Value::Float(speedup)),
        ("warm_hit_rate".into(), Value::Float(hit_rate)),
        ("identical_findings".into(), Value::Bool(true)),
    ]);
    std::fs::create_dir_all("results").ok();
    let path = "results/BENCH_incremental.json";
    let json = serde_json::to_string_pretty(&doc).expect("serialize");
    std::fs::write(path, json + "\n").expect("write results file");
    println!("wrote {path}");
}
