//! Table II — "The summary information of firmware analysis using
//! DTaint": six firmware images with size, function, block, and
//! call-graph-edge counts.
//!
//! The full-size run generates binaries at the paper's function counts
//! (237 … 14,035). Use `DTAINT_SCALE=0.1` for a quick pass.
//!
//! ```sh
//! cargo run --release -p dtaint-bench --bin table2_summary
//! ```

use dtaint_bench::{render_table, scaled};
use dtaint_cfg::{build_all_cfgs, CallGraph};
use dtaint_fwgen::{build_firmware, table2_profiles};

fn main() {
    println!("Table II: summary information of the six firmware images");
    println!("(scale factor {})", dtaint_bench::scale());
    println!();
    let mut rows = Vec::new();
    for profile in table2_profiles() {
        let profile = scaled(profile);
        let fw = build_firmware(&profile);
        // Whole-binary statistics (unfiltered), as the paper reports.
        let cfgs = build_all_cfgs(&fw.binary).expect("generated binary lifts");
        let cg = CallGraph::build(&fw.binary, &cfgs);
        let blocks: usize = cfgs.iter().map(|c| c.block_count()).sum();
        rows.push(vec![
            profile.index.to_string(),
            profile.manufacturer.to_owned(),
            profile.firmware_version.to_owned(),
            match profile.arch {
                dtaint_fwbin::Arch::Arm32e => "ARM".to_owned(),
                dtaint_fwbin::Arch::Mips32e => "MIPS".to_owned(),
            },
            profile.binary_name.to_owned(),
            (fw.binary.total_size() / 1024).to_string(),
            cfgs.len().to_string(),
            blocks.to_string(),
            cg.edge_count().to_string(),
        ]);
    }
    print!(
        "{}",
        render_table(
            &[
                "Index",
                "Manufacturer",
                "Firmware Version",
                "Arch",
                "Binary",
                "Size (KB)",
                "Functions",
                "Blocks",
                "Call graph edges"
            ],
            &rows
        )
    );
    println!();
    println!("paper reference (functions / blocks / edges):");
    println!("  1 D-Link DIR-645      237 /   3,414 /  1,087");
    println!("  2 D-Link DIR-890L     358 /   3,913 /  1,418");
    println!("  3 Netgear DGN1000     732 /   4,943 /  2,457");
    println!("  4 Netgear DGN2200     796 /  11,183 /  4,497");
    println!("  5 Uniview IPC_6201  6,714 /  99,958 / 32,495");
    println!("  6 Hikvision DS-2CD 14,035 / 219,945 / 68,974");
}
