//! The strict-bounds extension in action (beyond the paper).
//!
//! The paper's sanitisation check is syntactic: *any* bounding
//! constraint on the tainted length counts. A guard that does not fit
//! the destination (`if (n < 1024)` into a 256-byte buffer) therefore
//! silences the report while the flow stays exploitable. The extension
//! compares constant bounds against the destination's stack capacity.
//!
//! ```sh
//! cargo run --release -p dtaint-bench --bin extension_weak_bounds
//! ```

use dtaint_bench::render_table;
use dtaint_core::{Dtaint, DtaintConfig};
use dtaint_emu::{validate, AttackConfig, Verdict};
use dtaint_fwbin::Arch;
use dtaint_fwgen::compile;
use dtaint_fwgen::spec::{Callee, FnSpec, ProgramSpec, Stmt};
use dtaint_fwgen::templates::{plant, PlantKind, PlantSpec};

fn build(sanitized: bool) -> dtaint_fwbin::Binary {
    let mut spec = ProgramSpec::new("wb");
    let gt = plant(&mut spec, &PlantSpec::new(PlantKind::BofWeakBound, "w", sanitized, 0));
    let mut main = FnSpec::new("main", 0);
    main.push(Stmt::Call { callee: Callee::Func(gt.entry_fn), args: vec![], ret: None });
    main.push(Stmt::Return(None));
    spec.func(main);
    compile(&spec, Arch::Arm32e).unwrap()
}

fn main() {
    println!("strict-bounds extension: weak guards vs fitting guards");
    println!();
    let mut rows = Vec::new();
    for (label, sanitized) in
        [("if (n < 1024) memcpy(dst256, …, n)", false), ("if (n < 200) memcpy(dst256, …, n)", true)]
    {
        let bin = build(sanitized);
        let default_verdict = Dtaint::new().analyze(&bin, "wb").unwrap().vulnerabilities();
        let strict = DtaintConfig { strict_bounds: true, ..Default::default() };
        let strict_verdict =
            Dtaint::with_config(strict).analyze(&bin, "wb").unwrap().vulnerabilities();
        let attack = AttackConfig { overflow_len: 1000, input_frames: 2, ..Default::default() };
        let dynamic = match validate(&bin, "main", &attack) {
            Verdict::MemoryCorruption(f) => format!("crash: {f}"),
            Verdict::CommandInjected(_) => "injected".into(),
            Verdict::NoEffect => "survived".into(),
            Verdict::Hang => "hang".into(),
        };
        rows.push(vec![
            label.to_owned(),
            if default_verdict > 0 { "FLAGGED" } else { "clean" }.to_owned(),
            if strict_verdict > 0 { "FLAGGED" } else { "clean" }.to_owned(),
            dynamic,
        ]);
    }
    print!(
        "{}",
        render_table(
            &["Guard", "Paper-faithful mode", "Strict-bounds mode", "Concrete (1000-byte probe)"],
            &rows
        )
    );
    println!();
    println!("the weak guard fools the syntactic check but not the capacity check,");
    println!("and the emulator confirms the strict verdict.");
}
