//! The bounds-judgement extensions in action (beyond the paper).
//!
//! The paper's sanitisation check is syntactic: *any* bounding
//! constraint on the tainted length counts. A guard that does not fit
//! the destination (`if (n < 1024)` into a 256-byte buffer) therefore
//! silences the report while the flow stays exploitable. Two extensions
//! close the gap in stages:
//!
//! * **strict bounds** — constant guards are compared against the
//!   destination's stack capacity;
//! * **interval guards** — path constraints are evaluated over an
//!   interval abstract domain, so *symbolic* guards (`if (n < y)`),
//!   global destinations, oversized counted loops, and contradictory
//!   (infeasible) paths are judged too.
//!
//! Every static verdict is cross-checked against a concrete 1000-byte
//! emulator probe.
//!
//! ```sh
//! cargo run --release -p dtaint-bench --bin extension_weak_bounds
//! ```

use dtaint_bench::render_table;
use dtaint_core::{Dtaint, DtaintConfig};
use dtaint_emu::{validate, AttackConfig, Verdict};
use dtaint_fwbin::Arch;
use dtaint_fwgen::compile;
use dtaint_fwgen::spec::{Callee, FnSpec, ProgramSpec, Stmt};
use dtaint_fwgen::templates::{plant, PlantKind, PlantSpec};

fn build(kind: PlantKind, sanitized: bool) -> dtaint_fwbin::Binary {
    let mut spec = ProgramSpec::new("wb");
    let gt = plant(&mut spec, &PlantSpec::new(kind, "w", sanitized, 0));
    let mut main = FnSpec::new("main", 0);
    main.push(Stmt::Call { callee: Callee::Func(gt.entry_fn), args: vec![], ret: None });
    main.push(Stmt::Return(None));
    spec.func(main);
    compile(&spec, Arch::Arm32e).unwrap()
}

fn verdict(bin: &dtaint_fwbin::Binary, strict: bool, interval: bool) -> &'static str {
    let config =
        DtaintConfig { strict_bounds: strict, interval_guards: interval, ..Default::default() };
    let r = Dtaint::with_config(config).analyze(bin, "wb").unwrap();
    if r.vulnerabilities() > 0 {
        "FLAGGED"
    } else {
        "clean"
    }
}

fn main() {
    println!("bounds-judgement extensions: paper vs strict vs interval");
    println!();
    let cases: &[(&str, PlantKind, bool)] = &[
        ("if (n < 1024) memcpy(dst256, …, n)", PlantKind::BofWeakBound, false),
        ("if (n < 200) memcpy(dst256, …, n)", PlantKind::BofWeakBound, true),
        ("if (n < y) …, y = 1024 from init()", PlantKind::BofSymbolicBound, false),
        ("if (n < y) …, y = 200 from init()", PlantKind::BofSymbolicBound, true),
        ("if (n < 1024) memcpy(g_dst64, …, n)", PlantKind::BofGlobalDst, false),
        ("if (n < 48) memcpy(g_dst64, …, n)", PlantKind::BofGlobalDst, true),
        ("counted 1024-byte loop into dst64", PlantKind::BofLoopcopyOversized, false),
        ("counted 48-byte loop into dst64", PlantKind::BofLoopcopyOversized, true),
        ("if (sel==5 && sel==7) memcpy (dead)", PlantKind::BofInfeasiblePath, true),
        ("if (sel==5) memcpy, init sel=5", PlantKind::BofInfeasiblePath, false),
    ];
    let mut rows = Vec::new();
    for &(label, kind, sanitized) in cases {
        let bin = build(kind, sanitized);
        let paper = verdict(&bin, false, false);
        let strict = verdict(&bin, true, false);
        let interval = verdict(&bin, false, true);
        let attack = AttackConfig { overflow_len: 1000, input_frames: 2, ..Default::default() };
        let dynamic = match validate(&bin, "main", &attack) {
            Verdict::MemoryCorruption(f) => format!("crash: {f}"),
            Verdict::CommandInjected(_) => "injected".into(),
            Verdict::NoEffect => "survived".into(),
            Verdict::Hang => "hang".into(),
        };
        rows.push(vec![
            label.to_owned(),
            paper.to_owned(),
            strict.to_owned(),
            interval.to_owned(),
            dynamic.clone(),
        ]);

        // The headline rows: both syntactic modes wrong, interval right,
        // emulator agreeing. Guard the claim so the table cannot rot.
        let crashed = dynamic.starts_with("crash");
        match (kind, sanitized) {
            (PlantKind::BofSymbolicBound, false) => {
                assert_eq!((paper, strict, interval), ("clean", "clean", "FLAGGED"));
                assert!(crashed, "oversized symbolic guard must be exploitable");
            }
            (PlantKind::BofInfeasiblePath, true) => {
                assert_eq!((paper, strict, interval), ("FLAGGED", "FLAGGED", "clean"));
                assert!(!crashed, "dead code cannot crash");
            }
            _ => {}
        }
    }
    print!(
        "{}",
        render_table(
            &["Guard", "Paper-faithful", "Strict-bounds", "Interval", "Concrete (1000-byte probe)"],
            &rows
        )
    );
    println!();
    println!("the weak, symbolic, global-destination and counted-loop guards fool the");
    println!("syntactic checks; the interval solver rates each against the destination");
    println!("capacity, discards the contradictory path, and the emulator agrees.");
}
