//! Table VII — "Time cost between Angr and DTaint": SSA and DDG
//! seconds on the four subject programs (`cgibin`, `setup.cgi`,
//! `httpd`, `openssl`), with the conventional top-down context-cloning
//! generator standing in for angr.
//!
//! The shape to reproduce: comparable SSA costs, and a DDG gap of
//! orders of magnitude in DTaint's favour, growing with call-graph
//! density — because the baseline re-analyzes every function once per
//! calling context while DTaint's bottom-up pass analyzes each exactly
//! once.
//!
//! ```sh
//! cargo run --release -p dtaint-bench --bin table7_timecost
//! ```

use dtaint_baseline::{analyze_topdown, BaselineConfig};
use dtaint_bench::{render_table, scaled};
use dtaint_cfg::{build_all_cfgs, CallGraph};
use dtaint_dataflow::{build_dataflow, DataflowConfig};
use dtaint_fwgen::{build_firmware, table7_programs};
use dtaint_symex::{analyze_function, ExprPool, SymexConfig};
use std::time::Instant;

fn main() {
    let depth: usize =
        std::env::var("DTAINT_BASELINE_DEPTH").ok().and_then(|v| v.parse().ok()).unwrap_or(8);
    let sweep_threads: usize =
        std::env::var("DTAINT_THREADS").ok().and_then(|v| v.parse().ok()).unwrap_or(4);
    println!("Table VII: time cost, baseline (angr-style) vs DTaint");
    println!(
        "(scale factor {}, baseline context depth {depth} — raise DTAINT_BASELINE_DEPTH to widen the gap; parallel DDG column at DTAINT_THREADS={sweep_threads})",
        dtaint_bench::scale()
    );
    println!();
    let mut rows = Vec::new();
    for profile in table7_programs() {
        let profile = scaled(profile);
        let fw = build_firmware(&profile);
        let cfgs = build_all_cfgs(&fw.binary).expect("lifts");
        let mut cg = CallGraph::build(&fw.binary, &cfgs);

        // Baseline SSA: the generic engine's per-function execution with
        // its larger default path budget.
        let t = Instant::now();
        {
            let mut pool = ExprPool::new();
            let generic = BaselineConfig::default().symex;
            for c in &cfgs {
                let _ = analyze_function(&fw.binary, c, &mut pool, &generic);
            }
        }
        let base_ssa = t.elapsed();

        // Baseline DDG: top-down, context-cloning re-analysis.
        let t = Instant::now();
        let base_config = BaselineConfig { max_depth: depth, ..Default::default() };
        let base = analyze_topdown(&fw.binary, &cfgs, &cg, &base_config);
        let base_ddg = t.elapsed();

        // DTaint SSA: one pass per function.
        let t = Instant::now();
        let mut pool = ExprPool::new();
        let summaries: Vec<_> = cfgs
            .iter()
            .map(|c| analyze_function(&fw.binary, c, &mut pool, &SymexConfig::default()))
            .collect();
        let dt_ssa = t.elapsed();

        // DTaint DDG: bottom-up propagation, sequential and at the
        // sweep thread count (DTAINT_THREADS, default 4) — the parallel
        // run is a separate build over cloned inputs so both points
        // measure the identical workload.
        let t = Instant::now();
        let df = build_dataflow(
            &fw.binary,
            &mut cg.clone(),
            summaries.clone(),
            pool.clone(),
            &DataflowConfig::default(),
        );
        let dt_ddg = t.elapsed();

        let par_config = DataflowConfig { threads: sweep_threads, ..Default::default() };
        let t = Instant::now();
        let _ = build_dataflow(&fw.binary, &mut cg, summaries, pool, &par_config);
        let dt_ddg_par = t.elapsed();

        rows.push(vec![
            profile.binary_name.to_owned(),
            format!("{:.3}", base_ssa.as_secs_f64()),
            format!("{:.3}", base_ddg.as_secs_f64()),
            format!("{:.3}", dt_ssa.as_secs_f64()),
            format!("{:.3}", dt_ddg.as_secs_f64()),
            format!("{:.3}", dt_ddg_par.as_secs_f64()),
            format!("{:.1}x", base_ddg.as_secs_f64() / dt_ddg.as_secs_f64().max(1e-9)),
            format!("{} ctx / {} fns", base.contexts_analyzed, df.order.len()),
        ]);
    }
    print!(
        "{}",
        render_table(
            &[
                "Program",
                "Baseline SSA (s)",
                "Baseline DDG (s)",
                "DTaint SSA (s)",
                "DTaint DDG (s)",
                "DTaint DDG par (s)",
                "DDG speedup",
                "Re-analysis"
            ],
            &rows
        )
    );
    println!();
    println!("paper reference (seconds, Angr SSA/DDG vs DTaint SSA/DDG):");
    println!("  cgibin     134.49 / 16,463.32   62.34 / 10.48");
    println!("  setup.cgi   39.17 /    539.68   33.85 /  1.21");
    println!("  httpd      106.92 / 22,195.45   60.92 /  8.87");
    println!("  openssl    102.94 /  7,345.56   47.33 /  3.09");
}
