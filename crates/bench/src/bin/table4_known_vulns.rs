//! Table IV — "The previous reported vulnerabilities with the taint
//! style using DTaint": the eight CVE/EDB-shaped flows, their sink and
//! source functions, and whether a security check guards them.
//!
//! ```sh
//! cargo run --release -p dtaint-bench --bin table4_known_vulns
//! ```

use dtaint_bench::{analyze_profile, render_table, scaled};
use dtaint_fwgen::table2_profiles;

/// `(plant id prefix, public identifier)`.
const KNOWN: &[(&str, &str)] = &[
    ("cve_2013_7389a", "CVE-2013-7389"),
    ("cve_2013_7389b", "CVE-2013-7389"),
    ("cve_2015_2051", "CVE-2015-2051"),
    ("cve_2016_5681", "CVE-2016-5681"),
    ("edb_43055", "EDB-ID:43055"),
    ("cve_2017_6334", "CVE-2017-6334"),
    ("cve_2017_6077", "CVE-2017-6077"),
    ("cve_2015_2051v", "CVE-2015-2051 (890L)"),
];

fn main() {
    println!("Table IV: previously reported vulnerabilities re-found by DTaint");
    println!();
    let mut rows = Vec::new();
    for profile in table2_profiles() {
        let profile = scaled(profile);
        let (fw, report) = analyze_profile(&profile);
        for gt in &fw.ground_truth {
            let Some((_, label)) = KNOWN.iter().find(|(id, _)| *id == gt.id) else { continue };
            let detected = report
                .vulnerable_paths()
                .iter()
                .any(|f| f.sink == gt.sink && f.sources.iter().any(|s| s.name == gt.source));
            rows.push(vec![
                label.to_string(),
                gt.sink.clone(),
                gt.source.clone(),
                if gt.sanitized { "Y" } else { "N" }.to_owned(),
                if detected { "DETECTED" } else { "MISSED" }.to_owned(),
            ]);
        }
    }
    print!(
        "{}",
        render_table(&["Vulnerability", "Sink", "Sources", "Security check", "DTaint"], &rows)
    );
    println!();
    println!("paper reference: all eight rows carry security check = N and were found.");
}
