//! Table III — "The summary of the taint-style vulnerabilities that
//! DTaint found": analyzed functions, sink counts, execution time,
//! vulnerable paths, and vulnerabilities per firmware image — scored
//! against planted ground truth, which the paper could only approximate
//! by manual validation.
//!
//! ```sh
//! cargo run --release -p dtaint-bench --bin table3_detection
//! ```

use dtaint_bench::{analyze_profile, render_table, scaled};
use dtaint_fwgen::table2_profiles;

fn main() {
    println!("Table III: taint-style vulnerabilities found by DTaint");
    println!("(scale factor {})", dtaint_bench::scale());
    println!();
    let mut rows = Vec::new();
    let mut total_vulns = 0;
    let mut total_expected = 0;
    for profile in table2_profiles() {
        let profile = scaled(profile);
        let (fw, report) = analyze_profile(&profile);
        let expected = fw.ground_truth.iter().filter(|g| !g.sanitized).count();
        total_vulns += report.vulnerabilities();
        total_expected += expected;
        rows.push(vec![
            format!("{} {}", profile.manufacturer, profile.firmware_version),
            report.functions.to_string(),
            report.sinks_count.to_string(),
            format!("{:.2}", report.timings.total().as_secs_f64() / 60.0),
            report.vulnerable_paths().len().to_string(),
            report.vulnerabilities().to_string(),
            format!("{expected} planted"),
        ]);
    }
    print!(
        "{}",
        render_table(
            &[
                "Firmware",
                "Analysis functions",
                "Sinks count",
                "Time (minutes)",
                "Vulnerable paths",
                "Vulnerability",
                "Ground truth"
            ],
            &rows
        )
    );
    println!();
    println!("detected {total_vulns} vulnerabilities; ground truth {total_expected} (paper: 21)");
    println!();
    println!("paper reference (functions / sinks / minutes / paths / vulns):");
    println!("  DIR-645    237 /   176 /  1.18 /  7 / 4");
    println!("  DIR-890L   358 /   276 /  1.48 /  5 / 2");
    println!("  DGN1000    732 /   958 /  3.19 / 19 / 6");
    println!("  DGN2200    796 / 1,264 /  6.62 / 14 / 2");
    println!("  IPC_6201   430 /   447 /  3.97 / 10 / 1");
    println!("  DS-2CD6  3,233 / 2,052 / 31.89 / 30 / 6");
}
