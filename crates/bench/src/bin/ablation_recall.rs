//! Recall ablations for DESIGN.md's design choices: what fraction of
//! the planted ground truth survives when a pipeline stage is disabled
//! or the path budget shrinks, plus the store-vs-SSE alias ablation
//! across every Table II profile. Writes the machine-readable alias
//! comparison to `results/BENCH_alias_recall.json` and asserts that the
//! SSE fixpoint never detects fewer plants than the store-based pass.
//!
//! ```sh
//! cargo run --release -p dtaint-bench --bin ablation_recall
//! ```

use dtaint_bench::render_table;
use dtaint_core::{AliasMode, Dtaint, DtaintConfig};
use dtaint_fwgen::templates::PlantKind;
use dtaint_fwgen::{build_firmware, table2_profiles, FirmwareProfile, GeneratedFirmware};
use dtaint_symex::SymexConfig;
use serde_json::Value;

const DEEP_KINDS: [PlantKind; 4] = [
    PlantKind::BofAliasDeep2,
    PlantKind::BofAliasDeep3,
    PlantKind::BofAliasCalleeLoad,
    PlantKind::BofAliasOffset,
];

/// Whether `report` contains a finding for plant `g`. Several plant
/// kinds share a (source, sink) pair, so plants whose sink lives in a
/// per-plant handler additionally match on the handler's name — a
/// BofUrlParamAliasIndirect hit must not be credited to a deep-alias
/// plant it didn't detect.
fn plant_detected(
    report: &dtaint_core::AnalysisReport,
    g: &dtaint_fwgen::templates::PlantedVuln,
) -> bool {
    let own_handler = DEEP_KINDS.contains(&g.kind) || g.kind == PlantKind::BofUrlParamAliasIndirect;
    report.vulnerable_paths().iter().any(|f| {
        f.sink == g.sink
            && f.sources.iter().any(|s| s.name == g.source)
            && (!own_handler || f.sink_fn == format!("handle_{}", g.id))
    })
}

fn recall(fw: &GeneratedFirmware, config: DtaintConfig) -> (usize, usize) {
    let report = Dtaint::with_config(config).analyze(&fw.binary, "ablation").unwrap();
    let expected: Vec<_> = fw.ground_truth.iter().filter(|g| !g.sanitized).collect();
    let hit = expected.iter().filter(|g| plant_detected(&report, g)).count();
    (hit, expected.len())
}

/// Recall counted separately for the multi-level alias plants and the
/// rest of the ground truth.
fn alias_recall(fw: &GeneratedFirmware, mode: AliasMode) -> (usize, usize, usize, usize) {
    let mut config = DtaintConfig {
        function_filter: fw
            .profile
            .analyzed_prefixes
            .clone()
            .map(|v| v.into_iter().map(str::to_owned).collect()),
        ..Default::default()
    };
    config.dataflow.alias.mode = mode;
    let report = Dtaint::with_config(config).analyze(&fw.binary, "alias").unwrap();
    let deep: Vec<_> =
        fw.ground_truth.iter().filter(|g| !g.sanitized && DEEP_KINDS.contains(&g.kind)).collect();
    let flat: Vec<_> =
        fw.ground_truth.iter().filter(|g| !g.sanitized && !DEEP_KINDS.contains(&g.kind)).collect();
    let deep_hit = deep.iter().filter(|g| plant_detected(&report, g)).count();
    let flat_hit = flat.iter().filter(|g| plant_detected(&report, g)).count();
    (deep_hit, deep.len(), flat_hit, flat.len())
}

/// Shrinks a profile for bench speed, keeping every plant.
fn shrunk(mut profile: FirmwareProfile, functions: usize) -> FirmwareProfile {
    profile.total_functions = profile.total_functions.min(functions);
    profile
}

fn main() {
    // The Hikvision profile exercises every advanced mechanism: aliases,
    // indirect calls, loop copies, multi-level pointer chains.
    let mut profile = table2_profiles().remove(5);
    profile.total_functions = 400;
    profile.analyzed_prefixes = None;
    let fw = build_firmware(&profile);

    let mut rows = Vec::new();
    let configs: Vec<(&str, DtaintConfig)> = vec![
        ("full pipeline (sse alias)", DtaintConfig::default()),
        ("store-based alias (Algorithm 1)", {
            let mut c = DtaintConfig::default();
            c.dataflow.alias.mode = AliasMode::Store;
            c
        }),
        ("no pointer aliasing", {
            let mut c = DtaintConfig::default();
            c.dataflow.enable_alias = false;
            c
        }),
        ("no indirect resolution", {
            let mut c = DtaintConfig::default();
            c.dataflow.enable_indirect = false;
            c
        }),
        ("no loop-copy sinks", {
            let mut c = DtaintConfig::default();
            c.dataflow.loop_copy_sinks = false;
            c
        }),
        (
            "path cap 4",
            DtaintConfig {
                symex: SymexConfig { max_paths: 4, ..Default::default() },
                ..Default::default()
            },
        ),
        (
            "path cap 1",
            DtaintConfig {
                symex: SymexConfig { max_paths: 1, ..Default::default() },
                ..Default::default()
            },
        ),
    ];
    let total_plants = fw.ground_truth.iter().filter(|g| !g.sanitized).count();
    for (label, config) in configs {
        let (hit, total) = recall(&fw, config);
        rows.push(vec![
            label.to_owned(),
            format!("{hit}/{total}"),
            format!("{:.0}%", 100.0 * hit as f64 / total as f64),
        ]);
    }
    println!("ablation recall on the Hikvision-shaped profile ({total_plants} planted flows):");
    println!();
    print!("{}", render_table(&["Configuration", "Detected", "Recall"], &rows));
    println!();
    println!("expected shape: the store-based pass loses the four multi-level alias");
    println!("chains the SSE fixpoint connects; disabling aliasing or indirect");
    println!("resolution loses the URL-parameter flows as well.");
    println!();

    // Store-vs-SSE across every Table II profile, scored per plant
    // class. Hard floor: SSE recall >= store recall everywhere, SSE
    // finds every deep plant, and neither mode invents findings on
    // profiles without alias plants (flat recall stays equal).
    let sizes = [120, 120, 150, 150, 300, 400];
    let mut alias_rows = Vec::new();
    let mut profiles_json = Vec::new();
    for (i, profile) in table2_profiles().into_iter().enumerate() {
        let fw = build_firmware(&shrunk(profile, sizes[i]));
        let (s_deep, deep_n, s_flat, flat_n) = alias_recall(&fw, AliasMode::Store);
        let (e_deep, _, e_flat, _) = alias_recall(&fw, AliasMode::Sse);
        assert!(
            e_deep + e_flat >= s_deep + s_flat,
            "{}: SSE recall fell below store ({e_deep}+{e_flat} < {s_deep}+{s_flat})",
            fw.profile.binary_name
        );
        assert_eq!(
            e_deep, deep_n,
            "{}: SSE must detect every multi-level alias plant",
            fw.profile.binary_name
        );
        assert_eq!(
            e_flat, s_flat,
            "{}: alias mode must not change recall on flat plants",
            fw.profile.binary_name
        );
        alias_rows.push(vec![
            format!("{} ({})", fw.profile.binary_name, fw.profile.manufacturer),
            format!("{}/{}", s_flat + s_deep, flat_n + deep_n),
            format!("{}/{}", e_flat + e_deep, flat_n + deep_n),
            format!("{s_deep}/{deep_n}"),
            format!("{e_deep}/{deep_n}"),
        ]);
        profiles_json.push(Value::Obj(vec![
            ("binary".into(), Value::Str(fw.profile.binary_name.into())),
            ("manufacturer".into(), Value::Str(fw.profile.manufacturer.into())),
            ("plants".into(), Value::Int((flat_n + deep_n) as i64)),
            ("deep_plants".into(), Value::Int(deep_n as i64)),
            ("store_detected".into(), Value::Int((s_flat + s_deep) as i64)),
            ("sse_detected".into(), Value::Int((e_flat + e_deep) as i64)),
            ("store_deep_detected".into(), Value::Int(s_deep as i64)),
            ("sse_deep_detected".into(), Value::Int(e_deep as i64)),
        ]));
    }
    println!("store-vs-SSE alias recall per profile (deep = multi-level chains):");
    println!();
    print!("{}", render_table(&["Profile", "Store", "SSE", "Store deep", "SSE deep"], &alias_rows));
    println!();

    let doc = Value::Obj(vec![
        ("bench".into(), Value::Str("alias_recall".into())),
        ("modes".into(), Value::Arr(vec![Value::Str("store".into()), Value::Str("sse".into())])),
        ("profiles".into(), Value::Arr(profiles_json)),
    ]);
    std::fs::create_dir_all("results").ok();
    let path = "results/BENCH_alias_recall.json";
    let json = serde_json::to_string_pretty(&doc).expect("serialize");
    std::fs::write(path, json + "\n").expect("write results file");
    println!("wrote {path}");
}
