//! Recall ablations for DESIGN.md's design choices: what fraction of
//! the planted ground truth survives when a pipeline stage is disabled
//! or the path budget shrinks.
//!
//! ```sh
//! cargo run --release -p dtaint-bench --bin ablation_recall
//! ```

use dtaint_bench::render_table;
use dtaint_core::{Dtaint, DtaintConfig};
use dtaint_fwgen::{build_firmware, table2_profiles, GeneratedFirmware};
use dtaint_symex::SymexConfig;

fn recall(fw: &GeneratedFirmware, config: DtaintConfig) -> (usize, usize) {
    let report = Dtaint::with_config(config).analyze(&fw.binary, "ablation").unwrap();
    let expected: Vec<_> = fw.ground_truth.iter().filter(|g| !g.sanitized).collect();
    let hit = expected
        .iter()
        .filter(|g| {
            report
                .vulnerable_paths()
                .iter()
                .any(|f| f.sink == g.sink && f.sources.iter().any(|s| s.name == g.source))
        })
        .count();
    (hit, expected.len())
}

fn main() {
    // The Hikvision profile exercises every advanced mechanism: aliases,
    // indirect calls, loop copies.
    let mut profile = table2_profiles().remove(5);
    profile.total_functions = 400;
    profile.analyzed_prefixes = None;
    let fw = build_firmware(&profile);

    let mut rows = Vec::new();
    let configs: Vec<(&str, DtaintConfig)> = vec![
        ("full pipeline", DtaintConfig::default()),
        ("no pointer aliasing", {
            let mut c = DtaintConfig::default();
            c.dataflow.enable_alias = false;
            c
        }),
        ("no indirect resolution", {
            let mut c = DtaintConfig::default();
            c.dataflow.enable_indirect = false;
            c
        }),
        ("no loop-copy sinks", {
            let mut c = DtaintConfig::default();
            c.dataflow.loop_copy_sinks = false;
            c
        }),
        (
            "path cap 4",
            DtaintConfig {
                symex: SymexConfig { max_paths: 4, ..Default::default() },
                ..Default::default()
            },
        ),
        (
            "path cap 1",
            DtaintConfig {
                symex: SymexConfig { max_paths: 1, ..Default::default() },
                ..Default::default()
            },
        ),
    ];
    for (label, config) in configs {
        let (hit, total) = recall(&fw, config);
        rows.push(vec![
            label.to_owned(),
            format!("{hit}/{total}"),
            format!("{:.0}%", 100.0 * hit as f64 / total as f64),
        ]);
    }
    println!("ablation recall on the Hikvision-shaped profile (6 planted flows):");
    println!();
    print!("{}", render_table(&["Configuration", "Detected", "Recall"], &rows));
    println!();
    println!("expected shape: disabling aliasing or indirect resolution loses the");
    println!("three URL-parameter flows; disabling loop-copy sinks loses two more.");
}
