//! Telemetry overhead check — whole-pipeline wall time with the
//! collector disabled (the `analyze` default) versus enabled with no
//! exporter attached, on a mid-sized Table II profile. The instrumented
//! run must stay within 5% of the baseline (plus a small absolute slack
//! to absorb timer noise on fast scans).
//!
//! A third mode re-measures the instrumented scan with a live batch
//! heartbeat writer running beside it — a [`FleetProgress`] reporter
//! rewriting a status file every ~250 ms, exactly what `dtaint batch
//! --status-out` does — and holds it to the same budget: observability
//! must stay an observer even with the fleet layer on.
//!
//! Prints the comparison and records the measurements in
//! `results/BENCH_telemetry_overhead.json` (relative to the working
//! directory, normally the workspace root).
//!
//! ```sh
//! cargo run --release -p dtaint-bench --bin telemetry_overhead
//! ```
//!
//! `DTAINT_REPS` (default 5) sets the repetitions; the best (minimum)
//! wall time of each mode is compared, so scheduler noise inflates
//! neither side.

use dtaint_bench::scaled;
use dtaint_core::Dtaint;
use dtaint_fwgen::{build_firmware, table2_profiles};
use dtaint_telemetry::{Collector, FleetProgress};
use serde_json::Value;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Absolute slack added to the 5% budget: on a scan measured in tens of
/// milliseconds, timer granularity and allocator jitter alone exceed a
/// strict percentage of the total.
const ABS_SLACK: Duration = Duration::from_millis(15);

fn main() {
    let reps: usize = std::env::var("DTAINT_REPS").ok().and_then(|v| v.parse().ok()).unwrap_or(5);
    // Profile 2 of Table II: the DIR-890L cgibin.
    let profile = scaled(table2_profiles().remove(1));
    println!(
        "telemetry overhead on {} {} `{}` ({} functions), best of {reps} reps",
        profile.manufacturer,
        profile.firmware_version,
        profile.binary_name,
        profile.total_functions
    );
    let fw = build_firmware(&profile);
    let analyzer = Dtaint::new();

    // Warm-up: touch every code path once so neither mode pays cold
    // caches.
    let warm = analyzer.analyze(&fw.binary, "warmup").expect("scan");

    let mut base = Duration::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        let r = analyzer.analyze(&fw.binary, "base").expect("scan");
        base = base.min(t.elapsed());
        assert_eq!(r.findings.len(), warm.findings.len());
    }

    let mut traced = Duration::MAX;
    let mut spans = 0usize;
    for _ in 0..reps {
        let mut tel = Collector::enabled();
        let t = Instant::now();
        let r = analyzer.analyze_traced(&fw.binary, "traced", &mut tel).expect("scan");
        traced = traced.min(t.elapsed());
        spans = tel.events().len();
        // Telemetry must be a pure observer.
        assert_eq!(r.findings.len(), warm.findings.len());
        assert_eq!(r.telemetry.metrics, warm.telemetry.metrics);
    }

    // Heartbeat mode: the instrumented scan again, with a fleet
    // heartbeat writer live beside it (the `--status-out` code path).
    let hb_path = std::env::temp_dir().join(format!("dtaint-bench-hb-{}.json", std::process::id()));
    let mut heartbeat = Duration::MAX;
    let mut beats = 0usize;
    for _ in 0..reps {
        let progress = FleetProgress::new(1, 1, "bench");
        progress.start_image(0, "bench-image");
        let stop = AtomicBool::new(false);
        let wrote = std::thread::scope(|scope| {
            let reporter = scope.spawn(|| {
                let mut wrote = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let hb = progress.heartbeat("running");
                    if let Ok(json) = serde_json::to_string_pretty(&hb) {
                        if std::fs::write(&hb_path, json).is_ok() {
                            wrote += 1;
                        }
                    }
                    std::thread::sleep(Duration::from_millis(250));
                }
                wrote
            });
            let mut tel = Collector::enabled();
            let t = Instant::now();
            let r = analyzer.analyze_traced(&fw.binary, "heartbeat", &mut tel).expect("scan");
            heartbeat = heartbeat.min(t.elapsed());
            stop.store(true, Ordering::Relaxed);
            assert_eq!(r.findings.len(), warm.findings.len());
            assert_eq!(r.telemetry.metrics, warm.telemetry.metrics);
            reporter.join().expect("reporter thread")
        });
        beats = beats.max(wrote);
    }
    std::fs::remove_file(&hb_path).ok();

    let overhead = traced.as_secs_f64() / base.as_secs_f64().max(1e-9) - 1.0;
    let hb_overhead = heartbeat.as_secs_f64() / base.as_secs_f64().max(1e-9) - 1.0;
    let allowed = base.mul_f64(1.05) + ABS_SLACK;
    println!("  disabled:  {:8.2} ms", base.as_secs_f64() * 1e3);
    println!("  enabled:   {:8.2} ms ({spans} spans recorded)", traced.as_secs_f64() * 1e3);
    println!("  heartbeat: {:8.2} ms ({beats} beat(s) written)", heartbeat.as_secs_f64() * 1e3);
    println!("  overhead:  {:+.2}% (budget 5% + {ABS_SLACK:?} slack)", overhead * 1e2);
    println!("  hb overhead: {:+.2}% (same budget)", hb_overhead * 1e2);
    let ok = traced <= allowed && heartbeat <= allowed;

    let doc = Value::Obj(vec![
        ("bench".into(), Value::Str("telemetry_overhead".into())),
        ("profile".into(), Value::Str(profile.binary_name.into())),
        ("functions".into(), Value::Int(profile.total_functions as i64)),
        ("reps".into(), Value::Int(reps as i64)),
        ("disabled_ms".into(), Value::Float(base.as_secs_f64() * 1e3)),
        ("enabled_ms".into(), Value::Float(traced.as_secs_f64() * 1e3)),
        ("heartbeat_ms".into(), Value::Float(heartbeat.as_secs_f64() * 1e3)),
        ("overhead_pct".into(), Value::Float(overhead * 1e2)),
        ("heartbeat_overhead_pct".into(), Value::Float(hb_overhead * 1e2)),
        ("heartbeat_beats".into(), Value::Int(beats as i64)),
        ("spans".into(), Value::Int(spans as i64)),
        ("budget_pct".into(), Value::Float(5.0)),
        ("within_budget".into(), Value::Bool(ok)),
    ]);
    std::fs::create_dir_all("results").ok();
    let path = "results/BENCH_telemetry_overhead.json";
    let json = serde_json::to_string_pretty(&doc).expect("serialize");
    std::fs::write(path, json + "\n").expect("write results file");
    println!("wrote {path}");

    assert!(
        ok,
        "telemetry overhead exceeds the 5% budget: enabled {:.2}% ({traced:?}), \
         heartbeat {:.2}% ({heartbeat:?}), allowed {allowed:?}",
        overhead * 1e2,
        hb_overhead * 1e2,
    );
}
