//! DDG thread-scaling sweep — wall time of the bottom-up propagation
//! stage (Algorithm 2) at 1/2/4/8 worker threads on the DIR-890L-sized
//! Table II profile, with a determinism check at every point: every
//! thread count must reproduce the single-threaded result bit for bit.
//!
//! Prints the scaling table and records the measurements in
//! `results/BENCH_ddg_scaling.json` (relative to the working directory,
//! normally the workspace root).
//!
//! ```sh
//! cargo run --release -p dtaint-bench --bin ddg_scaling
//! ```
//!
//! `DTAINT_REPS` (default 5) sets the repetitions per point; the best
//! (minimum) propagation time of each point is reported.

use dtaint_bench::{render_table, scaled};
use dtaint_cfg::{build_all_cfgs, CallGraph};
use dtaint_dataflow::{build_dataflow, DataflowConfig, ProgramDataflow};
use dtaint_fwgen::{build_firmware, table2_profiles};
use dtaint_symex::{analyze_function, ExprPool, SymexConfig};
use serde_json::Value;
use std::time::Duration;

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Renders everything downstream consumers read out of a dataflow
/// result: final summaries, sink observations (arguments displayed
/// through the pool, so expression identity matters, not just shape)
/// and resolved indirect calls.
fn fingerprint(df: &ProgramDataflow) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (addr, fin) in &df.finals {
        let _ = writeln!(
            out,
            "{addr:#x} local={} defs={}",
            fin.local_constraints,
            fin.summary.def_pairs.len()
        );
        for s in &fin.sinks {
            let args: Vec<String> =
                s.args.iter().map(|&a| df.pool.display(a).to_string()).collect();
            let _ = writeln!(
                out,
                "  {:?}@{:#x} in {:#x} chain={:?} args=[{}] ({} constraints)",
                s.kind,
                s.sink_ins,
                s.sink_fn,
                s.call_chain,
                args.join(", "),
                s.constraints.len()
            );
        }
    }
    let _ = writeln!(out, "resolved={:?}", df.resolved_indirect);
    out
}

fn main() {
    let reps: usize = std::env::var("DTAINT_REPS").ok().and_then(|v| v.parse().ok()).unwrap_or(5);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // Profile 2 of Table II: the DIR-890L cgibin.
    let profile = scaled(table2_profiles().remove(1));
    println!(
        "DDG thread scaling on {} {} `{}` ({} functions), best of {reps} reps, {cores} core(s)",
        profile.manufacturer,
        profile.firmware_version,
        profile.binary_name,
        profile.total_functions
    );
    if cores == 1 {
        println!("note: single-core host — thread counts above 1 can only add overhead here");
    }
    println!();

    let fw = build_firmware(&profile);
    let cfgs = build_all_cfgs(&fw.binary).expect("lifts");
    let cg = CallGraph::build(&fw.binary, &cfgs);
    let mut pool = ExprPool::new();
    let summaries: Vec<_> = cfgs
        .iter()
        .map(|c| analyze_function(&fw.binary, c, &mut pool, &SymexConfig::default()))
        .collect();

    let mut rows = Vec::new();
    let mut points = Vec::new();
    let mut base = Duration::ZERO;
    let mut base_fp = String::new();
    for &threads in &THREADS {
        let mut best = Duration::MAX;
        let mut fp = String::new();
        for _ in 0..reps {
            let mut cg = cg.clone();
            let config = DataflowConfig { threads, ..Default::default() };
            let df = build_dataflow(&fw.binary, &mut cg, summaries.clone(), pool.clone(), &config);
            best = best.min(df.timings.propagate);
            fp = fingerprint(&df);
        }
        if threads == 1 {
            base = best;
            base_fp = fp.clone();
        }
        assert_eq!(fp, base_fp, "threads={threads} diverged from the sequential result");
        let speedup = base.as_secs_f64() / best.as_secs_f64().max(1e-9);
        rows.push(vec![
            threads.to_string(),
            format!("{:.2}", best.as_secs_f64() * 1e3),
            format!("{speedup:.2}x"),
        ]);
        points.push(Value::Obj(vec![
            ("threads".into(), Value::Int(threads as i64)),
            ("propagate_ms".into(), Value::Float(best.as_secs_f64() * 1e3)),
            ("speedup".into(), Value::Float(speedup)),
        ]));
    }
    print!("{}", render_table(&["Threads", "DDG propagate (ms)", "Speedup"], &rows));
    println!();
    println!("all thread counts reproduced the sequential findings exactly");

    let doc = Value::Obj(vec![
        ("bench".into(), Value::Str("ddg_scaling".into())),
        ("profile".into(), Value::Str(profile.binary_name.into())),
        ("device".into(), Value::Str(profile.manufacturer.into())),
        ("functions".into(), Value::Int(profile.total_functions as i64)),
        ("reps".into(), Value::Int(reps as i64)),
        ("host_cores".into(), Value::Int(cores as i64)),
        ("identical_findings".into(), Value::Bool(true)),
        ("points".into(), Value::Arr(points)),
    ]);
    std::fs::create_dir_all("results").ok();
    let path = "results/BENCH_ddg_scaling.json";
    let json = serde_json::to_string_pretty(&doc).expect("serialize");
    std::fs::write(path, json + "\n").expect("write results file");
    println!("wrote {path}");
}
