//! Shared infrastructure for the table/figure harnesses.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper; this library provides the common pieces: profile scaling,
//! analysis wrappers, table rendering, and a counting allocator for the
//! Table VI memory measurements.
//!
//! Set `DTAINT_SCALE` (default `1.0`) to shrink or grow the generated
//! firmware sizes, e.g. `DTAINT_SCALE=0.1 cargo run --bin
//! table3_detection` for a quick pass.

use dtaint_core::{AnalysisReport, Dtaint, DtaintConfig};
use dtaint_fwgen::{build_firmware, FirmwareProfile, GeneratedFirmware};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// The scale factor applied to profile function counts (`DTAINT_SCALE`).
pub fn scale() -> f64 {
    std::env::var("DTAINT_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0)
}

/// Applies the scale factor to one profile (minimum 40 functions, so
/// plants always fit).
pub fn scaled(mut profile: FirmwareProfile) -> FirmwareProfile {
    let n = (profile.total_functions as f64 * scale()) as usize;
    profile.total_functions = n.max(40);
    profile
}

/// Builds and analyzes one profile with its function filter applied.
pub fn analyze_profile(profile: &FirmwareProfile) -> (GeneratedFirmware, AnalysisReport) {
    let fw = build_firmware(profile);
    let config = DtaintConfig {
        function_filter: profile
            .analyzed_prefixes
            .clone()
            .map(|v| v.into_iter().map(str::to_owned).collect()),
        ..Default::default()
    };
    let report = Dtaint::with_config(config)
        .analyze(&fw.binary, profile.binary_name)
        .expect("generated binary analyzes");
    (fw, report)
}

/// Renders an ASCII table with a header row.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let mut out = String::new();
    out.push_str(&line(headers.iter().map(|s| s.to_string()).collect()));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&line(row.clone()));
        out.push('\n');
    }
    out
}

/// A counting wrapper around the system allocator, for the Table VI
/// memory column. Register with `#[global_allocator]` in the harness
/// binary, then bracket the measured stage with [`CountingAlloc::reset`]
/// and [`CountingAlloc::peak`].
pub struct CountingAlloc;

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

impl CountingAlloc {
    /// Resets the peak tracker to the current live size.
    pub fn reset() {
        PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Peak live bytes since the last [`CountingAlloc::reset`].
    pub fn peak() -> usize {
        PEAK.load(Ordering::Relaxed)
    }

    /// Currently live bytes.
    pub fn current() -> usize {
        CURRENT.load(Ordering::Relaxed)
    }
}

// SAFETY: delegates directly to `System`, only adding relaxed counters.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            let cur = CURRENT.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(cur, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
        System.dealloc(ptr, layout);
    }
}

/// Pretty-prints a byte count.
pub fn human_bytes(n: usize) -> String {
    if n >= 1 << 30 {
        format!("{:.1}GB", n as f64 / (1u64 << 30) as f64)
    } else if n >= 1 << 20 {
        format!("{:.1}MB", n as f64 / (1 << 20) as f64)
    } else {
        format!("{:.1}KB", n as f64 / (1 << 10) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_table_aligns_columns() {
        let t = render_table(
            &["a", "long-header"],
            &[vec!["xx".into(), "1".into()], vec!["y".into(), "22".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines[0].starts_with("a "));
        assert!(lines[0].contains("long-header"));
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn human_bytes_formats() {
        assert_eq!(human_bytes(2048), "2.0KB");
        assert_eq!(human_bytes(3 << 20), "3.0MB");
    }

    #[test]
    fn scaled_has_a_floor() {
        let mut p = dtaint_fwgen::table2_profiles().remove(0);
        p.total_functions = 10;
        assert!(scaled(p).total_functions >= 40);
    }
}
