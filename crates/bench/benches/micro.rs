//! Micro-benchmarks of the pipeline stages: instruction lifting, CFG
//! construction, per-function symbolic execution, alias recognition,
//! layout similarity, and the bottom-up propagation, each measured in
//! isolation on a mid-size generated binary.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use dtaint_cfg::{build_all_cfgs, CallGraph};
use dtaint_dataflow::{alias_replace, build_dataflow, infer_layouts, DataflowConfig};
use dtaint_fwbin::Binary;
use dtaint_fwgen::{build_firmware, table2_profiles};
use dtaint_ir::lift::lift_block;
use dtaint_symex::{analyze_function, ExprPool, FuncSummary, SymexConfig};

fn subject() -> Binary {
    let mut p = table2_profiles().remove(2); // setup.cgi
    p.total_functions = 200;
    build_firmware(&p).binary
}

fn summaries_of(bin: &Binary) -> (Vec<FuncSummary>, ExprPool, Vec<dtaint_cfg::FunctionCfg>) {
    let cfgs = build_all_cfgs(bin).unwrap();
    let mut pool = ExprPool::new();
    let sums =
        cfgs.iter().map(|c| analyze_function(bin, c, &mut pool, &SymexConfig::default())).collect();
    (sums, pool, cfgs)
}

fn bench_lift(c: &mut Criterion) {
    let bin = subject();
    let text = bin.section(dtaint_fwbin::SectionKind::Text).unwrap();
    let mut g = c.benchmark_group("lift");
    g.throughput(Throughput::Bytes(text.size as u64));
    g.bench_function("lift_all_text", |b| {
        b.iter(|| {
            let mut total = 0usize;
            let mut pc = text.addr;
            let end = text.addr + text.size;
            while pc < end {
                let block = lift_block(&bin, pc, end).unwrap();
                total += block.stmts.len();
                pc = block.end();
            }
            total
        })
    });
    g.finish();
}

fn bench_cfg(c: &mut Criterion) {
    let bin = subject();
    c.bench_function("cfg/build_all", |b| b.iter(|| build_all_cfgs(&bin).unwrap().len()));
}

fn bench_symex(c: &mut Criterion) {
    let bin = subject();
    let cfgs = build_all_cfgs(&bin).unwrap();
    let mut g = c.benchmark_group("symex");
    g.throughput(Throughput::Elements(cfgs.len() as u64));
    g.bench_function("analyze_all_functions", |b| {
        b.iter(|| {
            let mut pool = ExprPool::new();
            cfgs.iter()
                .map(|cf| analyze_function(&bin, cf, &mut pool, &SymexConfig::default()))
                .count()
        })
    });
    g.finish();
}

fn bench_alias(c: &mut Criterion) {
    let bin = subject();
    let (sums, pool, _) = summaries_of(&bin);
    c.bench_function("alias/replace_all", |b| {
        b.iter_batched(
            || (sums.clone(), pool.clone()),
            |(mut sums, mut pool)| {
                for s in &mut sums {
                    alias_replace(s, &mut pool);
                }
                sums.len()
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_layout(c: &mut Criterion) {
    let bin = subject();
    let (sums, pool, _) = summaries_of(&bin);
    c.bench_function("layout/infer_all", |b| {
        b.iter(|| sums.iter().map(|s| infer_layouts(s, &pool).len()).sum::<usize>())
    });
}

fn bench_interproc(c: &mut Criterion) {
    let bin = subject();
    c.bench_function("interproc/build_dataflow", |b| {
        b.iter_batched(
            || {
                let (sums, pool, cfgs) = summaries_of(&bin);
                let cg = CallGraph::build(&bin, &cfgs);
                (sums, pool, cg)
            },
            |(sums, pool, mut cg)| {
                build_dataflow(&bin, &mut cg, sums, pool, &DataflowConfig::default()).finals.len()
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_pool(c: &mut Criterion) {
    c.bench_function("pool/intern_deref_chain", |b| {
        b.iter(|| {
            let mut p = ExprPool::new();
            let mut e = p.arg(0);
            for k in 0..64 {
                let a = p.add_const(e, 8 * k);
                e = p.deref(a, 4);
            }
            p.len()
        })
    });
}

criterion_group!(
    benches,
    bench_lift,
    bench_cfg,
    bench_symex,
    bench_alias,
    bench_layout,
    bench_interproc,
    bench_pool
);
criterion_main!(benches);
