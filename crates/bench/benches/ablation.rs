//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! bottom-up vs top-down traversal, alias recognition on/off,
//! indirect-call resolution on/off, and the path-cap trade-off.
//!
//! Timing lives here; the recall side of each ablation is printed by the
//! `ablation_recall` harness binary.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use dtaint_baseline::{analyze_topdown, BaselineConfig};
use dtaint_cfg::{build_all_cfgs, CallGraph};
use dtaint_dataflow::{build_dataflow, DataflowConfig};
use dtaint_fwbin::Binary;
use dtaint_fwgen::{build_firmware, table2_profiles};
use dtaint_symex::{analyze_function, ExprPool, SymexConfig};

fn subject(functions: usize) -> Binary {
    let mut p = table2_profiles().remove(2);
    p.total_functions = functions;
    build_firmware(&p).binary
}

/// Bottom-up (DTaint) vs top-down (baseline) DDG generation time.
fn ablation_traversal(c: &mut Criterion) {
    let mut g = c.benchmark_group("traversal");
    g.sample_size(10);
    for functions in [100usize, 200, 400] {
        let bin = subject(functions);
        let cfgs = build_all_cfgs(&bin).unwrap();
        g.bench_with_input(BenchmarkId::new("bottom_up", functions), &functions, |b, _| {
            b.iter_batched(
                || {
                    let mut pool = ExprPool::new();
                    let sums: Vec<_> = cfgs
                        .iter()
                        .map(|cf| analyze_function(&bin, cf, &mut pool, &SymexConfig::default()))
                        .collect();
                    (sums, pool, CallGraph::build(&bin, &cfgs))
                },
                |(sums, pool, mut cg)| {
                    build_dataflow(&bin, &mut cg, sums, pool, &DataflowConfig::default())
                        .finals
                        .len()
                },
                BatchSize::LargeInput,
            )
        });
        g.bench_with_input(BenchmarkId::new("top_down", functions), &functions, |b, _| {
            let cg = CallGraph::build(&bin, &cfgs);
            b.iter(|| {
                analyze_topdown(&bin, &cfgs, &cg, &BaselineConfig::default()).contexts_analyzed
            })
        });
    }
    g.finish();
}

/// Data-flow build time with stages toggled.
fn ablation_stages(c: &mut Criterion) {
    let bin = subject(200);
    let cfgs = build_all_cfgs(&bin).unwrap();
    let mut g = c.benchmark_group("stages");
    g.sample_size(20);
    for (label, alias, indirect) in [
        ("full", true, true),
        ("no_alias", false, true),
        ("no_indirect", true, false),
        ("neither", false, false),
    ] {
        g.bench_function(label, |b| {
            b.iter_batched(
                || {
                    let mut pool = ExprPool::new();
                    let sums: Vec<_> = cfgs
                        .iter()
                        .map(|cf| analyze_function(&bin, cf, &mut pool, &SymexConfig::default()))
                        .collect();
                    (sums, pool, CallGraph::build(&bin, &cfgs))
                },
                |(sums, pool, mut cg)| {
                    let config = DataflowConfig {
                        enable_alias: alias,
                        enable_indirect: indirect,
                        ..Default::default()
                    };
                    build_dataflow(&bin, &mut cg, sums, pool, &config).finals.len()
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

/// Symbolic-execution cost as the path cap grows.
fn ablation_path_cap(c: &mut Criterion) {
    let bin = subject(150);
    let cfgs = build_all_cfgs(&bin).unwrap();
    let mut g = c.benchmark_group("path_cap");
    g.sample_size(10);
    for cap in [8u32, 32, 64, 256] {
        g.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, &cap| {
            let config = SymexConfig { max_paths: cap, ..Default::default() };
            b.iter(|| {
                let mut pool = ExprPool::new();
                cfgs.iter().map(|cf| analyze_function(&bin, cf, &mut pool, &config)).count()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, ablation_traversal, ablation_stages, ablation_path_cap);
criterion_main!(benches);
