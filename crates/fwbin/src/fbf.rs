//! FBF — the Firmware Binary Format.
//!
//! FBF plays the role ELF plays for real firmware: it carries loadable
//! sections, a function symbol table, and an import table mapping library
//! function names (`strcpy`, `recv`, `system`, …) to PLT-like stub
//! addresses. The DTaint pipeline consumes exactly this information:
//! function boundaries to build CFGs, and import stubs to recognise
//! sources and sinks at call sites.
//!
//! The on-disk encoding is little-endian with length-prefixed strings; see
//! [`Binary::to_bytes`] / [`Binary::from_bytes`] for the round trip.

use crate::{Arch, Error, Result};
use bytes::{Buf, BufMut};

/// Magic bytes opening every serialized FBF binary.
pub const FBF_MAGIC: [u8; 4] = *b"FBF1";

/// The role of a section within the binary image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SectionKind {
    /// Executable code.
    Text,
    /// Import stubs (procedure linkage table).
    Plt,
    /// Read-only data (string literals, jump tables).
    RoData,
    /// Initialised writable data.
    Data,
    /// Zero-initialised writable data (no bytes stored).
    Bss,
}

impl SectionKind {
    fn to_u8(self) -> u8 {
        match self {
            SectionKind::Text => 0,
            SectionKind::Plt => 1,
            SectionKind::RoData => 2,
            SectionKind::Data => 3,
            SectionKind::Bss => 4,
        }
    }

    fn from_u8(v: u8) -> Result<Self> {
        Ok(match v {
            0 => SectionKind::Text,
            1 => SectionKind::Plt,
            2 => SectionKind::RoData,
            3 => SectionKind::Data,
            4 => SectionKind::Bss,
            _ => return Err(Error::BadFormat(format!("unknown section kind {v}"))),
        })
    }
}

/// A loadable section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Section name (`.text`, `.plt`, `.rodata`, `.data`, `.bss`).
    pub name: String,
    /// The section's role.
    pub kind: SectionKind,
    /// Load address of the first byte.
    pub addr: u32,
    /// Size in bytes; for [`SectionKind::Bss`] this exceeds `data.len()`.
    pub size: u32,
    /// Raw bytes (empty for BSS).
    pub data: Vec<u8>,
}

impl Section {
    /// True when `addr` falls inside this section.
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.addr && addr < self.addr.wrapping_add(self.size)
    }
}

/// The kind of a defined symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SymbolKind {
    /// A function entry point in `.text`.
    Function,
    /// A data object (rodata/data/bss).
    Object,
}

/// A defined symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbol {
    /// Symbol name.
    pub name: String,
    /// Address of the first byte.
    pub addr: u32,
    /// Size in bytes.
    pub size: u32,
    /// Function or data object.
    pub kind: SymbolKind,
}

/// An imported library function, reachable through a PLT stub.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Import {
    /// Library function name (e.g. `strcpy`).
    pub name: String,
    /// Address of the stub that call instructions target.
    pub stub_addr: u32,
}

/// A loaded firmware binary.
///
/// # Examples
///
/// ```
/// use dtaint_fwbin::asm::Assembler;
/// use dtaint_fwbin::link::BinaryBuilder;
/// use dtaint_fwbin::{Arch, Binary};
///
/// let mut a = Assembler::new(Arch::Mips32e);
/// a.ret();
/// let mut b = BinaryBuilder::new(Arch::Mips32e);
/// b.add_function("main", a);
/// let bin = b.link()?;
/// let bytes = bin.to_bytes();
/// let reloaded = Binary::from_bytes(&bytes)?;
/// assert_eq!(bin, reloaded);
/// # Ok::<(), dtaint_fwbin::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Binary {
    /// Guest architecture of the code sections.
    pub arch: Arch,
    /// Entry-point address.
    pub entry: u32,
    /// Loadable sections, in address order.
    pub sections: Vec<Section>,
    /// Defined symbols.
    pub symbols: Vec<Symbol>,
    /// Imported library functions.
    pub imports: Vec<Import>,
}

/// Shape statistics of one [`Binary`] (see [`Binary::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BinStats {
    /// Loadable sections.
    pub sections: usize,
    /// Defined symbols of every kind.
    pub symbols: usize,
    /// Function symbols.
    pub functions: usize,
    /// Imported library functions.
    pub imports: usize,
    /// Bytes of executable code (text + PLT sections).
    pub code_bytes: u64,
}

impl Binary {
    /// The section of the given kind, if present.
    pub fn section(&self, kind: SectionKind) -> Option<&Section> {
        self.sections.iter().find(|s| s.kind == kind)
    }

    /// The section containing `addr`, if any.
    pub fn section_at(&self, addr: u32) -> Option<&Section> {
        self.sections.iter().find(|s| s.contains(addr))
    }

    /// True when `addr` lies in an immutable section (text, PLT,
    /// rodata) whose load-time bytes are the runtime bytes. Loads from
    /// writable sections must stay symbolic in static analysis.
    pub fn is_immutable_addr(&self, addr: u32) -> bool {
        matches!(
            self.section_at(addr).map(|s| s.kind),
            Some(SectionKind::Text | SectionKind::Plt | SectionKind::RoData)
        )
    }

    /// The function symbol with the given name.
    pub fn function(&self, name: &str) -> Option<&Symbol> {
        self.symbols.iter().find(|s| s.kind == SymbolKind::Function && s.name == name)
    }

    /// Whole-binary shape statistics — the telemetry layer publishes
    /// these as per-image gauges.
    pub fn stats(&self) -> BinStats {
        BinStats {
            sections: self.sections.len(),
            symbols: self.symbols.len(),
            functions: self.symbols.iter().filter(|s| s.kind == SymbolKind::Function).count(),
            imports: self.imports.len(),
            code_bytes: self
                .sections
                .iter()
                .filter(|s| matches!(s.kind, SectionKind::Text | SectionKind::Plt))
                .map(|s| u64::from(s.size))
                .sum(),
        }
    }

    /// All function symbols in address order.
    pub fn functions(&self) -> Vec<&Symbol> {
        let mut v: Vec<&Symbol> =
            self.symbols.iter().filter(|s| s.kind == SymbolKind::Function).collect();
        v.sort_by_key(|s| s.addr);
        v
    }

    /// The function symbol covering `addr`, if any.
    pub fn function_at(&self, addr: u32) -> Option<&Symbol> {
        self.symbols
            .iter()
            .find(|s| s.kind == SymbolKind::Function && addr >= s.addr && addr < s.addr + s.size)
    }

    /// The import whose stub is at `addr`, if any.
    pub fn import_at(&self, addr: u32) -> Option<&Import> {
        self.imports.iter().find(|i| i.stub_addr == addr)
    }

    /// Reads `len` bytes at `addr` from whichever section contains them.
    ///
    /// BSS reads return zeroes. Returns `None` when the range is unmapped
    /// or straddles a section boundary.
    pub fn bytes_at(&self, addr: u32, len: u32) -> Option<Vec<u8>> {
        let s = self.sections.iter().find(|s| s.contains(addr))?;
        let end = addr.checked_add(len)?;
        if end > s.addr + s.size {
            return None;
        }
        let off = (addr - s.addr) as usize;
        let mut out = vec![0u8; len as usize];
        if off < s.data.len() {
            let n = (s.data.len() - off).min(len as usize);
            out[..n].copy_from_slice(&s.data[off..off + n]);
        }
        Some(out)
    }

    /// Reads a little-endian 32-bit word at `addr`.
    pub fn read_u32(&self, addr: u32) -> Option<u32> {
        let b = self.bytes_at(addr, 4)?;
        Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a NUL-terminated string at `addr` (for rodata literals).
    pub fn cstr_at(&self, addr: u32) -> Option<String> {
        let s = self.sections.iter().find(|s| s.contains(addr))?;
        let off = (addr - s.addr) as usize;
        let rest = s.data.get(off..)?;
        let end = rest.iter().position(|&b| b == 0)?;
        String::from_utf8(rest[..end].to_vec()).ok()
    }

    /// Total size in bytes across all sections (the paper's "Size (KB)").
    pub fn total_size(&self) -> u32 {
        self.sections.iter().map(|s| s.size).sum()
    }

    /// Serialises the binary to its on-disk FBF encoding.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out =
            Vec::with_capacity(64 + self.sections.iter().map(|s| s.data.len()).sum::<usize>());
        out.put_slice(&FBF_MAGIC);
        out.put_u8(match self.arch {
            Arch::Arm32e => 0,
            Arch::Mips32e => 1,
        });
        out.put_u32_le(self.entry);
        out.put_u16_le(self.sections.len() as u16);
        for s in &self.sections {
            put_str(&mut out, &s.name);
            out.put_u8(s.kind.to_u8());
            out.put_u32_le(s.addr);
            out.put_u32_le(s.size);
            out.put_u32_le(s.data.len() as u32);
            out.put_slice(&s.data);
        }
        out.put_u32_le(self.symbols.len() as u32);
        for s in &self.symbols {
            put_str(&mut out, &s.name);
            out.put_u32_le(s.addr);
            out.put_u32_le(s.size);
            out.put_u8(match s.kind {
                SymbolKind::Function => 0,
                SymbolKind::Object => 1,
            });
        }
        out.put_u16_le(self.imports.len() as u16);
        for i in &self.imports {
            put_str(&mut out, &i.name);
            out.put_u32_le(i.stub_addr);
        }
        out
    }

    /// Parses a binary from its on-disk FBF encoding.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadFormat`] on a bad magic, unknown enum value or
    /// malformed string, [`Error::Truncated`] when the input ends early
    /// (including a symbol count larger than the remaining input),
    /// [`Error::SectionOutOfRange`] when a section lies about its
    /// extent, and [`Error::BadSymbol`] when a symbol's address range
    /// wraps the address space.
    pub fn from_bytes(mut buf: &[u8]) -> Result<Binary> {
        let magic = take(&mut buf, 4)?;
        if magic != FBF_MAGIC {
            return Err(Error::BadFormat("bad magic".into()));
        }
        let arch = match get_u8(&mut buf)? {
            0 => Arch::Arm32e,
            1 => Arch::Mips32e,
            v => return Err(Error::BadFormat(format!("unknown arch {v}"))),
        };
        let entry = get_u32(&mut buf)?;
        let n_sections = get_u16(&mut buf)? as usize;
        let mut sections = Vec::with_capacity(n_sections);
        for _ in 0..n_sections {
            let name = get_str(&mut buf)?;
            let kind = SectionKind::from_u8(get_u8(&mut buf)?)?;
            let addr = get_u32(&mut buf)?;
            let size = get_u32(&mut buf)?;
            let data_len = get_u32(&mut buf)? as usize;
            // A section whose claimed range wraps the 32-bit address
            // space, or that stores more bytes than it spans, is lying
            // about its extent.
            if addr.checked_add(size).is_none() || data_len as u64 > size as u64 {
                return Err(Error::SectionOutOfRange { name, addr, size });
            }
            let data = take(&mut buf, data_len)?.to_vec();
            sections.push(Section { name, kind, addr, size, data });
        }
        let n_symbols = get_u32(&mut buf)? as usize;
        // Each symbol occupies at least 11 encoded bytes; a count that
        // cannot fit in the remaining input is corrupt, and reserving
        // for it up front would abort on allocation before the loop
        // ever hit `Truncated`.
        if n_symbols > buf.remaining() / 11 {
            return Err(Error::Truncated);
        }
        let mut symbols = Vec::with_capacity(n_symbols);
        for _ in 0..n_symbols {
            let name = get_str(&mut buf)?;
            let addr = get_u32(&mut buf)?;
            let size = get_u32(&mut buf)?;
            let kind = match get_u8(&mut buf)? {
                0 => SymbolKind::Function,
                1 => SymbolKind::Object,
                v => return Err(Error::BadFormat(format!("unknown symbol kind {v}"))),
            };
            if addr.checked_add(size).is_none() {
                return Err(Error::BadSymbol { name, addr });
            }
            symbols.push(Symbol { name, addr, size, kind });
        }
        let n_imports = get_u16(&mut buf)? as usize;
        let mut imports = Vec::with_capacity(n_imports);
        for _ in 0..n_imports {
            let name = get_str(&mut buf)?;
            let stub_addr = get_u32(&mut buf)?;
            imports.push(Import { name, stub_addr });
        }
        Ok(Binary { arch, entry, sections, symbols, imports })
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.put_u16_le(s.len() as u16);
    out.put_slice(s.as_bytes());
}

fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8]> {
    if buf.remaining() < n {
        return Err(Error::Truncated);
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

fn get_u8(buf: &mut &[u8]) -> Result<u8> {
    if buf.remaining() < 1 {
        return Err(Error::Truncated);
    }
    Ok(buf.get_u8())
}

fn get_u16(buf: &mut &[u8]) -> Result<u16> {
    if buf.remaining() < 2 {
        return Err(Error::Truncated);
    }
    Ok(buf.get_u16_le())
}

fn get_u32(buf: &mut &[u8]) -> Result<u32> {
    if buf.remaining() < 4 {
        return Err(Error::Truncated);
    }
    Ok(buf.get_u32_le())
}

fn get_str(buf: &mut &[u8]) -> Result<String> {
    let len = get_u16(buf)? as usize;
    let bytes = take(buf, len)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| Error::BadFormat("non-utf8 string".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_binary() -> Binary {
        Binary {
            arch: Arch::Arm32e,
            entry: 0x10000,
            sections: vec![
                Section {
                    name: ".text".into(),
                    kind: SectionKind::Text,
                    addr: 0x10000,
                    size: 8,
                    data: vec![1, 2, 3, 4, 5, 6, 7, 8],
                },
                Section {
                    name: ".rodata".into(),
                    kind: SectionKind::RoData,
                    addr: 0x20000,
                    size: 6,
                    data: b"hi\0yo\0".to_vec(),
                },
                Section {
                    name: ".bss".into(),
                    kind: SectionKind::Bss,
                    addr: 0x30000,
                    size: 64,
                    data: vec![],
                },
            ],
            symbols: vec![
                Symbol { name: "main".into(), addr: 0x10000, size: 8, kind: SymbolKind::Function },
                Symbol { name: "greet".into(), addr: 0x20000, size: 3, kind: SymbolKind::Object },
            ],
            imports: vec![Import { name: "strcpy".into(), stub_addr: 0x18000 }],
        }
    }

    #[test]
    fn roundtrip_serialisation() {
        let b = sample_binary();
        let reloaded = Binary::from_bytes(&b.to_bytes()).unwrap();
        assert_eq!(b, reloaded);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample_binary().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(Binary::from_bytes(&bytes), Err(Error::BadFormat(_))));
    }

    #[test]
    fn truncation_rejected_at_every_length() {
        let bytes = sample_binary().to_bytes();
        for len in 0..bytes.len() {
            let r = Binary::from_bytes(&bytes[..len]);
            assert!(r.is_err(), "prefix of {len} bytes should not parse");
        }
    }

    #[test]
    fn section_lookup_and_reads() {
        let b = sample_binary();
        assert_eq!(b.section(SectionKind::Text).unwrap().addr, 0x10000);
        assert_eq!(b.read_u32(0x10000), Some(u32::from_le_bytes([1, 2, 3, 4])));
        assert_eq!(b.read_u32(0x10004), Some(u32::from_le_bytes([5, 6, 7, 8])));
        // Straddling the end of a section fails.
        assert_eq!(b.read_u32(0x10006), None);
        // Unmapped address fails.
        assert_eq!(b.read_u32(0x50000), None);
        // BSS reads back as zeroes.
        assert_eq!(b.read_u32(0x30010), Some(0));
    }

    #[test]
    fn cstr_reads_nul_terminated() {
        let b = sample_binary();
        assert_eq!(b.cstr_at(0x20000).as_deref(), Some("hi"));
        assert_eq!(b.cstr_at(0x20003).as_deref(), Some("yo"));
        assert_eq!(b.cstr_at(0x10000 - 1), None);
    }

    #[test]
    fn symbol_lookups() {
        let b = sample_binary();
        assert_eq!(b.function("main").unwrap().addr, 0x10000);
        assert!(b.function("greet").is_none(), "objects are not functions");
        assert_eq!(b.function_at(0x10004).unwrap().name, "main");
        assert_eq!(b.function_at(0x10008), None, "end is exclusive");
        assert_eq!(b.import_at(0x18000).unwrap().name, "strcpy");
        assert_eq!(b.functions().len(), 1);
    }

    #[test]
    fn total_size_sums_sections() {
        assert_eq!(sample_binary().total_size(), 8 + 6 + 64);
    }

    proptest! {
        #[test]
        fn from_bytes_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = Binary::from_bytes(&data);
        }

        #[test]
        fn roundtrip_arbitrary_section_bytes(data in proptest::collection::vec(any::<u8>(), 0..128)) {
            let b = Binary {
                arch: Arch::Mips32e,
                entry: 0,
                sections: vec![Section {
                    name: ".text".into(),
                    kind: SectionKind::Text,
                    addr: 0x1000,
                    size: data.len() as u32,
                    data: data.clone(),
                }],
                symbols: vec![],
                imports: vec![],
            };
            prop_assert_eq!(Binary::from_bytes(&b.to_bytes()).unwrap(), b);
        }
    }
}
