//! A two-pass assembler with labels and link-time fixups.
//!
//! An [`Assembler`] accumulates encoded instruction words plus *fixups* —
//! references to labels whose addresses are only known once the
//! [`BinaryBuilder`](crate::link::BinaryBuilder) lays the program out.
//! Local labels (branch targets) are resolved within the function; calls and
//! absolute-address loads are resolved against global symbols (functions,
//! imports, data objects) by the linker.
//!
//! Both dialects share the fixup machinery because they share the immediate
//! field layout (`imm16` in bits `[15:0]`, `imm26` in `[25:0]`).

use crate::arm::{ArmIns, Cond};
use crate::mips::MipsIns;
use crate::{Arch, Reg};
use std::collections::HashMap;

/// How a pending instruction word must be patched once addresses are known.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fixup {
    /// No patching required.
    None,
    /// Patch bits `[15:0]` with a signed word-offset to a *local* label,
    /// relative to the next instruction (conditional branches, jumps).
    Rel16(String),
    /// Patch bits `[25:0]` with a signed word-offset to a *global* symbol
    /// (calls).
    Rel26(String),
    /// Patch bits `[15:0]` with the high half of a global symbol's address.
    AbsHi(String),
    /// Patch bits `[15:0]` with the low half of a global symbol's address.
    AbsLo(String),
}

/// One assembled item: an instruction word plus its pending fixup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmItem {
    /// The (possibly partially encoded) instruction word.
    pub word: u32,
    /// The patch to apply at link time.
    pub fixup: Fixup,
}

/// An assembler for one function body.
///
/// # Examples
///
/// ```
/// use dtaint_fwbin::asm::Assembler;
/// use dtaint_fwbin::arm::{ArmIns, Cond};
/// use dtaint_fwbin::{Arch, Reg};
///
/// let mut a = Assembler::new(Arch::Arm32e);
/// a.arm(ArmIns::CmpI { rn: Reg(0), imm: 0 });
/// a.arm_b(Cond::Eq, "done");
/// a.arm(ArmIns::AddI { rd: Reg(0), rn: Reg(0), imm: 1 });
/// a.label("done");
/// a.ret();
/// assert_eq!(a.len_words(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct Assembler {
    arch: Arch,
    items: Vec<AsmItem>,
    labels: HashMap<String, u32>,
}

impl Assembler {
    /// Creates an empty assembler for `arch`.
    pub fn new(arch: Arch) -> Self {
        Assembler { arch, items: Vec::new(), labels: HashMap::new() }
    }

    /// The target architecture.
    pub fn arch(&self) -> Arch {
        self.arch
    }

    /// Number of instruction words emitted so far.
    pub fn len_words(&self) -> u32 {
        self.items.len() as u32
    }

    /// The emitted items (word + fixup), in program order.
    pub fn items(&self) -> &[AsmItem] {
        &self.items
    }

    /// The local labels defined so far, as `(name, word index)` pairs.
    pub fn labels(&self) -> &HashMap<String, u32> {
        &self.labels
    }

    /// Defines a local label at the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already defined — a codegen bug.
    pub fn label(&mut self, name: &str) {
        let prev = self.labels.insert(name.to_owned(), self.len_words());
        assert!(prev.is_none(), "duplicate local label `{name}`");
    }

    fn push(&mut self, word: u32, fixup: Fixup) {
        self.items.push(AsmItem { word, fixup });
    }

    /// Emits an `arm32e` instruction.
    ///
    /// # Panics
    ///
    /// Panics if the assembler targets another architecture or the
    /// instruction fails to encode (both are codegen bugs).
    pub fn arm(&mut self, ins: ArmIns) {
        assert_eq!(self.arch, Arch::Arm32e, "arm instruction on {} assembler", self.arch);
        let word = ins.encode().unwrap_or_else(|e| panic!("encode {ins}: {e}"));
        self.push(word, Fixup::None);
    }

    /// Emits a `mips32e` instruction.
    ///
    /// # Panics
    ///
    /// Panics if the assembler targets another architecture or the
    /// instruction fails to encode (both are codegen bugs).
    pub fn mips(&mut self, ins: MipsIns) {
        assert_eq!(self.arch, Arch::Mips32e, "mips instruction on {} assembler", self.arch);
        let word = ins.encode().unwrap_or_else(|e| panic!("encode {ins}: {e}"));
        self.push(word, Fixup::None);
    }

    /// Emits a conditional `arm32e` branch to a local label.
    ///
    /// # Panics
    ///
    /// Panics on a non-ARM assembler.
    pub fn arm_b(&mut self, cond: Cond, label: &str) {
        assert_eq!(self.arch, Arch::Arm32e);
        let word = ArmIns::B { cond, off: 0 }.encode().expect("B encodes");
        self.push(word, Fixup::Rel16(label.to_owned()));
    }

    /// Emits `beq rs, rt, label`.
    ///
    /// # Panics
    ///
    /// Panics on a non-MIPS assembler.
    pub fn mips_beq(&mut self, rs: Reg, rt: Reg, label: &str) {
        self.mips_branch(MipsIns::Beq { rs, rt, off: 0 }, label);
    }

    /// Emits `bne rs, rt, label`.
    ///
    /// # Panics
    ///
    /// Panics on a non-MIPS assembler.
    pub fn mips_bne(&mut self, rs: Reg, rt: Reg, label: &str) {
        self.mips_branch(MipsIns::Bne { rs, rt, off: 0 }, label);
    }

    /// Emits `blez rs, label`.
    ///
    /// # Panics
    ///
    /// Panics on a non-MIPS assembler.
    pub fn mips_blez(&mut self, rs: Reg, label: &str) {
        self.mips_branch(MipsIns::Blez { rs, off: 0 }, label);
    }

    /// Emits `bgtz rs, label`.
    ///
    /// # Panics
    ///
    /// Panics on a non-MIPS assembler.
    pub fn mips_bgtz(&mut self, rs: Reg, label: &str) {
        self.mips_branch(MipsIns::Bgtz { rs, off: 0 }, label);
    }

    fn mips_branch(&mut self, proto: MipsIns, label: &str) {
        assert_eq!(self.arch, Arch::Mips32e);
        let word = proto.encode().expect("branch encodes");
        self.push(word, Fixup::Rel16(label.to_owned()));
    }

    /// Emits an unconditional jump to a local label (`B`/`J`).
    pub fn jump(&mut self, label: &str) {
        match self.arch {
            Arch::Arm32e => {
                let word = ArmIns::B { cond: Cond::Al, off: 0 }.encode().expect("B encodes");
                self.push(word, Fixup::Rel16(label.to_owned()));
            }
            Arch::Mips32e => {
                // J uses a 26-bit field but local jumps resolve like Rel16
                // targets; keep the 16-bit patch so both dialects share the
                // resolver (functions never exceed ±32k words).
                let word =
                    MipsIns::Beq { rs: Reg(0), rt: Reg(0), off: 0 }.encode().expect("beq encodes");
                self.push(word, Fixup::Rel16(label.to_owned()));
            }
        }
    }

    /// Emits a call to a global symbol (`BL`/`JAL`), patched by the linker.
    pub fn call(&mut self, symbol: &str) {
        let word = match self.arch {
            Arch::Arm32e => ArmIns::Bl { off: 0 }.encode().expect("BL encodes"),
            Arch::Mips32e => MipsIns::Jal { off: 0 }.encode().expect("JAL encodes"),
        };
        self.push(word, Fixup::Rel26(symbol.to_owned()));
    }

    /// Emits an indirect call through a register (`BLX rm`/`JALR rs`).
    pub fn call_reg(&mut self, r: Reg) {
        match self.arch {
            Arch::Arm32e => self.arm(ArmIns::Blx { rm: r }),
            Arch::Mips32e => self.mips(MipsIns::Jalr { rs: r }),
        }
    }

    /// Emits the function return (`BX LR`/`JR $ra`).
    pub fn ret(&mut self) {
        match self.arch {
            Arch::Arm32e => self.arm(ArmIns::Bx { rm: Reg::LR }),
            Arch::Mips32e => self.mips(MipsIns::Jr { rs: Reg::RA }),
        }
    }

    /// Materialises the absolute address of a global symbol into `rd`
    /// (two instructions: `MOVI`+`MOVT` or `LUI`+`ORI`).
    pub fn load_addr(&mut self, rd: Reg, symbol: &str) {
        match self.arch {
            Arch::Arm32e => {
                let lo = ArmIns::MovI { rd, imm: 0 }.encode().expect("MOVI encodes");
                let hi = ArmIns::MovT { rd, imm: 0 }.encode().expect("MOVT encodes");
                self.push(lo, Fixup::AbsLo(symbol.to_owned()));
                self.push(hi, Fixup::AbsHi(symbol.to_owned()));
            }
            Arch::Mips32e => {
                let hi = MipsIns::Lui { rt: rd, imm: 0 }.encode().expect("LUI encodes");
                let lo = MipsIns::Ori { rt: rd, rs: rd, imm: 0 }.encode().expect("ORI encodes");
                self.push(hi, Fixup::AbsHi(symbol.to_owned()));
                self.push(lo, Fixup::AbsLo(symbol.to_owned()));
            }
        }
    }

    /// Loads a 32-bit constant into `rd` (two instructions).
    pub fn load_const(&mut self, rd: Reg, value: u32) {
        match self.arch {
            Arch::Arm32e => {
                self.arm(ArmIns::MovI { rd, imm: (value & 0xffff) as u16 });
                if value >> 16 != 0 {
                    self.arm(ArmIns::MovT { rd, imm: (value >> 16) as u16 });
                }
            }
            Arch::Mips32e => {
                if value >> 16 != 0 {
                    self.mips(MipsIns::Lui { rt: rd, imm: (value >> 16) as u16 });
                    if value & 0xffff != 0 {
                        self.mips(MipsIns::Ori { rt: rd, rs: rd, imm: (value & 0xffff) as u16 });
                    }
                } else {
                    self.mips(MipsIns::Ori { rt: rd, rs: Reg::ZERO, imm: (value & 0xffff) as u16 });
                }
            }
        }
    }

    /// Moves register `src` into `dst` in the dialect's idiom.
    pub fn mov(&mut self, dst: Reg, src: Reg) {
        match self.arch {
            Arch::Arm32e => self.arm(ArmIns::MovR { rd: dst, rm: src }),
            Arch::Mips32e => self.mips(MipsIns::Or { rd: dst, rs: src, rt: Reg::ZERO }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_labels_record_word_positions() {
        let mut a = Assembler::new(Arch::Arm32e);
        a.label("start");
        a.arm(ArmIns::Nop);
        a.arm(ArmIns::Nop);
        a.label("mid");
        a.ret();
        assert_eq!(a.labels()["start"], 0);
        assert_eq!(a.labels()["mid"], 2);
        assert_eq!(a.len_words(), 3);
    }

    #[test]
    #[should_panic(expected = "duplicate local label")]
    fn duplicate_label_panics() {
        let mut a = Assembler::new(Arch::Mips32e);
        a.label("x");
        a.label("x");
    }

    #[test]
    #[should_panic(expected = "arm instruction on mips32e")]
    fn arch_mismatch_panics() {
        let mut a = Assembler::new(Arch::Mips32e);
        a.arm(ArmIns::Nop);
    }

    #[test]
    fn call_emits_rel26_fixup() {
        let mut a = Assembler::new(Arch::Arm32e);
        a.call("memcpy");
        assert_eq!(a.items()[0].fixup, Fixup::Rel26("memcpy".into()));
    }

    #[test]
    fn load_addr_emits_hi_lo_pair() {
        for arch in [Arch::Arm32e, Arch::Mips32e] {
            let mut a = Assembler::new(arch);
            a.load_addr(arch.scratch_regs()[0], "table");
            let fixups: Vec<_> = a.items().iter().map(|i| i.fixup.clone()).collect();
            assert_eq!(fixups.len(), 2);
            assert!(fixups.contains(&Fixup::AbsHi("table".into())));
            assert!(fixups.contains(&Fixup::AbsLo("table".into())));
        }
    }

    #[test]
    fn load_const_small_values_are_single_instruction() {
        let mut a = Assembler::new(Arch::Arm32e);
        a.load_const(Reg(0), 0x40);
        assert_eq!(a.len_words(), 1);
        let mut a = Assembler::new(Arch::Mips32e);
        a.load_const(Reg(8), 0x40);
        assert_eq!(a.len_words(), 1);
    }

    #[test]
    fn load_const_large_values_use_two_instructions() {
        for arch in [Arch::Arm32e, Arch::Mips32e] {
            let mut a = Assembler::new(arch);
            a.load_const(arch.scratch_regs()[0], 0x0012_0034);
            assert_eq!(a.len_words(), 2, "{arch}");
        }
    }

    #[test]
    fn mips_mov_is_or_with_zero() {
        let mut a = Assembler::new(Arch::Mips32e);
        a.mov(Reg(4), Reg(2));
        let ins = MipsIns::decode(a.items()[0].word, 0).unwrap();
        assert_eq!(ins, MipsIns::Or { rd: Reg(4), rs: Reg(2), rt: Reg::ZERO });
    }

    #[test]
    fn ret_is_arch_appropriate() {
        let mut a = Assembler::new(Arch::Arm32e);
        a.ret();
        assert_eq!(ArmIns::decode(a.items()[0].word, 0).unwrap(), ArmIns::Bx { rm: Reg::LR });
        let mut m = Assembler::new(Arch::Mips32e);
        m.ret();
        assert_eq!(MipsIns::decode(m.items()[0].word, 0).unwrap(), MipsIns::Jr { rs: Reg::RA });
    }
}
