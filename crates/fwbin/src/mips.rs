//! The `mips32e` dialect: a MIPS-flavoured 32-bit RISC instruction set.
//!
//! Distinctive MIPS traits kept by the dialect:
//!
//! * no condition flags — control flow uses compare-and-branch
//!   ([`MipsIns::Beq`], [`MipsIns::Bne`], [`MipsIns::Blez`],
//!   [`MipsIns::Bgtz`]) and the set-on-less-than family ([`MipsIns::Slt`],
//!   [`MipsIns::Slti`]),
//! * `$zero` (register 0) reads as zero and ignores writes,
//! * calls write `$ra` ([`MipsIns::Jal`], [`MipsIns::Jalr`]) and the return
//!   is `JR $ra`,
//! * 32-bit constants are materialised with `LUI` + `ORI` pairs.
//!
//! Unlike real MIPS there are **no branch delay slots** — a documented
//! simplification; delay slots are a pipeline artefact with no effect on the
//! data-flow analyses this workspace studies.
//!
//! Encoding mirrors `arm32e`'s field scheme: `op[31:26]`,
//! `a[25:21] b[20:16] c[15:11]`, `imm16[15:0]`, `imm26[25:0]`. Branch and
//! jump offsets are in words relative to the next instruction.

use crate::{Error, Reg, Result};
use std::fmt;

/// A `mips32e` instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // operand fields are self-describing (rd/rs/rt/imm)
pub enum MipsIns {
    /// No operation.
    Nop,
    /// `rd = rs + rt`.
    Addu { rd: Reg, rs: Reg, rt: Reg },
    /// `rt = rs + imm` (signed).
    Addiu { rt: Reg, rs: Reg, imm: i16 },
    /// `rd = rs - rt`.
    Subu { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rs & rt`.
    And { rd: Reg, rs: Reg, rt: Reg },
    /// `rt = rs & imm` (zero-extended).
    Andi { rt: Reg, rs: Reg, imm: u16 },
    /// `rd = rs | rt`.
    Or { rd: Reg, rs: Reg, rt: Reg },
    /// `rt = rs | imm` (zero-extended).
    Ori { rt: Reg, rs: Reg, imm: u16 },
    /// `rd = rs ^ rt`.
    Xor { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rt << sh`.
    Sll { rd: Reg, rt: Reg, sh: u8 },
    /// `rd = rt >> sh` (logical).
    Srl { rd: Reg, rt: Reg, sh: u8 },
    /// `rd = rs * rt`.
    Mul { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = (rs < rt) ? 1 : 0` (signed).
    Slt { rd: Reg, rs: Reg, rt: Reg },
    /// `rt = (rs < imm) ? 1 : 0` (signed).
    Slti { rt: Reg, rs: Reg, imm: i16 },
    /// `rt = imm << 16`.
    Lui { rt: Reg, imm: u16 },
    /// `rt = mem32[base + off]`.
    Lw { rt: Reg, base: Reg, off: i16 },
    /// `mem32[base + off] = rt`.
    Sw { rt: Reg, base: Reg, off: i16 },
    /// `rt = zext(mem8[base + off])`.
    Lb { rt: Reg, base: Reg, off: i16 },
    /// `mem8[base + off] = rt & 0xff`.
    Sb { rt: Reg, base: Reg, off: i16 },
    /// `rt = zext(mem16[base + off])`.
    Lh { rt: Reg, base: Reg, off: i16 },
    /// `mem16[base + off] = rt & 0xffff`.
    Sh { rt: Reg, base: Reg, off: i16 },
    /// Branch by `off` words (from the next insn) when `rs == rt`.
    Beq { rs: Reg, rt: Reg, off: i16 },
    /// Branch when `rs != rt`.
    Bne { rs: Reg, rt: Reg, off: i16 },
    /// Branch when `rs <= 0` (signed).
    Blez { rs: Reg, off: i16 },
    /// Branch when `rs > 0` (signed).
    Bgtz { rs: Reg, off: i16 },
    /// Unconditional jump by `off` words from the next insn.
    J { off: i32 },
    /// Call: `$ra = next pc`, jump by `off` words from the next insn.
    Jal { off: i32 },
    /// Indirect jump `pc = rs`; `JR $ra` is the function return.
    Jr { rs: Reg },
    /// Indirect call: `$ra = next pc; pc = rs`.
    Jalr { rs: Reg },
}

const OP_SHIFT: u32 = 26;
const A_SHIFT: u32 = 21;
const B_SHIFT: u32 = 16;
const C_SHIFT: u32 = 11;

fn check_reg(r: Reg) -> Result<u32> {
    if r.0 < 32 {
        Ok(r.0 as u32)
    } else {
        Err(Error::BadRegister { index: r.0 })
    }
}

fn pack3(op: u32, a: Reg, b: Reg, c: Reg) -> Result<u32> {
    Ok((op << OP_SHIFT)
        | (check_reg(a)? << A_SHIFT)
        | (check_reg(b)? << B_SHIFT)
        | (check_reg(c)? << C_SHIFT))
}

fn pack_imm16(op: u32, a: Reg, b: Reg, imm: u16) -> Result<u32> {
    Ok((op << OP_SHIFT) | (check_reg(a)? << A_SHIFT) | (check_reg(b)? << B_SHIFT) | imm as u32)
}

fn field_a(w: u32) -> Reg {
    Reg(((w >> A_SHIFT) & 0x1f) as u8)
}
fn field_b(w: u32) -> Reg {
    Reg(((w >> B_SHIFT) & 0x1f) as u8)
}
fn field_c(w: u32) -> Reg {
    Reg(((w >> C_SHIFT) & 0x1f) as u8)
}
fn imm16(w: u32) -> u16 {
    (w & 0xffff) as u16
}

impl MipsIns {
    /// Encodes the instruction to its 32-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadRegister`] for register indices outside `0..32`,
    /// and [`Error::ImmOutOfRange`] for shifts of 32 or more or jump offsets
    /// outside the signed 26-bit range.
    pub fn encode(self) -> Result<u32> {
        use MipsIns::*;
        Ok(match self {
            Nop => 0,
            Addu { rd, rs, rt } => pack3(0x01, rd, rs, rt)?,
            Addiu { rt, rs, imm } => pack_imm16(0x02, rt, rs, imm as u16)?,
            Subu { rd, rs, rt } => pack3(0x03, rd, rs, rt)?,
            And { rd, rs, rt } => pack3(0x04, rd, rs, rt)?,
            Andi { rt, rs, imm } => pack_imm16(0x05, rt, rs, imm)?,
            Or { rd, rs, rt } => pack3(0x06, rd, rs, rt)?,
            Ori { rt, rs, imm } => pack_imm16(0x07, rt, rs, imm)?,
            Xor { rd, rs, rt } => pack3(0x08, rd, rs, rt)?,
            Sll { rd, rt, sh } | Srl { rd, rt, sh } => {
                if sh >= 32 {
                    return Err(Error::ImmOutOfRange { field: "shift", value: sh as i64 });
                }
                let op = if matches!(self, Sll { .. }) { 0x09 } else { 0x0a };
                pack_imm16(op, rd, rt, sh as u16)?
            }
            Mul { rd, rs, rt } => pack3(0x0b, rd, rs, rt)?,
            Slt { rd, rs, rt } => pack3(0x0c, rd, rs, rt)?,
            Slti { rt, rs, imm } => pack_imm16(0x0d, rt, rs, imm as u16)?,
            Lui { rt, imm } => pack_imm16(0x0e, rt, Reg(0), imm)?,
            Lw { rt, base, off } => pack_imm16(0x0f, rt, base, off as u16)?,
            Sw { rt, base, off } => pack_imm16(0x10, rt, base, off as u16)?,
            Lb { rt, base, off } => pack_imm16(0x11, rt, base, off as u16)?,
            Sb { rt, base, off } => pack_imm16(0x12, rt, base, off as u16)?,
            Beq { rs, rt, off } => pack_imm16(0x13, rs, rt, off as u16)?,
            Bne { rs, rt, off } => pack_imm16(0x14, rs, rt, off as u16)?,
            Blez { rs, off } => pack_imm16(0x15, rs, Reg(0), off as u16)?,
            Bgtz { rs, off } => pack_imm16(0x16, rs, Reg(0), off as u16)?,
            J { off } | Jal { off } => {
                if !(-(1 << 25)..(1 << 25)).contains(&off) {
                    return Err(Error::ImmOutOfRange { field: "jump offset", value: off as i64 });
                }
                let op = if matches!(self, J { .. }) { 0x17 } else { 0x18 };
                (op << OP_SHIFT) | ((off as u32) & 0x03ff_ffff)
            }
            Jr { rs } => pack3(0x19, rs, Reg(0), Reg(0))?,
            Jalr { rs } => pack3(0x1a, rs, Reg(0), Reg(0))?,
            Lh { rt, base, off } => pack_imm16(0x1b, rt, base, off as u16)?,
            Sh { rt, base, off } => pack_imm16(0x1c, rt, base, off as u16)?,
        })
    }

    /// Decodes a 32-bit word into an instruction.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadInstruction`] when the opcode is unknown. `addr`
    /// is only used to enrich the error.
    pub fn decode(word: u32, addr: u32) -> Result<MipsIns> {
        use MipsIns::*;
        let bad = || Error::BadInstruction { word, addr };
        let op = word >> OP_SHIFT;
        let a = field_a(word);
        let b = field_b(word);
        let c = field_c(word);
        Ok(match op {
            0x00 => Nop,
            0x01 => Addu { rd: a, rs: b, rt: c },
            0x02 => Addiu { rt: a, rs: b, imm: imm16(word) as i16 },
            0x03 => Subu { rd: a, rs: b, rt: c },
            0x04 => And { rd: a, rs: b, rt: c },
            0x05 => Andi { rt: a, rs: b, imm: imm16(word) },
            0x06 => Or { rd: a, rs: b, rt: c },
            0x07 => Ori { rt: a, rs: b, imm: imm16(word) },
            0x08 => Xor { rd: a, rs: b, rt: c },
            0x09 => Sll { rd: a, rt: b, sh: (imm16(word) & 31) as u8 },
            0x0a => Srl { rd: a, rt: b, sh: (imm16(word) & 31) as u8 },
            0x0b => Mul { rd: a, rs: b, rt: c },
            0x0c => Slt { rd: a, rs: b, rt: c },
            0x0d => Slti { rt: a, rs: b, imm: imm16(word) as i16 },
            0x0e => Lui { rt: a, imm: imm16(word) },
            0x0f => Lw { rt: a, base: b, off: imm16(word) as i16 },
            0x10 => Sw { rt: a, base: b, off: imm16(word) as i16 },
            0x11 => Lb { rt: a, base: b, off: imm16(word) as i16 },
            0x12 => Sb { rt: a, base: b, off: imm16(word) as i16 },
            0x13 => Beq { rs: a, rt: b, off: imm16(word) as i16 },
            0x14 => Bne { rs: a, rt: b, off: imm16(word) as i16 },
            0x15 => Blez { rs: a, off: imm16(word) as i16 },
            0x16 => Bgtz { rs: a, off: imm16(word) as i16 },
            0x17 | 0x18 => {
                let raw = word & 0x03ff_ffff;
                let off = ((raw << 6) as i32) >> 6;
                if op == 0x17 {
                    J { off }
                } else {
                    Jal { off }
                }
            }
            0x19 => Jr { rs: a },
            0x1a => Jalr { rs: a },
            0x1b => Lh { rt: a, base: b, off: imm16(word) as i16 },
            0x1c => Sh { rt: a, base: b, off: imm16(word) as i16 },
            _ => return Err(bad()),
        })
    }

    /// True when the instruction ends a basic block (any branch/jump/call).
    pub fn is_terminator(self) -> bool {
        matches!(
            self,
            MipsIns::Beq { .. }
                | MipsIns::Bne { .. }
                | MipsIns::Blez { .. }
                | MipsIns::Bgtz { .. }
                | MipsIns::J { .. }
                | MipsIns::Jal { .. }
                | MipsIns::Jr { .. }
                | MipsIns::Jalr { .. }
        )
    }
}

impl fmt::Display for MipsIns {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use MipsIns::*;
        let r = |x: Reg| format!("${}", x.0);
        match *self {
            Nop => write!(f, "nop"),
            Addu { rd, rs, rt } => write!(f, "addu {}, {}, {}", r(rd), r(rs), r(rt)),
            Addiu { rt, rs, imm } => write!(f, "addiu {}, {}, {imm}", r(rt), r(rs)),
            Subu { rd, rs, rt } => write!(f, "subu {}, {}, {}", r(rd), r(rs), r(rt)),
            And { rd, rs, rt } => write!(f, "and {}, {}, {}", r(rd), r(rs), r(rt)),
            Andi { rt, rs, imm } => write!(f, "andi {}, {}, {imm:#x}", r(rt), r(rs)),
            Or { rd, rs, rt } => write!(f, "or {}, {}, {}", r(rd), r(rs), r(rt)),
            Ori { rt, rs, imm } => write!(f, "ori {}, {}, {imm:#x}", r(rt), r(rs)),
            Xor { rd, rs, rt } => write!(f, "xor {}, {}, {}", r(rd), r(rs), r(rt)),
            Sll { rd, rt, sh } => write!(f, "sll {}, {}, {sh}", r(rd), r(rt)),
            Srl { rd, rt, sh } => write!(f, "srl {}, {}, {sh}", r(rd), r(rt)),
            Mul { rd, rs, rt } => write!(f, "mul {}, {}, {}", r(rd), r(rs), r(rt)),
            Slt { rd, rs, rt } => write!(f, "slt {}, {}, {}", r(rd), r(rs), r(rt)),
            Slti { rt, rs, imm } => write!(f, "slti {}, {}, {imm}", r(rt), r(rs)),
            Lui { rt, imm } => write!(f, "lui {}, {imm:#x}", r(rt)),
            Lw { rt, base, off } => write!(f, "lw {}, {off}({})", r(rt), r(base)),
            Sw { rt, base, off } => write!(f, "sw {}, {off}({})", r(rt), r(base)),
            Lb { rt, base, off } => write!(f, "lb {}, {off}({})", r(rt), r(base)),
            Sb { rt, base, off } => write!(f, "sb {}, {off}({})", r(rt), r(base)),
            Lh { rt, base, off } => write!(f, "lh {}, {off}({})", r(rt), r(base)),
            Sh { rt, base, off } => write!(f, "sh {}, {off}({})", r(rt), r(base)),
            Beq { rs, rt, off } => write!(f, "beq {}, {}, {off:+}", r(rs), r(rt)),
            Bne { rs, rt, off } => write!(f, "bne {}, {}, {off:+}", r(rs), r(rt)),
            Blez { rs, off } => write!(f, "blez {}, {off:+}", r(rs)),
            Bgtz { rs, off } => write!(f, "bgtz {}, {off:+}", r(rs)),
            J { off } => write!(f, "j {off:+}"),
            Jal { off } => write!(f, "jal {off:+}"),
            Jr { rs } => write!(f, "jr {}", r(rs)),
            Jalr { rs } => write!(f, "jalr {}", r(rs)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encode_decode_roundtrip_basics() {
        let samples = [
            MipsIns::Nop,
            MipsIns::Addu { rd: Reg(2), rs: Reg(4), rt: Reg(5) },
            MipsIns::Addiu { rt: Reg(29), rs: Reg(29), imm: -32 },
            MipsIns::Subu { rd: Reg(8), rs: Reg(9), rt: Reg(10) },
            MipsIns::Andi { rt: Reg(8), rs: Reg(8), imm: 0xff },
            MipsIns::Ori { rt: Reg(4), rs: Reg(4), imm: 0x1234 },
            MipsIns::Sll { rd: Reg(8), rt: Reg(8), sh: 2 },
            MipsIns::Mul { rd: Reg(2), rs: Reg(4), rt: Reg(5) },
            MipsIns::Slt { rd: Reg(8), rs: Reg(4), rt: Reg(5) },
            MipsIns::Slti { rt: Reg(8), rs: Reg(4), imm: 64 },
            MipsIns::Lui { rt: Reg(4), imm: 0x8000 },
            MipsIns::Lw { rt: Reg(4), base: Reg(29), off: 16 },
            MipsIns::Sw { rt: Reg(31), base: Reg(29), off: -4 },
            MipsIns::Lb { rt: Reg(8), base: Reg(4), off: 0 },
            MipsIns::Sb { rt: Reg(8), base: Reg(5), off: 1 },
            MipsIns::Lh { rt: Reg(8), base: Reg(4), off: 2 },
            MipsIns::Sh { rt: Reg(8), base: Reg(5), off: -2 },
            MipsIns::Beq { rs: Reg(4), rt: Reg(0), off: 8 },
            MipsIns::Bne { rs: Reg(8), rt: Reg(9), off: -3 },
            MipsIns::Blez { rs: Reg(2), off: 5 },
            MipsIns::Bgtz { rs: Reg(2), off: -5 },
            MipsIns::J { off: 1000 },
            MipsIns::Jal { off: -1000 },
            MipsIns::Jr { rs: Reg(31) },
            MipsIns::Jalr { rs: Reg(25) },
        ];
        for ins in samples {
            let w = ins.encode().unwrap();
            assert_eq!(MipsIns::decode(w, 0).unwrap(), ins, "word {w:#010x}");
        }
    }

    #[test]
    fn bad_register_rejected() {
        let e = MipsIns::Addu { rd: Reg(32), rs: Reg(0), rt: Reg(0) }.encode().unwrap_err();
        assert_eq!(e, Error::BadRegister { index: 32 });
    }

    #[test]
    fn jump_offset_bounds() {
        assert!(MipsIns::Jal { off: (1 << 25) - 1 }.encode().is_ok());
        assert!(MipsIns::Jal { off: -(1 << 25) }.encode().is_ok());
        assert!(MipsIns::Jal { off: 1 << 25 }.encode().is_err());
        assert!(MipsIns::J { off: -(1 << 25) - 1 }.encode().is_err());
    }

    #[test]
    fn unknown_opcode_rejected() {
        let word = 0x2fu32 << 26;
        assert_eq!(MipsIns::decode(word, 4).unwrap_err(), Error::BadInstruction { word, addr: 4 });
    }

    #[test]
    fn terminator_classification() {
        assert!(MipsIns::Jr { rs: Reg(31) }.is_terminator());
        assert!(MipsIns::Beq { rs: Reg(0), rt: Reg(0), off: 0 }.is_terminator());
        assert!(!MipsIns::Lw { rt: Reg(2), base: Reg(29), off: 0 }.is_terminator());
    }

    #[test]
    fn display_follows_mips_syntax() {
        assert_eq!(
            MipsIns::Lw { rt: Reg(4), base: Reg(29), off: 16 }.to_string(),
            "lw $4, 16($29)"
        );
        assert_eq!(MipsIns::Jal { off: 4 }.to_string(), "jal +4");
    }

    fn arb_reg() -> impl Strategy<Value = Reg> {
        (0u8..32).prop_map(Reg)
    }

    proptest! {
        #[test]
        fn roundtrip_three_reg(op in 0u8..6, a in arb_reg(), b in arb_reg(), c in arb_reg()) {
            let ins = match op {
                0 => MipsIns::Addu { rd: a, rs: b, rt: c },
                1 => MipsIns::Subu { rd: a, rs: b, rt: c },
                2 => MipsIns::And { rd: a, rs: b, rt: c },
                3 => MipsIns::Or { rd: a, rs: b, rt: c },
                4 => MipsIns::Xor { rd: a, rs: b, rt: c },
                _ => MipsIns::Slt { rd: a, rs: b, rt: c },
            };
            prop_assert_eq!(MipsIns::decode(ins.encode().unwrap(), 0).unwrap(), ins);
        }

        #[test]
        fn roundtrip_mem(kind in 0u8..4, t in arb_reg(), n in arb_reg(), off in any::<i16>()) {
            let ins = match kind {
                0 => MipsIns::Lw { rt: t, base: n, off },
                1 => MipsIns::Sw { rt: t, base: n, off },
                2 => MipsIns::Lb { rt: t, base: n, off },
                _ => MipsIns::Sb { rt: t, base: n, off },
            };
            prop_assert_eq!(MipsIns::decode(ins.encode().unwrap(), 0).unwrap(), ins);
        }

        #[test]
        fn roundtrip_jumps(call in any::<bool>(), off in -(1i32 << 25)..(1i32 << 25)) {
            let ins = if call { MipsIns::Jal { off } } else { MipsIns::J { off } };
            prop_assert_eq!(MipsIns::decode(ins.encode().unwrap(), 0).unwrap(), ins);
        }

        #[test]
        fn decode_never_panics(word in any::<u32>()) {
            let _ = MipsIns::decode(word, 0);
        }
    }
}
