//! Disassembly listings: objdump-style text for loaded binaries.
//!
//! Used by the `dtaint disasm` CLI subcommand and handy in tests when a
//! generated function needs eyeballing.

use crate::arm::ArmIns;
use crate::mips::MipsIns;
use crate::{Arch, Binary, SectionKind, INS_SIZE};
use std::fmt::Write as _;

/// One disassembled instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisasmLine {
    /// Instruction address.
    pub addr: u32,
    /// Raw instruction word.
    pub word: u32,
    /// Rendered mnemonic and operands, or `".word"` for undecodable data.
    pub text: String,
    /// Resolved call-target name when the instruction is a direct call.
    pub call_target: Option<String>,
}

/// Disassembles `[start, end)` of a binary's code.
pub fn disassemble_range(bin: &Binary, start: u32, end: u32) -> Vec<DisasmLine> {
    let mut out = Vec::new();
    let mut pc = start;
    while pc < end {
        let Some(word) = bin.read_u32(pc) else { break };
        let (text, target) = render(bin, word, pc);
        out.push(DisasmLine { addr: pc, word, text, call_target: target });
        pc += INS_SIZE;
    }
    out
}

/// Disassembles one named function.
///
/// Returns `None` when the symbol does not exist.
pub fn disassemble_function(bin: &Binary, name: &str) -> Option<Vec<DisasmLine>> {
    let sym = bin.function(name)?;
    Some(disassemble_range(bin, sym.addr, sym.addr.saturating_add(sym.size)))
}

fn render(bin: &Binary, word: u32, pc: u32) -> (String, Option<String>) {
    match bin.arch {
        Arch::Arm32e => match ArmIns::decode(word, pc) {
            Ok(ins) => {
                let target = match ins {
                    ArmIns::Bl { off } => {
                        let t = (pc as i64 + 4 + off as i64 * 4) as u32;
                        resolve_target(bin, t)
                    }
                    _ => None,
                };
                (ins.to_string(), target)
            }
            Err(_) => (format!(".word {word:#010x}"), None),
        },
        Arch::Mips32e => match MipsIns::decode(word, pc) {
            Ok(ins) => {
                let target = match ins {
                    MipsIns::Jal { off } => {
                        let t = (pc as i64 + 4 + off as i64 * 4) as u32;
                        resolve_target(bin, t)
                    }
                    _ => None,
                };
                (ins.to_string(), target)
            }
            Err(_) => (format!(".word {word:#010x}"), None),
        },
    }
}

fn resolve_target(bin: &Binary, addr: u32) -> Option<String> {
    if let Some(f) = bin.function_at(addr) {
        return Some(f.name.clone());
    }
    bin.import_at(addr).map(|i| format!("{}@plt", i.name))
}

/// Renders a full objdump-style listing of the text section, with
/// function headers and call-target annotations.
pub fn listing(bin: &Binary) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "; {} binary, entry {:#x}", bin.arch, bin.entry);
    for sym in bin.functions() {
        let _ = writeln!(out, "\n{:#010x} <{}>:", sym.addr, sym.name);
        for line in disassemble_range(bin, sym.addr, sym.addr.saturating_add(sym.size)) {
            match &line.call_target {
                Some(t) => {
                    let _ = writeln!(
                        out,
                        "  {:#010x}: {:08x}  {:<28} ; → {t}",
                        line.addr, line.word, line.text
                    );
                }
                None => {
                    let _ =
                        writeln!(out, "  {:#010x}: {:08x}  {}", line.addr, line.word, line.text);
                }
            }
        }
    }
    if let Some(s) = bin.section(SectionKind::Plt) {
        let _ = writeln!(out, "\n; plt ({} imports)", bin.imports.len());
        for imp in &bin.imports {
            let _ = writeln!(out, "  {:#010x}: <{}@plt>", imp.stub_addr, imp.name);
        }
        let _ = s;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::link::BinaryBuilder;
    use crate::Reg;

    fn sample(arch: Arch) -> Binary {
        let mut f = Assembler::new(arch);
        f.load_const(Reg(4), 7);
        f.call("strcpy");
        f.ret();
        let mut g = Assembler::new(arch);
        g.call("f");
        g.ret();
        let mut b = BinaryBuilder::new(arch);
        b.add_function("f", f);
        b.add_function("g", g);
        b.add_import("strcpy");
        b.link().unwrap()
    }

    #[test]
    fn function_disassembly_roundtrips_mnemonics() {
        let bin = sample(Arch::Arm32e);
        let lines = disassemble_function(&bin, "f").unwrap();
        assert!(lines.iter().any(|l| l.text.starts_with("mov")));
        assert!(lines.iter().any(|l| l.text.starts_with("bl")));
        assert!(lines.iter().any(|l| l.text.starts_with("bx")));
    }

    #[test]
    fn call_targets_resolve_to_imports_and_functions() {
        for arch in [Arch::Arm32e, Arch::Mips32e] {
            let bin = sample(arch);
            let f_lines = disassemble_function(&bin, "f").unwrap();
            assert!(
                f_lines.iter().any(|l| l.call_target.as_deref() == Some("strcpy@plt")),
                "{arch}"
            );
            let g_lines = disassemble_function(&bin, "g").unwrap();
            assert!(g_lines.iter().any(|l| l.call_target.as_deref() == Some("f")), "{arch}");
        }
    }

    #[test]
    fn listing_has_headers_and_plt() {
        let bin = sample(Arch::Mips32e);
        let text = listing(&bin);
        assert!(text.contains("<f>:"));
        assert!(text.contains("<g>:"));
        assert!(text.contains("strcpy@plt"));
        assert!(text.contains("mips32e binary"));
    }

    #[test]
    fn unknown_function_is_none() {
        let bin = sample(Arch::Arm32e);
        assert!(disassemble_function(&bin, "nope").is_none());
    }

    #[test]
    fn undecodable_words_render_as_data() {
        let mut bin = sample(Arch::Arm32e);
        // Corrupt the first word of text with an invalid opcode.
        let bad = 0x3fu32 << 26;
        let addr = {
            let text = bin.sections.iter_mut().find(|s| s.kind == SectionKind::Text).unwrap();
            text.data[..4].copy_from_slice(&bad.to_le_bytes());
            text.addr
        };
        let lines = disassemble_range(&bin, addr, addr + 4);
        assert!(lines[0].text.starts_with(".word"));
    }
}
