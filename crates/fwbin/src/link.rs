//! A static linker: lays out sections, resolves fixups, emits a [`Binary`].
//!
//! The layout mirrors a stripped-down embedded ELF image:
//!
//! ```text
//! 0x0001_0000  .text    functions, in insertion order
//!       …      .plt     one 8-byte stub per import (ret; nop)
//!       …      .rodata  string literals & tables
//!       …      .data    initialised objects
//!       …      .bss     zero-initialised objects (size only)
//! ```
//!
//! Calls ([`Fixup::Rel26`]) resolve against functions *and* import stubs;
//! local branches ([`Fixup::Rel16`]) resolve only against the emitting
//! function's labels; address loads ([`Fixup::AbsHi`]/[`Fixup::AbsLo`])
//! resolve against any global symbol, which is how function pointers end up
//! in data structures — the pattern DTaint's layout-similarity analysis
//! recovers.

use crate::asm::{Assembler, Fixup};
use crate::fbf::{Binary, Import, Section, SectionKind, Symbol, SymbolKind};
use crate::{Arch, Error, Reg, Result, INS_SIZE};
use std::collections::HashMap;

/// Base address of the `.text` section.
pub const TEXT_BASE: u32 = 0x0001_0000;
/// Size in bytes of one import stub in `.plt`.
pub const PLT_STUB_SIZE: u32 = 8;

/// Builds a [`Binary`] from assembled functions, data objects and imports.
///
/// See the [crate-level example](crate) for end-to-end usage.
#[derive(Debug, Clone)]
pub struct BinaryBuilder {
    arch: Arch,
    funcs: Vec<(String, Assembler)>,
    rodata: Vec<(String, Vec<u8>)>,
    data: Vec<(String, Vec<u8>)>,
    bss: Vec<(String, u32)>,
    imports: Vec<String>,
    entry: Option<String>,
}

impl BinaryBuilder {
    /// Creates an empty builder for `arch`.
    pub fn new(arch: Arch) -> Self {
        BinaryBuilder {
            arch,
            funcs: Vec::new(),
            rodata: Vec::new(),
            data: Vec::new(),
            bss: Vec::new(),
            imports: Vec::new(),
            entry: None,
        }
    }

    /// The target architecture.
    pub fn arch(&self) -> Arch {
        self.arch
    }

    /// Adds an assembled function.
    ///
    /// # Panics
    ///
    /// Panics if the assembler's architecture differs from the builder's.
    pub fn add_function(&mut self, name: &str, asm: Assembler) -> &mut Self {
        assert_eq!(asm.arch(), self.arch, "function `{name}` assembled for wrong arch");
        self.funcs.push((name.to_owned(), asm));
        self
    }

    /// Declares an imported library function (idempotent).
    pub fn add_import(&mut self, name: &str) -> &mut Self {
        if !self.imports.iter().any(|i| i == name) {
            self.imports.push(name.to_owned());
        }
        self
    }

    /// Adds a read-only data object.
    pub fn add_rodata(&mut self, name: &str, bytes: Vec<u8>) -> &mut Self {
        self.rodata.push((name.to_owned(), bytes));
        self
    }

    /// Adds a NUL-terminated string literal to `.rodata`.
    pub fn add_cstring(&mut self, name: &str, s: &str) -> &mut Self {
        let mut bytes = s.as_bytes().to_vec();
        bytes.push(0);
        self.add_rodata(name, bytes)
    }

    /// Adds an initialised writable data object.
    pub fn add_data(&mut self, name: &str, bytes: Vec<u8>) -> &mut Self {
        self.data.push((name.to_owned(), bytes));
        self
    }

    /// Adds a zero-initialised object of `size` bytes to `.bss`.
    pub fn add_bss(&mut self, name: &str, size: u32) -> &mut Self {
        self.bss.push((name.to_owned(), size));
        self
    }

    /// Selects the entry-point function (defaults to the first added).
    pub fn set_entry(&mut self, name: &str) -> &mut Self {
        self.entry = Some(name.to_owned());
        self
    }

    /// Number of functions added so far.
    pub fn function_count(&self) -> usize {
        self.funcs.len()
    }

    /// Lays out the image, resolves every fixup and emits the binary.
    ///
    /// # Errors
    ///
    /// * [`Error::DuplicateLabel`] — two globals share a name.
    /// * [`Error::UndefinedLabel`] — a fixup references an unknown label or
    ///   symbol (including a call to a never-declared import).
    /// * [`Error::BranchOutOfRange`] — a resolved offset does not fit its
    ///   field.
    pub fn link(&self) -> Result<Binary> {
        // Pass 1: assign addresses.
        let mut func_addrs: HashMap<String, u32> = HashMap::new();
        let mut cursor = TEXT_BASE;
        for (name, asm) in &self.funcs {
            if func_addrs.insert(name.clone(), cursor).is_some() {
                return Err(Error::DuplicateLabel(name.clone()));
            }
            cursor += asm.len_words() * INS_SIZE;
        }
        let text_size = cursor - TEXT_BASE;

        let plt_base = align(cursor, 0x10);
        let mut stub_addrs: HashMap<String, u32> = HashMap::new();
        for (i, name) in self.imports.iter().enumerate() {
            let addr = plt_base + i as u32 * PLT_STUB_SIZE;
            if func_addrs.contains_key(name) || stub_addrs.insert(name.clone(), addr).is_some() {
                return Err(Error::DuplicateLabel(name.clone()));
            }
        }
        let plt_size = self.imports.len() as u32 * PLT_STUB_SIZE;

        let rodata_base = align(plt_base + plt_size, 0x10);
        let mut globals: HashMap<String, u32> = HashMap::new();
        let mut object_syms: Vec<Symbol> = Vec::new();
        let mut rodata_bytes = Vec::new();
        let mut off = 0;
        for (name, bytes) in &self.rodata {
            let addr = rodata_base + off;
            if globals.insert(name.clone(), addr).is_some() {
                return Err(Error::DuplicateLabel(name.clone()));
            }
            object_syms.push(Symbol {
                name: name.clone(),
                addr,
                size: bytes.len() as u32,
                kind: SymbolKind::Object,
            });
            rodata_bytes.extend_from_slice(bytes);
            off += bytes.len() as u32;
            let pad = align(off, 4) - off;
            rodata_bytes.extend(std::iter::repeat_n(0, pad as usize));
            off += pad;
        }
        let rodata_size = off;

        let data_base = align(rodata_base + rodata_size, 0x10);
        let mut data_bytes = Vec::new();
        let mut off = 0;
        for (name, bytes) in &self.data {
            let addr = data_base + off;
            if globals.insert(name.clone(), addr).is_some() {
                return Err(Error::DuplicateLabel(name.clone()));
            }
            object_syms.push(Symbol {
                name: name.clone(),
                addr,
                size: bytes.len() as u32,
                kind: SymbolKind::Object,
            });
            data_bytes.extend_from_slice(bytes);
            off += bytes.len() as u32;
            let pad = align(off, 4) - off;
            data_bytes.extend(std::iter::repeat_n(0, pad as usize));
            off += pad;
        }
        let data_size = off;

        let bss_base = align(data_base + data_size, 0x10);
        let mut off = 0;
        for (name, size) in &self.bss {
            let addr = bss_base + off;
            if globals.insert(name.clone(), addr).is_some() {
                return Err(Error::DuplicateLabel(name.clone()));
            }
            object_syms.push(Symbol {
                name: name.clone(),
                addr,
                size: *size,
                kind: SymbolKind::Object,
            });
            off += align(*size, 4);
        }
        let bss_size = off;

        // A fixup target may be a function, an import stub, or a data object.
        let resolve_global = |name: &str| -> Result<u32> {
            func_addrs
                .get(name)
                .or_else(|| stub_addrs.get(name))
                .or_else(|| globals.get(name))
                .copied()
                .ok_or_else(|| Error::UndefinedLabel(name.to_owned()))
        };

        // Pass 2: patch instruction words.
        let mut text = Vec::with_capacity(text_size as usize);
        let mut func_syms = Vec::with_capacity(self.funcs.len());
        for (name, asm) in &self.funcs {
            let base = func_addrs[name];
            for (idx, item) in asm.items().iter().enumerate() {
                let ins_addr = base + idx as u32 * INS_SIZE;
                let word = match &item.fixup {
                    Fixup::None => item.word,
                    Fixup::Rel16(label) => {
                        let target = *asm
                            .labels()
                            .get(label)
                            .ok_or_else(|| Error::UndefinedLabel(label.clone()))?;
                        let off = target as i64 - (idx as i64 + 1);
                        if off < i16::MIN as i64 || off > i16::MAX as i64 {
                            return Err(Error::BranchOutOfRange {
                                label: label.clone(),
                                distance: off * INS_SIZE as i64,
                            });
                        }
                        (item.word & !0xffff) | (off as u16 as u32)
                    }
                    Fixup::Rel26(symbol) => {
                        let target = resolve_global(symbol)?;
                        let off = (target as i64 - (ins_addr as i64 + 4)) / INS_SIZE as i64;
                        if !(-(1 << 25)..(1 << 25)).contains(&off) {
                            return Err(Error::BranchOutOfRange {
                                label: symbol.clone(),
                                distance: off * INS_SIZE as i64,
                            });
                        }
                        (item.word & !0x03ff_ffff) | ((off as u32) & 0x03ff_ffff)
                    }
                    Fixup::AbsHi(symbol) => {
                        let target = resolve_global(symbol)?;
                        (item.word & !0xffff) | (target >> 16)
                    }
                    Fixup::AbsLo(symbol) => {
                        let target = resolve_global(symbol)?;
                        (item.word & !0xffff) | (target & 0xffff)
                    }
                };
                text.extend_from_slice(&word.to_le_bytes());
            }
            func_syms.push(Symbol {
                name: name.clone(),
                addr: base,
                size: asm.len_words() * INS_SIZE,
                kind: SymbolKind::Function,
            });
        }

        // Stub bodies: `ret; nop` in the target dialect.
        let mut plt = Vec::with_capacity(plt_size as usize);
        let ret_word = match self.arch {
            Arch::Arm32e => crate::arm::ArmIns::Bx { rm: Reg::LR }.encode().expect("ret encodes"),
            Arch::Mips32e => {
                crate::mips::MipsIns::Jr { rs: Reg::RA }.encode().expect("ret encodes")
            }
        };
        for _ in &self.imports {
            plt.extend_from_slice(&ret_word.to_le_bytes());
            plt.extend_from_slice(&0u32.to_le_bytes());
        }

        let entry = match &self.entry {
            Some(name) => resolve_global(name)?,
            None => self.funcs.first().map(|(n, _)| func_addrs[n]).unwrap_or(TEXT_BASE),
        };

        let mut sections = vec![Section {
            name: ".text".into(),
            kind: SectionKind::Text,
            addr: TEXT_BASE,
            size: text_size,
            data: text,
        }];
        if plt_size > 0 {
            sections.push(Section {
                name: ".plt".into(),
                kind: SectionKind::Plt,
                addr: plt_base,
                size: plt_size,
                data: plt,
            });
        }
        if rodata_size > 0 {
            sections.push(Section {
                name: ".rodata".into(),
                kind: SectionKind::RoData,
                addr: rodata_base,
                size: rodata_size,
                data: rodata_bytes,
            });
        }
        if data_size > 0 {
            sections.push(Section {
                name: ".data".into(),
                kind: SectionKind::Data,
                addr: data_base,
                size: data_size,
                data: data_bytes,
            });
        }
        if bss_size > 0 {
            sections.push(Section {
                name: ".bss".into(),
                kind: SectionKind::Bss,
                addr: bss_base,
                size: bss_size,
                data: vec![],
            });
        }

        let mut symbols = func_syms;
        symbols.extend(object_syms);
        let imports = self
            .imports
            .iter()
            .map(|name| Import { name: name.clone(), stub_addr: stub_addrs[name] })
            .collect();

        Ok(Binary { arch: self.arch, entry, sections, symbols, imports })
    }
}

fn align(v: u32, to: u32) -> u32 {
    (v + to - 1) & !(to - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arm::{ArmIns, Cond};
    use crate::mips::MipsIns;

    fn arm_ret_fn() -> Assembler {
        let mut a = Assembler::new(Arch::Arm32e);
        a.ret();
        a
    }

    #[test]
    fn minimal_link_produces_text_and_symbols() {
        let mut b = BinaryBuilder::new(Arch::Arm32e);
        b.add_function("main", arm_ret_fn());
        let bin = b.link().unwrap();
        assert_eq!(bin.entry, TEXT_BASE);
        let main = bin.function("main").unwrap();
        assert_eq!((main.addr, main.size), (TEXT_BASE, 4));
        let text = bin.section(SectionKind::Text).unwrap();
        assert_eq!(text.size, 4);
    }

    #[test]
    fn call_to_import_resolves_to_stub() {
        let mut a = Assembler::new(Arch::Arm32e);
        a.call("strcpy");
        a.ret();
        let mut b = BinaryBuilder::new(Arch::Arm32e);
        b.add_function("f", a);
        b.add_import("strcpy");
        let bin = b.link().unwrap();
        let stub = bin.imports[0].stub_addr;
        // Decode the patched BL and compute its destination.
        let word = bin.read_u32(TEXT_BASE).unwrap();
        let ins = ArmIns::decode(word, TEXT_BASE).unwrap();
        let ArmIns::Bl { off } = ins else { panic!("expected BL, got {ins}") };
        let dest = (TEXT_BASE as i64 + 4 + off as i64 * 4) as u32;
        assert_eq!(dest, stub);
        // The stub body is a return.
        let stub_word = bin.read_u32(stub).unwrap();
        assert_eq!(ArmIns::decode(stub_word, stub).unwrap(), ArmIns::Bx { rm: Reg::LR });
    }

    #[test]
    fn call_between_functions_resolves() {
        let mut f = Assembler::new(Arch::Mips32e);
        f.call("g");
        f.ret();
        let mut g = Assembler::new(Arch::Mips32e);
        g.ret();
        let mut b = BinaryBuilder::new(Arch::Mips32e);
        b.add_function("f", f);
        b.add_function("g", g);
        let bin = b.link().unwrap();
        let g_addr = bin.function("g").unwrap().addr;
        let word = bin.read_u32(TEXT_BASE).unwrap();
        let MipsIns::Jal { off } = MipsIns::decode(word, 0).unwrap() else { panic!() };
        assert_eq!((TEXT_BASE as i64 + 4 + off as i64 * 4) as u32, g_addr);
    }

    #[test]
    fn local_branch_resolves_backward_and_forward() {
        let mut a = Assembler::new(Arch::Arm32e);
        a.label("top");
        a.arm(ArmIns::CmpI { rn: Reg(0), imm: 0 });
        a.arm_b(Cond::Eq, "out"); // forward
        a.arm(ArmIns::SubI { rd: Reg(0), rn: Reg(0), imm: 1 });
        a.jump("top"); // backward
        a.label("out");
        a.ret();
        let mut b = BinaryBuilder::new(Arch::Arm32e);
        b.add_function("loopy", a);
        let bin = b.link().unwrap();
        // beq at word 1 → target word 4: off = 4 - 2 = 2.
        let w = bin.read_u32(TEXT_BASE + 4).unwrap();
        assert_eq!(ArmIns::decode(w, 0).unwrap(), ArmIns::B { cond: Cond::Eq, off: 2 });
        // jump at word 3 → target word 0: off = 0 - 4 = -4.
        let w = bin.read_u32(TEXT_BASE + 12).unwrap();
        assert_eq!(ArmIns::decode(w, 0).unwrap(), ArmIns::B { cond: Cond::Al, off: -4 });
    }

    #[test]
    fn load_addr_materialises_rodata_address() {
        let mut a = Assembler::new(Arch::Mips32e);
        a.load_addr(Reg(4), "greeting");
        a.ret();
        let mut b = BinaryBuilder::new(Arch::Mips32e);
        b.add_function("f", a);
        b.add_cstring("greeting", "hello");
        let bin = b.link().unwrap();
        let obj = bin.symbols.iter().find(|s| s.name == "greeting").unwrap();
        let hi = bin.read_u32(TEXT_BASE).unwrap();
        let lo = bin.read_u32(TEXT_BASE + 4).unwrap();
        let MipsIns::Lui { imm: hi_imm, .. } = MipsIns::decode(hi, 0).unwrap() else { panic!() };
        let MipsIns::Ori { imm: lo_imm, .. } = MipsIns::decode(lo, 0).unwrap() else { panic!() };
        assert_eq!(((hi_imm as u32) << 16) | lo_imm as u32, obj.addr);
        assert_eq!(bin.cstr_at(obj.addr).as_deref(), Some("hello"));
    }

    #[test]
    fn function_pointer_into_data_structure() {
        // Storing a function address into a struct field — the pattern
        // behind indirect calls — must resolve to the callee's address.
        let mut f = Assembler::new(Arch::Arm32e);
        f.load_addr(Reg(1), "handler");
        f.arm(ArmIns::Str { rt: Reg(1), rn: Reg(0), off: 8 });
        f.ret();
        let mut h = Assembler::new(Arch::Arm32e);
        h.ret();
        let mut b = BinaryBuilder::new(Arch::Arm32e);
        b.add_function("install", f);
        b.add_function("handler", h);
        let bin = b.link().unwrap();
        let handler = bin.function("handler").unwrap().addr;
        let lo = bin.read_u32(TEXT_BASE).unwrap();
        let hi = bin.read_u32(TEXT_BASE + 4).unwrap();
        let ArmIns::MovI { imm: lo_imm, .. } = ArmIns::decode(lo, 0).unwrap() else { panic!() };
        let ArmIns::MovT { imm: hi_imm, .. } = ArmIns::decode(hi, 0).unwrap() else { panic!() };
        assert_eq!(((hi_imm as u32) << 16) | lo_imm as u32, handler);
    }

    #[test]
    fn undefined_symbols_and_labels_error() {
        let mut a = Assembler::new(Arch::Arm32e);
        a.call("nowhere");
        let mut b = BinaryBuilder::new(Arch::Arm32e);
        b.add_function("f", a);
        assert_eq!(b.link().unwrap_err(), Error::UndefinedLabel("nowhere".into()));

        let mut a = Assembler::new(Arch::Arm32e);
        a.arm_b(Cond::Ne, "missing");
        let mut b = BinaryBuilder::new(Arch::Arm32e);
        b.add_function("f", a);
        assert_eq!(b.link().unwrap_err(), Error::UndefinedLabel("missing".into()));
    }

    #[test]
    fn duplicate_globals_error() {
        let mut b = BinaryBuilder::new(Arch::Arm32e);
        b.add_function("f", arm_ret_fn());
        b.add_function("f", arm_ret_fn());
        assert_eq!(b.link().unwrap_err(), Error::DuplicateLabel("f".into()));

        let mut b = BinaryBuilder::new(Arch::Arm32e);
        b.add_function("strcpy", arm_ret_fn());
        b.add_import("strcpy");
        assert_eq!(b.link().unwrap_err(), Error::DuplicateLabel("strcpy".into()));
    }

    #[test]
    fn sections_are_disjoint_and_ordered() {
        let mut b = BinaryBuilder::new(Arch::Arm32e);
        b.add_function("f", arm_ret_fn());
        b.add_import("recv");
        b.add_cstring("s", "x");
        b.add_data("d", vec![1, 2, 3, 4]);
        b.add_bss("g_state", 32);
        let bin = b.link().unwrap();
        let mut prev_end = 0;
        for s in &bin.sections {
            assert!(s.addr >= prev_end, "{} overlaps previous section", s.name);
            prev_end = s.addr + s.size;
        }
        assert_eq!(bin.sections.len(), 5);
    }

    #[test]
    fn entry_defaults_to_first_function_and_is_settable() {
        let mut b = BinaryBuilder::new(Arch::Arm32e);
        b.add_function("a", arm_ret_fn());
        b.add_function("b", arm_ret_fn());
        assert_eq!(b.link().unwrap().entry, TEXT_BASE);
        b.set_entry("b");
        let bin = b.link().unwrap();
        assert_eq!(bin.entry, bin.function("b").unwrap().addr);
    }

    #[test]
    fn linked_binary_roundtrips_through_fbf() {
        let mut a = Assembler::new(Arch::Mips32e);
        a.call("recv");
        a.ret();
        let mut b = BinaryBuilder::new(Arch::Mips32e);
        b.add_function("main", a);
        b.add_import("recv");
        b.add_cstring("fmt", "%s");
        let bin = b.link().unwrap();
        assert_eq!(Binary::from_bytes(&bin.to_bytes()).unwrap(), bin);
    }
}
